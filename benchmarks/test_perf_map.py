"""Throughput microbenchmark: scipy-loop versus batched MAP extraction.

After the batched transient engine removed the simulation bottleneck
(``BENCH_transient.json``), parameter extraction became the dominant cost of
a statistical characterization.  This benchmark isolates that stage on a
realistic workload -- ``REPRO_BENCH_MAP_SEEDS`` Monte Carlo seeds x
``REPRO_BENCH_MAP_CONDITIONS`` fitting conditions of one NAND2 arc, both
responses (delay and slew) -- and times

* the scipy path: one bounded trust-region ``least_squares`` per seed per
  response (``2 x n_seeds`` solves), exactly as
  ``StatisticalCharacterizer.characterize(..., solver="scipy")`` runs it;
* the batched path: one seed-vectorized Levenberg-Marquardt solve per
  response (``repro.core.batch_map.map_estimate_batch``).

The measured observations come from a real batched-engine simulation (not
timed -- this benchmark measures extraction, not integration), the two
extractions are checked for parity, and the result lands in
``BENCH_map.json`` next to ``BENCH_transient.json`` so both stages of the
statistical flow are tracked across PRs.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import env_float, env_int, write_json_result  # noqa: E402

from repro import get_technology, make_cell, sweep_conditions
from repro.bayes import GaussianDensity
from repro.cells import reduce_cell_cached
from repro.characterization.input_space import InputSpace, conditions_to_arrays
from repro.core.batch_map import BatchMapObservations, map_estimate_batch
from repro.core.map_estimation import MapObservations, map_estimate
from repro.core.timing_model import fit_least_squares


def test_batched_map_extraction_throughput(results_dir):
    n_seeds = env_int("REPRO_BENCH_MAP_SEEDS", 200)
    k = env_int("REPRO_BENCH_MAP_CONDITIONS", 4)
    # Regression tripwire well below the dedicated-hardware numbers recorded
    # in BENCH_map.json (the scipy loop's per-seed overhead makes the real
    # ratio large, but shared CI runners are noisy).
    min_speedup = env_float("REPRO_BENCH_MAP_MIN_SPEEDUP", 3.0)

    technology = get_technology("n28_bulk")
    cell = make_cell("NAND2_X1")
    variation = technology.variation.sample(n_seeds, rng=42)

    space = InputSpace(technology)
    conditions = space.sample_lhs(k, np.random.default_rng(23))
    sin, cload, vdd = conditions_to_arrays(conditions)

    # Real measurements through the batched transient engine (not timed).
    measurements = sweep_conditions(cell, technology,
                                    [c.as_tuple() for c in conditions],
                                    variation=variation)
    delay = np.stack([np.asarray(m.delay).reshape(-1) for m in measurements])
    slew = np.stack([np.asarray(m.output_slew).reshape(-1)
                     for m in measurements])
    inverter = reduce_cell_cached(cell, technology, variation=variation)
    ieff = np.broadcast_to(
        np.atleast_2d(np.asarray(
            inverter.effective_current(vdd[:, np.newaxis]), dtype=float)),
        (k, n_seeds)).copy()

    # Priors anchored on a nominal least-squares fit, mirroring how learned
    # priors sit near the target technology's parameters.
    nominal_inverter = reduce_cell_cached(cell, technology)
    nominal_ieff = np.asarray(nominal_inverter.effective_current(vdd),
                              dtype=float).reshape(-1)
    priors = {}
    responses = {"delay": delay, "slew": slew}
    for name, matrix in responses.items():
        anchor = fit_least_squares(sin, cload, vdd, nominal_ieff,
                                   matrix[:, 0]).params.as_array()
        priors[name] = GaussianDensity(anchor,
                                       np.diag([0.05, 0.3, 0.05, 0.08]) ** 2)
    beta = np.full(k, 1e4)

    # Warm-up (first-call numpy overheads) outside the timed regions.
    map_estimate_batch(priors["delay"], BatchMapObservations(
        sin=sin, cload=cload, vdd=vdd, ieff=ieff.T[:2], response=delay.T[:2],
        beta=beta))

    start = time.perf_counter()
    scipy_params = {}
    for name, matrix in responses.items():
        params = np.empty((n_seeds, 4))
        for seed in range(n_seeds):
            observations = MapObservations(sin=sin, cload=cload, vdd=vdd,
                                           ieff=ieff[:, seed],
                                           response=matrix[:, seed], beta=beta)
            params[seed] = map_estimate(priors[name],
                                        observations).params.as_array()
        scipy_params[name] = params
    scipy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_params = {}
    batched_converged = {}
    for name, matrix in responses.items():
        result = map_estimate_batch(priors[name], BatchMapObservations(
            sin=sin, cload=cload, vdd=vdd, ieff=ieff.T, response=matrix.T,
            beta=beta))
        batched_params[name] = result.parameters
        batched_converged[name] = int(result.n_converged)
    batched_seconds = time.perf_counter() - start

    # Parity: both solvers minimize the same objective; the batched solver
    # converges tighter than scipy's 1e-8 defaults, so compare loosely here
    # (the tight parity grid lives in tests/test_batch_map.py).
    for name in responses:
        np.testing.assert_allclose(batched_params[name], scipy_params[name],
                                   rtol=1e-4, atol=1e-6)

    speedup = scipy_seconds / batched_seconds
    total_solves = 2 * n_seeds
    payload = {
        "benchmark": "map_extraction",
        "n_seeds": n_seeds,
        "n_conditions": k,
        "n_responses": 2,
        "scipy_seconds": round(scipy_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(speedup, 2),
        "scipy_seeds_per_sec": round(total_solves / scipy_seconds, 1),
        "batched_seeds_per_sec": round(total_solves / batched_seconds, 1),
        "batched_converged": batched_converged,
        "parity_rtol": 1e-4,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    write_json_result(results_dir / "BENCH_map.json", payload)

    assert speedup >= min_speedup, (
        f"batched MAP extraction only {speedup:.2f}x faster than the scipy "
        f"loop (floor {min_speedup}x)"
    )
