"""Integration-core microbenchmark: fixed-step RK4 versus adaptive RK45.

Times the same statistical sweep -- ``REPRO_BENCH_INTEG_CONDITIONS``
operating points x ``REPRO_BENCH_INTEG_SEEDS`` Monte Carlo seeds of one
NAND2 arc -- through the batched fixed-step RK4 engine and the batched
error-controlled RK45 engine (:mod:`repro.spice.adaptive`) at the default
``rtol = 1e-9``, and writes ``BENCH_integrator.json`` (wall-clock seconds,
step/rejection/RHS-evaluation counts from each engine's
:class:`~repro.spice.stepper.IntegrationStats`, speedup and RHS-cost ratio).

Accuracy is asserted against a fine fixed-step reference (the fixed engine
converges monotonically to the adaptive answer as steps increase, so direct
adaptive-versus-RK4-at-400-steps comparison would measure the *fixed*
engine's discretization error): on a subset of conditions the adaptive
result must be at least as close to a 64x-refined reference as the nominal
fixed-step result is.

Both engines are timed best-of-N (``REPRO_BENCH_INTEG_REPEATS``) so the
recorded ratio measures the integrators, not background machine load.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import env_float, env_int  # noqa: E402
from bench_utils import write_json_result  # noqa: E402

from repro import get_technology, make_cell
from repro.cells import reduce_cell_cached
from repro.characterization.input_space import InputSpace
from repro.spice import (
    StepperSpec,
    simulate_arc_transitions,
    simulate_arc_transitions_adaptive,
)
from repro.spice.transient import DEFAULT_STEPS


def test_adaptive_integrator_throughput(results_dir):
    n_conditions = env_int("REPRO_BENCH_INTEG_CONDITIONS", 50)
    n_seeds = env_int("REPRO_BENCH_INTEG_SEEDS", 200)
    repeats = env_int("REPRO_BENCH_INTEG_REPEATS", 3)
    # Floors are regression tripwires.  The RHS-evaluation ratio is a
    # deterministic property of the two schemes on this workload (~4x), so
    # its floor is tight; the wall-clock ratio is noisier.
    min_rhs_ratio = env_float("REPRO_BENCH_INTEG_MIN_RHS_RATIO", 3.0)
    min_speedup = env_float("REPRO_BENCH_INTEG_MIN_SPEEDUP", 2.0)

    technology = get_technology("n28_bulk")
    cell = make_cell("NAND2_X1")
    variation = technology.variation.sample(n_seeds, rng=42)
    inverter = reduce_cell_cached(cell, technology, variation=variation)

    space = InputSpace(technology)
    conditions = space.sample_lhs(n_conditions, np.random.default_rng(17))
    sin = np.array([c.sin for c in conditions])
    cload = np.array([c.cload for c in conditions])
    vdd = np.array([c.vdd for c in conditions])

    stepper = StepperSpec.for_engine("adaptive")

    # Warm-up outside the timed regions (first-call numpy/python overheads).
    simulate_arc_transitions(inverter, sin[:2], cload[:2], vdd[:2])
    simulate_arc_transitions_adaptive(inverter, sin[:2], cload[:2], vdd[:2],
                                      stepper=stepper)

    fixed_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fixed = simulate_arc_transitions(inverter, sin, cload, vdd)
        fixed_delay = fixed.delay()
        fixed_slew = fixed.output_slew()
        fixed_seconds = min(fixed_seconds, time.perf_counter() - start)

    adaptive_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        adaptive = simulate_arc_transitions_adaptive(inverter, sin, cload,
                                                     vdd, stepper=stepper)
        adaptive_delay = adaptive.delay()
        adaptive_slew = adaptive.output_slew()
        adaptive_seconds = min(adaptive_seconds, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Accuracy: both engines against a 64x-refined fixed-step reference on
    # a subset of conditions (the reference is the expensive part).
    # ------------------------------------------------------------------
    n_acc = min(env_int("REPRO_BENCH_INTEG_ACC_CONDITIONS", 8), n_conditions)
    n_acc_seeds = min(env_int("REPRO_BENCH_INTEG_ACC_SEEDS", 25), n_seeds)
    acc_variation = technology.variation.sample(n_acc_seeds, rng=42)
    acc_inverter = reduce_cell_cached(cell, technology,
                                      variation=acc_variation)
    reference = simulate_arc_transitions(
        acc_inverter, sin[:n_acc], cload[:n_acc], vdd[:n_acc],
        n_steps=64 * DEFAULT_STEPS)
    ref_delay = reference.delay()

    acc_fixed = simulate_arc_transitions(
        acc_inverter, sin[:n_acc], cload[:n_acc], vdd[:n_acc])
    acc_adaptive = simulate_arc_transitions_adaptive(
        acc_inverter, sin[:n_acc], cload[:n_acc], vdd[:n_acc],
        stepper=stepper)
    fixed_error = float(np.max(np.abs(acc_fixed.delay() / ref_delay - 1.0)))
    adaptive_error = float(
        np.max(np.abs(acc_adaptive.delay() / ref_delay - 1.0)))

    speedup = fixed_seconds / adaptive_seconds
    rhs_ratio = fixed.stats.rhs_evals / adaptive.stats.rhs_evals
    payload = {
        "benchmark": "integrator",
        "n_conditions": n_conditions,
        "n_seeds": n_seeds,
        "timing_repeats": repeats,
        "timing_methodology": "best-of-N per engine",
        "fixed_seconds": round(fixed_seconds, 4),
        "adaptive_seconds": round(adaptive_seconds, 4),
        "speedup": round(speedup, 2),
        "fixed_steps": fixed.stats.steps_taken,
        "adaptive_steps": adaptive.stats.steps_taken,
        "adaptive_steps_rejected": adaptive.stats.steps_rejected,
        "fixed_rhs_evals": fixed.stats.rhs_evals,
        "adaptive_rhs_evals": adaptive.stats.rhs_evals,
        "rhs_eval_ratio": round(rhs_ratio, 2),
        "rtol": stepper.rtol,
        "atol_fraction": stepper.atol_frac,
        "reference_steps": 64 * DEFAULT_STEPS,
        "fixed_max_rel_delay_error": fixed_error,
        "adaptive_max_rel_delay_error": adaptive_error,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    write_json_result(results_dir / "BENCH_integrator.json", payload)

    # The crossing-time extraction differs between the engines (dense Hermite
    # output versus linear interpolation on the fine fixed grid), so the
    # adaptive error carries a small extraction-level floor; the margin
    # accepts that while still failing if step control ever loses accuracy.
    assert adaptive_error <= fixed_error * 1.05 + 1e-6, (
        f"adaptive delay error {adaptive_error:.2e} worse than fixed-step "
        f"error {fixed_error:.2e} against the refined reference")
    assert rhs_ratio >= min_rhs_ratio, (
        f"adaptive engine only saves {rhs_ratio:.2f}x RHS evaluations "
        f"(floor {min_rhs_ratio}x)")
    assert speedup >= min_speedup, (
        f"adaptive engine only {speedup:.2f}x faster than fixed-step "
        f"(floor {min_speedup}x)")
