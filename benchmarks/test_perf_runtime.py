"""Acceptance benchmark of the ``repro.runtime`` substrate.

Proves the runtime consolidation's contract at production scale:

1. a ``REPRO_BENCH_RUNTIME_LIB_SEEDS``-seed library characterization and a
   ``REPRO_BENCH_RUNTIME_WIDTH x REPRO_BENCH_RUNTIME_DEPTH``-gate,
   ``REPRO_BENCH_RUNTIME_SSTA_SEEDS``-seed Monte Carlo SSTA both complete
   under an explicit ``max_bytes`` chunk budget
   (``REPRO_BENCH_RUNTIME_BUDGET_MB``, default 8 MiB -- far below the
   unchunked engines' working sets at the default sizes);
2. the budgeted results match the unchunked engines at ``rtol <= 1e-9``
   (chunk rows are computed independently, so they are bit-identical in
   practice);
3. ``repro.runtime.cache_stats()`` reports nonzero hits for the Ieff and
   simulation caches, and the unified :class:`RunLedger` accounts the run.

Chunking overhead (budgeted versus unchunked SSTA wall clock) lands in
``BENCH_runtime.json`` next to the per-engine speedup records, so the cost
of bounded memory is tracked across PRs.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import env_float, env_int, write_json_result  # noqa: E402
from test_perf_ssta import _synthetic_library_view  # noqa: E402

import repro.runtime as runtime
from repro import (
    RunLedger,
    characterize_library,
    get_technology,
    make_cell,
)
from repro.analysis import format_ledger
from repro.core.prior_learning import characterize_historical_library, learn_prior
from repro.spice.testbench import get_simulation_cache
from repro.sta import MonteCarloSsta, random_layered_dag


def test_chunked_budget_acceptance(results_dir):
    width = env_int("REPRO_BENCH_RUNTIME_WIDTH", 100)
    depth = env_int("REPRO_BENCH_RUNTIME_DEPTH", 50)
    ssta_seeds = env_int("REPRO_BENCH_RUNTIME_SSTA_SEEDS", 1000)
    lib_seeds = env_int("REPRO_BENCH_RUNTIME_LIB_SEEDS", 200)
    budget = int(env_float("REPRO_BENCH_RUNTIME_BUDGET_MB", 8.0) * 2**20)

    target = get_technology("n28_bulk")
    cells = [make_cell(name) for name in ("INV_X1", "NAND2_X1", "NOR2_X1")]
    historical = [characterize_historical_library(get_technology("n45_bulk"),
                                                  cells)]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")

    # ------------------------------------------------------------------
    # Library characterization: unchunked reference (cache disabled so it
    # genuinely simulates), then the budgeted run on a cold cache (so its
    # chunked engines genuinely simulate too), then a warm replay.
    # ------------------------------------------------------------------
    sim_cache = get_simulation_cache()
    sim_cache.clear()
    sim_cache.disable()
    baseline_lib = characterize_library(
        target, cells, delay_prior, slew_prior, conditions=4,
        n_seeds=lib_seeds, rng=17)
    sim_cache.enable()

    ledger = RunLedger()
    t0 = time.perf_counter()
    budgeted_lib = characterize_library(
        target, cells, delay_prior, slew_prior, conditions=4,
        n_seeds=lib_seeds, rng=17, max_bytes=budget, ledger=ledger)
    lib_seconds = time.perf_counter() - t0

    for base, chunked in zip(baseline_lib.entries, budgeted_lib.entries):
        np.testing.assert_allclose(chunked.statistical.delay_parameters,
                                   base.statistical.delay_parameters,
                                   rtol=1e-9)
        np.testing.assert_allclose(chunked.statistical.slew_parameters,
                                   base.statistical.slew_parameters,
                                   rtol=1e-9)

    # Warm replay: identical results, but served from the simulation cache.
    warm_lib = characterize_library(
        target, cells, delay_prior, slew_prior, conditions=4,
        n_seeds=lib_seeds, rng=17, max_bytes=budget, ledger=ledger)
    for a, b in zip(budgeted_lib.entries, warm_lib.entries):
        assert np.array_equal(a.statistical.delay_parameters,
                              b.statistical.delay_parameters)

    # ------------------------------------------------------------------
    # SSTA at scale: unchunked pass, then the same run under the budget.
    # ------------------------------------------------------------------
    view = _synthetic_library_view(ssta_seeds, vdd=0.9)
    netlist = random_layered_dag(width=width, depth=depth, window=2, rng=17)
    n_gates = len(netlist.gates)
    netlist.compile()  # shared warm-up

    t0 = time.perf_counter()
    baseline_ssta = MonteCarloSsta(netlist, view).run()
    unchunked_seconds = time.perf_counter() - t0

    runtime.configure(max_bytes=budget)
    try:
        t0 = time.perf_counter()
        chunked_ssta = MonteCarloSsta(netlist, view, ledger=ledger).run()
        chunked_seconds = time.perf_counter() - t0
    finally:
        runtime.configure(max_bytes=None)

    np.testing.assert_allclose(chunked_ssta.delay_samples,
                               baseline_ssta.delay_samples, rtol=1e-9)
    assert chunked_ssta.critical_output == baseline_ssta.critical_output

    # ------------------------------------------------------------------
    # Acceptance: the runtime caches visibly worked.
    # ------------------------------------------------------------------
    stats = runtime.cache_stats()
    assert stats["simulation"].hits > 0, "warm library replay must hit"
    assert stats["ieff"].hits > 0, "repeated per-level Ieff rows must hit"
    assert ledger.simulations_total > 0
    assert ledger.stage_seconds("ssta") > 0.0

    print("\n" + format_ledger(ledger, title="Unified run ledger"))

    payload = {
        "benchmark": "runtime_chunked_budget",
        "budget_bytes": budget,
        "library_seeds": lib_seeds,
        "library_arcs": len(budgeted_lib.entries),
        "library_budgeted_seconds": round(lib_seconds, 4),
        "ssta_gates": n_gates,
        "ssta_seeds": ssta_seeds,
        "ssta_unchunked_seconds": round(unchunked_seconds, 4),
        "ssta_chunked_seconds": round(chunked_seconds, 4),
        "ssta_chunking_overhead": round(chunked_seconds
                                        / max(unchunked_seconds, 1e-12), 3),
        "equivalence_rtol": 1e-9,
        "cache_stats": {name: {"hits": s.hits, "misses": s.misses,
                               "evictions": s.evictions}
                        for name, s in stats.items()},
        "simulations_total": ledger.simulations_total,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    write_json_result(results_dir / "BENCH_runtime.json", payload)
