"""Fault-injection acceptance run: a small library characterization survives
an injected worker-pool crash plus a NaN simulation row.

This is the resilience counterpart of the throughput benchmarks: instead of
timing a clean run, it drives :func:`repro.core.library_flow.characterize_library`
through the deterministic fault harness (:mod:`repro.runtime.faultinject`)
and asserts the graceful-degradation contract end to end:

* an injected ``BrokenProcessPool`` on the first process-pool map falls back
  to serial execution -- every simulation chunk still completes, counted in
  the ``executor_fallbacks`` metric;
* an injected NaN simulation row is quarantined instead of aborting the
  batch, surfacing as a structured ``QuarantinedRows``
  :class:`~repro.runtime.resilience.FailureReport`;
* the non-strict run completes with partial results whose *non-faulted*
  arcs match a clean run within ``rtol <= 1e-12`` (in practice bit-identical:
  quarantine only removes rows, and the stacked MAP solve is row-independent);
* ``strict=True`` preserves the fail-fast behaviour under the same faults.

The record lands in ``BENCH_fault_acceptance.json``.  CI runs this as its
fault-injection acceptance step; the knobs below shrink or grow the workload:

``REPRO_BENCH_FAULT_CELLS``       cells in the synthetic library (4)
``REPRO_BENCH_FAULT_SEEDS``       Monte Carlo seeds (8)
``REPRO_BENCH_FAULT_CONDITIONS``  fitting conditions per arc (3)
"""

from __future__ import annotations

import dataclasses
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import env_int, write_json_result  # noqa: E402

import repro.runtime as runtime
from repro import RunLedger, get_technology, make_cell
from repro.analysis import format_ledger
from repro.cells.library import StandardCellLibrary
from repro.core.library_flow import characterize_library
from repro.core.prior_learning import characterize_historical_library, learn_prior
from repro.runtime.faultinject import FaultSpec, inject

_TEMPLATES = ("INV_X1", "NAND2_X1", "NOR2_X1", "INV_X2")


def synthetic_library(n_cells: int) -> StandardCellLibrary:
    """``n_cells`` renamed template copies (footprint twins at library scale)."""
    cells = []
    for index in range(n_cells):
        base = make_cell(_TEMPLATES[index % len(_TEMPLATES)])
        cells.append(dataclasses.replace(base, name=f"{base.name}_C{index:03d}"))
    return StandardCellLibrary(f"fault_{n_cells}cells", cells)


def test_fault_injection_acceptance(results_dir):
    n_cells = env_int("REPRO_BENCH_FAULT_CELLS", 4)
    n_seeds = env_int("REPRO_BENCH_FAULT_SEEDS", 8)
    conditions = env_int("REPRO_BENCH_FAULT_CONDITIONS", 3)

    technology = get_technology("n28_bulk")
    library = synthetic_library(n_cells)
    historical = [characterize_historical_library(
        get_technology("n45_bulk"),
        [make_cell(name) for name in ("INV_X1", "NAND2_X1", "NOR2_X1")])]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")

    def run(faults, strict):
        # A cold start for every run: cached simulations would bypass the
        # transient fault site and mask the injection.
        runtime.clear_all_caches()
        ledger = RunLedger()
        start = time.perf_counter()
        with inject(faults, seed=13):
            result = characterize_library(
                technology, library, delay_prior, slew_prior,
                conditions=conditions, n_seeds=n_seeds, rng=17,
                concurrency="process", max_workers=2, ledger=ledger,
                strict=strict)
        return result, ledger, time.perf_counter() - start

    # The fault plan: the first process-pool map dies (as a crashed worker
    # would), forcing the serial fallback -- which also brings the simulation
    # in-process, where the second integration call then produces one NaN
    # row.  Both faults are deterministic: same seed, same schedule.
    faults = [
        FaultSpec(site="executor.process.map", kind="crash", at_calls=(0,)),
        FaultSpec(site="transient.state", kind="nan", at_calls=(1,),
                  rows=(0,)),
    ]

    clean, _, clean_seconds = run([], strict=True)
    faulted, ledger, faulted_seconds = run(faults, strict=False)

    # ------------------------------------------------------------------
    # Graceful degradation: partial results plus structured reports.
    # ------------------------------------------------------------------
    assert faulted.failures, "the injected NaN row must surface as a report"
    for report in faulted.failures:
        assert report.error_type == "QuarantinedRows"
        assert report.stage == "simulate"
    assert ledger.failures() == list(faulted.failures)

    metrics = ledger.metrics()
    assert metrics.get("executor_fallbacks", 0) > 0, \
        "the injected pool crash must be recovered serially"

    # ------------------------------------------------------------------
    # Non-faulted arcs match the clean run within rtol 1e-12.
    # ------------------------------------------------------------------
    degraded = set(faulted.failed_units())
    assert degraded, "at least one arc must be degraded by the NaN row"
    clean_by_unit = {f"{e.cell_name}:{e.arc.name}": e for e in clean.entries}
    unaffected = 0
    for entry in faulted.entries:
        unit = f"{entry.cell_name}:{entry.arc.name}"
        if unit in degraded:
            continue
        reference = clean_by_unit[unit]
        np.testing.assert_allclose(entry.statistical.delay_parameters,
                                   reference.statistical.delay_parameters,
                                   rtol=1e-12)
        np.testing.assert_allclose(entry.statistical.slew_parameters,
                                   reference.statistical.slew_parameters,
                                   rtol=1e-12)
        unaffected += 1
    assert unaffected > 0

    # ------------------------------------------------------------------
    # strict=True keeps the fail-fast contract under the same faults.
    # ------------------------------------------------------------------
    try:
        run(faults, strict=True)
    except RuntimeError:
        strict_failed_fast = True
    else:
        strict_failed_fast = False
    assert strict_failed_fast, "strict mode must abort on the injected fault"

    n_arcs_clean = len(clean.entries)
    print(f"\nFault acceptance: {n_cells} cells / {n_arcs_clean} arcs x "
          f"{n_seeds} seeds x {conditions} conditions")
    print(f"clean run  : {clean_seconds:.3f} s, {n_arcs_clean} arcs")
    print(f"faulted run: {faulted_seconds:.3f} s, {len(faulted.entries)} "
          f"arcs kept, {len(faulted.failures)} failure report(s), "
          f"{len(degraded)} degraded unit(s)")
    print("\n" + format_ledger(ledger, title="Faulted run ledger"))

    payload = {
        "benchmark": "fault_injection_acceptance",
        "host": platform.node(),
        "n_cells": n_cells,
        "n_seeds": n_seeds,
        "n_conditions": conditions,
        "clean_seconds": round(clean_seconds, 4),
        "faulted_seconds": round(faulted_seconds, 4),
        "arcs_clean": n_arcs_clean,
        "arcs_kept": len(faulted.entries),
        "arcs_unaffected": unaffected,
        "degraded_units": sorted(degraded),
        "failure_reports": [report.as_dict() for report in faulted.failures],
        "executor_fallbacks": int(metrics.get("executor_fallbacks", 0)),
        "strict_failed_fast": strict_failed_fast,
    }
    write_json_result(results_dir / "BENCH_fault_acceptance.json", payload)
