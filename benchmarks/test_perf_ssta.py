"""Throughput microbenchmark: loop versus level-batched SSTA graph engines.

After the batched transient engine (``BENCH_transient.json``) and the
batched MAP solver (``BENCH_map.json``) removed the characterization
bottlenecks, the downstream consumer -- Monte Carlo SSTA over a gate-level
netlist -- became the dominant wall-clock term at library scale.  This
benchmark isolates the timing-graph traversal on a seeded random layered DAG
of ``REPRO_BENCH_SSTA_WIDTH x REPRO_BENCH_SSTA_DEPTH`` gates with
``REPRO_BENCH_SSTA_SEEDS`` Monte Carlo seeds and times

* the loop engine: one Python iteration, one fanout walk, and one per-seed
  timing query per gate (``MonteCarloSsta(..., engine="loop")``);
* the batched engine: compiled netlist, per-level segmented
  ``np.maximum.reduceat`` reductions, one ``(gates x seeds)`` vectorized
  compact-model query per (level, cell type) group.

The timing view is backed by real per-seed
:class:`~repro.core.statistical_flow.StatisticalCharacterization` objects
(seed-vectorized equivalent inverters of the 28 nm node with synthetic
parameter ensembles -- no simulations, so the benchmark measures graph
traversal, not characterization).  Engine equivalence is asserted at
``rtol <= 1e-9`` and the result lands in ``BENCH_ssta.json`` next to the
other two stage benchmarks, so all three layers of the flow are tracked
across PRs.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import env_float, env_int, write_json_result  # noqa: E402

from repro import get_technology, make_cell
from repro.cells import reduce_cell_cached
from repro.characterization.input_space import InputCondition
from repro.core.statistical_flow import StatisticalCharacterization
from repro.sta import MonteCarloSsta, random_layered_dag, timing_view_from_statistical

#: Plausible 28 nm compact-model parameters (kd, Cpar fF, V', alpha fF/ps)
#: per cell, jittered per seed below.
_BASE_PARAMETERS = {
    "INV_X1": np.array([0.42, 1.0, -0.22, 0.12]),
    "NAND2_X1": np.array([0.48, 1.3, -0.20, 0.15]),
    "NOR2_X1": np.array([0.55, 1.5, -0.18, 0.17]),
}


def _synthetic_library_view(n_seeds: int, vdd: float):
    technology = get_technology("n28_bulk")
    variation = technology.variation.sample(n_seeds, rng=42)
    rng = np.random.default_rng(7)
    characterizations = {}
    input_caps = {}
    for cell_name, base in _BASE_PARAMETERS.items():
        cell = make_cell(cell_name)
        inverter = reduce_cell_cached(cell, technology, variation=variation)
        spread = np.array([0.02, 0.06, 0.01, 0.015])
        characterizations[cell_name] = StatisticalCharacterization(
            cell_name=cell_name, arc_name="bench_arc",
            delay_parameters=base + rng.normal(0.0, 1.0, (n_seeds, 4)) * spread,
            slew_parameters=(base * 0.8
                             + rng.normal(0.0, 1.0, (n_seeds, 4)) * spread),
            inverter=inverter,
            fitting_conditions=(InputCondition(5e-12, 2e-15, vdd),),
            simulation_runs=0)
        input_caps[cell_name] = float(np.mean(np.asarray(inverter.input_cap)))
    return timing_view_from_statistical(characterizations, input_caps, vdd=vdd)


def test_batched_ssta_graph_throughput(results_dir):
    width = env_int("REPRO_BENCH_SSTA_WIDTH", 100)
    depth = env_int("REPRO_BENCH_SSTA_DEPTH", 50)
    n_seeds = env_int("REPRO_BENCH_SSTA_SEEDS", 200)
    # Regression tripwire below the dedicated-hardware numbers recorded in
    # BENCH_ssta.json (shared CI runners are noisy).
    min_speedup = env_float("REPRO_BENCH_SSTA_MIN_SPEEDUP", 5.0)

    view = _synthetic_library_view(n_seeds, vdd=0.9)
    netlist = random_layered_dag(width=width, depth=depth, window=2, rng=17)
    n_gates = len(netlist.gates)

    # Warm-up: compile cache, numpy first-call overheads, both engines.
    small = random_layered_dag(width=8, depth=4, rng=1)
    MonteCarloSsta(small, view, engine="loop").run()
    MonteCarloSsta(small, view, engine="batched").run()
    netlist.compile()

    # Best-of-N wall clock per engine (min filters scheduler noise; the
    # loop engine gets fewer repetitions because each one is long).
    loop_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        loop_report = MonteCarloSsta(netlist, view, engine="loop").run()
        loop_seconds = min(loop_seconds, time.perf_counter() - start)

    batched_seconds = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        batched_report = MonteCarloSsta(netlist, view, engine="batched").run()
        batched_seconds = min(batched_seconds, time.perf_counter() - start)

    # Both engines must produce the same distribution, path ranking and
    # criticality (the tight grid lives in tests/test_batch_sta.py).
    assert batched_report.critical_output == loop_report.critical_output
    np.testing.assert_allclose(batched_report.delay_samples,
                               loop_report.delay_samples, rtol=1e-9)
    # Criticality fractions are quantized to 1/n_seeds; allow one near-tie
    # argmax flip within the delay tolerance above.
    for net, probability in loop_report.criticality.items():
        assert abs(batched_report.criticality[net] - probability) <= 1.0 / n_seeds

    speedup = loop_seconds / batched_seconds
    compiled = netlist.compile()
    payload = {
        "benchmark": "ssta_graph",
        "n_gates": n_gates,
        "n_levels": int(compiled.n_levels),
        "n_seeds": n_seeds,
        "width": width,
        "depth": depth,
        "loop_seconds": round(loop_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(speedup, 2),
        "loop_gate_evals_per_sec": round(n_gates / loop_seconds, 1),
        "batched_gate_evals_per_sec": round(n_gates / batched_seconds, 1),
        "critical_output": batched_report.critical_output,
        "critical_delay_mean_ps": round(batched_report.summary.mean * 1e12, 3),
        "critical_delay_sigma_ps": round(batched_report.summary.std * 1e12, 3),
        "equivalence_rtol": 1e-9,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    write_json_result(results_dir / "BENCH_ssta.json", payload)

    assert speedup >= min_speedup, (
        f"batched SSTA graph engine only {speedup:.2f}x faster than the loop "
        f"engine (floor {min_speedup}x)"
    )
