"""Fig. 7: statistical delay errors (mean and sigma) versus training samples.

The paper's Fig. 7 plots the error in the predicted mean and standard
deviation of the delay of a 28 nm library against the number of training
samples, for the proposed flow and the statistical LUT; it reports 17x / 20x
reductions in required samples at matched accuracy.  This benchmark
regenerates both series (mu(Td) and sigma(Td)), prints them, and asserts the
shape: the proposed flow reaches small errors with a handful of conditions
while the LUT needs many more.
"""

from __future__ import annotations

import numpy as np

from repro import StatisticalCharacterizer, get_technology, make_cell
from repro.analysis import format_curve_table
from repro.experiments import compute_speedup
from bench_utils import env_int, write_result


def test_fig7_statistical_delay_error(benchmark, statistical_curves_28, priors_28,
                                      results_dir):
    curves = statistical_curves_28
    bayes_mu = curves[("bayesian", "mu_delay")]
    bayes_sigma = curves[("bayesian", "sigma_delay")]
    lut_mu = curves[("lut", "mu_delay")]
    lut_sigma = curves[("lut", "sigma_delay")]

    # Time the representative step: a proposed-flow statistical
    # characterization with 3 conditions and a small seed batch.
    target = get_technology("n28_bulk")
    cell = make_cell("INV_X1")

    def statistical_fit():
        flow = StatisticalCharacterizer(target, cell, priors_28["delay"],
                                        priors_28["slew"], n_seeds=40, rng=2)
        return flow.characterize(3, rng=3).simulation_runs

    benchmark.pedantic(statistical_fit, rounds=1, iterations=1)

    text = format_curve_table(
        {"bayesian": bayes_mu, "lut": lut_mu},
        title="Fig. 7 analogue (left): mu(Td) error vs training samples (28 nm)")
    text += "\n\n" + format_curve_table(
        {"bayesian": bayes_sigma, "lut": lut_sigma},
        title="Fig. 7 analogue (right): sigma(Td) error vs training samples (28 nm)")
    for label, fast, slow in (("mu(Td)", bayes_mu, lut_mu),
                              ("sigma(Td)", bayes_sigma, lut_sigma)):
        summary = compute_speedup(fast, slow)
        if summary is not None:
            text += f"\n{label}: {summary.describe()}"
    write_result(results_dir / "fig7_statistical_delay.txt", text)

    # Mean-delay prediction: accurate (<5 %) with 3 or fewer conditions.
    assert bayes_mu.error_at(3) < 5.0
    # Sigma prediction converges below 15 % within the evaluated budget.
    assert bayes_sigma.mean_error_percent.min() < 15.0
    # The proposed flow beats the LUT at small budgets for the mean.
    assert bayes_mu.error_at(2) < lut_mu.error_at(2)
    # And the LUT needs a substantially larger budget for the same mu accuracy.
    lut_runs = lut_mu.runs_to_reach(bayes_mu.error_at(3))
    bayes_runs = bayes_mu.simulation_runs[list(bayes_mu.training_sizes).index(3)]
    if lut_runs is not None:
        assert lut_runs / bayes_runs >= 2.0
