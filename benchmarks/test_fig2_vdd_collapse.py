"""Fig. 2: ``T * Ieff / (Vdd + V')`` is constant across the supply sweep.

The paper validates the compact model by showing that, for a NOR2 cell in the
14 nm technology, the quantity ``Td * Ieff / (Vdd + V')`` (and the same for
the output slew) stays constant as Vdd sweeps from 0.65 V to 1.0 V for every
(Cload, Sin) group and both transitions.  This benchmark regenerates those
series and asserts that the collapse holds to within a few percent.
"""

from __future__ import annotations

import numpy as np

from repro import SimulationCounter, get_technology, make_cell, reduce_cell
from repro.analysis import format_table
from repro.cells import Transition
from repro.core.timing_model import CompactTimingModel
from repro.spice import sweep_conditions
from bench_utils import write_result

#: (Cload, Sin) groups, chosen across the 14 nm input space.
GROUPS = ((1.0e-15, 3.0e-12), (2.5e-15, 6.0e-12), (5.0e-15, 12.0e-12))
VDD_SWEEP = (0.65, 0.7, 0.8, 0.9, 1.0)
#: Supply-offset parameter used for the collapse (from the Table I fits).
VPRIME = -0.20


def run_collapse():
    technology = get_technology("n14_finfet")
    cell = make_cell("NOR2_X1")
    counter = SimulationCounter()
    rows = []
    spreads = []
    for transition in (Transition.FALL, Transition.RISE):
        arc = cell.arc("A", transition)
        inverter = reduce_cell(cell, technology, arc=arc)
        for cload, sin in GROUPS:
            conditions = [(sin, cload, vdd) for vdd in VDD_SWEEP]
            measurements = sweep_conditions(cell, technology, conditions, arc=arc,
                                            counter=counter)
            delays = np.array([m.nominal_delay() for m in measurements])
            ieff = np.array([float(inverter.effective_current(v)) for v in VDD_SWEEP])
            collapsed = CompactTimingModel.vdd_collapse(delays, ieff,
                                                        np.array(VDD_SWEEP), VPRIME)
            spread = float(collapsed.std() / collapsed.mean())
            spreads.append(spread)
            rows.append([transition.value, cload * 1e15, sin * 1e12,
                         *(collapsed * 1e15), 100.0 * spread])
    return rows, np.array(spreads), counter.total


def test_fig2_vdd_collapse(benchmark, results_dir):
    rows, spreads, runs = benchmark.pedantic(run_collapse, rounds=1, iterations=1)
    headers = (["transition", "Cload (fF)", "Sin (ps)"]
               + [f"Td*Ieff/(Vdd+V') @ {v} V (fC)" for v in VDD_SWEEP]
               + ["spread (%)"])
    text = format_table(headers, rows,
                        title="Fig. 2 analogue: Vdd collapse of the delay model "
                              f"(NOR2, 14 nm, {runs} simulations)")
    write_result(results_dir / "fig2_vdd_collapse.txt", text)

    # Paper: the collapsed quantity is visually flat across Vdd.  Require the
    # relative spread to stay below 6 % for every group and transition.
    assert np.all(spreads < 0.06)
    assert spreads.mean() < 0.04
