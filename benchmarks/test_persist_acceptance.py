"""Durable-store acceptance run: warm-starting from disk beats recomputing.

The robustness counterpart of the cache microbenchmarks: a small library
characterization runs once against an empty on-disk tier (cold -- every
simulation is integrated and written through), then again in a fresh
"process" (all memory caches cleared, disk kept).  The warm run must

* reproduce the cold run's entries bit for bit (disk entries are pickled
  float64 arrays -- the round trip is exact),
* be at least ``REPRO_BENCH_PERSIST_MIN_SPEEDUP`` times faster (default
  3x: it replays transient integrations as disk reads),
* report its reuse through the ledger's ``simulation:disk`` activity row.

Two more contracts ride along: corrupted store entries (one truncated, one
bit-flipped) are quarantined and recomputed -- same results, never a crash
-- and a checkpointed run resumes as a pure journal replay that matches the
original entries exactly.

The record lands in ``BENCH_persist.json``.  Knobs:

``REPRO_BENCH_PERSIST_CELLS``        cells in the synthetic library (6)
``REPRO_BENCH_PERSIST_SEEDS``        Monte Carlo seeds (16)
``REPRO_BENCH_PERSIST_CONDITIONS``   fitting conditions per arc (3)
``REPRO_BENCH_PERSIST_MIN_SPEEDUP`` assertion floor for cold/warm (3.0)
"""

from __future__ import annotations

import dataclasses
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import env_float, env_int, write_json_result  # noqa: E402

import repro.runtime as runtime
from repro import RunLedger, get_technology, make_cell
from repro.analysis import format_cache_stats
from repro.cells.library import StandardCellLibrary
from repro.core.library_flow import characterize_library
from repro.core.prior_learning import characterize_historical_library, learn_prior
from repro.runtime.checkpoint import load_checkpoint

_TEMPLATES = ("INV_X1", "NAND2_X1", "NOR2_X1", "INV_X2")


def synthetic_library(n_cells: int) -> StandardCellLibrary:
    """``n_cells`` renamed template copies (footprint twins at library scale)."""
    cells = []
    for index in range(n_cells):
        base = make_cell(_TEMPLATES[index % len(_TEMPLATES)])
        cells.append(dataclasses.replace(base, name=f"{base.name}_C{index:03d}"))
    return StandardCellLibrary(f"persist_{n_cells}cells", cells)


def _assert_entries_equal(lhs, rhs):
    assert len(lhs.entries) == len(rhs.entries)
    for left, right in zip(lhs.entries, rhs.entries):
        assert (left.cell_name, left.arc.name) == (right.cell_name,
                                                   right.arc.name)
        np.testing.assert_array_equal(left.statistical.delay_parameters,
                                      right.statistical.delay_parameters)
        np.testing.assert_array_equal(left.statistical.slew_parameters,
                                      right.statistical.slew_parameters)


def test_persist_acceptance(results_dir):
    n_cells = env_int("REPRO_BENCH_PERSIST_CELLS", 6)
    n_seeds = env_int("REPRO_BENCH_PERSIST_SEEDS", 16)
    conditions = env_int("REPRO_BENCH_PERSIST_CONDITIONS", 3)
    min_speedup = env_float("REPRO_BENCH_PERSIST_MIN_SPEEDUP", 3.0)

    technology = get_technology("n28_bulk")
    library = synthetic_library(n_cells)
    historical = [characterize_historical_library(
        get_technology("n45_bulk"),
        [make_cell(name) for name in ("INV_X1", "NAND2_X1", "NOR2_X1")])]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")

    def run(**kwargs):
        # clear_all_caches() empties every *memory* tier, so each run sees
        # exactly what a fresh process would: nothing in RAM, whatever the
        # durable tier holds on disk.
        runtime.clear_all_caches()
        ledger = RunLedger()
        start = time.perf_counter()
        result = characterize_library(
            technology, library, delay_prior, slew_prior,
            conditions=conditions, n_seeds=n_seeds, rng=17, ledger=ledger,
            **kwargs)
        return result, ledger, time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro_bench_persist_") as root:
        runtime.configure(disk_cache_dir=str(root))
        try:
            cold, _, cold_seconds = run()
            warm, warm_ledger, warm_seconds = run()

            # --------------------------------------------------------------
            # Warm start: bit-identical, disk-served, and >= the floor.
            # --------------------------------------------------------------
            _assert_entries_equal(warm, cold)
            disk_activity = warm_ledger.cache_activity()["simulation:disk"]
            assert disk_activity["hits"] > 0, \
                "the warm run must be served from the durable tier"
            speedup = cold_seconds / warm_seconds
            assert speedup >= min_speedup, (
                f"warm start {warm_seconds:.3f}s vs cold {cold_seconds:.3f}s "
                f"= {speedup:.2f}x, below the {min_speedup:.1f}x floor")

            sim_stats = runtime.cache_stats()["simulation"]
            store_root = Path(root) / "simulation"

            # --------------------------------------------------------------
            # Corruption: truncate one entry, bit-flip another; the third
            # run quarantines both, recomputes, and still matches exactly.
            # --------------------------------------------------------------
            entries = sorted(store_root.glob("entries/*/*.entry"))
            assert len(entries) >= 2
            entries[0].write_bytes(entries[0].read_bytes()[:20])
            flipped = bytearray(entries[1].read_bytes())
            flipped[-1] ^= 0x01
            entries[1].write_bytes(bytes(flipped))

            repaired, repaired_ledger, repaired_seconds = run()
            _assert_entries_equal(repaired, cold)
            quarantined = runtime.cache_stats()["simulation"].disk_quarantined
            assert quarantined >= 2, \
                "both damaged entries must be quarantined, not fatal"
        finally:
            runtime.configure(disk_cache_dir=None)

        # ------------------------------------------------------------------
        # Checkpoint/resume: a completed journal replays bit-identically.
        # ------------------------------------------------------------------
        checkpoint_dir = str(Path(root) / "checkpoint")
        checkpointed, _, checkpoint_seconds = run(checkpoint_dir=checkpoint_dir)
        _assert_entries_equal(checkpointed, cold)
        resumed, _, replay_seconds = run(checkpoint_dir=checkpoint_dir,
                                         resume=True)
        _assert_entries_equal(resumed, cold)
        assert load_checkpoint(checkpoint_dir).completed

    n_arcs = len(cold.entries)
    print(f"\nPersist acceptance: {n_cells} cells / {n_arcs} arcs x "
          f"{n_seeds} seeds x {conditions} conditions")
    print(f"cold run       : {cold_seconds:.3f} s")
    print(f"warm run       : {warm_seconds:.3f} s ({speedup:.2f}x, "
          f"floor {min_speedup:.1f}x)")
    print(f"corrupted rerun: {repaired_seconds:.3f} s "
          f"({quarantined} entr{'y' if quarantined == 1 else 'ies'} quarantined)")
    print(f"journal replay : {replay_seconds:.3f} s")
    print("\n" + format_cache_stats({"simulation": sim_stats},
                                    title="Warm-run cache tiers"))

    payload = {
        "benchmark": "persist_acceptance",
        "host": platform.node(),
        "n_cells": n_cells,
        "n_seeds": n_seeds,
        "n_conditions": conditions,
        "n_arcs": n_arcs,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(speedup, 2),
        "min_speedup": min_speedup,
        "warm_disk_hits": int(disk_activity["hits"]),
        "disk_entries": int(sim_stats.disk_entries),
        "disk_bytes": int(sim_stats.disk_bytes),
        "corrupted_rerun_seconds": round(repaired_seconds, 4),
        "quarantined_entries": int(quarantined),
        "checkpoint_seconds": round(checkpoint_seconds, 4),
        "replay_seconds": round(replay_seconds, 4),
    }
    write_json_result(results_dir / "BENCH_persist.json", payload)
