"""Fig. 5: the 1000-point random validation workload over the input space.

The paper's baseline characterization samples 1000 operating points uniformly
at random over the whole ``(Sin, Cload, Vdd)`` input space of the target
technology.  This benchmark regenerates that workload for the 14 nm node and
checks that it actually covers the space (range coverage and low discrepancy
per axis), which is what makes the error metrics of Figs. 6-8 meaningful.
"""

from __future__ import annotations

import numpy as np

from repro import InputSpace, get_technology
from repro.analysis import format_table
from bench_utils import write_result

N_POINTS = 1000


def generate_workload():
    technology = get_technology("n14_finfet")
    space = InputSpace(technology)
    conditions = space.sample_random(N_POINTS, rng=42)
    unit = space.normalize(conditions)
    return technology, conditions, unit


def test_fig5_validation_workload(benchmark, results_dir):
    technology, conditions, unit = benchmark.pedantic(generate_workload, rounds=1,
                                                      iterations=1)
    rows = []
    for axis, name, (low, high), scale in zip(
            range(3), ("Sin (ps)", "Cload (fF)", "Vdd (V)"),
            [technology.slew_range, technology.cload_range, technology.vdd_range],
            (1e12, 1e15, 1.0)):
        values = unit[:, axis]
        rows.append([name, low * scale, high * scale, float(values.min()),
                     float(values.max()), float(values.mean()), float(values.std())])
    text = format_table(
        ["axis", "range min", "range max", "unit min", "unit max", "unit mean",
         "unit std"],
        rows,
        title=f"Fig. 5 analogue: {N_POINTS}-point random validation workload "
              f"({technology.name})")
    write_result(results_dir / "fig5_input_space.txt", text)

    assert len(conditions) == N_POINTS
    # Uniform coverage: each normalized axis spans nearly [0, 1] with the
    # moments of a uniform distribution.
    assert np.all(unit.min(axis=0) < 0.02)
    assert np.all(unit.max(axis=0) > 0.98)
    assert np.allclose(unit.mean(axis=0), 0.5, atol=0.05)
    assert np.allclose(unit.std(axis=0), np.sqrt(1.0 / 12.0), atol=0.05)
    # Every condition is inside the physical ranges.
    for condition in conditions[:50]:
        assert technology.slew_range[0] <= condition.sin <= technology.slew_range[1]
        assert technology.vdd_range[0] <= condition.vdd <= technology.vdd_range[1]
