"""Fleet-scale prior-learning benchmark: batched versus loop Gaussian BP.

Cross-node prior learning runs one technology-star belief propagation per
(response x arc class).  A realistic multi-node library fleet stacks
hundreds of such graphs -- ``REPRO_BENCH_PRIORS_CLASSES`` arc classes x 2
responses, each a star over ``REPRO_BENCH_PRIORS_NODES`` historical nodes
-- and this benchmark times the two engines of
:class:`repro.bayes.factor_graph.BatchedFactorGraph` on exactly that
workload:

* ``engine="loop"``: the scalar message loop once per stacked graph (the
  pre-batching cost model -- B Python sweeps of small dense solves);
* ``engine="batched"``: all B graphs advanced together, one batched
  ``np.linalg.solve`` per message update.

Both engines run the identical message schedule, so their beliefs are
compared at ``rtol <= 1e-9`` before any timing is trusted.  A second,
smaller section runs the fused historical-characterization engine on a
footprint-twin cell set and records the planner's dedup/cache accounting,
tying the ``BENCH_priors.json`` record to the same
:class:`~repro.core.simulation_plan.SimulationPlan` the library pipeline
uses.  Results land in ``BENCH_priors.json`` and are folded into
``speedup_summary.txt``.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import env_float, env_int, write_json_result  # noqa: E402

from repro import get_technology, make_cell
from repro.bayes import BatchedFactorGraph, GaussianDensity
from repro.cells.library import Transition
from repro.core.prior_learning import (
    characterize_historical_library,
    shared_reference_conditions,
)
from repro.core.timing_model import N_PARAMETERS
from repro.runtime.accounting import RunLedger
from repro.spice.testbench import get_simulation_cache


def fleet_star(n_nodes: int, n_graphs: int, rng: np.random.Generator
               ) -> BatchedFactorGraph:
    """One stacked technology star per (arc class, response).

    Evidence mimics learned per-class parameter means: small per-node
    scatter around a plausible four-parameter vector, standard-error-of-
    the-mean covariances, and a per-graph technology-drift link.
    """
    anchor = np.array([0.4, 1.4, -0.3, 0.08])
    leaves = {}
    for node in range(n_nodes):
        densities = []
        for _graph in range(n_graphs):
            mean = anchor + rng.normal(scale=0.05, size=N_PARAMETERS)
            root = rng.normal(scale=0.02, size=(N_PARAMETERS, N_PARAMETERS))
            covariance = root @ root.T + 1e-4 * np.eye(N_PARAMETERS)
            densities.append(GaussianDensity(mean, covariance))
        leaves[f"node{node}"] = densities
    drift_root = rng.normal(scale=0.03,
                            size=(n_graphs, N_PARAMETERS, N_PARAMETERS))
    drift = (np.matmul(drift_root, drift_root.swapaxes(1, 2))
             + 1e-4 * np.eye(N_PARAMETERS))
    return BatchedFactorGraph.star("global", leaves, drift)


def test_batched_prior_bp_throughput(results_dir):
    n_nodes = env_int("REPRO_BENCH_PRIORS_NODES", 8)
    n_classes = env_int("REPRO_BENCH_PRIORS_CLASSES", 50)
    min_speedup = env_float("REPRO_BENCH_PRIORS_MIN_SPEEDUP", 3.0)
    n_graphs = 2 * n_classes  # delay + slew per arc class

    rng = np.random.default_rng(77)
    graph = fleet_star(n_nodes, n_graphs, rng)

    # Warm-up both engines outside the timed regions (first-call numpy
    # overheads, BLAS thread spin-up).
    warm = fleet_star(n_nodes, 4, np.random.default_rng(5))
    warm.run_belief_propagation()
    warm.run_belief_propagation(engine="loop")

    start = time.perf_counter()
    loop_beliefs = graph.run_belief_propagation(engine="loop")
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched_beliefs, info = graph.run_belief_propagation(return_info=True)
    batched_seconds = time.perf_counter() - start

    # Equivalence gate: identical message schedule, rtol <= 1e-9.
    for name in graph.variables():
        np.testing.assert_allclose(batched_beliefs[name].mean,
                                   loop_beliefs[name].mean, rtol=1e-9)
        np.testing.assert_allclose(batched_beliefs[name].covariance,
                                   loop_beliefs[name].covariance, rtol=1e-9)
    assert bool(np.all(info.converged))

    # Fused historical characterization on footprint twins: the PR-5
    # simulation planner dedups twin rows and fills the shared cache.
    import dataclasses

    conditions = shared_reference_conditions(8, rng=3)
    base = make_cell("INV_X1")
    twins = [dataclasses.replace(base, name=f"INV_X1_C{index}")
             for index in range(4)]
    technology = get_technology("n28_bulk")

    get_simulation_cache().clear()
    start = time.perf_counter()
    legacy = characterize_historical_library(
        technology, twins, unit_conditions=conditions,
        transitions=(Transition.FALL,), engine="batched")
    legacy_seconds = time.perf_counter() - start

    get_simulation_cache().clear()
    ledger = RunLedger()
    start = time.perf_counter()
    fused = characterize_historical_library(
        technology, twins, unit_conditions=conditions,
        transitions=(Transition.FALL,), engine="fused", ledger=ledger)
    fused_seconds = time.perf_counter() - start
    get_simulation_cache().clear()

    metrics = ledger.metrics()
    assert metrics["priors_rows_deduplicated"] > 0
    assert fused.simulation_runs == legacy.simulation_runs
    for a, b in zip(legacy.arc_fits, fused.arc_fits):
        np.testing.assert_allclose(b.delay_fit.params.as_array(),
                                   a.delay_fit.params.as_array(),
                                   rtol=1e-4, atol=1e-9)

    speedup = loop_seconds / batched_seconds
    payload = {
        "benchmark": "prior_learning_bp",
        "n_nodes": n_nodes,
        "n_arc_classes": n_classes,
        "n_responses": 2,
        "n_stacked_graphs": n_graphs,
        "loop_seconds": round(loop_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(speedup, 2),
        "loop_graphs_per_sec": round(n_graphs / loop_seconds, 1),
        "batched_graphs_per_sec": round(n_graphs / batched_seconds, 1),
        "bp_sweeps_max": int(info.iterations.max()),
        "equivalence_rtol": 1e-9,
        "fused_historical": {
            "n_cells": len(twins),
            "n_conditions": int(conditions.shape[0]),
            "legacy_seconds": round(legacy_seconds, 4),
            "fused_seconds": round(fused_seconds, 4),
            "rows_total": metrics["priors_rows_total"],
            "rows_simulated": metrics["priors_rows_simulated"],
            "rows_deduplicated": metrics["priors_rows_deduplicated"],
            "signature_groups": metrics["priors_signature_groups"],
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    write_json_result(results_dir / "BENCH_priors.json", payload)

    assert speedup >= min_speedup, (
        f"batched prior-learning BP only {speedup:.2f}x faster than the "
        f"scalar loop (floor {min_speedup}x)"
    )
