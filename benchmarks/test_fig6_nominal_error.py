"""Fig. 6: nominal delay error versus training samples at 14 nm.

The paper's Fig. 6 plots the average delay-prediction error of three flows
against the number of training samples on a 14 nm library: the proposed model
with Bayesian inference, the proposed model with plain least squares, and the
look-up table.  Headline numbers: ~4.3 % error with only two fitting points
for the proposed flow, and ~15x fewer simulations than the LUT at matched
accuracy (6x from the compact model, a further 2.5x from the prior).

This benchmark regenerates the three error-versus-samples series (the exact
training sizes of the paper minus the 100-point tail), prints them, and
asserts the qualitative shape: the Bayesian flow is accurate with 1-2 points,
beats plain LSE in the under-determined regime, and the LUT needs an order of
magnitude more points to catch up.
"""

from __future__ import annotations

import numpy as np

from repro import BayesianCharacterizer, get_technology, make_cell
from repro.analysis import compare_curves, format_curve_table, format_speedups
from bench_utils import write_result


def test_fig6_nominal_error_vs_samples(benchmark, nominal_curves_14, priors_14,
                                       results_dir):
    curves = nominal_curves_14
    bayes = curves["bayesian"]
    lse = curves["lse"]
    lut = curves["lut"]

    # Time the step the figure is about: fitting the proposed flow with k=2.
    target = get_technology("n14_finfet")
    cell = make_cell("NOR2_X1")

    def fit_with_two_samples():
        flow = BayesianCharacterizer(target, cell, priors_14["delay"],
                                     priors_14["slew"])
        flow.fit(2, rng=1)
        return flow.result.delay_fit.mean_abs_relative_error

    benchmark.pedantic(fit_with_two_samples, rounds=1, iterations=1)

    comparison = compare_curves(curves, reference_method="bayesian")
    text = format_curve_table(
        curves, title="Fig. 6 analogue: nominal delay error vs training samples "
                      "(14 nm, INV_X1 + NOR2_X1, rise/fall)")
    text += "\n\n" + format_speedups(comparison.speedups,
                                     title="Matched-accuracy speedups (delay):")
    write_result(results_dir / "fig6_nominal_error.txt", text)

    # Paper claim: ~4-5 % error with 2 training samples for the proposed flow.
    assert bayes.error_at(2) < 8.0
    # The Bayesian flow dominates plain LSE in the under-determined regime
    # (fewer samples than model parameters).
    assert bayes.error_at(1) < lse.error_at(1)
    assert np.mean(bayes.mean_error_percent[:3]) < np.mean(lse.mean_error_percent[:3])
    # The LUT with the same tiny budget is far worse.
    assert lut.error_at(2) > 3.0 * bayes.error_at(2)
    # The LUT needs an order of magnitude more simulations to reach the
    # accuracy the proposed flow achieves with two samples (paper: >= 15x).
    lut_runs_needed = lut.runs_to_reach(bayes.error_at(2))
    if lut_runs_needed is None:
        lut_runs_needed = float(lut.simulation_runs[-1]) * 2
    speedup = lut_runs_needed / 2.0
    assert speedup >= 5.0
