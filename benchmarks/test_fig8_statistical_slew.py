"""Fig. 8: statistical output-slew errors versus training samples.

The slew counterpart of Fig. 7: error in the predicted mean and standard
deviation of the output transition time of a 28 nm library versus the number
of training samples, proposed flow against the statistical LUT (the paper
reports 18x / 19x sample reductions; its Fig. 8 compares against the
LSE-fitted compact model as well, which the nominal Fig. 6 benchmark already
covers).  The same experiment-runner curves as Fig. 7 are reused, so the two
benchmarks share one set of simulations.
"""

from __future__ import annotations

import numpy as np

from repro import InputCondition, get_technology, make_cell, reduce_cell
from repro.analysis import format_curve_table
from repro.experiments import compute_speedup
from bench_utils import write_result


def test_fig8_statistical_slew_error(benchmark, statistical_curves_28, results_dir):
    curves = statistical_curves_28
    bayes_mu = curves[("bayesian", "mu_slew")]
    bayes_sigma = curves[("bayesian", "sigma_slew")]
    lut_mu = curves[("lut", "mu_slew")]
    lut_sigma = curves[("lut", "sigma_slew")]

    # Time a representative slew evaluation: one vectorized simulation of the
    # 28 nm inverter across a Monte Carlo seed batch.
    target = get_technology("n28_bulk")
    cell = make_cell("INV_X1")
    variation = target.variation.sample(60, rng=8)

    def simulate_slew_batch():
        from repro.spice import characterize_arc

        measurement = characterize_arc(cell, target, sin=6e-12, cload=2e-15,
                                       vdd=0.85, variation=variation)
        return float(np.mean(measurement.output_slew))

    benchmark.pedantic(simulate_slew_batch, rounds=1, iterations=1)

    text = format_curve_table(
        {"bayesian": bayes_mu, "lut": lut_mu},
        title="Fig. 8 analogue (left): mu(Sout) error vs training samples (28 nm)")
    text += "\n\n" + format_curve_table(
        {"bayesian": bayes_sigma, "lut": lut_sigma},
        title="Fig. 8 analogue (right): sigma(Sout) error vs training samples (28 nm)")
    for label, fast, slow in (("mu(Sout)", bayes_mu, lut_mu),
                              ("sigma(Sout)", bayes_sigma, lut_sigma)):
        summary = compute_speedup(fast, slow)
        if summary is not None:
            text += f"\n{label}: {summary.describe()}"
    write_result(results_dir / "fig8_statistical_slew.txt", text)

    # Mean-slew prediction is accurate with a handful of conditions.
    assert bayes_mu.error_at(3) < 8.0
    # Sigma of the slew converges below 20 % within the evaluated budget.
    assert bayes_sigma.mean_error_percent.min() < 20.0
    # Proposed flow beats the LUT at the smallest budgets for the mean.
    assert bayes_mu.error_at(1) < lut_mu.error_at(1)
    assert bayes_mu.error_at(2) < lut_mu.error_at(2)
