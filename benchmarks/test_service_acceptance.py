"""Serving front-door acceptance run: coalescing beats per-client serial.

The robustness counterpart of the fused-library benchmark, one layer up:
``REPRO_BENCH_SERVICE_CLIENTS`` concurrent clients all want the same small
cell library (fully overlapping requests -- the worst case for naive
serving, the best case for single-flight coalescing).  The naive baseline
characterizes the library once per client, serially, with every cache
cleared in between (what N independent processes would each pay).  The
service run submits all N requests concurrently to one
:class:`~repro.runtime.service.CharacterizationService`, which folds them
into one fused pass.

Contracts asserted:

* coalesced throughput is at least ``REPRO_BENCH_SERVICE_MIN_SPEEDUP``
  times the naive per-client serial baseline (default 3x),
* every client's result is bit-identical to a solo cold run,
* zero deadline misses under nominal load (generous deadlines),
* overload sheds gracefully: with a shrunken queue the excess submits get
  :class:`~repro.runtime.service.ServiceOverloaded` immediately while every
  admitted request still completes.

The record lands in ``BENCH_service.json``.  Knobs:

``REPRO_BENCH_SERVICE_CLIENTS``      concurrent clients (6)
``REPRO_BENCH_SERVICE_SEEDS``        Monte Carlo seeds (8)
``REPRO_BENCH_SERVICE_CONDITIONS``   fitting conditions per arc (2)
``REPRO_BENCH_SERVICE_MIN_SPEEDUP``  assertion floor, coalesced/naive (3.0)
"""

from __future__ import annotations

import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import env_float, env_int, write_json_result  # noqa: E402

from repro import get_technology, make_cell
from repro.cells.library import Transition
from repro.characterization.input_space import InputSpace
from repro.core.library_flow import characterize_fused_jobs
from repro.core.prior_learning import (
    characterize_historical_library,
    learn_prior,
)
from repro.runtime import RunLedger, clear_all_caches
from repro.runtime.executor import get_executor
from repro.runtime.service import CharacterizationService, ServiceOverloaded
from repro.utils.rng import ensure_rng


def _arcs_of(cell):
    return tuple(cell.arc(pin, transition)
                 for pin in cell.input_pins
                 for transition in (Transition.FALL, Transition.RISE))


def test_service_acceptance(results_dir):
    n_clients = env_int("REPRO_BENCH_SERVICE_CLIENTS", 6)
    n_seeds = env_int("REPRO_BENCH_SERVICE_SEEDS", 8)
    n_conditions = env_int("REPRO_BENCH_SERVICE_CONDITIONS", 2)
    min_speedup = env_float("REPRO_BENCH_SERVICE_MIN_SPEEDUP", 3.0)

    technology = get_technology("n28_bulk")
    historical = [characterize_historical_library(
        get_technology("n45_bulk"),
        [make_cell(name) for name in ("INV_X1", "NAND2_X1", "NOR2_X1")])]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")
    variation = technology.variation.sample(n_seeds, ensure_rng(11))
    conditions = tuple(InputSpace(technology).sample_lhs(
        n_conditions, ensure_rng(5)))

    # Every client wants the same two cells -- fully overlapping libraries.
    cells = [make_cell("INV_X1"), make_cell("NAND2_X1")]
    requests = [(cell, _arcs_of(cell)) for cell in cells]
    n_arcs = sum(len(arcs) for _, arcs in requests)

    def serve_one_client():
        """One client's work, served naively: a direct fused pass."""
        results = {}
        for cell, arcs in requests:
            models, failures = characterize_fused_jobs(
                technology, [(cell, arc) for arc in arcs],
                [list(conditions) for _ in arcs], delay_prior, slew_prior,
                variation, "batched", get_executor("serial"),
                RunLedger(), None)
            assert not failures
            results.update({f"{cell.name}:{arc.name}": model
                            for arc, model in zip(arcs, models)})
        return results

    # ----------------------------------------------------------------------
    # Naive baseline: per-client serial, no sharing of any kind.
    # ----------------------------------------------------------------------
    naive_start = time.perf_counter()
    for _ in range(n_clients):
        clear_all_caches()
        reference = serve_one_client()
    naive_seconds = time.perf_counter() - naive_start
    clear_all_caches()

    # ----------------------------------------------------------------------
    # Service run: N concurrent clients against one front door.
    # ----------------------------------------------------------------------
    outcomes = [None] * n_clients
    errors = []

    def client(slot, service, barrier):
        try:
            barrier.wait()
            got = {}
            for cell, arcs in requests:
                result = service.request(cell, arcs, conditions,
                                         deadline_s=120.0)
                assert result.complete, f"client {slot} got a partial result"
                got.update({f"{cell.name}:{name}": model
                            for name, model
                            in result.characterizations.items()})
            outcomes[slot] = got
        except Exception as error:  # pragma: no cover - failure path
            errors.append((slot, error))

    with CharacterizationService(technology, delay_prior, slew_prior,
                                 variation, batch_window_s=0.05) as service:
        barrier = threading.Barrier(n_clients + 1)
        threads = [threading.Thread(target=client,
                                    args=(slot, service, barrier))
                   for slot in range(n_clients)]
        for thread in threads:
            thread.start()
        barrier.wait()
        service_start = time.perf_counter()
        for thread in threads:
            thread.join(timeout=300)
        service_seconds = time.perf_counter() - service_start
        assert not any(thread.is_alive() for thread in threads)
        assert not errors, f"client failures: {errors}"
        stats = service.stats()

    # Bit-identical to the naive runs, no nominal deadline misses, and the
    # overlap was actually coalesced rather than recomputed per client.
    for slot, got in enumerate(outcomes):
        assert got is not None
        assert set(got) == set(reference)
        for unit, model in got.items():
            np.testing.assert_array_equal(model.delay_parameters,
                                          reference[unit].delay_parameters)
            np.testing.assert_array_equal(model.slew_parameters,
                                          reference[unit].slew_parameters)
    assert stats.deadline_misses == 0
    assert stats.shed == 0
    assert stats.coalesced_arcs > 0

    speedup = naive_seconds / service_seconds
    assert speedup >= min_speedup, (
        f"coalesced serving {service_seconds:.3f}s vs naive per-client "
        f"serial {naive_seconds:.3f}s = {speedup:.2f}x, below the "
        f"{min_speedup:.1f}x floor")

    # ----------------------------------------------------------------------
    # Overload: a shrunken queue sheds the excess, serves the admitted.
    # ----------------------------------------------------------------------
    clear_all_caches()
    shed_service = CharacterizationService(
        technology, delay_prior, slew_prior, variation,
        queue_depth=2, batch_window_s=0.02, shed_policy="reject",
        start=False)
    admitted, shed = [], 0
    for _ in range(n_clients):
        try:
            admitted.append(shed_service.submit(
                requests[0][0], requests[0][1], conditions))
        except ServiceOverloaded:
            shed += 1
    shed_service.start()
    shed_results = [ticket.result(timeout=300) for ticket in admitted]
    shed_service.close()
    assert shed == max(0, n_clients - 2)
    assert all(result.complete for result in shed_results)
    assert shed_service.stats().shed == shed

    print(f"\nService acceptance: {n_clients} clients x {n_arcs} arcs x "
          f"{n_seeds} seeds x {n_conditions} conditions")
    print(f"naive per-client serial: {naive_seconds:.3f} s")
    print(f"coalesced service      : {service_seconds:.3f} s "
          f"({speedup:.2f}x, floor {min_speedup:.1f}x)")
    print(f"batches {stats.batches}, coalesced arcs {stats.coalesced_arcs}, "
          f"deadline misses {stats.deadline_misses}, "
          f"overload shed {shed}/{n_clients}")

    payload = {
        "benchmark": "service_acceptance",
        "host": platform.node(),
        "n_clients": n_clients,
        "n_seeds": n_seeds,
        "n_conditions": n_conditions,
        "n_arcs": n_arcs,
        "naive_seconds": round(naive_seconds, 4),
        "service_seconds": round(service_seconds, 4),
        "coalescing_speedup": round(speedup, 2),
        "min_speedup": min_speedup,
        "batches": int(stats.batches),
        "coalesced_arcs": int(stats.coalesced_arcs),
        "deadline_misses": int(stats.deadline_misses),
        "queue_peak": int(stats.queue_peak),
        "overload_shed": int(shed),
        "overload_served": len(shed_results),
    }
    write_json_result(results_dir / "BENCH_service.json", payload)
