"""Table I: extracted compact-model parameters across cells and technologies.

The paper's Table I lists ``{kd, Cpar, V', alpha}`` extracted from INV, NAND2
and NOR2 cells in three technologies, with fitting errors of 0.9-2.1 %, and
observes that the parameters are strongly similar across cells and nodes.
This benchmark regenerates that table from the synthetic PDKs and asserts the
two properties the paper relies on: small per-cell fitting error and small
cross-technology parameter spread.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from bench_utils import write_result


def build_table(historical_14, historical_28):
    rows = []
    kd_values = []
    fit_errors = []
    for data in (*historical_14, *historical_28):
        for fit in data.arc_fits:
            if not fit.arc_name.endswith("(fall)"):
                continue
            params = fit.delay_fit.params
            error = 100.0 * fit.delay_fit.mean_abs_relative_error
            rows.append([data.technology_name, fit.cell_name, params.kd,
                         params.cpar_ff, params.vprime_v, params.alpha_ff_per_ps,
                         error])
            kd_values.append(params.kd)
            fit_errors.append(error)
    return rows, np.array(kd_values), np.array(fit_errors)


def test_table1_parameter_extraction(benchmark, historical_14, historical_28,
                                     table_cells, results_dir):
    rows, kd_values, fit_errors = benchmark.pedantic(
        build_table, args=(historical_14, historical_28), rounds=1, iterations=1)

    text = format_table(
        ["technology", "cell", "kd", "Cpar (fF)", "V' (V)", "alpha (fF/ps)",
         "fit error (%)"],
        rows,
        title="Table I analogue: extracted delay-model parameters",
    )
    write_result(results_dir / "table1_parameters.txt", text)

    # Paper: fitting errors around 1-2 %; allow some slack for synthetic PDKs.
    assert np.all(fit_errors < 5.0)
    assert fit_errors.mean() < 3.0
    # Paper: kd spans roughly 0.36-0.42 across cells/technologies -- i.e. the
    # parameters transfer.  Assert a comparably tight relative spread.
    assert kd_values.std() / kd_values.mean() < 0.25
