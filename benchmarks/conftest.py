"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
expensive, shared ingredients -- historical-library characterization, the
learned priors, the experiment runners and their error-versus-samples curves
-- are computed once per session here; each benchmark then times a
representative step of its flow with ``pytest-benchmark`` and writes the
regenerated table/series to ``benchmark_results/``.

Environment knobs (all optional) scale the experiments up toward paper-scale
settings:

``REPRO_BENCH_SEEDS``        Monte Carlo seeds for statistical runs (default 120)
``REPRO_BENCH_VALIDATION``   validation points for error evaluation (default 50)
``REPRO_BENCH_STAT_VALIDATION``  validation points for statistical runs (default 24)
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import (  # noqa: E402  (path setup must precede the import)
    NOMINAL_TRAINING_SIZES,
    RESULTS_DIR,
    STATISTICAL_TRAINING_SIZES,
    env_int,
)

from repro import SimulationCounter, get_technology, make_cell
from repro.core.prior_learning import (
    characterize_historical_library,
    learn_prior,
    shared_reference_conditions,
)
from repro.experiments import ExperimentRunner


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where regenerated tables and series are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_counter() -> SimulationCounter:
    """Global simulation-run accounting across all benchmarks."""
    return SimulationCounter()


@pytest.fixture(scope="session")
def table_cells():
    """The Table I cell set."""
    return [make_cell(name) for name in ("INV_X1", "NAND2_X1", "NOR2_X1")]


@pytest.fixture(scope="session")
def historical_14(table_cells, bench_counter):
    """Historical libraries used to learn priors for the 14 nm target."""
    unit = shared_reference_conditions(20, rng=11)
    nodes = ["n16_finfet_soi", "n28_bulk", "n45_bulk"]
    return [characterize_historical_library(get_technology(name), table_cells,
                                            unit_conditions=unit,
                                            counter=bench_counter)
            for name in nodes]


@pytest.fixture(scope="session")
def historical_28(table_cells, bench_counter):
    """Historical libraries used to learn priors for the 28 nm target."""
    unit = shared_reference_conditions(20, rng=13)
    nodes = ["n14_finfet", "n32_soi", "n45_bulk"]
    return [characterize_historical_library(get_technology(name), table_cells,
                                            unit_conditions=unit,
                                            counter=bench_counter)
            for name in nodes]


@pytest.fixture(scope="session")
def priors_14(historical_14):
    """Delay and slew priors for the 14 nm target."""
    return {
        "delay": learn_prior(historical_14, response="delay"),
        "slew": learn_prior(historical_14, response="slew"),
    }


@pytest.fixture(scope="session")
def priors_28(historical_28):
    """Delay and slew priors for the 28 nm target."""
    return {
        "delay": learn_prior(historical_28, response="delay"),
        "slew": learn_prior(historical_28, response="slew"),
    }


@pytest.fixture(scope="session")
def runner_14(historical_14, bench_counter):
    """Experiment runner for the nominal 14 nm experiment (Fig. 6)."""
    return ExperimentRunner(
        technology=get_technology("n14_finfet"),
        cells=[make_cell("INV_X1"), make_cell("NOR2_X1")],
        historical=historical_14,
        n_validation=env_int("REPRO_BENCH_VALIDATION", 50),
        rng=5,
        counter=bench_counter,
    )


@pytest.fixture(scope="session")
def nominal_curves_14(runner_14):
    """Fig. 6 curves: delay error versus training samples at 14 nm."""
    return runner_14.nominal_curves(NOMINAL_TRAINING_SIZES,
                                    methods=("bayesian", "lse", "lut"))


@pytest.fixture(scope="session")
def runner_28(historical_28, bench_counter):
    """Experiment runner for the statistical 28 nm experiments (Figs. 7-8)."""
    return ExperimentRunner(
        technology=get_technology("n28_bulk"),
        cells=[make_cell("INV_X1"), make_cell("NOR2_X1")],
        transitions=("fall",),
        historical=historical_28,
        n_validation=env_int("REPRO_BENCH_STAT_VALIDATION", 24),
        rng=9,
        counter=bench_counter,
    )


@pytest.fixture(scope="session")
def statistical_curves_28(runner_28):
    """Figs. 7-8 curves: statistical errors versus training samples at 28 nm."""
    return runner_28.statistical_curves(
        STATISTICAL_TRAINING_SIZES,
        n_seeds=env_int("REPRO_BENCH_SEEDS", 120),
        methods=("bayesian", "lut"),
    )
