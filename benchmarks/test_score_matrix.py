"""Accuracy-versus-budget score matrix artifact (LUT/LSE/MC/MAP x engines).

Runs :func:`repro.experiments.score_matrix` -- every characterization
method under the fixed-step RK4 engine and the adaptive RK45 engine at two
tolerance settings, each scored against one engine-independent refined
reference -- and writes both a machine-readable ``BENCH_score_matrix.json``
and a human-readable ``score_matrix.txt``.  The assertion is the paper's
guardrail: switching integration engines must not cost accuracy, for any
method, at any simulation budget.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import env_int, write_json_result, write_result  # noqa: E402

from repro.experiments import SCORE_METHODS, score_matrix


def test_score_matrix(results_dir):
    n_validation = env_int("REPRO_BENCH_SCORE_VALIDATION", 10)
    # Budgets start at the compact model's parameter count: below it the
    # LSE fit is underdetermined and its error measures fit sensitivity,
    # not the integrator (see repro.experiments.score_matrix).
    matrix = score_matrix(n_validation=n_validation, training_sizes=(4, 8))

    write_result(results_dir / "score_matrix.txt", matrix.table())
    payload = matrix.as_dict()
    payload["benchmark"] = "score_matrix"
    payload["accuracy_loss_pp"] = {
        method: round(matrix.accuracy_loss(method), 6)
        for method in SCORE_METHODS}
    write_json_result(results_dir / "BENCH_score_matrix.json", payload)

    # "No accuracy loss": every adaptive configuration must be within a
    # hair (0.1 percentage point, against mean errors of 1-50%) of the
    # fixed-step engine for every method and budget.  In practice the
    # adaptive engine is *more* accurate (the fixed grid carries its own
    # discretization error) and the loss is negative.
    for method in SCORE_METHODS:
        loss = matrix.accuracy_loss(method)
        assert loss <= 0.1, (
            f"method {method!r} loses {loss:.3f} percentage points of "
            f"accuracy under an adaptive engine configuration")
