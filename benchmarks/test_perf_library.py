"""Library-scale throughput benchmark: fused versus per-arc pipeline.

The fused pipeline of :func:`repro.core.library_flow.characterize_library`
is the last big per-Python-loop consolidation of the flow: instead of one
RK4 pass and two MAP solves *per arc*, the whole library runs a handful of
signature-grouped mega-batched RK4 passes and exactly two stacked MAP
solves.  This benchmark measures that consolidation on a realistic workload:

* a synthetic library of ``REPRO_BENCH_LIB_CELLS`` cells (cycling over
  catalog templates and renamed per index, the footprint-twin shape of real
  libraries) x 2 output transitions per cell;
* ``REPRO_BENCH_LIB_SEEDS`` Monte Carlo seeds and one shared grid of
  ``REPRO_BENCH_LIB_CONDITIONS`` fitting conditions (the standard NLDM
  setup: every arc is characterized on the same slew/load/supply points,
  which is exactly where the fused planner's physical-row dedup pays off --
  footprint twins on a shared grid are the same simulation);
* both pipelines run on a cold simulation cache (so both genuinely
  simulate), equivalence asserted at ``rtol <= 1e-9`` together with
  identical simulation accounting.

The wall-clock ratio must clear ``REPRO_BENCH_LIB_MIN_SPEEDUP`` and the
record lands in ``BENCH_library.json`` (full-size numbers on dedicated
hardware; CI runs this shrunken with a conservative floor).
"""

from __future__ import annotations

import dataclasses
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import env_float, env_int, write_json_result  # noqa: E402

import repro.runtime as runtime
from repro import RunLedger, SimulationCounter, get_technology, make_cell
from repro.analysis import format_ledger
from repro.cells.library import StandardCellLibrary
from repro.characterization.input_space import InputSpace
from repro.core.library_flow import characterize_library
from repro.core.prior_learning import (
    characterize_historical_library,
    learn_prior,
)
from repro.spice.testbench import get_simulation_cache

#: Catalog templates the synthetic library cycles over; drive-strength
#: variants keep several distinct device signatures in the mix.
_TEMPLATES = ("INV_X1", "NAND2_X1", "NOR2_X1", "INV_X2", "NAND2_X2",
              "NOR2_X2")


def synthetic_library(n_cells: int) -> StandardCellLibrary:
    """``n_cells`` renamed template copies (footprint twins at library scale)."""
    cells = []
    for index in range(n_cells):
        base = make_cell(_TEMPLATES[index % len(_TEMPLATES)])
        cells.append(dataclasses.replace(base, name=f"{base.name}_C{index:03d}"))
    return StandardCellLibrary(f"bench_{n_cells}cells", cells)


def test_fused_library_throughput(results_dir):
    n_cells = env_int("REPRO_BENCH_LIB_CELLS", 20)
    n_seeds = env_int("REPRO_BENCH_LIB_SEEDS", 200)
    conditions = env_int("REPRO_BENCH_LIB_CONDITIONS", 4)
    # Regression tripwire; dedicated-hardware numbers are recorded in
    # BENCH_library.json and are substantially higher.
    min_speedup = env_float("REPRO_BENCH_LIB_MIN_SPEEDUP", 3.0)

    technology = get_technology("n28_bulk")
    library = synthetic_library(n_cells)
    historical = [characterize_historical_library(
        get_technology("n45_bulk"),
        [make_cell(name) for name in ("INV_X1", "NAND2_X1", "NOR2_X1")])]
    delay_prior = learn_prior(historical, response="delay")
    slew_prior = learn_prior(historical, response="slew")
    get_simulation_cache()  # instantiate so clear_all_caches covers it
    # One shared fitting grid for the whole library (the NLDM convention).
    condition_grid = InputSpace(technology).sample_lhs(
        conditions, np.random.default_rng(23))

    def run(pipeline: str):
        # Every registered cache (simulation, reduction, ieff, ...) starts
        # cold for both pipelines, so neither inherits state the other paid
        # to build.
        runtime.clear_all_caches()
        counter = SimulationCounter()
        ledger = RunLedger()
        start = time.perf_counter()
        result = characterize_library(
            technology, library, delay_prior, slew_prior,
            conditions=condition_grid, n_seeds=n_seeds, rng=17,
            counter=counter, ledger=ledger, pipeline=pipeline)
        return result, counter, ledger, time.perf_counter() - start

    per_arc, per_arc_counter, _, per_arc_seconds = run("per_arc")
    fused, fused_counter, fused_ledger, fused_seconds = run("fused")

    # ------------------------------------------------------------------
    # Equivalence and identical accounting.
    # ------------------------------------------------------------------
    assert len(fused.entries) == len(per_arc.entries)
    for a, b in zip(per_arc.entries, fused.entries):
        assert a.arc.name == b.arc.name
        np.testing.assert_allclose(b.statistical.delay_parameters,
                                   a.statistical.delay_parameters, rtol=1e-9)
        np.testing.assert_allclose(b.statistical.slew_parameters,
                                   a.statistical.slew_parameters, rtol=1e-9)
    assert fused.simulation_runs == per_arc.simulation_runs
    assert fused_counter.total == per_arc_counter.total
    assert fused_counter.by_label() == per_arc_counter.by_label()

    speedup = per_arc_seconds / max(fused_seconds, 1e-12)
    n_arcs = len(fused.entries)
    metrics = fused_ledger.metrics()
    group_sizes = fused_ledger.group_sizes().get("fused:signature_rows", [])

    print(f"\nLibrary: {n_cells} cells / {n_arcs} arcs x {n_seeds} seeds x "
          f"{conditions} conditions")
    print(f"per-arc pipeline: {per_arc_seconds:.3f} s")
    print(f"fused pipeline  : {fused_seconds:.3f} s  ({speedup:.1f}x, "
          f"{metrics.get('fused_signature_groups', 0)} signature groups)")
    print("\n" + format_ledger(fused_ledger, title="Fused run ledger"))

    payload = {
        "benchmark": "library_fused_pipeline",
        "n_cells": n_cells,
        "n_arcs": n_arcs,
        "n_seeds": n_seeds,
        "n_conditions": conditions,
        "per_arc_seconds": round(per_arc_seconds, 4),
        "fused_seconds": round(fused_seconds, 4),
        "speedup": round(speedup, 3),
        "signature_groups": int(metrics.get("fused_signature_groups", 0)),
        "group_rows_max": int(max(group_sizes)) if group_sizes else 0,
        "simulated_rows": int(metrics.get("fused_rows_simulated", 0)),
        "deduplicated_rows": int(metrics.get("fused_rows_deduplicated", 0)),
        "simulation_runs": int(fused.simulation_runs),
        "stage_seconds": {
            name: round(entry["wall_s"], 4)
            for name, entry in fused_ledger.stages().items()
            if name.startswith("fused:")
        },
        "equivalence_rtol": 1e-9,
        "min_speedup_asserted": min_speedup,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    write_json_result(results_dir / "BENCH_library.json", payload)

    assert speedup >= min_speedup, (
        f"fused pipeline speedup {speedup:.2f}x below the "
        f"{min_speedup:.1f}x floor")
