"""Fig. 9: the low-Vdd delay probability density.

The paper's Fig. 9 compares, at ``Vdd = 0.734 V, Sin = 5.09 ps,
Cload = 1.67 fF``, the delay PDF predicted by the proposed method (from only
7 fitting combinations) and by an interpolated statistical look-up table
(60 fitting combinations) against a Monte Carlo SPICE baseline.  The key
observation is that the baseline distribution is non-Gaussian at low supply
voltage and the per-seed proposed flow reproduces that shape while the
mean/sigma LUT (which is Gaussian by construction) cannot.

This benchmark regenerates the three distributions, prints their moments and
a text histogram, and asserts the shape claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    InputCondition,
    SimulationCounter,
    StatisticalCharacterizer,
    StatisticalLutCharacterizer,
    get_technology,
    make_cell,
    statistical_baseline,
)
from repro.analysis import empirical_pdf, format_table, normality_deviation, summarize
from bench_utils import env_int, write_result

#: The paper's Fig. 9 operating point.
OPERATING_POINT = InputCondition(sin=5.09e-12, cload=1.67e-15, vdd=0.734)
PROPOSED_CONDITIONS = 7
LUT_CONDITIONS = 60


def run_fig9(priors, n_seeds):
    target = get_technology("n28_bulk")
    cell = make_cell("INV_X1")
    counter = SimulationCounter()
    variation = target.variation.sample(n_seeds, rng=77)

    baseline = statistical_baseline(cell, target, [OPERATING_POINT], variation,
                                    counter=counter)
    baseline_samples = baseline.delay_samples[0]

    flow = StatisticalCharacterizer(target, cell, priors["delay"], priors["slew"],
                                    n_seeds=n_seeds, counter=counter)
    flow.use_variation(variation)
    characterization = flow.characterize(PROPOSED_CONDITIONS, rng=78)
    proposed_samples = characterization.delay_samples(OPERATING_POINT)

    lut = StatisticalLutCharacterizer(target, cell, variation, counter=counter)
    lut.build(LUT_CONDITIONS)
    lut_samples = lut.delay_distribution(OPERATING_POINT, n_samples=n_seeds, rng=1)

    return {
        "baseline": baseline_samples,
        "proposed": proposed_samples,
        "lut": lut_samples,
        "proposed_runs": characterization.simulation_runs,
        "lut_runs": lut.simulation_runs,
        "total_runs": counter.total,
    }


def test_fig9_low_vdd_delay_distribution(benchmark, priors_28, results_dir):
    n_seeds = env_int("REPRO_BENCH_SEEDS", 120)
    results = benchmark.pedantic(run_fig9, args=(priors_28, n_seeds), rounds=1,
                                 iterations=1)
    baseline = results["baseline"]
    proposed = results["proposed"]
    lut = results["lut"]

    rows = []
    for label, samples in (("MC baseline", baseline), ("proposed (7 cond.)", proposed),
                           ("statistical LUT (60 cond.)", lut)):
        stats = summarize(samples)
        rows.append([label, stats.mean * 1e12, stats.std * 1e12, stats.skewness,
                     stats.quantiles[2] * 1e12])
    text = format_table(
        ["flow", "mean (ps)", "sigma (ps)", "skewness", "99% quantile (ps)"],
        rows,
        title=f"Fig. 9 analogue: delay distribution at {OPERATING_POINT.describe()} "
              f"({n_seeds} seeds; proposed {results['proposed_runs']} runs vs "
              f"LUT {results['lut_runs']} runs)")

    centers, density = empirical_pdf(baseline, n_bins=15)
    peak = density.max()
    histogram_lines = ["", "baseline delay PDF:"]
    for center, value in zip(centers, density):
        bar = "#" * int(round(40 * value / peak))
        histogram_lines.append(f"  {center * 1e12:6.2f} ps | {bar}")
    write_result(results_dir / "fig9_delay_pdf.txt", text + "\n".join(histogram_lines))

    baseline_stats = summarize(baseline)
    proposed_stats = summarize(proposed)
    lut_stats = summarize(lut)

    # The proposed flow reproduces the baseline mean and sigma closely while
    # using almost an order of magnitude fewer simulations than the LUT.
    assert proposed_stats.mean == pytest.approx(baseline_stats.mean, rel=0.05)
    assert proposed_stats.std == pytest.approx(baseline_stats.std, rel=0.35)
    assert results["lut_runs"] >= 7 * results["proposed_runs"] / PROPOSED_CONDITIONS

    # Shape claim: the baseline is right-skewed at low Vdd, the proposed flow
    # captures a comparable skew, and it tracks the baseline's departure from
    # Gaussianity better than the Gaussian LUT distribution does.
    assert baseline_stats.skewness > 0.05
    assert proposed_stats.skewness > 0.0
    assert abs(proposed_stats.skewness - baseline_stats.skewness) < \
        abs(lut_stats.skewness - baseline_stats.skewness) + 0.15
