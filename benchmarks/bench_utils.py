"""Helpers shared by the benchmark harness (kept out of conftest so that
benchmark modules can import them explicitly without relying on pytest's
conftest injection)."""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Training sizes evaluated for the error-versus-samples figures.
NOMINAL_TRAINING_SIZES = (1, 2, 3, 5, 10, 20, 50)
STATISTICAL_TRAINING_SIZES = (1, 2, 3, 5, 10, 20)

#: Directory where regenerated tables and series are written.
RESULTS_DIR = Path(__file__).parent / "benchmark_results"

#: Environment knobs understood by the benchmark harness (all optional):
#:
#: ``REPRO_BENCH_SEEDS``            Monte Carlo seeds for statistical runs (120)
#: ``REPRO_BENCH_VALIDATION``       validation points for error evaluation (50)
#: ``REPRO_BENCH_STAT_VALIDATION``  validation points for statistical runs (24)
#: ``REPRO_BENCH_PERF_CONDITIONS``  conditions in the transient perf sweep (50)
#: ``REPRO_BENCH_PERF_SEEDS``       seeds in the transient perf sweep (200)
#: ``REPRO_BENCH_PERF_MIN_SPEEDUP`` assertion floor for batched/serial (2.0)
#: ``REPRO_BENCH_PERF_REPEATS``     best-of-N timing passes per engine (3)
#: ``REPRO_BENCH_INTEG_CONDITIONS`` conditions in the integrator benchmark (50)
#: ``REPRO_BENCH_INTEG_SEEDS``      seeds in the integrator benchmark (200)
#: ``REPRO_BENCH_INTEG_REPEATS``    best-of-N timing passes per engine (3)
#: ``REPRO_BENCH_INTEG_MIN_RHS_RATIO``  assertion floor for RK4/RK45 RHS evals (3.0)
#: ``REPRO_BENCH_INTEG_MIN_SPEEDUP``    assertion floor for RK4/RK45 wall clock (2.0)
#: ``REPRO_BENCH_INTEG_ACC_CONDITIONS`` conditions in the accuracy subset (8)
#: ``REPRO_BENCH_INTEG_ACC_SEEDS``      seeds in the accuracy subset (25)
#: ``REPRO_BENCH_MAP_SEEDS``        seeds in the MAP extraction benchmark (200)
#: ``REPRO_BENCH_MAP_CONDITIONS``   fitting conditions per seed (4)
#: ``REPRO_BENCH_MAP_MIN_SPEEDUP``  assertion floor for batched/scipy MAP (3.0)
#: ``REPRO_BENCH_SSTA_WIDTH``       gates per layer in the SSTA benchmark (100)
#: ``REPRO_BENCH_SSTA_DEPTH``       layers in the SSTA benchmark netlist (50)
#: ``REPRO_BENCH_SSTA_SEEDS``       seeds in the SSTA graph benchmark (200)
#: ``REPRO_BENCH_SSTA_MIN_SPEEDUP`` assertion floor for batched/loop SSTA (5.0)
#: ``REPRO_BENCH_LIB_CELLS``        cells in the fused-library benchmark (20)
#: ``REPRO_BENCH_LIB_SEEDS``        seeds in the fused-library benchmark (200)
#: ``REPRO_BENCH_LIB_CONDITIONS``   shared fitting conditions per arc (4)
#: ``REPRO_BENCH_LIB_MIN_SPEEDUP``  assertion floor for fused/per-arc (3.0)
#: ``REPRO_BENCH_RUNTIME_WIDTH``    gates per layer in the budgeted SSTA run (100)
#: ``REPRO_BENCH_RUNTIME_DEPTH``    layers in the budgeted SSTA netlist (50)
#: ``REPRO_BENCH_RUNTIME_SSTA_SEEDS``  seeds in the budgeted SSTA run (1000)
#: ``REPRO_BENCH_RUNTIME_LIB_SEEDS``   seeds in the budgeted library run (200)
#: ``REPRO_BENCH_RUNTIME_BUDGET_MB``   explicit max_bytes chunk budget (8.0)
#: ``REPRO_BENCH_FAULT_CELLS``       cells in the fault-acceptance library (4)
#: ``REPRO_BENCH_FAULT_SEEDS``       seeds in the fault-acceptance run (8)
#: ``REPRO_BENCH_FAULT_CONDITIONS``  fitting conditions per arc (3)
#: ``REPRO_BENCH_PERSIST_CELLS``       cells in the durable-store library (6)
#: ``REPRO_BENCH_PERSIST_SEEDS``       seeds in the durable-store run (16)
#: ``REPRO_BENCH_PERSIST_CONDITIONS``  fitting conditions per arc (3)
#: ``REPRO_BENCH_PERSIST_MIN_SPEEDUP`` assertion floor for cold/warm (3.0)
#: ``REPRO_BENCH_SERVICE_CLIENTS``     concurrent serving clients (6)
#: ``REPRO_BENCH_SERVICE_SEEDS``       seeds in the serving acceptance run (8)
#: ``REPRO_BENCH_SERVICE_CONDITIONS``  fitting conditions per arc (2)
#: ``REPRO_BENCH_SERVICE_MIN_SPEEDUP`` assertion floor, coalesced/naive (3.0)
#: ``REPRO_BENCH_PRIORS_NODES``      historical nodes per technology star (8)
#: ``REPRO_BENCH_PRIORS_CLASSES``    arc classes in the prior-learning fleet (50)
#: ``REPRO_BENCH_PRIORS_MIN_SPEEDUP`` assertion floor for batched/loop BP (3.0)
#:
#: Separately, ``REPRO_SIM_CACHE`` / ``REPRO_SIM_CACHE_SIZE`` /
#: ``REPRO_SIM_CACHE_BYTES`` control the library's global simulation cache
#: (see ``repro.spice.testbench``), and ``REPRO_DISK_CACHE`` /
#: ``REPRO_DISK_CACHE_BYTES`` enable its durable on-disk tier
#: (see ``repro.runtime.persist``).


def env_int(name: str, default: int) -> int:
    """Read an integer configuration value from the environment."""
    return int(os.environ.get(name, default))


def env_float(name: str, default: float) -> float:
    """Read a float configuration value from the environment."""
    return float(os.environ.get(name, default))


def write_result(path: Path, text: str) -> None:
    """Write a regenerated table to disk and echo it to stdout."""
    path.parent.mkdir(exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")
    print("\n" + text)


def write_json_result(path: Path, payload: dict) -> None:
    """Write a machine-readable benchmark record and echo it to stdout."""
    path.parent.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True)
    path.write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
