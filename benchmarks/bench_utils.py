"""Helpers shared by the benchmark harness (kept out of conftest so that
benchmark modules can import them explicitly without relying on pytest's
conftest injection)."""

from __future__ import annotations

import os
from pathlib import Path

#: Training sizes evaluated for the error-versus-samples figures.
NOMINAL_TRAINING_SIZES = (1, 2, 3, 5, 10, 20, 50)
STATISTICAL_TRAINING_SIZES = (1, 2, 3, 5, 10, 20)

#: Directory where regenerated tables and series are written.
RESULTS_DIR = Path(__file__).parent / "benchmark_results"


def env_int(name: str, default: int) -> int:
    """Read an integer configuration value from the environment."""
    return int(os.environ.get(name, default))


def write_result(path: Path, text: str) -> None:
    """Write a regenerated table to disk and echo it to stdout."""
    path.parent.mkdir(exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
