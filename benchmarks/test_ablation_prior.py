"""Ablation: what the prior, the precision weighting, and Ieff each contribute.

The paper attributes its 15x speedup to two pieces (the compact model: ~6x;
the Bayesian prior: a further ~2.5x) and discusses the bias/variance
trade-off in selecting historical libraries.  DESIGN.md additionally calls
out the effective-current normalization as a modelling choice worth
ablating.  This benchmark quantifies all three on the 14 nm target:

* MAP with the cross-technology prior versus plain least squares at k = 1-3;
* a prior learned from matching (HP) nodes versus one widened by a
  mismatched low-power node;
* the compact model normalized by ``Ieff`` versus by the saturation current
  ``Idsat`` (the historical ``Cload*Vdd/Idsat`` metric).
"""

from __future__ import annotations

import numpy as np

from repro import (
    BayesianCharacterizer,
    InputSpace,
    LseCharacterizer,
    get_technology,
    make_cell,
    mean_relative_error,
    nominal_baseline,
)
from repro.analysis import format_table
from repro.core.prior_learning import learn_prior
from repro.core.timing_model import fit_least_squares
from repro.devices import effective_current, on_current
from repro.cells.equivalent_inverter import reduce_cell
from bench_utils import write_result


def run_ablation(historical_14):
    target = get_technology("n14_finfet")
    cell = make_cell("NOR2_X1")
    space = InputSpace(target)
    validation = space.sample_random(40, rng=3)
    baseline = nominal_baseline(cell, target, validation)

    delay_prior = learn_prior(historical_14, response="delay")
    slew_prior = learn_prior(historical_14, response="slew")
    wide_delay_prior = learn_prior(historical_14, response="delay",
                                   prior_widening=16.0)

    rows = []
    errors = {}
    for k in (1, 2, 3):
        flow = BayesianCharacterizer(target, cell, delay_prior, slew_prior)
        flow.fit(k, rng=31)
        bayes_error = 100.0 * mean_relative_error(flow.predict_delay(validation),
                                                  baseline.delay)

        wide = BayesianCharacterizer(target, cell, wide_delay_prior, slew_prior)
        wide.fit(k, rng=31)
        wide_error = 100.0 * mean_relative_error(wide.predict_delay(validation),
                                                 baseline.delay)

        lse = LseCharacterizer(target, cell)
        lse.fit(k, rng=31)
        lse_error = 100.0 * mean_relative_error(lse.predict_delay(validation),
                                                baseline.delay)
        rows.append([k, bayes_error, wide_error, lse_error])
        errors[k] = (bayes_error, wide_error, lse_error)

    # Ieff versus Idsat normalization, fitted on the same 12 conditions.
    conditions = space.sample_lhs(12, rng=5)
    fit_points = nominal_baseline(cell, target, conditions)
    inverter = reduce_cell(cell, target)
    sin = np.array([c.sin for c in conditions])
    cload = np.array([c.cload for c in conditions])
    vdd = np.array([c.vdd for c in conditions])
    ieff = np.array([float(effective_current(inverter.driving_device, v))
                     for v in vdd])
    idsat = np.array([float(on_current(inverter.driving_device, v)) for v in vdd])
    ieff_error = 100.0 * fit_least_squares(sin, cload, vdd, ieff,
                                           fit_points.delay).mean_abs_relative_error
    idsat_error = 100.0 * fit_least_squares(sin, cload, vdd, idsat,
                                            fit_points.delay).mean_abs_relative_error
    return rows, errors, (ieff_error, idsat_error)


def test_ablation_prior_and_normalization(benchmark, historical_14, results_dir):
    rows, errors, (ieff_error, idsat_error) = benchmark.pedantic(
        run_ablation, args=(historical_14,), rounds=1, iterations=1)

    text = format_table(
        ["k", "MAP + matched prior (%)", "MAP + widened prior (%)", "LSE only (%)"],
        rows,
        title="Ablation: contribution of the cross-technology prior (14 nm NOR2 delay)")
    text += ("\n\nIeff vs Idsat normalization (12-condition fit): "
             f"Ieff {ieff_error:.2f}% vs Idsat {idsat_error:.2f}% mean error")
    write_result(results_dir / "ablation_prior.txt", text)

    # With a single observation the matched prior must dominate both the
    # widened prior and the prior-free LSE extraction.
    bayes_1, wide_1, lse_1 = errors[1]
    assert bayes_1 < lse_1
    assert bayes_1 <= wide_1 + 1.0
    # The matched prior keeps the flow accurate for every tiny budget.
    assert all(errors[k][0] < 10.0 for k in errors)
    # Ieff normalization fits the delay data at least as well as Idsat.
    assert ieff_error <= idsat_error + 0.5
