"""Section V headline: simulation-run speedups at matched accuracy.

The paper summarizes its evaluation as ">= 15x fewer simulation runs than the
LUT flow for the same accuracy" (6x from the compact timing model, 2.5x more
from the Bayesian prior), with 17-20x reductions for the statistical metrics,
and an asymptotic cost of ``O(k * Nsample)`` versus ``O(N_LUT * Nsample)``.

This benchmark assembles the speedup summary from the Fig. 6 and Fig. 7/8
curves (shared fixtures -- no additional simulation) and asserts the ordering
and rough magnitudes.  It also folds every machine-readable ``BENCH_*.json``
record found in the results directory -- the transient, MAP, SSTA, runtime,
library-pipeline, durable-store and serving-front-door wall-clock
benchmarks -- into one aggregate table, so a
single artifact summarizes both axes of the reproduction's performance
story: fewer simulation runs (the paper's claim) and faster wall clock per
run (the batched engines).
"""

from __future__ import annotations

import json

import numpy as np

from repro.analysis import format_table
from repro.experiments import compute_speedup
from bench_utils import write_result


def collect_bench_records(results_dir):
    """Wall-clock speedup/overhead figures from all BENCH_*.json artifacts.

    Records are produced by independent benchmark modules that may or may
    not have run in this session; whatever is present is aggregated.  Any
    numeric top-level key containing ``speedup``, ``overhead`` or ``ratio``
    is picked up, so new benchmark records (e.g. the integrator benchmark's
    wall-clock speedup and RHS-evaluation ratio) fold in without touching
    this module.
    """
    rows = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        name = payload.get("benchmark", path.stem)
        for key, value in sorted(payload.items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if "speedup" in key and "min" not in key:
                rows.append([name, key, float(value)])
            elif "overhead" in key or "ratio" in key:
                rows.append([name, key, float(value)])
    return rows


def test_speedup_summary(benchmark, nominal_curves_14, statistical_curves_28,
                         results_dir):
    def build_summary():
        rows = []
        speedups = {}
        # Nominal delay (Fig. 6): proposed vs LSE-only vs LUT.
        bayes = nominal_curves_14["bayesian"]
        lse = nominal_curves_14["lse"]
        lut = nominal_curves_14["lut"]
        for label, slow in (("model contribution (vs LUT, LSE fit)", lut),
                            ("full flow (vs LUT)", lut)):
            fast = lse if "LSE" in label else bayes
            summary = compute_speedup(fast, slow)
            if summary is not None:
                rows.append([f"nominal delay: {label}", summary.fast_runs,
                             summary.slow_runs, summary.speedup])
                speedups[label] = summary.speedup
        # Statistical metrics (Figs. 7-8): proposed vs statistical LUT.
        for metric in ("mu_delay", "sigma_delay", "mu_slew", "sigma_slew"):
            fast = statistical_curves_28[("bayesian", metric)]
            slow = statistical_curves_28[("lut", metric)]
            summary = compute_speedup(fast, slow)
            if summary is not None:
                rows.append([f"statistical {metric}", summary.fast_runs,
                             summary.slow_runs, summary.speedup])
                speedups[metric] = summary.speedup
        return rows, speedups

    rows, speedups = benchmark.pedantic(build_summary, rounds=1, iterations=1)
    text = format_table(
        ["experiment", "proposed runs", "baseline-flow runs", "speedup (x)"],
        rows,
        title="Section V summary: simulation-run reduction at matched accuracy")

    # Wall-clock records from whatever per-engine benchmarks ran before this
    # one (BENCH_transient / BENCH_integrator / BENCH_map / BENCH_ssta /
    # BENCH_runtime / BENCH_library / BENCH_persist / BENCH_service).
    bench_rows = collect_bench_records(results_dir)
    if bench_rows:
        text += "\n\n" + format_table(
            ["benchmark", "figure", "value (x)"], bench_rows,
            title="Wall-clock engine benchmarks (BENCH_*.json aggregate)")
    write_result(results_dir / "speedup_summary.txt", text)

    # At least the nominal-delay and mean-statistics comparisons must exist.
    assert rows, "no speedup could be computed from the curves"
    full_flow = speedups.get("full flow (vs LUT)")
    assert full_flow is not None
    # Paper: >= 15x; require a conservative >= 5x on the synthetic substrate.
    assert full_flow >= 5.0
    # Every computed speedup favours the proposed flow.
    assert all(value >= 1.0 for value in speedups.values())
