"""Section V headline: simulation-run speedups at matched accuracy.

The paper summarizes its evaluation as ">= 15x fewer simulation runs than the
LUT flow for the same accuracy" (6x from the compact timing model, 2.5x more
from the Bayesian prior), with 17-20x reductions for the statistical metrics,
and an asymptotic cost of ``O(k * Nsample)`` versus ``O(N_LUT * Nsample)``.

This benchmark assembles the speedup summary from the Fig. 6 and Fig. 7/8
curves (shared fixtures -- no additional simulation) and asserts the ordering
and rough magnitudes.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.experiments import compute_speedup
from bench_utils import write_result


def test_speedup_summary(benchmark, nominal_curves_14, statistical_curves_28,
                         results_dir):
    def build_summary():
        rows = []
        speedups = {}
        # Nominal delay (Fig. 6): proposed vs LSE-only vs LUT.
        bayes = nominal_curves_14["bayesian"]
        lse = nominal_curves_14["lse"]
        lut = nominal_curves_14["lut"]
        for label, slow in (("model contribution (vs LUT, LSE fit)", lut),
                            ("full flow (vs LUT)", lut)):
            fast = lse if "LSE" in label else bayes
            summary = compute_speedup(fast, slow)
            if summary is not None:
                rows.append([f"nominal delay: {label}", summary.fast_runs,
                             summary.slow_runs, summary.speedup])
                speedups[label] = summary.speedup
        # Statistical metrics (Figs. 7-8): proposed vs statistical LUT.
        for metric in ("mu_delay", "sigma_delay", "mu_slew", "sigma_slew"):
            fast = statistical_curves_28[("bayesian", metric)]
            slow = statistical_curves_28[("lut", metric)]
            summary = compute_speedup(fast, slow)
            if summary is not None:
                rows.append([f"statistical {metric}", summary.fast_runs,
                             summary.slow_runs, summary.speedup])
                speedups[metric] = summary.speedup
        return rows, speedups

    rows, speedups = benchmark.pedantic(build_summary, rounds=1, iterations=1)
    text = format_table(
        ["experiment", "proposed runs", "baseline-flow runs", "speedup (x)"],
        rows,
        title="Section V summary: simulation-run reduction at matched accuracy")
    write_result(results_dir / "speedup_summary.txt", text)

    # At least the nominal-delay and mean-statistics comparisons must exist.
    assert rows, "no speedup could be computed from the curves"
    full_flow = speedups.get("full flow (vs LUT)")
    assert full_flow is not None
    # Paper: >= 15x; require a conservative >= 5x on the synthetic substrate.
    assert full_flow >= 5.0
    # Every computed speedup favours the proposed flow.
    assert all(value >= 1.0 for value in speedups.values())
