"""Throughput microbenchmark: serial versus batched transient sweeps.

Times the same statistical sweep -- ``REPRO_BENCH_PERF_CONDITIONS`` operating
points x ``REPRO_BENCH_PERF_SEEDS`` Monte Carlo seeds of one NAND2 arc --
through the serial per-condition engine and the batched
``(conditions x seeds)`` engine, verifies the two agree to ``rtol <= 1e-9``,
and writes ``BENCH_transient.json`` (wall-clock seconds, conditions/sec,
seeds*steps/sec, speedup) so the performance trajectory is tracked across
PRs.  The simulation cache is bypassed for both timings: this benchmark
measures the integrators, not the memoization.

Runs with plain pytest (no pytest-benchmark fixture) so CI can execute it in
isolation and upload the JSON artifact.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_utils import RESULTS_DIR, env_float, env_int  # noqa: E402
from bench_utils import write_json_result  # noqa: E402

from repro import get_technology, make_cell
from repro.cells import reduce_cell_cached
from repro.characterization.input_space import InputSpace
from repro.spice import simulate_arc_transition, simulate_arc_transitions
from repro.spice.transient import DEFAULT_STEPS


def test_batched_sweep_throughput(results_dir):
    n_conditions = env_int("REPRO_BENCH_PERF_CONDITIONS", 50)
    n_seeds = env_int("REPRO_BENCH_PERF_SEEDS", 200)
    # The floor is a regression tripwire, not the headline number: wall-clock
    # ratios are noisy on loaded/shared machines, so the default is set well
    # below the ~5x measured on dedicated hardware (see BENCH_transient.json).
    min_speedup = env_float("REPRO_BENCH_PERF_MIN_SPEEDUP", 2.0)
    # Each engine is timed ``repeats`` times and the fastest pass is kept:
    # a single-shot timing under full-suite load once recorded a 2.37x ratio
    # for a sweep that reproduces at ~5x on an idle machine, purely because
    # the serial pass landed on a busy scheduling window.  min-of-N measures
    # the code, not the machine's background load.
    repeats = env_int("REPRO_BENCH_PERF_REPEATS", 3)

    technology = get_technology("n28_bulk")
    cell = make_cell("NAND2_X1")
    variation = technology.variation.sample(n_seeds, rng=42)
    inverter = reduce_cell_cached(cell, technology, variation=variation)

    space = InputSpace(technology)
    conditions = space.sample_lhs(n_conditions, np.random.default_rng(17))
    sin = np.array([c.sin for c in conditions])
    cload = np.array([c.cload for c in conditions])
    vdd = np.array([c.vdd for c in conditions])

    # Warm-up outside the timed regions (first-call numpy/python overheads),
    # for both engines.
    simulate_arc_transitions(inverter, sin[:2], cload[:2], vdd[:2])
    simulate_arc_transition(inverter, sin=float(sin[0]), cload=float(cload[0]),
                            vdd=float(vdd[0]))

    batched_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        batch = simulate_arc_transitions(inverter, sin, cload, vdd)
        batched_delay = batch.delay()
        batched_slew = batch.output_slew()
        batched_seconds = min(batched_seconds, time.perf_counter() - start)

    serial_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        serial_delay = np.empty_like(batched_delay)
        serial_slew = np.empty_like(batched_slew)
        for index in range(n_conditions):
            result = simulate_arc_transition(inverter, sin=float(sin[index]),
                                             cload=float(cload[index]),
                                             vdd=float(vdd[index]))
            serial_delay[index] = result.delay()
            serial_slew[index] = result.output_slew()
        serial_seconds = min(serial_seconds, time.perf_counter() - start)

    np.testing.assert_allclose(batched_delay, serial_delay, rtol=1e-9, atol=0.0)
    np.testing.assert_allclose(batched_slew, serial_slew, rtol=1e-9, atol=0.0)

    speedup = serial_seconds / batched_seconds
    payload = {
        "benchmark": "transient_sweep",
        "n_conditions": n_conditions,
        "n_seeds": n_seeds,
        "n_steps_nominal": DEFAULT_STEPS,
        "timing_repeats": repeats,
        "timing_methodology": "best-of-N per engine",
        "serial_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(speedup, 2),
        "batched_conditions_per_sec": round(n_conditions / batched_seconds, 2),
        "serial_conditions_per_sec": round(n_conditions / serial_seconds, 2),
        # Throughput proxy based on the nominal per-condition step count
        # (window extensions add steps, so this undercounts slightly).
        "batched_seed_steps_per_sec": round(
            n_conditions * n_seeds * DEFAULT_STEPS / batched_seconds),
        "serial_seed_steps_per_sec": round(
            n_conditions * n_seeds * DEFAULT_STEPS / serial_seconds),
        "equivalence_rtol": 1e-9,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    write_json_result(results_dir / "BENCH_transient.json", payload)

    assert speedup >= min_speedup, (
        f"batched engine only {speedup:.2f}x faster than serial "
        f"(floor {min_speedup}x)"
    )
