"""Fig. 3: ``T / (Cload + Cpar + alpha*Sin)`` is constant across load/slew combos.

The complementary validation to Fig. 2: for a NOR2 cell at 14 nm, dividing the
measured delay (and slew) by the modelled switched capacitance collapses all
(Cload, Sin) combinations onto a constant for each supply voltage and
transition.  The benchmark regenerates the series for 14 load/slew
combinations at three supplies and asserts the collapse.
"""

from __future__ import annotations

import numpy as np

from repro import SimulationCounter, get_technology, make_cell
from repro.analysis import format_table
from repro.cells import Transition
from repro.core.timing_model import CompactTimingModel, fit_least_squares
from repro.cells.equivalent_inverter import reduce_cell
from repro.spice import sweep_conditions
from bench_utils import write_result

VDD_VALUES = (0.7, 0.85, 1.0)
N_COMBINATIONS = 14


def run_collapse():
    technology = get_technology("n14_finfet")
    cell = make_cell("NOR2_X1")
    counter = SimulationCounter()
    rng = np.random.default_rng(2)
    cloads = rng.uniform(*technology.cload_range, N_COMBINATIONS)
    sins = rng.uniform(*technology.slew_range, N_COMBINATIONS)

    arc = cell.arc("A", Transition.FALL)
    inverter = reduce_cell(cell, technology, arc=arc)

    # Fit Cpar and alpha once on a calibration sweep at nominal Vdd.
    calibration = [(sins[i], cloads[i], technology.vdd_nominal)
                   for i in range(N_COMBINATIONS)]
    cal_measurements = sweep_conditions(cell, technology, calibration, arc=arc,
                                        counter=counter)
    ieff_cal = float(inverter.effective_current(technology.vdd_nominal))
    fit = fit_least_squares(sins, cloads,
                            np.full(N_COMBINATIONS, technology.vdd_nominal),
                            np.full(N_COMBINATIONS, ieff_cal),
                            np.array([m.nominal_delay() for m in cal_measurements]))
    params = fit.params

    rows = []
    spreads = []
    for vdd in VDD_VALUES:
        conditions = [(sins[i], cloads[i], vdd) for i in range(N_COMBINATIONS)]
        measurements = sweep_conditions(cell, technology, conditions, arc=arc,
                                        counter=counter)
        delays = np.array([m.nominal_delay() for m in measurements])
        collapsed = CompactTimingModel.load_slew_collapse(
            delays, cloads, sins, params.cpar_ff, params.alpha_ff_per_ps)
        spread = float(collapsed.std() / collapsed.mean())
        spreads.append(spread)
        rows.append([vdd, float(collapsed.mean()), float(collapsed.min()),
                     float(collapsed.max()), 100.0 * spread])
    return rows, np.array(spreads), counter.total, params


def test_fig3_load_slew_collapse(benchmark, results_dir):
    rows, spreads, runs, params = benchmark.pedantic(run_collapse, rounds=1,
                                                     iterations=1)
    text = format_table(
        ["Vdd (V)", "mean Td/(C+Cpar+a*Sin) (s/F)", "min", "max", "spread (%)"],
        rows,
        title="Fig. 3 analogue: load/slew collapse of the delay model "
              f"(NOR2, 14 nm, {runs} simulations; {params.describe()})")
    write_result(results_dir / "fig3_load_slew_collapse.txt", text)

    # Paper: the collapsed value is approximately constant over all 14
    # combinations at each supply.
    assert np.all(spreads < 0.10)
    assert spreads.mean() < 0.06
