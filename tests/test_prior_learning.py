"""Tests for historical-library characterization and prior learning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.prior_learning import (
    TimingPrior,
    characterize_historical_libraries,
    characterize_historical_library,
    learn_class_priors,
    learn_prior,
    learn_priors,
    shared_reference_conditions,
)


class TestSharedReferenceConditions:
    def test_shape_and_range(self):
        unit = shared_reference_conditions(12, rng=1)
        assert unit.shape == (12, 3)
        assert np.all((unit >= 0.0) & (unit <= 1.0))

    def test_deterministic(self):
        assert np.allclose(shared_reference_conditions(8, rng=2),
                           shared_reference_conditions(8, rng=2))

    def test_too_few_conditions_rejected(self):
        with pytest.raises(ValueError):
            shared_reference_conditions(3)


class TestHistoricalLibraryData:
    def test_parameter_matrix_shapes(self, historical_data):
        for data in historical_data:
            matrix = data.parameter_matrix("delay")
            assert matrix.shape == (2, 4)  # two cells, FALL arcs only
            assert np.all(np.isfinite(matrix))

    def test_fits_are_accurate(self, historical_data):
        for data in historical_data:
            assert data.mean_fit_error("delay") < 0.05
            assert data.mean_fit_error("slew") < 0.05

    def test_residuals_per_condition(self, historical_data, reference_conditions):
        for data in historical_data:
            assert data.delay_residuals.shape == (reference_conditions.shape[0],)
            assert data.simulation_runs == 2 * reference_conditions.shape[0]

    def test_unknown_response_rejected(self, historical_data):
        with pytest.raises(ValueError):
            historical_data[0].parameter_matrix("power")

    def test_parameters_similar_across_technologies(self, historical_data):
        """The cross-node similarity that justifies the prior (Table I)."""
        means = [data.mean_parameters("delay") for data in historical_data]
        kd_values = [m[0] for m in means]
        assert max(kd_values) - min(kd_values) < 0.2


class TestLearnPrior:
    def test_bp_prior_structure(self, delay_prior, historical_data):
        assert isinstance(delay_prior, TimingPrior)
        assert delay_prior.density.dim == 4
        assert delay_prior.method == "bp"
        assert len(delay_prior.technology_names) == len(historical_data)
        assert np.all(delay_prior.density.standard_deviations() > 0)

    def test_prior_mean_is_plausible(self, delay_prior):
        mean = delay_prior.density.mean
        assert 0.1 < mean[0] < 1.0          # kd
        assert 0.0 < mean[1] < 10.0         # Cpar in fF
        assert -0.6 < mean[2] < 0.2         # V'
        assert 0.0 <= mean[3] < 5.0         # alpha in fF/ps

    def test_empirical_and_bp_agree_on_mean(self, historical_data):
        bp = learn_prior(historical_data, response="delay", method="bp")
        empirical = learn_prior(historical_data, response="delay", method="empirical")
        assert np.allclose(bp.density.mean, empirical.density.mean, atol=0.2)

    def test_slew_prior_differs_from_delay_prior(self, delay_prior, slew_prior):
        assert not np.allclose(delay_prior.density.mean, slew_prior.density.mean)

    def test_single_library_falls_back_to_empirical(self, historical_data):
        prior = learn_prior(historical_data[:1], response="delay", method="bp")
        assert prior.method == "empirical"

    def test_prior_widening(self, historical_data):
        narrow = learn_prior(historical_data, response="delay")
        wide = learn_prior(historical_data, response="delay", prior_widening=4.0)
        assert np.all(wide.density.standard_deviations()
                      >= narrow.density.standard_deviations())

    def test_invalid_arguments(self, historical_data):
        with pytest.raises(ValueError):
            learn_prior([], response="delay")
        with pytest.raises(ValueError):
            learn_prior(historical_data, response="delay", method="magic")
        with pytest.raises(ValueError):
            learn_prior(historical_data, response="power")
        with pytest.raises(ValueError):
            learn_prior(historical_data, response="delay", prior_widening=0.0)

    def test_learn_priors_returns_both_responses(self, historical_data):
        priors = learn_priors(historical_data)
        assert set(priors) == {"delay", "slew"}
        assert priors["delay"].response == "delay"

    def test_precision_model_attached(self, delay_prior):
        betas = delay_prior.precision_model.beta(np.array([[0.5, 0.5, 0.5]]))
        assert betas[0] > 0

    def test_describe(self, delay_prior):
        text = delay_prior.describe()
        assert "delay prior" in text
        assert "bp" in text


class TestBatchedLearnPriors:
    def test_batched_matches_loop(self, historical_data):
        batched = learn_priors(historical_data, engine="batched")
        loop = learn_priors(historical_data, engine="loop")
        for response in ("delay", "slew"):
            np.testing.assert_allclose(batched[response].density.mean,
                                       loop[response].density.mean,
                                       rtol=1e-12)
            np.testing.assert_allclose(batched[response].density.covariance,
                                       loop[response].density.covariance,
                                       rtol=1e-12)
            assert batched[response].method == loop[response].method == "bp"

    def test_ledger_records_bp_stage(self, historical_data):
        from repro.runtime.accounting import RunLedger

        ledger = RunLedger()
        learn_priors(historical_data, ledger=ledger)
        assert "priors:bp" in ledger.stages()

    def test_empirical_method_falls_back(self, historical_data):
        priors = learn_priors(historical_data, method="empirical")
        assert priors["delay"].method == "empirical"

    def test_single_library_falls_back(self, historical_data):
        priors = learn_priors(historical_data[:1])
        assert priors["delay"].method == "empirical"

    def test_invalid_engine(self, historical_data):
        with pytest.raises(ValueError, match="engine"):
            learn_priors(historical_data, engine="warp")


class TestLearnClassPriors:
    def test_keys_and_structure(self, historical_data):
        priors = learn_class_priors(historical_data)
        cell_names = {fit.cell_name for fit in historical_data[0].arc_fits}
        assert set(priors) == {(response, name)
                               for response in ("delay", "slew")
                               for name in cell_names}
        for prior in priors.values():
            assert prior.method == "bp"
            assert prior.density.dim == 4

    def test_batched_matches_loop(self, historical_data):
        batched = learn_class_priors(historical_data, engine="batched")
        loop = learn_class_priors(historical_data, engine="loop")
        for key in batched:
            np.testing.assert_allclose(batched[key].density.mean,
                                       loop[key].density.mean, rtol=1e-12)
            np.testing.assert_allclose(batched[key].density.covariance,
                                       loop[key].density.covariance,
                                       rtol=1e-12)

    def test_class_priors_differ_between_classes(self, historical_data):
        priors = learn_class_priors(historical_data)
        names = sorted({name for _response, name in priors})
        assert not np.allclose(priors[("delay", names[0])].density.mean,
                               priors[("delay", names[1])].density.mean)

    def test_custom_class_function_pools_everything(self, historical_data):
        priors = learn_class_priors(historical_data, class_of=lambda fit: "all")
        assert set(priors) == {("delay", "all"), ("slew", "all")}
        # One class over all arcs reproduces the per-response prior.
        pooled = learn_priors(historical_data)
        np.testing.assert_allclose(priors[("delay", "all")].density.mean,
                                   pooled["delay"].density.mean, rtol=1e-12)

    def test_empirical_fallback(self, historical_data):
        priors = learn_class_priors(historical_data[:1])
        assert all(prior.method == "empirical" for prior in priors.values())

    def test_no_shared_classes_raises(self, historical_data):
        with pytest.raises(ValueError, match="share no arc classes"):
            learn_class_priors(
                historical_data,
                class_of=lambda fit: f"{fit.cell_name}-{id(fit)}")

    def test_invalid_arguments(self, historical_data):
        with pytest.raises(ValueError):
            learn_class_priors([])
        with pytest.raises(ValueError):
            learn_class_priors(historical_data, method="magic")
        with pytest.raises(ValueError):
            learn_class_priors(historical_data, prior_widening=0.0)
        with pytest.raises(ValueError):
            learn_class_priors(historical_data, engine="warp")


class TestFusedHistoricalCharacterization:
    @pytest.fixture(scope="class")
    def fused_and_legacy(self, reference_conditions, inv_cell, nor2_cell):
        import repro.spice.testbench as testbench
        from repro.cells.library import Transition
        from repro.runtime.accounting import RunLedger
        from repro.spice.testbench import SimulationCounter

        tech = __import__("repro").get_technology("n28_bulk")
        results = {}
        for engine in ("batched", "fused"):
            testbench.get_simulation_cache().clear()
            counter = SimulationCounter()
            ledger = RunLedger()
            results[engine] = (
                characterize_historical_library(
                    tech, [inv_cell, nor2_cell],
                    unit_conditions=reference_conditions,
                    transitions=(Transition.FALL,),
                    counter=counter, engine=engine, ledger=ledger),
                counter, ledger)
        testbench.get_simulation_cache().clear()
        return results

    def test_fused_matches_legacy_fits(self, fused_and_legacy):
        legacy, _c, _l = fused_and_legacy["batched"]
        fused, _c2, _l2 = fused_and_legacy["fused"]
        for a, b in zip(legacy.arc_fits, fused.arc_fits):
            assert a.cell_name == b.cell_name and a.arc_name == b.arc_name
            np.testing.assert_allclose(b.delay_fit.params.as_array(),
                                       a.delay_fit.params.as_array(),
                                       rtol=1e-4, atol=1e-9)
            np.testing.assert_allclose(b.slew_fit.params.as_array(),
                                       a.slew_fit.params.as_array(),
                                       rtol=1e-4, atol=1e-9)
        np.testing.assert_allclose(fused.delay_residuals,
                                   legacy.delay_residuals, atol=1e-6)

    def test_counter_accounting_identical(self, fused_and_legacy):
        _legacy, c_legacy, _l = fused_and_legacy["batched"]
        _fused, c_fused, _l2 = fused_and_legacy["fused"]
        assert c_fused.total == c_legacy.total
        assert c_fused.by_label() == c_legacy.by_label()

    def test_ledger_stages_and_metrics(self, fused_and_legacy):
        data, _counter, ledger = fused_and_legacy["fused"]
        stages = ledger.stages()
        for stage in ("priors:plan", "priors:simulate", "priors:integrate",
                      "priors:fit"):
            assert stage in stages
        metrics = ledger.metrics()
        assert metrics["priors_rows_total"] == 16
        assert metrics["priors_rows_simulated"] == 16
        assert metrics["priors_signature_groups"] == 2
        assert ledger.simulations_by_label() == {
            "priors:n28_bulk": data.simulation_runs}

    def test_footprint_twins_dedup(self, reference_conditions):
        import dataclasses

        import repro.spice.testbench as testbench
        from repro.cells.library import Transition
        from repro.runtime.accounting import RunLedger
        from repro import get_technology, make_cell

        base = make_cell("INV_X1")
        twins = [dataclasses.replace(base, name=f"INV_X1_C{i}")
                 for i in range(3)]
        testbench.get_simulation_cache().clear()
        ledger = RunLedger()
        data = characterize_historical_library(
            get_technology("n28_bulk"), twins,
            unit_conditions=reference_conditions,
            transitions=(Transition.FALL,), ledger=ledger)
        testbench.get_simulation_cache().clear()
        metrics = ledger.metrics()
        n = reference_conditions.shape[0]
        # Three twin cells share one signature: one cell's rows simulate,
        # the other two dedup against the same slots.
        assert metrics["priors_signature_groups"] == 1
        assert metrics["priors_rows_simulated"] == n
        assert metrics["priors_rows_deduplicated"] == 2 * n
        assert data.simulation_runs == 3 * n

    def test_plural_helper_shares_accounting(self, reference_conditions,
                                             inv_cell):
        import repro.spice.testbench as testbench
        from repro.cells.library import Transition
        from repro.runtime.accounting import RunLedger
        from repro import get_technology
        from repro.spice.testbench import SimulationCounter

        testbench.get_simulation_cache().clear()
        counter = SimulationCounter()
        ledger = RunLedger()
        libraries = characterize_historical_libraries(
            [get_technology("n28_bulk"), get_technology("n45_bulk")],
            [inv_cell], unit_conditions=reference_conditions,
            transitions=(Transition.FALL,), counter=counter, ledger=ledger)
        testbench.get_simulation_cache().clear()
        assert [data.technology_name for data in libraries] == \
            ["n28_bulk", "n45_bulk"]
        n = reference_conditions.shape[0]
        assert ledger.simulations_by_label() == {
            "priors:n28_bulk": n, "priors:n45_bulk": n}
        assert counter.total == 2 * n

    def test_invalid_engine(self, reference_conditions, inv_cell):
        from repro import get_technology

        with pytest.raises(ValueError, match="engine"):
            characterize_historical_library(
                get_technology("n28_bulk"), [inv_cell],
                unit_conditions=reference_conditions, engine="quantum")
