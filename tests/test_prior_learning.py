"""Tests for historical-library characterization and prior learning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.prior_learning import (
    TimingPrior,
    learn_prior,
    learn_priors,
    shared_reference_conditions,
)


class TestSharedReferenceConditions:
    def test_shape_and_range(self):
        unit = shared_reference_conditions(12, rng=1)
        assert unit.shape == (12, 3)
        assert np.all((unit >= 0.0) & (unit <= 1.0))

    def test_deterministic(self):
        assert np.allclose(shared_reference_conditions(8, rng=2),
                           shared_reference_conditions(8, rng=2))

    def test_too_few_conditions_rejected(self):
        with pytest.raises(ValueError):
            shared_reference_conditions(3)


class TestHistoricalLibraryData:
    def test_parameter_matrix_shapes(self, historical_data):
        for data in historical_data:
            matrix = data.parameter_matrix("delay")
            assert matrix.shape == (2, 4)  # two cells, FALL arcs only
            assert np.all(np.isfinite(matrix))

    def test_fits_are_accurate(self, historical_data):
        for data in historical_data:
            assert data.mean_fit_error("delay") < 0.05
            assert data.mean_fit_error("slew") < 0.05

    def test_residuals_per_condition(self, historical_data, reference_conditions):
        for data in historical_data:
            assert data.delay_residuals.shape == (reference_conditions.shape[0],)
            assert data.simulation_runs == 2 * reference_conditions.shape[0]

    def test_unknown_response_rejected(self, historical_data):
        with pytest.raises(ValueError):
            historical_data[0].parameter_matrix("power")

    def test_parameters_similar_across_technologies(self, historical_data):
        """The cross-node similarity that justifies the prior (Table I)."""
        means = [data.mean_parameters("delay") for data in historical_data]
        kd_values = [m[0] for m in means]
        assert max(kd_values) - min(kd_values) < 0.2


class TestLearnPrior:
    def test_bp_prior_structure(self, delay_prior, historical_data):
        assert isinstance(delay_prior, TimingPrior)
        assert delay_prior.density.dim == 4
        assert delay_prior.method == "bp"
        assert len(delay_prior.technology_names) == len(historical_data)
        assert np.all(delay_prior.density.standard_deviations() > 0)

    def test_prior_mean_is_plausible(self, delay_prior):
        mean = delay_prior.density.mean
        assert 0.1 < mean[0] < 1.0          # kd
        assert 0.0 < mean[1] < 10.0         # Cpar in fF
        assert -0.6 < mean[2] < 0.2         # V'
        assert 0.0 <= mean[3] < 5.0         # alpha in fF/ps

    def test_empirical_and_bp_agree_on_mean(self, historical_data):
        bp = learn_prior(historical_data, response="delay", method="bp")
        empirical = learn_prior(historical_data, response="delay", method="empirical")
        assert np.allclose(bp.density.mean, empirical.density.mean, atol=0.2)

    def test_slew_prior_differs_from_delay_prior(self, delay_prior, slew_prior):
        assert not np.allclose(delay_prior.density.mean, slew_prior.density.mean)

    def test_single_library_falls_back_to_empirical(self, historical_data):
        prior = learn_prior(historical_data[:1], response="delay", method="bp")
        assert prior.method == "empirical"

    def test_prior_widening(self, historical_data):
        narrow = learn_prior(historical_data, response="delay")
        wide = learn_prior(historical_data, response="delay", prior_widening=4.0)
        assert np.all(wide.density.standard_deviations()
                      >= narrow.density.standard_deviations())

    def test_invalid_arguments(self, historical_data):
        with pytest.raises(ValueError):
            learn_prior([], response="delay")
        with pytest.raises(ValueError):
            learn_prior(historical_data, response="delay", method="magic")
        with pytest.raises(ValueError):
            learn_prior(historical_data, response="power")
        with pytest.raises(ValueError):
            learn_prior(historical_data, response="delay", prior_widening=0.0)

    def test_learn_priors_returns_both_responses(self, historical_data):
        priors = learn_priors(historical_data)
        assert set(priors) == {"delay", "slew"}
        assert priors["delay"].response == "delay"

    def test_precision_model_attached(self, delay_prior):
        betas = delay_prior.precision_model.beta(np.array([[0.5, 0.5, 0.5]]))
        assert betas[0] > 0

    def test_describe(self, delay_prior):
        text = delay_prior.describe()
        assert "delay prior" in text
        assert "bp" in text
