"""Tests for the batched Gaussian belief-propagation engine.

The batched engine stacks B independent same-topology factor graphs and
advances all of them through the scalar engine's exact message schedule with
one batched linear solve per update.  The contract under test: for every
topology (chain, star, loopy with damping) the batched sweeps reproduce the
scalar per-graph results at ``rtol <= 1e-12``, converged graphs retire
independently, and the tree cases match the closed-form joint-precision
marginals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayes import (
    BatchedFactorGraph,
    GaussianBatch,
    GaussianDensity,
    GaussianFactorGraph,
)

RTOL = 1e-12


def random_density(rng: np.random.Generator, dim: int = 3) -> GaussianDensity:
    mean = rng.normal(size=dim)
    root = rng.normal(size=(dim, dim))
    covariance = root @ root.T + 0.5 * np.eye(dim)
    return GaussianDensity(mean, covariance)


def random_spd(rng: np.random.Generator, dim: int = 3) -> np.ndarray:
    root = rng.normal(size=(dim, dim))
    return root @ root.T + 0.5 * np.eye(dim)


def assert_batches_close(left, right, rtol=RTOL):
    for name in left:
        np.testing.assert_allclose(left[name].mean, right[name].mean,
                                   rtol=rtol, atol=1e-14)
        np.testing.assert_allclose(left[name].covariance,
                                   right[name].covariance,
                                   rtol=rtol, atol=1e-14)


class TestGaussianBatch:
    def test_from_densities_roundtrip(self):
        rng = np.random.default_rng(3)
        densities = [random_density(rng) for _ in range(4)]
        batch = GaussianBatch.from_densities(densities)
        assert batch.batch_size == 4 and batch.dim == 3 and len(batch) == 4
        for index, density in enumerate(densities):
            np.testing.assert_allclose(batch.density(index).mean,
                                       density.mean, rtol=1e-15)
            np.testing.assert_allclose(batch.density(index).covariance,
                                       density.covariance, rtol=1e-15)
        np.testing.assert_allclose(
            batch.standard_deviations(),
            np.stack([d.standard_deviations() for d in densities]),
            rtol=1e-15)

    def test_from_information_matches_scalar(self):
        rng = np.random.default_rng(4)
        densities = [random_density(rng) for _ in range(3)]
        info = [d.to_information() for d in densities]
        batch = GaussianBatch.from_information(
            np.stack([p for p, _ in info]), np.stack([h for _, h in info]))
        for index, density in enumerate(densities):
            np.testing.assert_allclose(batch.mean[index], density.mean,
                                       rtol=1e-9)
            np.testing.assert_allclose(batch.covariance[index],
                                       density.covariance, rtol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GaussianBatch(np.zeros((2, 3)), np.zeros((2, 3, 2)))
        with pytest.raises(ValueError):
            GaussianBatch(np.zeros(3), np.zeros((3, 3)))
        batch = GaussianBatch(np.zeros((2, 3)), np.broadcast_to(np.eye(3), (2, 3, 3)))
        with pytest.raises(IndexError):
            batch.density(2)


class TestBatchedMatchesLoop:
    def test_star_is_bit_compatible(self):
        rng = np.random.default_rng(11)
        batch_size = 5
        leaves = {f"leaf{i}": [random_density(rng) for _ in range(batch_size)]
                  for i in range(4)}
        link = random_spd(rng)
        graph = BatchedFactorGraph.star("center", leaves, link)
        batched = graph.run_belief_propagation()
        loop = graph.run_belief_propagation(engine="loop")
        assert_batches_close(batched, loop)

    def test_chain_matches_loop(self):
        rng = np.random.default_rng(12)
        batch_size = 3
        names = ["n45", "n28", "n14"]
        evidence = {name: [random_density(rng) for _ in range(batch_size)]
                    for name in ("n45", "n14")}
        graph = BatchedFactorGraph.chain(names, evidence, random_spd(rng))
        assert_batches_close(graph.run_belief_propagation(),
                             graph.run_belief_propagation(engine="loop"))

    def test_loopy_damped_matches_loop_per_graph_damping(self):
        rng = np.random.default_rng(13)
        batch_size = 4
        graph = BatchedFactorGraph(batch_size)
        for name in ("a", "b", "c"):
            graph.add_variable(name, 2)
            graph.add_evidence(
                name, [random_density(rng, dim=2) for _ in range(batch_size)])
        for pair in (("a", "b"), ("b", "c"), ("c", "a")):
            graph.add_smoothness(*pair, noise_covariance=random_spd(rng, 2))
        damping = np.array([0.1, 0.3, 0.5, 0.7])
        batched = graph.run_belief_propagation(max_iterations=500,
                                               damping=damping)
        loop = graph.run_belief_propagation(max_iterations=500,
                                            damping=damping, engine="loop")
        assert_batches_close(batched, loop)

    def test_per_graph_link_covariances(self):
        rng = np.random.default_rng(14)
        batch_size = 3
        links = np.stack([random_spd(rng) for _ in range(batch_size)])
        leaves = {f"leaf{i}": [random_density(rng) for _ in range(batch_size)]
                  for i in range(2)}
        graph = BatchedFactorGraph.star("center", leaves, links)
        assert_batches_close(graph.run_belief_propagation(),
                             graph.run_belief_propagation(engine="loop"))

    def test_shared_evidence_infers_batch_of_one(self):
        rng = np.random.default_rng(15)
        graph = BatchedFactorGraph.star(
            "center", {"leaf": random_density(rng)}, np.eye(3))
        beliefs = graph.run_belief_propagation()
        assert beliefs["center"].batch_size == 1


class TestClosedForm:
    @staticmethod
    def joint_marginals(variables, evidence, links):
        """Exact marginals from the assembled joint precision system."""
        dim = next(iter(evidence.values()))[0].dim
        n = len(variables)
        index = {name: i for i, name in enumerate(variables)}
        joint = np.zeros((n * dim, n * dim))
        shift = np.zeros(n * dim)
        for name, densities in evidence.items():
            i = index[name]
            precision, h = densities[0].to_information()
            joint[i * dim:(i + 1) * dim, i * dim:(i + 1) * dim] += precision
            shift[i * dim:(i + 1) * dim] += h
        for (a, b), covariance in links:
            w = np.linalg.inv(covariance)
            ia, ib = index[a], index[b]
            joint[ia * dim:(ia + 1) * dim, ia * dim:(ia + 1) * dim] += w
            joint[ib * dim:(ib + 1) * dim, ib * dim:(ib + 1) * dim] += w
            joint[ia * dim:(ia + 1) * dim, ib * dim:(ib + 1) * dim] -= w
            joint[ib * dim:(ib + 1) * dim, ia * dim:(ia + 1) * dim] -= w
        covariance = np.linalg.inv(joint)
        mean = covariance @ shift
        return {name: (mean[i * dim:(i + 1) * dim],
                       covariance[i * dim:(i + 1) * dim, i * dim:(i + 1) * dim])
                for name, i in index.items()}

    def test_star_matches_joint_precision_solve(self):
        rng = np.random.default_rng(21)
        link = random_spd(rng)
        evidence = {f"leaf{i}": [random_density(rng)] for i in range(3)}
        graph = BatchedFactorGraph.star("center", evidence, link)
        beliefs = graph.run_belief_propagation()
        exact = self.joint_marginals(
            ["center", "leaf0", "leaf1", "leaf2"], evidence,
            [(("center", f"leaf{i}"), link) for i in range(3)])
        for name, (mean, covariance) in exact.items():
            np.testing.assert_allclose(beliefs[name].mean[0], mean, rtol=1e-8)
            np.testing.assert_allclose(beliefs[name].covariance[0], covariance,
                                       rtol=1e-8)

    def test_chain_matches_joint_precision_solve(self):
        rng = np.random.default_rng(22)
        link = random_spd(rng)
        names = ["a", "b", "c", "d"]
        evidence = {"a": [random_density(rng)], "d": [random_density(rng)]}
        graph = BatchedFactorGraph.chain(names, evidence, link)
        beliefs = graph.run_belief_propagation()
        exact = self.joint_marginals(
            names, evidence,
            [(pair, link) for pair in zip(names[:-1], names[1:])])
        for name, (mean, covariance) in exact.items():
            np.testing.assert_allclose(beliefs[name].mean[0], mean, rtol=1e-8)
            np.testing.assert_allclose(beliefs[name].covariance[0], covariance,
                                       rtol=1e-8)


class TestRetirementAndInfo:
    def loopy_graph(self, damping_values):
        rng = np.random.default_rng(31)
        batch_size = len(damping_values)
        graph = BatchedFactorGraph(batch_size)
        for name in ("a", "b", "c"):
            graph.add_variable(name, 2)
            graph.add_evidence(
                name, [random_density(rng, dim=2) for _ in range(batch_size)])
        for pair in (("a", "b"), ("b", "c"), ("c", "a")):
            graph.add_smoothness(*pair, noise_covariance=random_spd(rng, 2))
        return graph

    def test_heavier_damping_retires_later(self):
        damping = np.array([0.1, 0.5, 0.85])
        graph = self.loopy_graph(damping)
        beliefs, info = graph.run_belief_propagation(
            max_iterations=1000, damping=damping, return_info=True)
        assert np.all(info.converged)
        assert np.all(np.diff(info.iterations) > 0)
        assert beliefs["a"].batch_size == 3

    def test_retired_graphs_keep_their_results(self):
        damping = np.array([0.1, 0.85])
        graph = self.loopy_graph(damping)
        both = graph.run_belief_propagation(max_iterations=1000,
                                            damping=damping)
        solo = self.loopy_graph([0.1]).run_belief_propagation(
            max_iterations=1000, damping=np.array([0.1]))
        # Graph 0 retires long before graph 1; its beliefs must equal a
        # standalone run with the same evidence row.
        rng = np.random.default_rng(31)
        # (loopy_graph draws evidence per batch row from one stream, so the
        # solo graph's row 0 matches the pair's row 0 only when batch sizes
        # agree; instead compare against the loop engine, which shares rows.)
        loop = graph.run_belief_propagation(max_iterations=1000,
                                            damping=damping, engine="loop")
        assert_batches_close(both, loop)
        assert solo["a"].batch_size == 1

    def test_nonconvergence_raises(self):
        damping = np.array([0.0, 0.0])
        graph = self.loopy_graph(damping)
        with pytest.raises(RuntimeError, match="did not converge"):
            graph.run_belief_propagation(max_iterations=2, tolerance=1e-300,
                                         damping=damping)

    def test_return_info_requires_batched_engine(self):
        graph = self.loopy_graph([0.1])
        with pytest.raises(ValueError, match="batched"):
            graph.run_belief_propagation(damping=np.array([0.1]),
                                         engine="loop", return_info=True)


class TestValidation:
    def test_unknown_engine(self):
        graph = BatchedFactorGraph.star(
            "c", {"l": GaussianDensity([0.0], [[1.0]])}, np.eye(1))
        with pytest.raises(ValueError, match="engine"):
            graph.run_belief_propagation(engine="turbo")

    def test_damping_bounds(self):
        graph = BatchedFactorGraph.star(
            "c", {"l": GaussianDensity([0.0], [[1.0]])}, np.eye(1))
        with pytest.raises(ValueError, match="damping"):
            graph.run_belief_propagation(damping=1.0)
        with pytest.raises(ValueError, match="damping"):
            graph.run_belief_propagation(damping=np.array([0.2, 0.3]))

    def test_asymmetric_covariance_rejected(self):
        graph = BatchedFactorGraph(2)
        graph.add_variable("a", 2)
        graph.add_variable("b", 2)
        with pytest.raises(ValueError, match="symmetric"):
            graph.add_smoothness("a", "b",
                                 np.array([[1.0, 0.5], [0.2, 1.0]]))

    def test_non_psd_covariance_rejected(self):
        graph = BatchedFactorGraph(2)
        graph.add_variable("a", 2)
        graph.add_variable("b", 2)
        with pytest.raises(ValueError, match="positive semi-definite"):
            graph.add_smoothness("a", "b",
                                 np.array([[1.0, 0.0], [0.0, -2.0]]))

    def test_evidence_count_must_match_batch(self):
        graph = BatchedFactorGraph(3)
        graph.add_variable("a", 1)
        with pytest.raises(ValueError, match="one per graph"):
            graph.add_evidence("a", [GaussianDensity([0.0], [[1.0]])] * 2)

    def test_unknown_variable(self):
        graph = BatchedFactorGraph(1)
        with pytest.raises(KeyError):
            graph.add_evidence("ghost", GaussianDensity([0.0], [[1.0]]))

    def test_duplicate_variable(self):
        graph = BatchedFactorGraph(1)
        graph.add_variable("a", 1)
        with pytest.raises(ValueError, match="already exists"):
            graph.add_variable("a", 1)

    def test_conflicting_evidence_batch_sizes(self):
        density = GaussianDensity([0.0], [[1.0]])
        with pytest.raises(ValueError, match="conflicting"):
            BatchedFactorGraph.star(
                "c", {"l1": [density] * 2, "l2": [density] * 3}, np.eye(1))

    def test_no_information_variable(self):
        graph = BatchedFactorGraph(1)
        graph.add_variable("lonely", 1)
        with pytest.raises(RuntimeError, match="no information"):
            graph.run_belief_propagation()

    def test_scalar_graph_matches_batched_star(self):
        """The scalar engine and a B=1 batched star agree bit-for-bit."""
        rng = np.random.default_rng(41)
        leaves = {f"leaf{i}": random_density(rng) for i in range(3)}
        link = random_spd(rng)
        scalar = GaussianFactorGraph.star("center", leaves, link)
        scalar_beliefs = scalar.run_belief_propagation()
        batched = BatchedFactorGraph.star("center", leaves, link)
        batched_beliefs = batched.run_belief_propagation()
        for name, density in scalar_beliefs.items():
            np.testing.assert_allclose(batched_beliefs[name].mean[0],
                                       density.mean, rtol=RTOL)
            np.testing.assert_allclose(batched_beliefs[name].covariance[0],
                                       density.covariance, rtol=RTOL)
