"""Tests for distribution estimation and report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    empirical_pdf,
    format_speedups,
    format_table,
    gaussian_pdf,
    kde_pdf,
    normality_deviation,
    summarize,
)
from repro.experiments.runner import SpeedupSummary


class TestSummarize:
    def test_gaussian_sample_moments(self, rng):
        samples = rng.normal(10.0, 2.0, size=20000)
        summary = summarize(samples)
        assert summary.mean == pytest.approx(10.0, rel=0.02)
        assert summary.std == pytest.approx(2.0, rel=0.05)
        assert abs(summary.skewness) < 0.1
        assert summary.quantiles[0] < summary.quantiles[1] < summary.quantiles[2]
        assert summary.n_samples == 20000

    def test_skewed_sample_detected(self, rng):
        samples = rng.lognormal(0.0, 0.5, size=10000)
        assert summarize(samples).skewness > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize([1.0])
        with pytest.raises(ValueError):
            summarize([1.0, np.nan])


class TestPdfEstimates:
    def test_empirical_pdf_normalized(self, rng):
        samples = rng.normal(0.0, 1.0, size=5000)
        centers, density = empirical_pdf(samples, n_bins=30)
        widths = centers[1] - centers[0]
        assert np.sum(density) * widths == pytest.approx(1.0, rel=0.02)
        with pytest.raises(ValueError):
            empirical_pdf(samples, n_bins=1)

    def test_kde_pdf_peaks_near_mean(self, rng):
        samples = rng.normal(5.0, 1.0, size=3000)
        grid, density = kde_pdf(samples)
        assert abs(grid[np.argmax(density)] - 5.0) < 0.5

    def test_kde_requires_spread(self):
        with pytest.raises(ValueError):
            kde_pdf(np.ones(10))

    def test_gaussian_pdf_matches_kde_for_gaussian_data(self, rng):
        samples = rng.normal(0.0, 1.0, size=8000)
        grid, kde_density = kde_pdf(samples, n_points=100)
        _, normal_density = gaussian_pdf(samples.mean(), samples.std(), grid)
        assert np.max(np.abs(kde_density - normal_density)) < 0.05

    def test_gaussian_pdf_validation(self):
        with pytest.raises(ValueError):
            gaussian_pdf(0.0, 0.0, np.linspace(-1, 1, 10))


class TestNormalityDeviation:
    def test_gaussian_data_scores_low(self, rng):
        samples = rng.normal(0.0, 1.0, size=5000)
        assert normality_deviation(samples) < 0.05

    def test_skewed_data_scores_higher(self, rng):
        gaussian = rng.normal(1.0, 0.2, size=5000)
        skewed = rng.lognormal(0.0, 0.8, size=5000)
        assert normality_deviation(skewed) > normality_deviation(gaussian)


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 7]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in text
        with pytest.raises(ValueError):
            format_table(["one"], [["a", "b"]])

    def test_format_speedups(self):
        summary = SpeedupSummary(fast_method="bayesian", slow_method="lut",
                                 metric="delay", target_error_percent=4.0,
                                 fast_runs=2.0, slow_runs=30.0)
        text = format_speedups([summary], title="Speedups")
        assert "Speedups" in text
        assert "15.0x" in text
        assert "(no speedup could be computed)" in format_speedups([])
