"""Tests for the batched seed-parallel MAP solver (repro.core.batch_map).

The contract under test: `map_estimate_batch` minimizes exactly the Eq. 15
objective of the scalar `map_estimate`, seed by seed, so the two must agree
to solver tolerance across parameter regimes (interior optima, bound-active
optima, strong/weak priors) for both responses and output polarities --
while doing the whole seed batch in a handful of vectorized LM iterations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayes import GaussianDensity
from repro.core.batch_map import (
    BatchMapObservations,
    BatchMapResult,
    map_estimate_batch,
)
from repro.core.map_estimation import MapObservations, map_estimate
from repro.core.timing_model import (
    CompactTimingModel,
    DEFAULT_LOWER_BOUNDS,
    DEFAULT_UPPER_BOUNDS,
    TimingModelParameters,
)

#: Tight scipy tolerances so the reference converges at least as far as the
#: batched solver it is compared with.
_REFERENCE_TOLS = dict(ftol=1e-13, xtol=1e-13, gtol=1e-13)


def make_batch(truth: np.ndarray, n_seeds: int, k: int, seed: int,
               noise: float = 0.0, spread=(0.03, 0.2, 0.03, 0.03)):
    """Synthetic observations: per-seed perturbed truth on shared conditions."""
    rng = np.random.default_rng(seed)
    sin = rng.uniform(1e-12, 15e-12, k)
    cload = rng.uniform(0.3e-15, 6e-15, k)
    vdd = rng.uniform(0.65, 1.0, k)
    ieff = 4e-4 * (vdd - 0.3)
    model = CompactTimingModel()
    thetas = np.clip(truth + rng.normal(0.0, spread, size=(n_seeds, 4)),
                     DEFAULT_LOWER_BOUNDS, DEFAULT_UPPER_BOUNDS)
    response = np.array([
        model.evaluate(TimingModelParameters.from_array(t), sin, cload, vdd, ieff)
        for t in thetas])
    if noise:
        response *= 1.0 + noise * rng.standard_normal(response.shape)
    return sin, cload, vdd, ieff, response


def scipy_reference(prior, sin, cload, vdd, ieff, response, beta) -> np.ndarray:
    """Per-seed scipy MAP extraction (the parity reference)."""
    params = np.empty((response.shape[0], 4))
    for j in range(response.shape[0]):
        observations = MapObservations(sin=sin, cload=cload, vdd=vdd, ieff=ieff,
                                       response=response[j], beta=beta)
        params[j] = map_estimate(prior, observations,
                                 **_REFERENCE_TOLS).params.as_array()
    return params


class TestBatchMapObservations:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchMapObservations(sin=[1e-12, 2e-12], cload=[1e-15], vdd=[0.8, 0.9],
                                 ieff=[1e-4, 1e-4], response=[[1e-12, 2e-12]])
        with pytest.raises(ValueError):
            BatchMapObservations(sin=[1e-12], cload=[1e-15], vdd=[0.8],
                                 ieff=[1e-4], response=[[1e-12, 2e-12]])

    def test_positive_response_and_ieff_required(self):
        with pytest.raises(ValueError):
            BatchMapObservations(sin=[1e-12], cload=[1e-15], vdd=[0.8],
                                 ieff=[1e-4], response=[[0.0]])
        with pytest.raises(ValueError):
            BatchMapObservations(sin=[1e-12], cload=[1e-15], vdd=[0.8],
                                 ieff=[-1e-4], response=[[1e-12]])

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            BatchMapObservations(sin=[1e-12], cload=[1e-15], vdd=[0.8],
                                 ieff=[1e-4], response=[[1e-12]], beta=[-1.0])

    def test_properties(self):
        observations = BatchMapObservations(
            sin=[1e-12, 2e-12], cload=[1e-15, 2e-15], vdd=[0.8, 0.9],
            ieff=[1e-4, 2e-4], response=np.full((5, 2), 1e-12))
        assert observations.k == 2
        assert observations.n_seeds == 5

    def test_per_seed_ieff_accepted(self):
        observations = BatchMapObservations(
            sin=[1e-12], cload=[1e-15], vdd=[0.8],
            ieff=np.full((3, 1), 1e-4), response=np.full((3, 1), 1e-12))
        assert observations.ieff.shape == (3, 1)


class TestParityGrid:
    """Batched-vs-scipy agreement over seeds x arc regimes x responses."""

    # Distinct parameter regimes standing in for different cell arcs and
    # output polarities: delay-like and slew-like magnitudes of Table I,
    # fast and slow arcs.
    REGIMES = {
        "inv_fall_delay": np.array([0.40, 1.2, -0.25, 0.10]),
        "nand_rise_delay": np.array([0.55, 2.0, -0.20, 0.30]),
        "inv_fall_slew": np.array([0.90, 0.6, -0.35, 0.60]),
        "nor_rise_slew": np.array([1.40, 3.0, -0.10, 1.20]),
    }

    @pytest.mark.parametrize("regime", sorted(REGIMES))
    def test_parity(self, regime):
        truth = self.REGIMES[regime]
        seed = 100 + sorted(self.REGIMES).index(regime)
        sin, cload, vdd, ieff, response = make_batch(
            truth, n_seeds=40, k=5, seed=seed, noise=0.01)
        prior = GaussianDensity(truth, np.diag([0.05, 0.3, 0.05, 0.08]) ** 2)
        beta = np.full(5, 1e4)
        reference = scipy_reference(prior, sin, cload, vdd, ieff, response, beta)
        result = map_estimate_batch(
            prior, BatchMapObservations(sin=sin, cload=cload, vdd=vdd, ieff=ieff,
                                        response=response, beta=beta))
        assert result.converged.all()
        np.testing.assert_allclose(result.parameters, reference,
                                   rtol=1e-6, atol=5e-8)

    def test_parity_with_per_seed_ieff(self):
        truth = self.REGIMES["inv_fall_delay"]
        sin, cload, vdd, ieff, response = make_batch(truth, n_seeds=25, k=4,
                                                     seed=11, noise=0.01)
        rng = np.random.default_rng(1)
        ieff_matrix = ieff * (1.0 + 0.05 * rng.standard_normal((25, 4)))
        prior = GaussianDensity(truth, np.diag([0.05, 0.3, 0.05, 0.08]) ** 2)
        beta = np.full(4, 1e4)
        params = np.empty((25, 4))
        for j in range(25):
            observations = MapObservations(sin=sin, cload=cload, vdd=vdd,
                                           ieff=ieff_matrix[j],
                                           response=response[j], beta=beta)
            params[j] = map_estimate(prior, observations,
                                     **_REFERENCE_TOLS).params.as_array()
        result = map_estimate_batch(
            prior, BatchMapObservations(sin=sin, cload=cload, vdd=vdd,
                                        ieff=ieff_matrix, response=response,
                                        beta=beta))
        assert result.converged.all()
        np.testing.assert_allclose(result.parameters, params,
                                   rtol=1e-6, atol=5e-8)

    def test_parity_strong_data_weak_prior(self):
        truth = self.REGIMES["nand_rise_delay"]
        sin, cload, vdd, ieff, response = make_batch(truth, n_seeds=30, k=8,
                                                     seed=3, noise=0.005)
        prior = GaussianDensity(np.array([0.6, 2.5, 0.0, 0.5]), 0.5 * np.eye(4))
        beta = np.full(8, 1e6)
        reference = scipy_reference(prior, sin, cload, vdd, ieff, response, beta)
        result = map_estimate_batch(
            prior, BatchMapObservations(sin=sin, cload=cload, vdd=vdd, ieff=ieff,
                                        response=response, beta=beta))
        assert result.converged.all()
        np.testing.assert_allclose(result.parameters, reference,
                                   rtol=1e-6, atol=5e-8)

    def test_prior_weight_parity(self):
        truth = self.REGIMES["inv_fall_slew"]
        sin, cload, vdd, ieff, response = make_batch(truth, n_seeds=10, k=4,
                                                     seed=8, noise=0.01)
        prior = GaussianDensity(truth, np.diag([0.05, 0.3, 0.05, 0.08]) ** 2)
        beta = np.full(4, 1e4)
        params = np.empty((10, 4))
        for j in range(10):
            observations = MapObservations(sin=sin, cload=cload, vdd=vdd,
                                           ieff=ieff, response=response[j],
                                           beta=beta)
            params[j] = map_estimate(prior, observations, prior_weight=3.0,
                                     **_REFERENCE_TOLS).params.as_array()
        result = map_estimate_batch(
            prior, BatchMapObservations(sin=sin, cload=cload, vdd=vdd, ieff=ieff,
                                        response=response, beta=beta),
            prior_weight=3.0)
        np.testing.assert_allclose(result.parameters, params,
                                   rtol=1e-6, atol=5e-8)


class TestBounds:
    def test_bound_active_seeds_match_scipy(self):
        """Optima pressed against the lower bounds (Cpar, alpha at 0)."""
        truth = np.array([0.40, 0.05, -0.58, 0.005])
        sin, cload, vdd, ieff, response = make_batch(
            truth, n_seeds=30, k=5, seed=7,
            spread=(0.02, 0.1, 0.05, 0.02))
        # Prior mean outside the box pulls several seeds onto the bounds.
        prior = GaussianDensity(np.array([0.4, 0.0, -0.65, -0.05]),
                                np.diag([0.05, 0.2, 0.05, 0.05]) ** 2)
        beta = np.full(5, 1e5)
        reference = scipy_reference(prior, sin, cload, vdd, ieff, response, beta)
        result = map_estimate_batch(
            prior, BatchMapObservations(sin=sin, cload=cload, vdd=vdd, ieff=ieff,
                                        response=response, beta=beta))
        assert result.converged.all()
        lower = DEFAULT_LOWER_BOUNDS
        # The scenario must actually exercise the bounds to be meaningful.
        assert np.any(result.parameters[:, 2] <= lower[2] + 1e-9)
        assert np.any(result.parameters[:, 3] <= lower[3] + 1e-9)
        np.testing.assert_allclose(result.parameters, reference,
                                   rtol=2e-6, atol=5e-8)
        # Never leaves the feasible box.
        assert np.all(result.parameters >= lower - 1e-15)
        assert np.all(result.parameters <= DEFAULT_UPPER_BOUNDS + 1e-15)

    def test_custom_bounds_respected(self):
        truth = np.array([0.40, 1.2, -0.25, 0.10])
        sin, cload, vdd, ieff, response = make_batch(truth, n_seeds=8, k=4,
                                                     seed=2)
        model = CompactTimingModel(lower_bounds=np.array([0.5, 0.0, -0.6, 0.0]),
                                   upper_bounds=np.array([5.0, 20.0, 0.6, 10.0]))
        prior = GaussianDensity(truth, np.diag([0.05, 0.3, 0.05, 0.08]) ** 2)
        result = map_estimate_batch(
            prior, BatchMapObservations(sin=sin, cload=cload, vdd=vdd, ieff=ieff,
                                        response=response), model=model)
        assert np.all(result.parameters[:, 0] >= 0.5 - 1e-15)


class TestReporting:
    def make_result(self, max_iterations=60) -> BatchMapResult:
        truth = np.array([0.40, 1.2, -0.25, 0.10])
        sin, cload, vdd, ieff, response = make_batch(truth, n_seeds=12, k=4,
                                                     seed=5, noise=0.01)
        prior = GaussianDensity(truth, np.diag([0.05, 0.3, 0.05, 0.08]) ** 2)
        return map_estimate_batch(
            prior, BatchMapObservations(sin=sin, cload=cload, vdd=vdd, ieff=ieff,
                                        response=response),
            max_iterations=max_iterations)

    def test_converged_run_reports_no_stragglers(self):
        result = self.make_result()
        assert result.n_seeds == 12
        assert result.n_converged == 12
        assert result.unconverged_seeds().size == 0
        assert np.all(result.n_iterations >= 1)
        assert np.all(np.isfinite(result.cost))

    def test_iteration_starved_run_reports_unconverged_seeds(self):
        result = self.make_result(max_iterations=1)
        assert result.n_converged < result.n_seeds
        stragglers = result.unconverged_seeds()
        assert stragglers.size == result.n_seeds - result.n_converged
        assert not result.converged[stragglers].any()

    def test_fit_result_bridge(self):
        result = self.make_result()
        fit = result.fit_result(0)
        assert fit.converged
        assert fit.n_observations == 4
        assert fit.params.as_array() == pytest.approx(result.parameters[0])
        assert fit.mean_abs_relative_error == pytest.approx(
            result.mean_abs_relative_error()[0])

    def test_input_validation(self):
        result_args = self.make_result
        truth = np.array([0.40, 1.2, -0.25, 0.10])
        sin, cload, vdd, ieff, response = make_batch(truth, n_seeds=4, k=3,
                                                     seed=9)
        prior = GaussianDensity(truth, np.diag([0.05, 0.3, 0.05, 0.08]) ** 2)
        observations = BatchMapObservations(sin=sin, cload=cload, vdd=vdd,
                                            ieff=ieff, response=response)
        with pytest.raises(ValueError):
            map_estimate_batch(prior, observations, prior_weight=0.0)
        with pytest.raises(ValueError):
            map_estimate_batch(prior, observations, max_iterations=0)
        with pytest.raises(ValueError):
            map_estimate_batch(GaussianDensity([0.0, 0.0], np.eye(2)),
                               observations)
        assert result_args() is not None


class TestStatisticalFlowSolverSwitch:
    """The characterizer produces matching ensembles through both solvers."""

    @pytest.fixture(scope="class")
    def characterized(self, tech28, inv_cell, delay_prior, slew_prior):
        from repro.core.statistical_flow import StatisticalCharacterizer

        variation = tech28.variation.sample(16, rng=21)
        conditions = None
        results = {}
        for solver in ("batched", "scipy"):
            flow = StatisticalCharacterizer(tech28, inv_cell, delay_prior,
                                            slew_prior, n_seeds=16,
                                            solver=solver)
            flow.use_variation(variation)
            if conditions is None:
                from repro.characterization.input_space import InputSpace

                conditions = InputSpace(tech28).sample_lhs(
                    3, np.random.default_rng(4))
            results[solver] = flow.characterize(conditions)
        return results

    def test_solver_recorded(self, characterized):
        assert characterized["batched"].solver == "batched"
        assert characterized["scipy"].solver == "scipy"

    def test_parameter_parity_end_to_end(self, characterized):
        np.testing.assert_allclose(
            characterized["batched"].delay_parameters,
            characterized["scipy"].delay_parameters, rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(
            characterized["batched"].slew_parameters,
            characterized["scipy"].slew_parameters, rtol=1e-4, atol=1e-6)

    def test_convergence_flags_only_on_batched(self, characterized):
        assert characterized["batched"].delay_converged is not None
        assert characterized["batched"].delay_converged.all()
        assert characterized["scipy"].delay_converged is None
        assert characterized["scipy"].unconverged_seeds().size == 0

    def test_invalid_solver_rejected(self, tech28, inv_cell, delay_prior,
                                     slew_prior):
        from repro.core.statistical_flow import StatisticalCharacterizer

        with pytest.raises(ValueError):
            StatisticalCharacterizer(tech28, inv_cell, delay_prior, slew_prior,
                                     solver="magic")
        flow = StatisticalCharacterizer(tech28, inv_cell, delay_prior,
                                        slew_prior, n_seeds=4)
        with pytest.raises(ValueError):
            flow.characterize(2, solver="magic")


class TestStackedSolve:
    """map_estimate_stacked must reproduce per-block map_estimate_batch."""

    def make_blocks(self, n_blocks=3, n_seeds=6, k=4):
        truth = np.array([0.45, 1.2, -0.2, 0.12])
        blocks = []
        for index in range(n_blocks):
            sin, cload, vdd, ieff, response = make_batch(
                truth, n_seeds=n_seeds, k=k, seed=30 + index, noise=0.01)
            blocks.append(BatchMapObservations(
                sin=sin, cload=cload, vdd=vdd, ieff=ieff, response=response,
                beta=np.full(k, 2.0 + index)))
        return blocks

    def prior(self, scale=0.1):
        mean = np.array([0.45, 1.2, -0.2, 0.12])
        return GaussianDensity(mean, scale * np.eye(4))

    def test_shared_prior_matches_per_block(self):
        from repro.core.batch_map import map_estimate_stacked

        blocks = self.make_blocks()
        prior = self.prior()
        stacked = map_estimate_stacked(prior, blocks)
        assert len(stacked) == len(blocks)
        for block, result in zip(blocks, stacked):
            reference = map_estimate_batch(prior, block)
            np.testing.assert_allclose(result.parameters,
                                       reference.parameters, rtol=1e-12)
            assert result.n_observations == block.k
            assert result.n_seeds == block.n_seeds
            assert result.converged.all()

    def test_per_block_priors_match_per_block_solves(self):
        from repro.core.batch_map import map_estimate_stacked

        blocks = self.make_blocks()
        priors = [self.prior(0.05), self.prior(0.2), self.prior(0.8)]
        stacked = map_estimate_stacked(priors, blocks)
        for prior, block, result in zip(priors, blocks, stacked):
            reference = map_estimate_batch(prior, block)
            np.testing.assert_allclose(result.parameters,
                                       reference.parameters, rtol=1e-10)

    def test_chunked_stack_matches_unchunked(self):
        from repro.core.batch_map import map_estimate_stacked

        blocks = self.make_blocks()
        prior = self.prior()
        unchunked = map_estimate_stacked(prior, blocks)
        chunked = map_estimate_stacked(prior, blocks, max_bytes=1024)
        for a, b in zip(unchunked, chunked):
            np.testing.assert_allclose(a.parameters, b.parameters, rtol=1e-12)

    def test_two_dimensional_conditions_accepted(self):
        truth = np.array([0.45, 1.2, -0.2, 0.12])
        sin, cload, vdd, ieff, response = make_batch(truth, n_seeds=4, k=3,
                                                     seed=9)
        rows = response.shape
        observations = BatchMapObservations(
            sin=np.broadcast_to(sin, rows).copy(),
            cload=np.broadcast_to(cload, rows).copy(),
            vdd=np.broadcast_to(vdd, rows).copy(),
            ieff=ieff, response=response)
        reference = map_estimate_batch(self.prior(), BatchMapObservations(
            sin=sin, cload=cload, vdd=vdd, ieff=ieff, response=response))
        result = map_estimate_batch(self.prior(), observations)
        np.testing.assert_allclose(result.parameters, reference.parameters,
                                   rtol=1e-12)

    def test_input_validation(self):
        from repro.core.batch_map import map_estimate_stacked

        blocks = self.make_blocks(n_blocks=2)
        with pytest.raises(ValueError):
            map_estimate_stacked(self.prior(), [])
        with pytest.raises(ValueError):
            map_estimate_stacked([self.prior()], blocks)
        short = self.make_blocks(n_blocks=1, k=2)
        with pytest.raises(ValueError):
            map_estimate_stacked(self.prior(), [blocks[0], short[0]])
        with pytest.raises(ValueError):
            BatchMapObservations(sin=np.full((3, 2), 1e-12),
                                 cload=[1e-15, 2e-15], vdd=[0.8, 0.9],
                                 ieff=[1e-4, 2e-4],
                                 response=np.full((2, 2), 1e-12))
