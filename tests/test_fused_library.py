"""Tests for the fused library characterization pipeline.

The fused pipeline must be *indistinguishable* from the per-arc pipeline in
everything but wall clock: bit-identical ``LibraryCharacterization``
entries, identical :class:`SimulationCounter` charges and identical ledger
run counts, across every ``pipeline x concurrency`` combination, plus cache
reuse when a fused pass is rerun warm.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.runtime as runtime
from repro import RunLedger, SimulationCounter, get_technology, make_cell
from repro.analysis import format_ledger
from repro.cells.equivalent_inverter import reduce_cell_cached
from repro.cells.library import StandardCellLibrary, Transition
from repro.core.library_flow import PIPELINES, characterize_library
from repro.spice import sweep as sweep_module
from repro.spice.sweep import sweep_conditions
from repro.spice.testbench import get_simulation_cache


def footprint_twins(n_cells: int = 4):
    """``n_cells`` cells cycling over two templates, renamed per index.

    Footprint twins (identical devices, different logic names) are the
    realistic library shape the signature grouping exploits: their arcs
    share equivalent-inverter signatures while keeping distinct cache
    identities.
    """
    templates = ("INV_X1", "NAND2_X1")
    cells = []
    for index in range(n_cells):
        base = make_cell(templates[index % len(templates)])
        cells.append(dataclasses.replace(base, name=f"{base.name}_C{index}"))
    return cells


@pytest.fixture(scope="module")
def tech28_module():
    return get_technology("n28_bulk")


@pytest.fixture(scope="module")
def priors_module(tech28_module):
    from repro.core.prior_learning import (
        characterize_historical_library,
        learn_prior,
        shared_reference_conditions,
    )

    unit = shared_reference_conditions(8, rng=7)
    historical = [characterize_historical_library(
        get_technology("n45_bulk"),
        [make_cell("INV_X1"), make_cell("NAND2_X1")],
        unit_conditions=unit, transitions=(Transition.FALL,))]
    return (learn_prior(historical, response="delay"),
            learn_prior(historical, response="slew"))


@pytest.fixture(scope="module")
def twin_library():
    return StandardCellLibrary("twins", footprint_twins(4))


def run_library(tech, library, priors, *, pipeline, concurrency="serial",
                cold=True, **kwargs):
    """One characterization run with its own counter and ledger."""
    if cold:
        get_simulation_cache().clear()
    counter = SimulationCounter()
    ledger = RunLedger()
    result = characterize_library(
        tech, library, priors[0], priors[1], conditions=2, n_seeds=8,
        rng=5, counter=counter, ledger=ledger, pipeline=pipeline,
        concurrency=concurrency, **kwargs)
    return result, counter, ledger


def assert_entries_equal(a, b, exact=True):
    assert len(a.entries) == len(b.entries)
    for left, right in zip(a.entries, b.entries):
        assert left.cell_name == right.cell_name
        assert left.arc.name == right.arc.name
        assert left.statistical.fitting_conditions == \
            right.statistical.fitting_conditions
        assert left.statistical.simulation_runs == \
            right.statistical.simulation_runs
        if exact:
            np.testing.assert_array_equal(left.statistical.delay_parameters,
                                          right.statistical.delay_parameters)
            np.testing.assert_array_equal(left.statistical.slew_parameters,
                                          right.statistical.slew_parameters)
        else:
            np.testing.assert_allclose(left.statistical.delay_parameters,
                                       right.statistical.delay_parameters,
                                       rtol=1e-12)
            np.testing.assert_allclose(left.statistical.slew_parameters,
                                       right.statistical.slew_parameters,
                                       rtol=1e-12)


class TestFusedParity:
    def test_pipeline_constant(self):
        assert PIPELINES == ("fused", "per_arc")

    def test_fused_matches_per_arc_bitwise(self, tech28_module, twin_library,
                                           priors_module):
        per_arc, c_per_arc, l_per_arc = run_library(
            tech28_module, twin_library, priors_module, pipeline="per_arc")
        fused, c_fused, l_fused = run_library(
            tech28_module, twin_library, priors_module, pipeline="fused")

        assert per_arc.pipeline == "per_arc"
        assert fused.pipeline == "fused"
        # Cross-pipeline parameter parity is pinned at rtol 1e-12: the
        # stacked solve hands BLAS different batch shapes than the per-arc
        # solves, which can shift the last ulp of the prior matmuls (and
        # with it a marginal seed's iteration count) without moving the
        # converged parameters.
        assert_entries_equal(per_arc, fused, exact=False)
        assert fused.simulation_runs == per_arc.simulation_runs
        # Identical counter charges, by label.
        assert c_fused.total == c_per_arc.total
        assert c_fused.by_label() == c_per_arc.by_label()
        # Identical ledger run counts.
        assert l_fused.simulations_by_label() == \
            l_per_arc.simulations_by_label()
        assert l_fused.metrics()["solver_iterations"] > 0
        assert l_per_arc.metrics()["solver_iterations"] > 0

    @pytest.mark.parametrize("concurrency", ["chunked", "process"])
    def test_fused_identical_across_concurrency(self, tech28_module,
                                                twin_library, priors_module,
                                                concurrency):
        serial, c_serial, l_serial = run_library(
            tech28_module, twin_library, priors_module, pipeline="fused")
        other, c_other, l_other = run_library(
            tech28_module, twin_library, priors_module, pipeline="fused",
            concurrency=concurrency,
            **({"max_workers": 2} if concurrency == "process" else {}))
        assert_entries_equal(serial, other)
        assert c_other.by_label() == c_serial.by_label()
        assert l_other.simulations_by_label() == \
            l_serial.simulations_by_label()
        assert l_other.metrics()["solver_iterations"] == \
            l_serial.metrics()["solver_iterations"]

    @pytest.mark.parametrize("concurrency", ["serial", "chunked", "process"])
    def test_per_arc_identical_across_concurrency(self, tech28_module,
                                                  twin_library, priors_module,
                                                  concurrency):
        fused, c_fused, _ = run_library(
            tech28_module, twin_library, priors_module, pipeline="fused")
        per_arc, c_per_arc, _ = run_library(
            tech28_module, twin_library, priors_module, pipeline="per_arc",
            concurrency=concurrency,
            **({"max_workers": 2} if concurrency == "process" else {}))
        assert_entries_equal(fused, per_arc, exact=False)
        assert c_per_arc.by_label() == c_fused.by_label()

    def test_scipy_solver_parity(self, tech28_module, priors_module):
        library = [make_cell("INV_X1")]
        fused, _, _ = run_library(tech28_module, library, priors_module,
                                  pipeline="fused", solver="scipy")
        per_arc, _, _ = run_library(tech28_module, library, priors_module,
                                    pipeline="per_arc", solver="scipy")
        assert fused.solver == "scipy"
        assert_entries_equal(fused, per_arc, exact=False)

    def test_memory_budget_preserves_results(self, tech28_module,
                                             twin_library, priors_module):
        reference, _, _ = run_library(
            tech28_module, twin_library, priors_module, pipeline="fused")
        budgeted, _, _ = run_library(
            tech28_module, twin_library, priors_module, pipeline="fused",
            max_bytes=64 * 1024)
        assert_entries_equal(reference, budgeted, exact=False)

    def test_invalid_pipeline_rejected(self, tech28_module, twin_library,
                                       priors_module):
        with pytest.raises(ValueError):
            characterize_library(tech28_module, twin_library, priors_module[0],
                                 priors_module[1], pipeline="turbo")


class TestSignatureGrouping:
    def test_footprint_twins_share_groups(self, tech28_module, twin_library,
                                          priors_module):
        _, _, ledger = run_library(tech28_module, twin_library, priors_module,
                                   pipeline="fused")
        metrics = ledger.metrics()
        # 4 cells x 2 transitions = 8 arcs, but only 2 templates x 2
        # polarities = 4 distinct signatures.
        assert metrics["fused_signature_groups"] == 4
        assert metrics["fused_rows_simulated"] == 8 * 2
        assert metrics["fused_rows_cached"] == 0
        sizes = ledger.group_sizes()["fused:signature_rows"]
        assert sizes == [4, 4, 4, 4]

    def test_group_sizes_render_in_ledger(self, tech28_module, twin_library,
                                          priors_module):
        _, _, ledger = run_library(tech28_module, twin_library, priors_module,
                                   pipeline="fused")
        text = format_ledger(ledger, title="fused run")
        assert "fused:signature_rows" in text
        assert "fused:plan" in text
        assert "fused:solve" in text

    def test_shared_grid_deduplicates_twin_rows(self, tech28_module,
                                                twin_library, priors_module):
        """Footprint twins on a shared condition grid simulate once."""
        from repro.characterization.input_space import InputSpace

        grid = InputSpace(tech28_module).sample_lhs(2, np.random.default_rng(3))
        get_simulation_cache().clear()
        counter_fused = SimulationCounter()
        ledger = RunLedger()
        fused = characterize_library(
            tech28_module, twin_library, priors_module[0], priors_module[1],
            conditions=grid, n_seeds=8, rng=5, counter=counter_fused,
            ledger=ledger, pipeline="fused")
        metrics = ledger.metrics()
        # 8 arcs x 2 conditions = 16 rows, but 4 signatures x 2 conditions
        # = 8 unique simulations.
        assert metrics["fused_rows_total"] == 16
        assert metrics["fused_rows_simulated"] == 8
        assert metrics["fused_rows_deduplicated"] == 8
        get_simulation_cache().clear()
        counter_per_arc = SimulationCounter()
        per_arc = characterize_library(
            tech28_module, twin_library, priors_module[0], priors_module[1],
            conditions=grid, n_seeds=8, rng=5, counter=counter_per_arc,
            pipeline="per_arc")
        assert_entries_equal(fused, per_arc, exact=False)
        # Dedup never changes what a flow *requires*: charges stay identical.
        assert counter_fused.by_label() == counter_per_arc.by_label()

    def test_signature_excludes_names(self, tech28_module):
        variation = tech28_module.variation.sample(4, 3)
        twin_a, twin_b = footprint_twins(2)[:1] + [footprint_twins(4)[2]]
        arc_a = twin_a.arc(twin_a.input_pins[0], Transition.FALL)
        arc_b = twin_b.arc(twin_b.input_pins[0], Transition.FALL)
        inv_a = reduce_cell_cached(twin_a, tech28_module, arc=arc_a,
                                   variation=variation)
        inv_b = reduce_cell_cached(twin_b, tech28_module, arc=arc_b,
                                   variation=variation)
        assert twin_a.name != twin_b.name
        assert inv_a.simulation_signature() == inv_b.simulation_signature()
        # Opposite polarity must not share a group.
        arc_rise = twin_a.arc(twin_a.input_pins[0], Transition.RISE)
        inv_rise = reduce_cell_cached(twin_a, tech28_module, arc=arc_rise,
                                      variation=variation)
        assert inv_rise.simulation_signature() != inv_a.simulation_signature()


class TestCacheReuse:
    def test_warm_fused_rerun_replays_cache(self, tech28_module, twin_library,
                                            priors_module):
        cold, counter_cold, ledger_cold = run_library(
            tech28_module, twin_library, priors_module, pipeline="fused")
        hits_before = runtime.cache_stats()["simulation"].hits
        warm, counter_warm, ledger_warm = run_library(
            tech28_module, twin_library, priors_module, pipeline="fused",
            cold=False)
        assert_entries_equal(cold, warm)
        metrics = ledger_warm.metrics()
        assert metrics["fused_rows_cached"] == metrics["fused_rows_total"]
        assert metrics["fused_rows_simulated"] == 0
        assert metrics.get("fused_signature_groups", 0) == 0
        assert runtime.cache_stats()["simulation"].hits > hits_before
        # Runs are still charged in full: counters measure required runs.
        assert counter_warm.by_label() == counter_cold.by_label()
        assert ledger_warm.simulations_by_label() == \
            ledger_cold.simulations_by_label()

    def test_per_arc_replays_fused_cache(self, tech28_module, twin_library,
                                         priors_module):
        fused, _, _ = run_library(tech28_module, twin_library, priors_module,
                                  pipeline="fused")
        hits_before = runtime.cache_stats()["simulation"].hits
        per_arc, _, _ = run_library(tech28_module, twin_library, priors_module,
                                    pipeline="per_arc", cold=False)
        assert_entries_equal(fused, per_arc, exact=False)
        assert runtime.cache_stats()["simulation"].hits > hits_before


class TestSweepShortCircuit:
    def test_full_cache_hit_skips_the_engine(self, tech28_module, monkeypatch):
        cell = make_cell("INV_X1")
        variation = tech28_module.variation.sample(4, 11)
        conditions = [(20e-12, 1e-15, 0.9), (40e-12, 2e-15, 0.85)]
        get_simulation_cache().clear()
        warm = sweep_conditions(cell, tech28_module, conditions,
                                variation=variation)

        def exploding(*args, **kwargs):
            raise AssertionError("full cache hit must not reach the engine")

        monkeypatch.setattr(sweep_module, "simulate_arc_transitions",
                            exploding)
        monkeypatch.setattr(sweep_module, "reduce_cell_cached", exploding)
        replay = sweep_conditions(cell, tech28_module, conditions,
                                  variation=variation)
        for a, b in zip(warm, replay):
            np.testing.assert_array_equal(a.delay, b.delay)
            np.testing.assert_array_equal(a.output_slew, b.output_slew)
            assert a.arc == b.arc

    def test_partial_hit_still_simulates_missing_rows(self, tech28_module):
        cell = make_cell("INV_X1")
        variation = tech28_module.variation.sample(4, 11)
        get_simulation_cache().clear()
        first = sweep_conditions(cell, tech28_module, [(20e-12, 1e-15, 0.9)],
                                 variation=variation)
        both = sweep_conditions(
            cell, tech28_module, [(20e-12, 1e-15, 0.9), (40e-12, 2e-15, 0.85)],
            variation=variation)
        np.testing.assert_array_equal(first[0].delay, both[0].delay)
        assert np.all(np.asarray(both[1].delay) > 0.0)

    def test_runs_charged_even_on_full_hit(self, tech28_module):
        cell = make_cell("INV_X1")
        variation = tech28_module.variation.sample(4, 11)
        conditions = [(20e-12, 1e-15, 0.9)]
        get_simulation_cache().clear()
        sweep_conditions(cell, tech28_module, conditions, variation=variation)
        counter = SimulationCounter()
        sweep_conditions(cell, tech28_module, conditions, variation=variation,
                         counter=counter)
        assert counter.total == 4
