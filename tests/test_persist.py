"""Durable store tests: crash-safe commits, quarantine, and the cache tier.

PR 8's tentpole contract, exercised bottom-up: the canonical key digests
are stable across processes and ``PYTHONHASHSEED`` values (the property
that makes on-disk keys valid at all), :class:`DiskStore` survives
truncation, bit-rot, full disks and stale locks by quarantining or
degrading -- never by raising -- and the optional write-through tier under
:class:`LruCache` warm-starts a cleared cache from disk without disturbing
the memory-tier counters the accounting tests pin.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

import repro.runtime as runtime
from repro.runtime import persist
from repro.runtime.accounting import RunLedger
from repro.runtime.cache import LruCache, _REGISTRY
from repro.runtime.faultinject import FaultSpec, inject
from repro.runtime.persist import DiskStore, stable_key_digest


# ---------------------------------------------------------------------------
# Canonical key digests
# ---------------------------------------------------------------------------
class TestStableKeyDigest:
    def test_deterministic_and_type_tagged(self):
        key = ("INV_X1", 1.5, 3, None, True, b"sig", (2.0, "nested"))
        assert stable_key_digest(key) == stable_key_digest(key)
        # Length prefixes keep adjacent strings from sliding into each other.
        assert stable_key_digest(("ab", "c")) != stable_key_digest(("a", "bc"))
        # Type tags keep look-alike scalars apart.
        assert stable_key_digest((1,)) != stable_key_digest((1.0,))
        assert stable_key_digest((True,)) != stable_key_digest((1,))
        assert stable_key_digest(("1",)) != stable_key_digest((1,))
        assert stable_key_digest((None,)) != stable_key_digest(("None",))

    def test_ndarray_content_addressed(self):
        a = np.arange(6, dtype=float).reshape(2, 3)
        assert stable_key_digest((a,)) == stable_key_digest((a.copy(),))
        assert stable_key_digest((a,)) != stable_key_digest((a.ravel(),))
        assert stable_key_digest((a,)) != stable_key_digest((a + 1,))

    def test_rejects_unencodable_types(self):
        with pytest.raises(TypeError, match="canonicalize"):
            stable_key_digest((object(),))

    def test_stable_across_python_hash_seeds(self):
        """The cross-process key-stability contract: same digest whatever
        ``PYTHONHASHSEED`` the interpreter drew, for a representative
        simulation-cache condition key."""
        script = (
            "from repro.spice.testbench import SimulationCache\n"
            "from repro.cells import make_cell, Transition\n"
            "from repro.technology import get_technology\n"
            "from repro.runtime.persist import stable_key_digest\n"
            "cell = make_cell('INV_X1'); tech = get_technology('n28_bulk')\n"
            "arc = cell.arc(cell.input_pins[0], Transition.FALL)\n"
            "prefix = SimulationCache.arc_prefix(cell, tech, arc, 'nominal')\n"
            "key = SimulationCache.condition_key(prefix, 5e-12, 1e-15, 0.9, 64)\n"
            "print(stable_key_digest(key))\n"
        )
        digests = set()
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                [os.path.join(os.path.dirname(__file__), "..", "src")]
                + env.get("PYTHONPATH", "").split(os.pathsep))
            out = subprocess.run([sys.executable, "-c", script], env=env,
                                 capture_output=True, text=True, check=True)
            digests.add(out.stdout.strip())
        assert len(digests) == 1
        assert len(digests.pop()) == 64  # sha256 hex

    def test_fingerprints_are_sha256(self):
        from repro.technology import get_technology

        tech = get_technology("n28_bulk")
        assert len(tech.fingerprint()) == 64
        assert len(tech.variation.sample(3, rng=1).fingerprint()) == 64


# ---------------------------------------------------------------------------
# DiskStore basics
# ---------------------------------------------------------------------------
class TestDiskStore:
    def test_roundtrip_preserves_bits(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        delay = np.random.default_rng(0).normal(size=17)
        slew = np.random.default_rng(1).normal(size=17)
        assert store.put(("k", 1.25), (delay, slew))
        got_delay, got_slew = store.get(("k", 1.25))
        np.testing.assert_array_equal(got_delay, delay)
        np.testing.assert_array_equal(got_slew, slew)
        assert store.stats().hits == 1

    def test_miss_returns_default(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        assert store.get(("absent",)) is None
        assert store.get(("absent",), default=42) == 42
        assert store.stats().misses == 2

    def test_put_is_idempotent(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        assert store.put(("k",), 1) is True
        assert store.put(("k",), 1) is False
        assert store.stats().writes == 1

    def test_reopen_scans_inventory(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        store.put(("a",), np.arange(4.0))
        store.put(("b",), np.arange(8.0))
        reopened = DiskStore(tmp_path / "s")
        assert len(reopened) == 2
        assert ("a",) in reopened
        np.testing.assert_array_equal(reopened.get(("b",)), np.arange(8.0))
        assert reopened.stats().current_bytes == store.stats().current_bytes

    def test_orphaned_tmp_files_reaped_on_open(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        orphan = tmp_path / "s" / "tmp" / "dead.partial"
        orphan.write_bytes(b"half-written")
        reopened = DiskStore(tmp_path / "s")
        assert not orphan.exists()
        assert len(reopened) == 0

    def test_discard_and_clear(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        store.put(("a",), 1)
        store.put(("b",), 2)
        store.discard(("a",))
        assert store.get(("a",)) is None
        store.clear()
        assert len(store) == 0
        assert store.get(("b",)) is None

    def test_eviction_drops_oldest_first(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        for index in range(6):
            store.put(("k", index), np.full(128, float(index)))
            # Strictly increasing mtimes so "oldest" is well defined even on
            # coarse-timestamp filesystems.
            entry = store._entry_path(stable_key_digest(("k", index)))
            os.utime(entry, (index, index))
        per_entry = store.stats().current_bytes // 6
        store.set_max_bytes(3 * per_entry)
        assert store.stats().evictions >= 3
        assert store.get(("k", 5)) is not None  # newest survives
        assert store.get(("k", 0)) is None      # oldest went first

    def test_quarantined_entries_counts_files(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        store.put(("k",), 1)
        path = store._entry_path(stable_key_digest(("k",)))
        path.write_bytes(b"garbage")
        assert store.get(("k",)) is None
        assert store.quarantined_entries() == 1


# ---------------------------------------------------------------------------
# Corruption paths
# ---------------------------------------------------------------------------
class TestCorruptionQuarantine:
    def _entry_of(self, store, key):
        return store._entry_path(stable_key_digest(key))

    def test_truncated_entry_is_quarantined_not_raised(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        store.put(("k",), np.arange(64.0))
        path = self._entry_of(store, ("k",))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert store.get(("k",)) is None
        stats = store.stats()
        assert stats.quarantined == 1 and stats.misses == 1
        assert not path.exists()  # moved aside, never retried
        assert store.quarantined_entries() == 1
        # The key can be re-written and served again afterwards.
        store.put(("k",), np.arange(64.0))
        np.testing.assert_array_equal(store.get(("k",)), np.arange(64.0))

    def test_bitflipped_entry_fails_checksum(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        store.put(("k",), np.arange(64.0))
        path = self._entry_of(store, ("k",))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01
        path.write_bytes(bytes(data))
        assert store.get(("k",)) is None
        assert store.stats().quarantined == 1

    def test_wrong_magic_and_version_skew(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        for index, mutation in enumerate((b"XXXX", None)):
            key = ("k", index)
            store.put(key, 1)
            path = self._entry_of(store, key)
            data = bytearray(path.read_bytes())
            if mutation is not None:
                data[:4] = mutation  # wrong magic
            else:
                data[4] ^= 0xFF      # wrong schema version
            path.write_bytes(bytes(data))
            assert store.get(key) is None
        assert store.stats().quarantined == 2


# ---------------------------------------------------------------------------
# Injected filesystem faults (torn / bitflip / enospc / stale lock)
# ---------------------------------------------------------------------------
class TestInjectedFilesystemFaults:
    def test_enospc_degrades_put_to_noop(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        with inject([FaultSpec(site=persist.SITE_STORE_WRITE, kind="enospc",
                               at_calls=(0,))]) as injector:
            assert store.put(("k",), 1) is False
            assert store.put(("k2",), 2) is True  # next write succeeds
        assert [e.kind for e in injector.events] == ["enospc"]
        stats = store.stats()
        assert stats.write_errors == 1 and stats.writes == 1

    def test_torn_write_quarantined_on_read(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        with inject([FaultSpec(site=persist.SITE_STORE_COMMIT, kind="torn",
                               at_calls=(0,))]):
            store.put(("k",), np.arange(64.0))
        assert store.get(("k",)) is None
        assert store.stats().quarantined == 1

    def test_bitflip_fault_quarantined_on_read(self, tmp_path):
        store = DiskStore(tmp_path / "s")
        with inject([FaultSpec(site=persist.SITE_STORE_COMMIT, kind="bitflip",
                               at_calls=(0,))]):
            store.put(("k",), np.arange(64.0))
        assert store.get(("k",)) is None
        assert store.stats().quarantined == 1

    def test_stale_lock_is_broken_not_waited_on(self, tmp_path):
        store = DiskStore(tmp_path / "s", max_bytes=None)
        store.put(("a",), np.full(256, 1.0))
        store.put(("b",), np.full(256, 2.0))
        with inject([FaultSpec(site=persist.SITE_STORE_LOCK,
                               kind="stale_lock", at_calls=(0,))]):
            store.set_max_bytes(1)  # forces eviction through the lock
        stats = store.stats()
        assert stats.stale_locks_broken == 1
        assert stats.evictions >= 1
        assert not (tmp_path / "s" / ".lock").exists()

    def test_live_foreign_lock_skips_maintenance(self, tmp_path):
        store = DiskStore(tmp_path / "s", stale_lock_s=3600.0)
        store.put(("a",), np.full(256, 1.0))
        # A fresh lock naming a live pid (our own parent) must be honored.
        (tmp_path / "s" / ".lock").write_text(
            f"{os.getppid()}:{__import__('time').time()}")
        store.set_max_bytes(1)
        assert store.stats().evictions == 0
        assert len(store) == 1

    def test_stale_lock_broken_under_concurrent_writers(self, tmp_path):
        """Two genuinely concurrent writer threads against one abandoned lock.

        Each writer holds its own :class:`DiskStore` handle over the same
        directory (the cross-writer shape the maintenance lock exists
        for); a dead writer's stale lock sits in front of the eviction
        path.  Both live writers keep putting over-budget entries, so both
        contend on the lock: the stale lock is broken (both writers may
        race to observe it and each charge a break, so the count is one
        or two — never zero, never unbounded), neither deadlocks, and
        every surviving entry reads back bit-identically afterwards.
        """
        import threading

        stores = [DiskStore(tmp_path / "s", max_bytes=3000)
                  for _ in range(2)]
        # The abandoned lock: a pid that cannot be alive, a timestamp far
        # in the past (the same shape plant_stale_lock drops).
        (tmp_path / "s" / ".lock").write_text("999999999:0.0")
        errors = []
        barrier = threading.Barrier(2)

        def writer(tid):
            try:
                barrier.wait()
                for index in range(20):
                    # ~2 KiB each: every few puts overflow the budget and
                    # force an eviction pass through the lock.
                    stores[tid].put((tid, index), np.full(256, float(index)))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(tid,))
                   for tid in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors
        broken = sum(store.stats().stale_locks_broken for store in stores)
        assert 1 <= broken <= 2  # broken, with at most one racing double-observe
        assert sum(store.stats().evictions for store in stores) >= 1
        assert not (tmp_path / "s" / ".lock").exists()
        # A fresh handle scans the surviving inventory; every entry reads
        # back bit-identically.
        reopened = DiskStore(tmp_path / "s", max_bytes=3000)
        survivors = 0
        for tid in range(2):
            for index in range(20):
                value = reopened.get((tid, index))
                if value is not None:
                    survivors += 1
                    np.testing.assert_array_equal(
                        value, np.full(256, float(index)))
        assert survivors == len(reopened) > 0


# ---------------------------------------------------------------------------
# The write-through tier under LruCache
# ---------------------------------------------------------------------------
class TestDurableCacheTier:
    def test_attach_requires_durable_flag(self, tmp_path):
        cache = LruCache("persist_local", max_entries=4)
        with pytest.raises(ValueError, match="not durable"):
            cache.attach_disk_store(DiskStore(tmp_path / "s"))

    def test_write_through_and_disk_fallback(self, tmp_path):
        cache = LruCache("persist_t1", max_entries=4, durable=True)
        cache.attach_disk_store(DiskStore(tmp_path / "s"))
        value = np.arange(9.0)
        cache.put(("k",), value)
        cache.clear()  # memory gone; disk survives (new-process semantics)
        np.testing.assert_array_equal(cache.get(("k",)), value)
        stats = cache.stats()
        assert stats.disk_attached
        assert stats.disk_hits == 1 and stats.disk_writes == 1
        # The fallback promoted the entry back into memory.
        assert cache.get(("k",)) is not None
        assert cache.stats().hits == 1

    def test_memory_counters_unchanged_without_disk(self, tmp_path):
        plain = LruCache("persist_t2", max_entries=4)
        tiered = LruCache("persist_t3", max_entries=4, durable=True)
        tiered.attach_disk_store(DiskStore(tmp_path / "s"))
        for cache in (plain, tiered):
            cache.put(("k",), 1)
            cache.get(("k",))
            cache.get(("missing",))
        for field in ("hits", "misses", "evictions", "entries"):
            assert getattr(plain.stats(), field) == getattr(tiered.stats(), field)

    def test_detach_restores_memory_only(self, tmp_path):
        cache = LruCache("persist_t4", max_entries=4, durable=True)
        cache.attach_disk_store(DiskStore(tmp_path / "s"))
        cache.put(("k",), 1)
        cache.detach_disk_store()
        cache.clear()
        assert cache.get(("k",)) is None
        assert cache.disk_store is None

    def test_corrupt_disk_entry_is_a_cache_miss(self, tmp_path):
        cache = LruCache("persist_t5", max_entries=4, durable=True)
        store = DiskStore(tmp_path / "s")
        cache.attach_disk_store(store)
        cache.put(("k",), np.arange(8.0))
        cache.clear()
        path = store._entry_path(stable_key_digest(("k",)))
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(("k",)) is None
        assert cache.stats().disk_quarantined == 1


# ---------------------------------------------------------------------------
# configure() / env wiring and observability
# ---------------------------------------------------------------------------
class TestRuntimeWiring:
    def _cleanup(self, *names):
        for name in names:
            _REGISTRY.pop(name, None)

    def test_configure_attaches_and_detaches(self, tmp_path):
        cache = LruCache("persist_w1", max_entries=4, durable=True)
        try:
            runtime.register_runtime_cache(cache)
            runtime.configure(disk_cache_dir=str(tmp_path),
                              disk_cache_bytes=1 << 20)
            assert cache.disk_store is not None
            assert cache.disk_store.max_bytes == 1 << 20
            assert str(cache.disk_store.root).endswith("persist_w1")
            # Late registration picks the tier up too.
            late = LruCache("persist_w2", max_entries=4, durable=True)
            runtime.register_runtime_cache(late)
            assert late.disk_store is not None
            # Non-durable caches never get a store.
            plain = LruCache("persist_w3", max_entries=4)
            runtime.register_runtime_cache(plain)
            assert getattr(plain, "disk_store") is None
            runtime.configure(disk_cache_dir=None)
            assert cache.disk_store is None and late.disk_store is None
        finally:
            runtime.configure(disk_cache_dir=None, disk_cache_bytes=None)
            self._cleanup("persist_w1", "persist_w2", "persist_w3")

    def test_env_bootstrap_attaches_simulation_cache(self, tmp_path):
        script = (
            "from repro.spice.testbench import get_simulation_cache\n"
            "cache = get_simulation_cache()\n"
            "print(cache.durable, cache.disk_store is not None,\n"
            "      cache.disk_store.max_bytes)\n"
        )
        env = dict(os.environ, REPRO_DISK_CACHE=str(tmp_path),
                   REPRO_DISK_CACHE_BYTES="1048576")
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.split() == ["True", "True", "1048576"]

    def test_ledger_records_disk_tier_activity(self, tmp_path):
        cache = LruCache("persist_w4", max_entries=4, durable=True)
        try:
            runtime.register_runtime_cache(cache)
            cache.attach_disk_store(DiskStore(tmp_path / "s"))
            ledger = RunLedger()
            with ledger.caches():
                cache.put(("k",), 1)
                cache.clear()
                cache.get(("k",))  # memory miss, disk hit
            activity = ledger.cache_activity()
            assert activity["persist_w4:disk"] == {
                "hits": 1, "misses": 0, "evictions": 0}
            # Memory row keeps the pinned three-key shape.
            assert set(activity["persist_w4"]) == {"hits", "misses", "evictions"}
            from repro.analysis.reporting import format_ledger
            assert "persist_w4:disk" in format_ledger(ledger)
        finally:
            self._cleanup("persist_w4")

    def test_format_cache_stats_shows_disk_columns(self, tmp_path):
        from repro.analysis.reporting import format_cache_stats

        tiered = LruCache("persist_w5", max_entries=4, durable=True)
        tiered.attach_disk_store(DiskStore(tmp_path / "s"))
        tiered.put(("k",), 1)
        plain = LruCache("persist_w6", max_entries=4)
        text = format_cache_stats({"persist_w5": tiered.stats(),
                                   "persist_w6": plain.stats()})
        lines = text.splitlines()
        assert "disk hits" in lines[1] and "quarantined" in lines[1]
        tiered_row = next(l for l in lines if l.startswith("persist_w5"))
        plain_row = next(l for l in lines if l.startswith("persist_w6"))
        assert "-" not in tiered_row
        assert "-" in plain_row
