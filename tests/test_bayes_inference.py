"""Tests for conjugate updates, precision learning (Eq. 9), and Gaussian BP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayes import (
    GaussianDensity,
    GaussianFactorGraph,
    PrecisionModel,
    gaussian_linear_update,
    posterior_of_mean,
)
from repro.bayes.precision import precision_from_relative_residuals


class TestConjugateUpdates:
    def test_scalar_update_matches_textbook_formula(self):
        prior = GaussianDensity([0.0], [[1.0]])
        posterior = gaussian_linear_update(prior, np.array([[1.0]]), np.array([2.0]),
                                           np.array([4.0]))
        # Posterior precision 1 + 4 = 5, mean = 4*2/5.
        assert posterior.covariance[0, 0] == pytest.approx(1.0 / 5.0)
        assert posterior.mean[0] == pytest.approx(8.0 / 5.0)

    def test_zero_precision_observation_is_ignored(self):
        prior = GaussianDensity([1.0], [[2.0]])
        posterior = gaussian_linear_update(prior, np.array([[1.0]]), np.array([10.0]),
                                           np.array([0.0]))
        assert posterior.mean[0] == pytest.approx(1.0)
        assert posterior.covariance[0, 0] == pytest.approx(2.0, rel=1e-6)

    def test_design_shape_validation(self):
        prior = GaussianDensity([0.0, 0.0], np.eye(2))
        with pytest.raises(ValueError):
            gaussian_linear_update(prior, np.ones((2, 3)), np.ones(2), 1.0)
        with pytest.raises(ValueError):
            gaussian_linear_update(prior, np.ones((3, 2)), np.ones(2), 1.0)

    def test_posterior_of_mean_shrinks_toward_observations(self):
        prior = GaussianDensity([0.0, 0.0], 10.0 * np.eye(2))
        observations = np.array([[1.0, 2.0], [1.2, 1.8], [0.8, 2.2]])
        posterior = posterior_of_mean(prior, observations,
                                      observation_precisions=[100.0, 100.0, 100.0])
        assert np.allclose(posterior.mean, observations.mean(axis=0), atol=0.05)
        assert posterior.covariance[0, 0] < 0.1


class TestPrecisionLearning:
    def test_eq9_matches_direct_computation(self):
        residuals = np.array([[0.01, 0.05], [0.02, -0.04], [-0.015, 0.06]])
        betas = precision_from_relative_residuals(residuals)
        expected = 1.0 / np.maximum(
            np.mean(residuals ** 2, axis=0) - np.mean(np.abs(residuals), axis=0) ** 2,
            1e-8)
        assert np.allclose(betas, expected)

    def test_low_spread_gives_high_precision(self):
        tight = np.array([[0.01, 0.2], [0.011, -0.25], [0.009, 0.3]])
        betas = precision_from_relative_residuals(tight)
        assert betas[0] > betas[1]

    def test_degenerate_residuals_are_clipped(self):
        betas = precision_from_relative_residuals(np.zeros((3, 2)))
        assert np.all(np.isfinite(betas))
        assert np.all(betas > 0)

    def test_precision_model_interpolation(self):
        model = PrecisionModel(
            unit_conditions=np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]),
            precisions=np.array([100.0, 1000.0]))
        exact = model.beta(np.array([[0.0, 0.0, 0.0]]))
        assert exact[0] == pytest.approx(100.0)
        middle = model.beta(np.array([[0.5, 0.5, 0.5]]))
        assert 100.0 < middle[0] < 1000.0

    def test_precision_model_validation(self):
        with pytest.raises(ValueError):
            PrecisionModel(unit_conditions=np.zeros((2, 3)),
                           precisions=np.array([1.0]))
        with pytest.raises(ValueError):
            PrecisionModel(unit_conditions=np.zeros((1, 3)),
                           precisions=np.array([-1.0]))

    def test_constant_and_scaled(self):
        model = PrecisionModel.constant(50.0)
        assert model.beta(np.array([[0.2, 0.9, 0.1]]))[0] == pytest.approx(50.0)
        scaled = model.scaled(2.0)
        assert scaled.average_precision() == pytest.approx(100.0)
        with pytest.raises(ValueError):
            model.scaled(-1.0)


class TestGaussianFactorGraph:
    def test_star_matches_closed_form_fusion(self):
        """BP on a star of direct observations equals the conjugate update."""
        dim = 2
        observations = {
            "tech_a": GaussianDensity([1.0, 0.0], 0.1 * np.eye(dim)),
            "tech_b": GaussianDensity([0.0, 1.0], 0.1 * np.eye(dim)),
            "tech_c": GaussianDensity([0.5, 0.5], 0.1 * np.eye(dim)),
        }
        drift = 0.2 * np.eye(dim)
        graph = GaussianFactorGraph.star("global", observations, drift)
        beliefs = graph.run_belief_propagation()
        # Closed form: the global variable sees each leaf through evidence
        # covariance + drift covariance.
        flat_prior = GaussianDensity([0.0, 0.0], 1e6 * np.eye(dim))
        design = np.tile(np.eye(dim), (3, 1))
        values = np.concatenate([d.mean for d in observations.values()])
        noise_precision = np.repeat([1.0 / 0.3] * 3, dim)
        expected = gaussian_linear_update(flat_prior, design, values, noise_precision)
        assert np.allclose(beliefs["global"].mean, expected.mean, atol=1e-4)
        assert np.allclose(beliefs["global"].covariance, expected.covariance,
                           atol=1e-3)

    def test_chain_propagates_information_to_unobserved_end(self):
        evidence = {"n45": GaussianDensity([1.0], [[0.01]])}
        graph = GaussianFactorGraph.chain(["n45", "n28", "n14"], evidence,
                                          np.array([[0.05]]))
        beliefs = graph.run_belief_propagation()
        assert beliefs["n14"].mean[0] == pytest.approx(1.0, abs=1e-6)
        # Information degrades (variance grows) along the chain.
        assert (beliefs["n14"].covariance[0, 0]
                > beliefs["n28"].covariance[0, 0]
                > beliefs["n45"].covariance[0, 0])

    def test_variable_without_information_raises(self):
        graph = GaussianFactorGraph()
        graph.add_variable("lonely", 2)
        with pytest.raises(RuntimeError):
            graph.run_belief_propagation()

    def test_duplicate_variable_rejected(self):
        graph = GaussianFactorGraph()
        graph.add_variable("x", 1)
        with pytest.raises(ValueError):
            graph.add_variable("x", 1)

    def test_evidence_dimension_checked(self):
        graph = GaussianFactorGraph()
        graph.add_variable("x", 2)
        with pytest.raises(ValueError):
            graph.add_evidence("x", GaussianDensity([0.0], [[1.0]]))

    def test_smoothness_requires_known_variables(self):
        graph = GaussianFactorGraph()
        graph.add_variable("x", 1)
        with pytest.raises(KeyError):
            graph.add_smoothness("x", "y", np.array([[1.0]]))

    def test_loopy_graph_converges_with_damping(self):
        graph = GaussianFactorGraph()
        for name in ("a", "b", "c"):
            graph.add_variable(name, 1)
            graph.add_evidence(name, GaussianDensity([float(ord(name) - 97)], [[1.0]]))
        graph.add_smoothness("a", "b", np.array([[0.5]]))
        graph.add_smoothness("b", "c", np.array([[0.5]]))
        graph.add_smoothness("c", "a", np.array([[0.5]]))
        beliefs = graph.run_belief_propagation(max_iterations=300, damping=0.3)
        # The loop pulls every belief toward the common average.
        assert 0.0 < beliefs["a"].mean[0] < 2.0
