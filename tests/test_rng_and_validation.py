"""Tests for random-number helpers and argument validation utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs, stable_seed_from_name
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_nonempty,
    check_positive,
    check_same_length,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator


class TestSpawnRngs:
    def test_children_are_independent_and_deterministic(self):
        first = [g.random(3) for g in spawn_rngs(7, 3)]
        second = [g.random(3) for g in spawn_rngs(7, 3)]
        for a, b in zip(first, second):
            assert np.allclose(a, b)
        assert not np.allclose(first[0], first[1])

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed_from_name("n14_finfet") == stable_seed_from_name("n14_finfet")

    def test_different_names_differ(self):
        assert stable_seed_from_name("a") != stable_seed_from_name("b")

    def test_base_seed_changes_result(self):
        assert (stable_seed_from_name("x", base_seed=1)
                != stable_seed_from_name("x", base_seed=2))


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 2.5) == 2.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_check_positive_non_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_check_in_range(self):
        assert check_in_range("v", 0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            check_in_range("v", 1.5, 0.0, 1.0)

    def test_check_finite(self):
        array = check_finite("a", [1.0, 2.0])
        assert array.shape == (2,)
        with pytest.raises(ValueError):
            check_finite("a", [1.0, np.inf])

    def test_check_same_length(self):
        assert check_same_length(a=[1, 2], b=[3, 4]) == 2
        with pytest.raises(ValueError):
            check_same_length(a=[1], b=[1, 2])

    def test_check_nonempty(self):
        assert check_nonempty("c", (1,)) == [1]
        with pytest.raises(ValueError):
            check_nonempty("c", [])
