"""Checkpoint/resume tests: a killed run resumes bit-identically.

The journal layer is tested directly (torn tails, signature mismatch,
failure-report round trips), then end to end: a real
``characterize_library(checkpoint_dir=...)`` run is SIGKILLed at the two
interesting durability points -- mid-simulation (only committed rows on
disk) and between arc solves (some solved models journaled) -- and the
resumed run must reproduce an uninterrupted run's entries exactly, while
reusing the dead run's committed work through the durable stores.
Corrupted store entries must cost a recompute, never correctness.
"""

import json
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro import SimulationCounter, get_technology, learn_prior, make_cell
from repro.cells.library import Transition
from repro.core.library_flow import characterize_library
from repro.core.prior_learning import (
    characterize_historical_library,
    shared_reference_conditions,
)
from repro.runtime import clear_all_caches
from repro.runtime.accounting import RunLedger
from repro.runtime.checkpoint import (
    CheckpointMismatch,
    Checkpointer,
    load_checkpoint,
)
from repro.runtime.faultinject import FaultSpec, inject
from repro.runtime.resilience import FailureReport


def _assert_entries_equal(lhs, rhs):
    assert len(lhs.entries) == len(rhs.entries)
    for left, right in zip(lhs.entries, rhs.entries):
        assert left.cell_name == right.cell_name
        assert left.arc.name == right.arc.name
        assert np.array_equal(left.statistical.delay_parameters,
                              right.statistical.delay_parameters)
        assert np.array_equal(left.statistical.slew_parameters,
                              right.statistical.slew_parameters)
        assert left.statistical.fitting_conditions == \
            right.statistical.fitting_conditions
        assert left.statistical.simulation_runs == \
            right.statistical.simulation_runs


def _run_library(delay_prior, slew_prior, cells, **kwargs):
    clear_all_caches()
    ledger = RunLedger()
    library = characterize_library(
        get_technology("n28_bulk"), cells, delay_prior, slew_prior,
        conditions=3, n_seeds=6, rng=11, ledger=ledger, **kwargs)
    return library, ledger


@pytest.fixture(scope="module")
def small_cells():
    return [make_cell("INV_X1"), make_cell("NAND2_X1")]


@pytest.fixture(scope="module")
def baseline(delay_prior, slew_prior, small_cells):
    """The uninterrupted run every resumed run must match bit for bit."""
    library, _ = _run_library(delay_prior, slew_prior, small_cells)
    return library


# ---------------------------------------------------------------------------
# Journal layer
# ---------------------------------------------------------------------------
class TestCheckpointer:
    def test_fresh_then_resume_replays_units(self, tmp_path):
        ckpt = Checkpointer(tmp_path, "sig-a")
        ckpt.commit_solve(0, "INV_X1:arc", {"v": 1})
        ckpt.commit_solve(2, "NAND2_X1:arc", {"v": 2})
        resumed = Checkpointer(tmp_path, "sig-a", resume=True)
        assert resumed.solved_jobs() == [0, 2]
        assert resumed.solved_units()[2] == "NAND2_X1:arc"
        assert resumed.load_solved(0) == {"v": 1}
        assert resumed.load_solved(1) is None
        assert not resumed.completed

    def test_signature_mismatch_refuses_resume(self, tmp_path):
        Checkpointer(tmp_path, "sig-a").commit_solve(0, "u", {})
        with pytest.raises(CheckpointMismatch, match="inputs"):
            Checkpointer(tmp_path, "sig-b", resume=True)

    def test_fresh_start_truncates_foreign_journal(self, tmp_path):
        Checkpointer(tmp_path, "sig-a").commit_solve(0, "u", {"v": 1})
        fresh = Checkpointer(tmp_path, "sig-b")  # resume=False: new run
        assert fresh.solved_jobs() == []
        resumed = Checkpointer(tmp_path, "sig-b", resume=True)
        assert resumed.solved_jobs() == []

    def test_torn_journal_tail_is_dropped(self, tmp_path):
        ckpt = Checkpointer(tmp_path, "sig-a")
        ckpt.commit_solve(0, "u0", {"v": 0})
        ckpt.commit_solve(1, "u1", {"v": 1})
        journal = tmp_path / "journal.jsonl"
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"record": {"kind": "solve", "job": 7')  # torn
        resumed = Checkpointer(tmp_path, "sig-a", resume=True)
        assert resumed.solved_jobs() == [0, 1]

    def test_tampered_journal_line_ends_replay(self, tmp_path):
        ckpt = Checkpointer(tmp_path, "sig-a")
        ckpt.commit_solve(0, "u0", {"v": 0})
        ckpt.commit_solve(1, "u1", {"v": 1})
        journal = tmp_path / "journal.jsonl"
        lines = journal.read_text().splitlines()
        entry = json.loads(lines[1])
        entry["record"]["job"] = 9  # record no longer matches its sha
        lines[1] = json.dumps(entry)
        journal.write_text("\n".join(lines) + "\n")
        resumed = Checkpointer(tmp_path, "sig-a", resume=True)
        assert resumed.solved_jobs() == []  # replay stopped at the tamper

    def test_failure_reports_round_trip(self, tmp_path):
        reports = [
            FailureReport(unit="INV_X1:a", stage="simulate",
                          error="boom", error_type="QuarantinedRows"),
            FailureReport(unit="NAND2_X1:b", stage="extract",
                          error="nan", error_type="RepairedSolve", attempts=2),
        ]
        ckpt = Checkpointer(tmp_path, "sig-a")
        for report in reports:
            ckpt.record_failure(report)
        assert Checkpointer(tmp_path, "sig-a", resume=True).failures() == reports
        assert load_checkpoint(tmp_path).failures() == reports

    def test_load_checkpoint_requires_a_journal(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="journal"):
            load_checkpoint(tmp_path)

    def test_mark_complete_survives_reload(self, tmp_path):
        ckpt = Checkpointer(tmp_path, "sig-a")
        ckpt.mark_complete()
        assert load_checkpoint(tmp_path).completed


# ---------------------------------------------------------------------------
# Orchestrator argument validation
# ---------------------------------------------------------------------------
class TestArgumentValidation:
    def test_resume_requires_checkpoint_dir(self, delay_prior, slew_prior,
                                            small_cells):
        with pytest.raises(ValueError, match="requires checkpoint_dir"):
            characterize_library(get_technology("n28_bulk"), small_cells,
                                 delay_prior, slew_prior, resume=True)

    def test_checkpoint_requires_fused_pipeline(self, delay_prior, slew_prior,
                                                small_cells, tmp_path):
        with pytest.raises(ValueError, match="fused"):
            characterize_library(get_technology("n28_bulk"), small_cells,
                                 delay_prior, slew_prior, pipeline="per_arc",
                                 checkpoint_dir=str(tmp_path))

    def test_changed_inputs_raise_mismatch(self, delay_prior, slew_prior,
                                           small_cells, tmp_path):
        _run_library(delay_prior, slew_prior, small_cells,
                     checkpoint_dir=str(tmp_path))
        clear_all_caches()
        with pytest.raises(CheckpointMismatch):
            characterize_library(
                get_technology("n28_bulk"), small_cells, delay_prior,
                slew_prior, conditions=2, n_seeds=6, rng=11,
                checkpoint_dir=str(tmp_path), resume=True)


# ---------------------------------------------------------------------------
# End-to-end checkpoint/resume
# ---------------------------------------------------------------------------

#: Rebuilds the conftest priors and runs the checkpointed library flow,
#: SIGKILLing itself (non-graceful, mid-write semantics) after the Nth
#: journaled unit of the requested kind.  argv: <dir> <method> <kill_after>
_CHILD_SCRIPT = """
import os, signal, sys

checkpoint_dir, method, kill_after = sys.argv[1], sys.argv[2], int(sys.argv[3])

from repro import SimulationCounter, get_technology, learn_prior, make_cell
from repro.cells.library import Transition
from repro.core.library_flow import characterize_library
from repro.core.prior_learning import (characterize_historical_library,
                                       shared_reference_conditions)
from repro.runtime.checkpoint import Checkpointer

if method != "none":
    original = getattr(Checkpointer, method)
    state = {"calls": 0}
    def patched(self, *args, **kwargs):
        result = original(self, *args, **kwargs)
        state["calls"] += 1
        if state["calls"] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        return result
    setattr(Checkpointer, method, patched)

reference = shared_reference_conditions(8, rng=7)
cells = [make_cell("INV_X1"), make_cell("NOR2_X1")]
counter = SimulationCounter()
historical = [
    characterize_historical_library(node, cells, unit_conditions=reference,
                                    transitions=(Transition.FALL,),
                                    counter=counter)
    for node in (get_technology("n28_bulk"), get_technology("n45_bulk"))
]
delay_prior = learn_prior(historical, response="delay", method="bp")
slew_prior = learn_prior(historical, response="slew", method="bp")

characterize_library(
    get_technology("n28_bulk"),
    [make_cell("INV_X1"), make_cell("NAND2_X1")],
    delay_prior, slew_prior, conditions=3, n_seeds=6, rng=11,
    checkpoint_dir=checkpoint_dir)
print("COMPLETED")
"""


def _run_child(checkpoint_dir, method, kill_after):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep))
    return subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT,
         str(checkpoint_dir), method, str(kill_after)],
        env=env, capture_output=True, text=True, timeout=600)


class TestEndToEnd:
    def test_checkpointed_run_matches_plain(self, delay_prior, slew_prior,
                                            small_cells, baseline, tmp_path):
        library, ledger = _run_library(delay_prior, slew_prior, small_cells,
                                       checkpoint_dir=str(tmp_path))
        _assert_entries_equal(library, baseline)
        ckpt = load_checkpoint(tmp_path)
        assert ckpt.completed
        assert len(ckpt.solved_jobs()) == len(baseline.entries)
        # The checkpoint's simulation store appears in the ledger as the
        # simulation cache's disk tier.
        assert "simulation:disk" in ledger.cache_activity()

    def test_sigkill_mid_simulation_resumes_bit_identical(
            self, delay_prior, slew_prior, small_cells, baseline, tmp_path):
        child = _run_child(tmp_path, "journal_rows", 1)
        assert child.returncode == -signal.SIGKILL, child.stderr
        assert "COMPLETED" not in child.stdout
        # The dead run got as far as committing rows, never to a solve.
        killed = load_checkpoint(tmp_path)
        assert not killed.completed
        assert killed.solved_jobs() == []
        assert len(killed.sim_store) > 0

        resumed, ledger = _run_library(delay_prior, slew_prior, small_cells,
                                       checkpoint_dir=str(tmp_path),
                                       resume=True)
        _assert_entries_equal(resumed, baseline)
        # The committed rows were reused from disk, not re-simulated.
        assert ledger.cache_activity()["simulation:disk"]["hits"] > 0
        assert load_checkpoint(tmp_path).completed

    def test_sigkill_between_solves_resumes_bit_identical(
            self, delay_prior, slew_prior, small_cells, baseline, tmp_path):
        child = _run_child(tmp_path, "commit_solve", 2)
        assert child.returncode == -signal.SIGKILL, child.stderr
        killed = load_checkpoint(tmp_path)
        assert len(killed.solved_jobs()) == 2
        assert not killed.completed

        resumed, ledger = _run_library(delay_prior, slew_prior, small_cells,
                                       checkpoint_dir=str(tmp_path),
                                       resume=True)
        _assert_entries_equal(resumed, baseline)
        after = load_checkpoint(tmp_path)
        assert after.completed
        assert len(after.solved_jobs()) == len(baseline.entries)
        assert ledger.cache_activity()["simulation:disk"]["hits"] > 0

    def test_corrupt_store_entries_recompute_not_crash(
            self, delay_prior, slew_prior, small_cells, baseline, tmp_path):
        _run_library(delay_prior, slew_prior, small_cells,
                     checkpoint_dir=str(tmp_path))
        # Bit-flip one solved model and truncate one committed simulation
        # row; the resumed run must quarantine both and recompute.
        solved = sorted(
            (tmp_path / "store" / "solved_models" / "entries").rglob("*.entry"))
        data = bytearray(solved[0].read_bytes())
        data[-1] ^= 0x01
        solved[0].write_bytes(bytes(data))
        rows = sorted(
            (tmp_path / "store" / "simulation" / "entries").rglob("*.entry"))
        rows[0].write_bytes(rows[0].read_bytes()[:20])

        resumed, _ = _run_library(delay_prior, slew_prior, small_cells,
                                  checkpoint_dir=str(tmp_path), resume=True)
        _assert_entries_equal(resumed, baseline)
        for parameters in (resumed.entries[0].statistical.delay_parameters,
                           baseline.entries[0].statistical.delay_parameters):
            np.testing.assert_allclose(
                parameters, baseline.entries[0].statistical.delay_parameters,
                rtol=1e-12)
        quarantine = [path for store in ("solved_models", "simulation")
                      for path in (tmp_path / "store" / store /
                                   "quarantine").glob("*.entry")]
        assert len(quarantine) >= 1

    def test_persisted_failures_surface_on_resume(self, delay_prior,
                                                  slew_prior, small_cells,
                                                  tmp_path):
        clear_all_caches()
        spec = FaultSpec(site="transient.state", kind="nan", at_calls=(0,),
                         rows=(1,))
        with inject([spec], seed=3):
            degraded = characterize_library(
                get_technology("n28_bulk"), small_cells, delay_prior,
                slew_prior, conditions=3, n_seeds=6, rng=11, strict=False,
                checkpoint_dir=str(tmp_path))
        assert degraded.failures
        assert load_checkpoint(tmp_path).failures() == list(degraded.failures)

        # Resuming under strict=True succeeds: the persisted failures are
        # history (their recompute already happened) and are surfaced, not
        # re-raised.
        resumed, ledger = _run_library(delay_prior, slew_prior, small_cells,
                                       checkpoint_dir=str(tmp_path),
                                       resume=True, strict=True)
        assert list(degraded.failures)[0] in list(resumed.failures)
        assert set(degraded.failures) <= set(resumed.failures)
        assert ledger.failures()
        _assert_entries_equal(resumed, degraded)
