"""Tests for the batched multi-condition transient engine.

Covers batched-vs-serial equivalence over a grid of conditions, seeds and
both transition polarities, the window-extension path, the non-functional
``RuntimeError`` branch, ``WaveformBatch`` measurements, and the simulation /
reduction caches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import Transition, clear_reduction_cache, reduce_cell, reduce_cell_cached
from repro.spice import (
    RampStimulus,
    SimulationCounter,
    Waveform,
    WaveformBatch,
    get_simulation_cache,
    simulate_arc_transition,
    simulate_arc_transitions,
    sweep_conditions,
)
from repro.spice import transient as serial_engine

#: Mixed grid spanning slews, loads and supplies (including a slow low-Vdd
#: corner so conditions retire from the active set at different times).
GRID = [
    (2e-12, 0.5e-15, 1.0),
    (5e-12, 2e-15, 0.9),
    (9e-12, 4e-15, 0.8),
    (14e-12, 1e-15, 0.7),
    (4e-12, 3e-15, 0.62),
]


def _serial_reference(inverter, conditions, n_steps=serial_engine.DEFAULT_STEPS):
    delays, slews = [], []
    for sin, cload, vdd in conditions:
        result = simulate_arc_transition(inverter, sin=sin, cload=cload,
                                         vdd=vdd, n_steps=n_steps)
        delays.append(result.delay())
        slews.append(result.output_slew())
    return np.stack(delays), np.stack(slews)


class TestBatchedSerialEquivalence:
    @pytest.mark.parametrize("transition", [Transition.FALL, Transition.RISE])
    @pytest.mark.parametrize("n_seeds", [1, 7])
    def test_grid_equivalence(self, tech28, nand2_cell, transition, n_seeds):
        variation = (tech28.variation.sample(n_seeds, rng=3)
                     if n_seeds > 1 else None)
        arc = nand2_cell.arc("A", transition)
        inverter = reduce_cell(nand2_cell, tech28, arc=arc, variation=variation)
        sin, cload, vdd = (np.array(axis) for axis in zip(*GRID))

        batch = simulate_arc_transitions(inverter, sin, cload, vdd)
        ref_delay, ref_slew = _serial_reference(inverter, GRID)

        np.testing.assert_allclose(batch.delay(), ref_delay, rtol=1e-9, atol=0.0)
        np.testing.assert_allclose(batch.output_slew(), ref_slew, rtol=1e-9,
                                   atol=0.0)

    def test_sweep_engines_agree(self, tech14, inv_cell):
        batched = sweep_conditions(inv_cell, tech14, GRID, engine="batched",
                                   cache=False)
        serial = sweep_conditions(inv_cell, tech14, GRID, engine="serial",
                                  cache=False)
        for b, s in zip(batched, serial):
            np.testing.assert_allclose(b.delay, s.delay, rtol=1e-9)
            np.testing.assert_allclose(b.output_slew, s.output_slew, rtol=1e-9)

    def test_sweep_rejects_unknown_engine(self, tech14, inv_cell):
        with pytest.raises(ValueError):
            sweep_conditions(inv_cell, tech14, GRID[:1], engine="magic")

    def test_per_condition_extraction_matches_serial_result(self, tech14,
                                                            inv_cell):
        inverter = reduce_cell(inv_cell, tech14)
        sin, cload, vdd = (np.array(axis) for axis in zip(*GRID[:3]))
        batch = simulate_arc_transitions(inverter, sin, cload, vdd)
        single = batch.condition(1)
        reference = simulate_arc_transition(inverter, sin=float(sin[1]),
                                            cload=float(cload[1]),
                                            vdd=float(vdd[1]))
        np.testing.assert_allclose(single.delay(), reference.delay(), rtol=1e-9)
        np.testing.assert_allclose(single.output_slew(),
                                   reference.output_slew(), rtol=1e-9)

    def test_input_validation(self, tech14, inv_cell):
        inverter = reduce_cell(inv_cell, tech14)
        with pytest.raises(ValueError):
            simulate_arc_transitions(inverter, [], [], [])
        with pytest.raises(ValueError):
            simulate_arc_transitions(inverter, [1e-12, 2e-12], [1e-15], [0.8])
        with pytest.raises(ValueError):
            simulate_arc_transitions(inverter, [0.0], [1e-15], [0.8])
        with pytest.raises(ValueError):
            simulate_arc_transitions(inverter, [1e-12], [1e-15], [0.8],
                                     n_steps=4)


class TestWindowExtension:
    def test_extension_path_still_matches_serial(self, tech28, inv_cell,
                                                 monkeypatch):
        # Shrink the safety margin so the first window is too short and the
        # geometric extension loop has to run; both engines read the margin
        # from the serial module, so they stay in lockstep.
        monkeypatch.setattr(serial_engine, "_WINDOW_MARGIN", 0.4)
        inverter = reduce_cell(inv_cell, tech28)
        sin, cload, vdd = (np.array(axis) for axis in zip(*GRID))
        batch = simulate_arc_transitions(inverter, sin, cload, vdd)
        ref_delay, ref_slew = _serial_reference(inverter, GRID)
        np.testing.assert_allclose(batch.delay(), ref_delay, rtol=1e-9)
        np.testing.assert_allclose(batch.output_slew(), ref_slew, rtol=1e-9)

    def test_extension_grows_the_waveform(self, tech28, inv_cell, monkeypatch):
        inverter = reduce_cell(inv_cell, tech28)
        base = simulate_arc_transition(inverter, sin=5e-12, cload=2e-15,
                                       vdd=0.9)
        monkeypatch.setattr(serial_engine, "_WINDOW_MARGIN", 0.4)
        extended = simulate_arc_transition(inverter, sin=5e-12, cload=2e-15,
                                           vdd=0.9)
        # The tight margin forces at least one extra chunk beyond the base
        # ramp+tail sample count.
        assert extended.output_waveform.time.size > 0
        assert extended.output_waveform.final_value()[0] < 0.1 * 0.9
        assert base.output_waveform.final_value()[0] < 0.1 * 0.9

    def test_stragglers_retire_later_than_fast_conditions(self, tech28,
                                                          inv_cell,
                                                          monkeypatch):
        monkeypatch.setattr(serial_engine, "_WINDOW_MARGIN", 0.4)
        inverter = reduce_cell(inv_cell, tech28)
        sin, cload, vdd = (np.array(axis) for axis in zip(*GRID))
        batch = simulate_arc_transitions(inverter, sin, cload, vdd)
        lengths = batch.output_waveforms.valid_len
        # With a mixed grid and a tight window, at least one condition needs
        # more chunks than another (the active set actually shrank).
        assert lengths.max() > lengths.min()

    def test_non_functional_condition_raises(self, tech28, inv_cell,
                                             monkeypatch):
        # Starve the solver: tiny window, no extensions allowed.
        monkeypatch.setattr(serial_engine, "_WINDOW_MARGIN", 1e-3)
        monkeypatch.setattr(serial_engine, "_MAX_EXTENSIONS", 1)
        inverter = reduce_cell(inv_cell, tech28)
        with pytest.raises(RuntimeError, match="did not complete"):
            simulate_arc_transition(inverter, sin=5e-12, cload=4e-15, vdd=0.7)
        with pytest.raises(RuntimeError, match="did not complete"):
            simulate_arc_transitions(inverter, [5e-12], [4e-15], [0.7])

    def test_batched_error_reports_incomplete_condition(self, tech28, inv_cell,
                                                        monkeypatch):
        monkeypatch.setattr(serial_engine, "_WINDOW_MARGIN", 1e-3)
        monkeypatch.setattr(serial_engine, "_MAX_EXTENSIONS", 1)
        inverter = reduce_cell(inv_cell, tech28)
        with pytest.raises(RuntimeError, match="cload=4e-15"):
            simulate_arc_transitions(inverter, [5e-12], [4e-15], [0.7])


class TestWaveformBatch:
    def _ramp_batch(self):
        time = np.stack([np.linspace(0.0, 30e-12, 300),
                         np.linspace(0.0, 60e-12, 300)])
        vdd = np.array([1.0, 0.8])
        slew = np.array([10e-12, 20e-12])
        volts = np.stack([
            RampStimulus(vdd=float(v), slew=float(s)).voltage(row)
            for v, s, row in zip(vdd, slew, time)
        ])
        return WaveformBatch(time, volts), vdd, slew

    def test_crossing_times_per_condition(self):
        batch, vdd, slew = self._ramp_batch()
        cross = batch.crossing_time(0.5 * vdd)
        assert cross.shape == (2, 1)
        assert cross[0, 0] == pytest.approx(5e-12, rel=1e-6)
        assert cross[1, 0] == pytest.approx(10e-12, rel=1e-6)

    def test_transition_time_recovers_ramp_slew(self):
        batch, vdd, slew = self._ramp_batch()
        measured = batch.transition_time(vdd)[:, 0]
        np.testing.assert_allclose(measured, slew, rtol=1e-2)

    def test_condition_trims_padding_and_matches_waveform(self):
        time = np.stack([np.linspace(0.0, 1.0, 10), np.linspace(0.0, 2.0, 10)])
        volts = np.tile(np.linspace(0.0, 1.0, 10), (2, 1))
        valid = np.array([10, 6])
        volts[1, 6:] = volts[1, 5]
        time[1, 6:] = time[1, 5]
        batch = WaveformBatch(time, volts, valid_len=valid)
        trimmed = batch.condition(1)
        assert isinstance(trimmed, Waveform)
        assert trimmed.time.size == 6
        assert batch.final_value()[1, 0] == pytest.approx(volts[1, 5])

    def test_no_crossing_is_nan(self):
        time = np.tile(np.linspace(0.0, 1.0, 8), (1, 1))
        volts = np.full((1, 8), 0.2)
        batch = WaveformBatch(time, volts)
        assert np.isnan(batch.crossing_time(0.9, rising=True)[0, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            WaveformBatch(np.linspace(0, 1, 5), np.zeros((1, 5)))  # 1-D time
        with pytest.raises(ValueError):
            WaveformBatch(np.zeros((2, 5)), np.zeros((3, 5)))
        with pytest.raises(ValueError):
            WaveformBatch(np.zeros((2, 5)), np.zeros((2, 5)),
                          valid_len=np.array([5, 1]))
        batch = WaveformBatch(np.tile(np.linspace(0, 1, 5), (2, 1)),
                              np.zeros((2, 5)))
        with pytest.raises(ValueError):
            batch.transition_time(np.array([1.0, -1.0]))

    def test_mismatched_reference_rejected(self):
        a = WaveformBatch(np.tile(np.linspace(0, 1, 5), (2, 1)), np.zeros((2, 5)))
        b = WaveformBatch(np.tile(np.linspace(0, 1, 5), (3, 1)), np.zeros((3, 5)))
        with pytest.raises(ValueError):
            a.propagation_delay(b, 1.0)


class TestCaches:
    def test_simulation_cache_serves_repeat_sweeps(self, tech14, inv_cell):
        cache = get_simulation_cache()
        cache.clear()
        counter = SimulationCounter()
        first = sweep_conditions(inv_cell, tech14, GRID[:3], counter=counter)
        hits_before = cache.hits
        second = sweep_conditions(inv_cell, tech14, GRID[:3], counter=counter)
        assert cache.hits >= hits_before + 3
        # Counters keep charging: they count required runs, not executed ones.
        assert counter.total == 6
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.delay, b.delay)
            np.testing.assert_array_equal(a.output_slew, b.output_slew)

    def test_cache_distinguishes_seed_batches(self, tech28, inv_cell):
        cache = get_simulation_cache()
        cache.clear()
        va = tech28.variation.sample(3, rng=1)
        vb = tech28.variation.sample(3, rng=2)
        a = sweep_conditions(inv_cell, tech28, GRID[:1], variation=va)
        b = sweep_conditions(inv_cell, tech28, GRID[:1], variation=vb)
        assert not np.allclose(a[0].delay, b[0].delay, rtol=1e-6, atol=0.0)

    def test_cached_results_cannot_be_corrupted(self, tech14, inv_cell):
        cache = get_simulation_cache()
        cache.clear()
        first = sweep_conditions(inv_cell, tech14, GRID[:1])
        first[0].delay[:] = -1.0
        second = sweep_conditions(inv_cell, tech14, GRID[:1])
        assert np.all(second[0].delay > 0.0)

    def test_disabled_cache_misses(self, tech14, inv_cell):
        cache = get_simulation_cache()
        cache.clear()
        cache.disable()
        try:
            sweep_conditions(inv_cell, tech14, GRID[:1])
            sweep_conditions(inv_cell, tech14, GRID[:1])
            assert cache.hits == 0
        finally:
            cache.enable()

    def test_reduction_cache_reuses_inverter(self, tech28, inv_cell):
        clear_reduction_cache()
        variation = tech28.variation.sample(4, rng=5)
        first = reduce_cell_cached(inv_cell, tech28, variation=variation)
        second = reduce_cell_cached(inv_cell, tech28, variation=variation)
        assert first is second
        other = reduce_cell_cached(inv_cell, tech28,
                                   variation=tech28.variation.sample(4, rng=6))
        assert other is not first

    def test_variation_fingerprint_tracks_content(self, tech28):
        va = tech28.variation.sample(5, rng=7)
        vb = va.subset(np.arange(5))
        assert va.fingerprint() == vb.fingerprint()
        assert va.fingerprint() != tech28.variation.sample(5, rng=8).fingerprint()


class TestStimulusFastPath:
    def test_scalar_matches_array_path(self):
        for rising in (True, False):
            ramp = RampStimulus(vdd=0.9, slew=7e-12, rising=rising)
            for t in (0.0, 1e-12, 3.5e-12, 7e-12, 2e-11):
                assert isinstance(ramp.voltage(t), float)
                assert ramp.voltage(t) == np.asarray(
                    ramp.voltage(np.array([t])))[0]
                assert ramp.slope(t) == np.asarray(
                    ramp.slope(np.array([t])))[0]
