"""Integration tests for the proposed nominal and statistical flows."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BayesianCharacterizer,
    InputCondition,
    InputSpace,
    SimulationCounter,
    StatisticalCharacterizer,
    mean_relative_error,
    nominal_baseline,
    statistical_baseline,
)
from repro.cells import Transition


class TestBayesianCharacterizer:
    def test_fit_with_two_conditions_is_accurate(self, tech14, nor2_cell,
                                                 delay_prior, slew_prior):
        counter = SimulationCounter()
        flow = BayesianCharacterizer(tech14, nor2_cell, delay_prior, slew_prior,
                                     counter=counter)
        result = flow.fit(2, rng=3)
        assert result.k == 2
        assert result.simulation_runs == 2
        assert counter.total == 2

        validation = InputSpace(tech14).sample_random(25, rng=4)
        baseline = nominal_baseline(nor2_cell, tech14, validation)
        delay_error = mean_relative_error(flow.predict_delay(validation),
                                          baseline.delay)
        slew_error = mean_relative_error(flow.predict_slew(validation),
                                         baseline.slew)
        assert delay_error < 0.10
        assert slew_error < 0.12

    def test_explicit_conditions_accepted(self, tech14, inv_cell, delay_prior,
                                          slew_prior):
        flow = BayesianCharacterizer(tech14, inv_cell, delay_prior, slew_prior)
        conditions = [InputCondition(3e-12, 1e-15, 0.7),
                      InputCondition(10e-12, 4e-15, 0.95)]
        result = flow.fit(conditions)
        assert list(result.fitting_conditions) == conditions

    def test_predict_before_fit_raises(self, tech14, inv_cell, delay_prior,
                                       slew_prior):
        flow = BayesianCharacterizer(tech14, inv_cell, delay_prior, slew_prior)
        with pytest.raises(RuntimeError):
            flow.predict_delay([InputCondition(5e-12, 2e-15, 0.8)])

    def test_rise_arc_characterization(self, tech14, nor2_cell, delay_prior,
                                       slew_prior):
        arc = nor2_cell.arc("A", Transition.RISE)
        flow = BayesianCharacterizer(tech14, nor2_cell, delay_prior, slew_prior,
                                     arc=arc)
        flow.fit(3, rng=5)
        prediction = flow.predict_delay([InputCondition(5e-12, 2e-15, 0.8)])
        assert prediction[0] > 0

    def test_input_capacitance_positive(self, tech14, nand2_cell, delay_prior,
                                        slew_prior):
        flow = BayesianCharacterizer(tech14, nand2_cell, delay_prior, slew_prior)
        assert flow.input_capacitance > 0

    def test_empty_fit_rejected(self, tech14, inv_cell, delay_prior, slew_prior):
        flow = BayesianCharacterizer(tech14, inv_cell, delay_prior, slew_prior)
        with pytest.raises(ValueError):
            flow.fit([])
        with pytest.raises(ValueError):
            flow.fit(0)

    def test_extracted_parameters_are_physical(self, tech14, nor2_cell, delay_prior,
                                               slew_prior):
        flow = BayesianCharacterizer(tech14, nor2_cell, delay_prior, slew_prior)
        result = flow.fit(3, rng=8)
        params = result.delay_fit.params
        assert 0.1 < params.kd < 2.0
        assert 0.0 <= params.cpar_ff < 10.0
        assert -0.6 < params.vprime_v < 0.5


class TestStatisticalCharacterizer:
    @pytest.fixture(scope="class")
    def statistical_setup(self, tech28, inv_cell, delay_prior, slew_prior):
        """One shared statistical characterization (30 seeds, k=4)."""
        counter = SimulationCounter()
        variation = tech28.variation.sample(30, rng=21)
        flow = StatisticalCharacterizer(tech28, inv_cell, delay_prior, slew_prior,
                                        n_seeds=30, counter=counter)
        flow.use_variation(variation)
        characterization = flow.characterize(4, rng=22)
        return variation, characterization, counter

    def test_simulation_accounting(self, statistical_setup):
        variation, characterization, counter = statistical_setup
        assert characterization.simulation_runs == 4 * 30
        assert counter.total == 4 * 30
        assert characterization.n_seeds == 30
        assert characterization.k == 4

    def test_parameter_matrix_shape(self, statistical_setup):
        _, characterization, _ = statistical_setup
        assert characterization.delay_parameters.shape == (30, 4)
        assert characterization.slew_parameters.shape == (30, 4)
        assert np.all(np.isfinite(characterization.delay_parameters))

    def test_statistics_match_baseline(self, statistical_setup, tech28, inv_cell):
        variation, characterization, _ = statistical_setup
        conditions = [InputCondition(6e-12, 2e-15, 0.9),
                      InputCondition(12e-12, 5e-15, 0.78)]
        baseline = statistical_baseline(inv_cell, tech28, conditions, variation)
        reference = baseline.statistics()
        predicted = characterization.predict_statistics(conditions)
        assert np.allclose(predicted["mu_delay"], reference["mu_delay"], rtol=0.10)
        assert np.allclose(predicted["sigma_delay"], reference["sigma_delay"],
                           rtol=0.5, atol=2e-13)

    def test_samples_and_moments(self, statistical_setup):
        _, characterization, _ = statistical_setup
        condition = InputCondition(5e-12, 2e-15, 0.85)
        delay_samples = characterization.delay_samples(condition)
        assert delay_samples.shape == (30,)
        stats = characterization.delay_statistics(condition)
        assert stats["std"] > 0
        assert stats["mean"] == pytest.approx(delay_samples.mean())
        assert characterization.slew_statistics(condition)["mean"] > 0

    def test_mean_parameters(self, statistical_setup):
        _, characterization, _ = statistical_setup
        params = characterization.mean_parameters("delay")
        assert 0.1 < params.kd < 2.0

    def test_seed_count_validation(self, tech28, inv_cell, delay_prior, slew_prior):
        with pytest.raises(ValueError):
            StatisticalCharacterizer(tech28, inv_cell, delay_prior, slew_prior,
                                     n_seeds=1)

    def test_empty_conditions_rejected(self, tech28, inv_cell, delay_prior,
                                       slew_prior):
        flow = StatisticalCharacterizer(tech28, inv_cell, delay_prior, slew_prior,
                                        n_seeds=5)
        with pytest.raises(ValueError):
            flow.characterize([])
