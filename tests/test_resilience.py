"""Tests of the fault-tolerant runtime: retries, fault injection, quarantine,
executor recovery, and graceful library degradation.

The overarching contract under test: with no injector active and default
switches (``strict=True``, no retry policy) every engine behaves exactly as
it did before the resilience layer existed -- clean runs are bit-identical
-- while under injected faults the non-strict flows complete with partial
results whose non-faulted units match a clean run bit for bit.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import get_technology, make_cell
from repro.analysis import format_ledger
from repro.bayes.gaussian import GaussianDensity
from repro.core.batch_map import (
    BatchMapObservations,
    map_estimate_batch,
    repair_batch_result,
)
from repro.core.library_flow import characterize_library
from repro.core.prior_learning import characterize_historical_library
from repro.runtime import RunLedger, clear_all_caches
from repro.runtime.executor import ProcessExecutor, get_executor
from repro.runtime.faultinject import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    InjectedTimeout,
    corrupt_rows,
    fault_sites,
    fire,
    induced_delay,
    inject,
)
from repro.runtime.resilience import (
    CircuitBreaker,
    FailureReport,
    RetryError,
    RetryPolicy,
    deterministic_uniform,
    resolve_strict,
    run_with_retry,
)
from repro.spice.batch import simulate_arc_transitions


# ---------------------------------------------------------------------------
# RetryPolicy / run_with_retry


class TestRetryPolicy:
    def test_default_is_noop(self):
        assert RetryPolicy().is_noop
        assert RetryPolicy().delays() == []
        assert not RetryPolicy(max_attempts=2).is_noop

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_s": -1.0},
        {"backoff_factor": 0.0},
        {"jitter": 1.5},
        {"deadline_s": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delays_exponential_without_jitter(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.1, backoff_factor=2.0)
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.4])

    def test_delays_deterministic_with_jitter(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=0.5, jitter=0.5, seed=3)
        first = policy.delays()
        again = RetryPolicy(max_attempts=5, backoff_s=0.5, jitter=0.5,
                            seed=3).delays()
        assert first == again
        base = RetryPolicy(max_attempts=5, backoff_s=0.5).delays()
        for jittered, plain in zip(first, base):
            assert plain <= jittered <= 1.5 * plain

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_RETRY_BACKOFF", raising=False)
        assert RetryPolicy.from_env().is_noop
        monkeypatch.setenv("REPRO_MAX_RETRIES", "2")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.25")
        policy = RetryPolicy.from_env(seed=7)
        assert policy.max_attempts == 3
        assert policy.backoff_s == 0.25
        assert policy.seed == 7

    def test_resolve_strict(self, monkeypatch):
        monkeypatch.delenv("REPRO_STRICT", raising=False)
        assert resolve_strict(None) is True
        assert resolve_strict(False) is False
        monkeypatch.setenv("REPRO_STRICT", "0")
        assert resolve_strict(None) is False
        assert resolve_strict(True) is True

    def test_deterministic_uniform_stable(self):
        value = deterministic_uniform(3, "site", 1)
        assert 0.0 <= value < 1.0
        assert value == deterministic_uniform(3, "site", 1)
        assert value != deterministic_uniform(4, "site", 1)


class TestRunWithRetry:
    def test_none_policy_runs_bare(self):
        calls = []

        def fn():
            calls.append(1)
            raise ValueError("boom")

        # The first failure propagates unchanged -- no RetryError wrapping.
        with pytest.raises(ValueError, match="boom"):
            run_with_retry(fn, None)
        assert len(calls) == 1

    def test_recovers_and_accounts(self):
        ledger = RunLedger()
        slept = []
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=4, backoff_s=0.125)
        result = run_with_retry(flaky, policy, site="unit", ledger=ledger,
                                sleep=slept.append)
        assert result == "ok"
        assert slept == policy.delays()[:2]
        metrics = ledger.as_dict()["metrics"]
        assert metrics["retries"] == 2
        assert metrics["retries:unit"] == 2

    def test_exhaustion_raises_retry_error(self):
        def fail():
            raise KeyError("gone")

        with pytest.raises(RetryError) as info:
            run_with_retry(fail, RetryPolicy(max_attempts=3), site="unit",
                           sleep=lambda _: None)
        assert info.value.attempts == 3
        assert isinstance(info.value.__cause__, KeyError)

    def test_retry_on_filter(self):
        calls = []

        def fail():
            calls.append(1)
            raise KeyError("not retried")

        with pytest.raises(KeyError):
            run_with_retry(fail, RetryPolicy(max_attempts=3),
                           retry_on=(ValueError,), sleep=lambda _: None)
        assert len(calls) == 1

    def test_deadline_stops_retrying(self):
        clock = {"now": 0.0}

        def tick():
            clock["now"] += 10.0
            return clock["now"]

        def fail():
            raise RuntimeError("slow failure")

        # Each attempt appears to take 10 s against a 1 s deadline, so the
        # first failure exhausts the budget despite max_attempts=5.
        with pytest.raises(RetryError) as info:
            run_with_retry(fail, RetryPolicy(max_attempts=5, deadline_s=1.0),
                           sleep=lambda _: None, clock=tick)
        assert info.value.attempts == 1

    def test_deadline_is_end_to_end_across_attempts(self):
        """The budget covers the whole loop, not each attempt separately."""
        clock = {"now": 0.0}

        def tick():
            clock["now"] += 0.4
            return clock["now"]

        def fail():
            raise RuntimeError("fails every time")

        # Attempts appear to take 0.4 s each against a 1.0 s budget: the
        # per-attempt view would allow all five, the end-to-end view stops
        # after the budget is spent.
        with pytest.raises(RetryError) as info:
            run_with_retry(fail, RetryPolicy(max_attempts=5, deadline_s=1.0),
                           sleep=lambda _: None, clock=tick)
        assert info.value.attempts < 5

    def test_backoff_sleep_that_would_overrun_deadline_is_skipped(self):
        clock = {"now": 0.0}
        slept = []

        def tick():
            clock["now"] += 0.1
            return clock["now"]

        def fail():
            raise RuntimeError("fails every time")

        # The first backoff delay (1.0 s) alone would blow the 0.5 s
        # budget: fail immediately instead of sleeping past the deadline.
        with pytest.raises(RetryError) as info:
            run_with_retry(
                fail,
                RetryPolicy(max_attempts=3, backoff_s=1.0, deadline_s=0.5),
                sleep=slept.append, clock=tick)
        assert info.value.attempts == 1
        assert slept == []


class TestCircuitBreaker:
    def test_trips_after_threshold_and_cools_down_to_half_open(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0,
                                 clock=lambda: clock["now"])
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 1
        assert not breaker.allow()
        clock["now"] = 9.9
        assert not breaker.allow()  # still cooling down
        clock["now"] = 10.0
        assert breaker.allow()  # half-open probe admitted
        assert breaker.state == "half_open"

    def test_half_open_probe_success_closes_failure_reopens(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=lambda: clock["now"])
        breaker.record_failure()
        clock["now"] = 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.trips == 1
        # Trip again; a failed probe re-opens immediately (single strike).
        breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.trips == 3

    def test_success_resets_consecutive_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two consecutive failures
        breaker.record_failure(n=2)  # a batch may observe several at once
        assert breaker.state == "open"

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)


class TestSlowFaults:
    def test_induced_delay_reports_spec_delay_deterministically(self):
        site = "library.arc_job"  # any registered site works
        assert induced_delay(site) == 0.0  # no injector: clean identity
        with inject([FaultSpec(site=site, kind="slow", at_calls=(1,),
                               delay_s=0.25)]) as injector:
            assert induced_delay(site) == 0.0
            assert induced_delay(site) == 0.25
            assert induced_delay(site) == 0.0
        assert [(e.call, e.kind) for e in injector.events] == [(1, "slow")]

    def test_slow_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(site="library.arc_job", kind="slow", delay_s=-0.1)


class TestFailureReport:
    def test_round_trip(self):
        report = FailureReport(unit="INV:A->Z", stage="simulate",
                               error="bad row", error_type="ValueError",
                               attempts=2)
        assert FailureReport.from_dict(report.as_dict()) == report

    def test_from_exception_unwraps_retry_error(self):
        try:
            try:
                raise ValueError("root cause")
            except ValueError as error:
                raise RetryError("unit", 3, error) from error
        except RetryError as error:
            report = FailureReport.from_exception("INV:A->Z", "extract", error)
        assert report.error_type == "ValueError"
        assert report.error == "root cause"
        assert report.attempts == 3

    def test_describe_and_ledger_round_trip(self):
        ledger = RunLedger()
        report = FailureReport(unit="X", stage="simulate", error="e",
                               error_type="QuarantinedRows")
        ledger.add_failure(report)
        assert ledger.failures() == [report]
        assert "X" in report.describe()
        rendered = format_ledger(ledger)
        assert "failure" in rendered
        assert "QuarantinedRows: e" in rendered


# ---------------------------------------------------------------------------
# Fault-injection harness


class TestFaultInjection:
    def test_registry_covers_engine_sites(self):
        sites = fault_sites()
        for name in ("executor.process.map", "executor.job",
                     "transient.integrate", "transient.state",
                     "batch_map.result", "library.arc_job"):
            assert name in sites, name

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultInjector(specs=[FaultSpec(site="no.such.site",
                                           kind="exception")])
        with pytest.raises(ValueError, match="unregistered fault site"):
            fire("no.such.site")
        with pytest.raises(ValueError, match="unregistered fault site"):
            corrupt_rows("no.such.site", np.zeros(3))

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="executor.job", kind="meltdown")
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(site="executor.job", kind="exception", rate=2.0)

    def test_exact_schedule(self):
        spec = FaultSpec(site="executor.job", kind="exception",
                         at_calls=(1, 3))
        with inject([spec], seed=0) as injector:
            for call in range(5):
                if call in (1, 3):
                    with pytest.raises(InjectedFault):
                        fire("executor.job")
                else:
                    fire("executor.job")
        assert [(e.site, e.call, e.kind) for e in injector.events] == [
            ("executor.job", 1, "exception"), ("executor.job", 3, "exception")]

    def test_rate_schedule_replays_deterministically(self):
        spec = FaultSpec(site="executor.job", kind="timeout", rate=0.4)

        def trace(seed):
            events = []
            with inject([spec], seed=seed) as injector:
                for _ in range(50):
                    try:
                        fire("executor.job")
                    except InjectedTimeout:
                        pass
                events = list(injector.events)
            return events

        first = trace(17)
        assert first, "a 0.4 rate over 50 calls should fire at least once"
        assert first == trace(17)
        assert first != trace(18)

    def test_nan_corruption_and_clean_identity(self):
        payload = np.arange(12.0).reshape(4, 3)
        # No injector: identity, same object.
        assert corrupt_rows("transient.state", payload) is payload
        spec = FaultSpec(site="transient.state", kind="nan", at_calls=(1,),
                         rows=(0, 2))
        with inject([spec], seed=0):
            # Call 0 does not fire: still the same object (bit-identity of
            # clean calls even while an injector is active).
            assert corrupt_rows("transient.state", payload) is payload
            poisoned = corrupt_rows("transient.state", payload)
        assert poisoned is not payload
        assert np.isnan(poisoned[[0, 2]]).all()
        assert np.array_equal(poisoned[[1, 3]], payload[[1, 3]])
        assert np.isfinite(payload).all()

    def test_nested_injection_rejected(self):
        with inject([], seed=0):
            with pytest.raises(RuntimeError, match="already active"):
                with inject([], seed=1):
                    pass  # pragma: no cover


# ---------------------------------------------------------------------------
# Executor recovery


def _square(value):
    return value * value


def _square_job(value):
    # map_accounted jobs return (result, RunLedger) pairs.
    return value * value, RunLedger()


def _flaky_square(value):
    fire("executor.job")
    return value * value


class TestExecutorRecovery:
    def test_max_workers_validated(self):
        with pytest.raises(ValueError, match="max_workers"):
            ProcessExecutor(max_workers=0)

    def test_serial_retry_recovers(self):
        policy = RetryPolicy(max_attempts=2)
        executor = get_executor("serial", retry_policy=policy)
        spec = FaultSpec(site="executor.job", kind="exception", at_calls=(1,))
        with inject([spec], seed=0):
            assert executor.map(_flaky_square, [1, 2, 3]) == [1, 4, 9]
        assert executor.last_retries == 1

    def test_serial_failure_without_policy_propagates(self):
        executor = get_executor("serial")
        spec = FaultSpec(site="executor.job", kind="exception", at_calls=(1,))
        with inject([spec], seed=0):
            with pytest.raises(InjectedFault):
                executor.map(_flaky_square, [1, 2, 3])

    def test_injected_pool_crash_falls_back_serially(self):
        executor = ProcessExecutor(max_workers=2)
        ledger = RunLedger()
        spec = FaultSpec(site="executor.process.map", kind="crash",
                         at_calls=(0,))
        with inject([spec], seed=0):
            results = executor.map_accounted(_square_job, [1, 2, 3],
                                             ledger=ledger)
        assert results == [1, 4, 9]
        assert executor.last_fallbacks == 3
        assert ledger.as_dict()["metrics"]["executor_fallbacks"] == 3

    def test_clean_run_records_no_resilience_metrics(self):
        executor = get_executor("serial")
        ledger = RunLedger()
        assert executor.map_accounted(_square_job, [2, 3],
                                      ledger=ledger) == [4, 9]
        metrics = ledger.as_dict()["metrics"]
        assert "executor_retries" not in metrics
        assert "executor_fallbacks" not in metrics


# ---------------------------------------------------------------------------
# Engine-level quarantine and repair


class TestTransientQuarantine:
    @pytest.fixture(scope="class")
    def inverter(self):
        from repro.cells.equivalent_inverter import reduce_cell
        return reduce_cell(make_cell("NAND2_X1"), get_technology("n28_bulk"))

    def test_non_finite_inputs_named(self, inverter):
        sin = np.array([1e-11, np.nan, 2e-11])
        cload = np.full(3, 1e-15)
        vdd = np.full(3, 0.9)
        with pytest.raises(ValueError, match="sin.*index 1"):
            simulate_arc_transitions(inverter, sin, cload, vdd)

    def test_quarantine_mode_clean_is_bit_identical(self, inverter):
        sin = np.array([1e-11, 2e-11, 4e-11])
        cload = np.full(3, 1e-15)
        vdd = np.full(3, 0.9)
        base = simulate_arc_transitions(inverter, sin, cload, vdd)
        guarded = simulate_arc_transitions(inverter, sin, cload, vdd,
                                           on_failure="quarantine")
        assert base.quarantined is None
        assert guarded.quarantined is not None
        assert not guarded.quarantined.any()
        assert guarded.quarantined_indices().tolist() == []
        assert np.array_equal(np.asarray(base.delay()),
                              np.asarray(guarded.delay()))
        assert np.array_equal(np.asarray(base.output_slew()),
                              np.asarray(guarded.output_slew()))

    def test_injected_nan_row_is_quarantined(self, inverter):
        sin = np.array([1e-11, 2e-11, 4e-11])
        cload = np.full(3, 1e-15)
        vdd = np.full(3, 0.9)
        base = simulate_arc_transitions(inverter, sin, cload, vdd)
        spec = FaultSpec(site="transient.state", kind="nan", at_calls=(0,),
                         rows=(1,))
        with inject([spec], seed=0):
            result = simulate_arc_transitions(inverter, sin, cload, vdd,
                                              on_failure="quarantine")
        assert result.quarantined_indices().tolist() == [1]
        delay = np.asarray(result.delay())
        assert np.isnan(delay[1]).all()
        for row in (0, 2):
            assert np.array_equal(np.asarray(base.delay())[row], delay[row])

    def test_strict_mode_raises_on_injected_fault(self, inverter):
        sin = np.array([1e-11, 2e-11, 4e-11])
        cload = np.full(3, 1e-15)
        vdd = np.full(3, 0.9)
        spec = FaultSpec(site="transient.state", kind="nan", at_calls=(0,),
                         rows=(1,))
        with inject([spec], seed=0):
            with pytest.raises(RuntimeError):
                simulate_arc_transitions(inverter, sin, cload, vdd)


class TestBatchMapRepair:
    @pytest.fixture(scope="class")
    def solved(self, delay_prior):
        observations = BatchMapObservations(
            sin=np.array([1e-11, 2e-11, 4e-11, 8e-11, 1.6e-10]),
            cload=np.full(5, 2e-15),
            vdd=np.full(5, 0.9),
            ieff=np.full(5, 2e-4),
            response=np.tile(np.array([4e-11, 5e-11, 7e-11, 1.1e-10,
                                       1.9e-10]), (4, 1)),
        )
        return observations, map_estimate_batch(delay_prior, observations)

    def test_non_finite_response_named(self):
        response = np.ones((2, 4)) * 1e-11
        response[0, 3] = np.nan
        with pytest.raises(ValueError, match="seed 0, observation 3"):
            BatchMapObservations(
                sin=np.full(4, 1e-11), cload=np.full(4, 1e-15),
                vdd=np.full(4, 0.9), ieff=np.full(4, 1e-4),
                response=response)

    def test_repair_is_identity_on_clean_result(self, solved, delay_prior):
        observations, result = solved
        assert repair_batch_result(result, observations, delay_prior) is result

    def test_repair_fixes_poisoned_rows(self, solved, delay_prior):
        observations, result = solved
        poisoned = result.parameters.copy()
        poisoned[2] = np.nan
        broken = dataclasses.replace(result, parameters=poisoned)
        ledger = RunLedger()
        repaired = repair_batch_result(broken, observations, delay_prior,
                                       ledger=ledger)
        assert np.isfinite(repaired.parameters).all()
        healthy = [0, 1, 3]
        assert np.array_equal(repaired.parameters[healthy],
                              result.parameters[healthy])
        metrics = ledger.as_dict()["metrics"]
        assert metrics.get("map_repaired_scipy", 0) \
            + metrics.get("map_repaired_prior", 0) == 1


class TestFactorGraphResilience:
    def test_evidence_validated_per_graph(self):
        from repro.bayes.factor_graph import BatchedFactorGraph
        good = GaussianDensity(np.zeros(2), np.eye(2))
        bad = GaussianDensity(np.array([np.nan, 0.0]), np.eye(2))
        drift = np.stack([np.eye(2)] * 2)
        with pytest.raises(ValueError, match="graph index 1"):
            BatchedFactorGraph.star("global", {"leaf": [good, bad]}, drift)

    def test_on_divergence_validation(self):
        from repro.bayes.factor_graph import BatchedFactorGraph
        good = GaussianDensity(np.zeros(2), np.eye(2))
        graph = BatchedFactorGraph.star(
            "global", {"leaf": [good, good]}, np.stack([np.eye(2)] * 2))
        with pytest.raises(ValueError, match="on_divergence"):
            graph.run_belief_propagation(on_divergence="ignore")
        with pytest.raises(ValueError, match="retire"):
            graph.run_belief_propagation(engine="loop",
                                         on_divergence="retire")


# ---------------------------------------------------------------------------
# Library-flow graceful degradation (small but real end-to-end runs)


@pytest.fixture(scope="module")
def small_cells():
    return [make_cell("INV_X1"), make_cell("NAND2_X1")]


def _run_library(delay_prior, slew_prior, cells, **kwargs):
    clear_all_caches()
    ledger = RunLedger()
    library = characterize_library(
        get_technology("n28_bulk"), cells, delay_prior, slew_prior,
        conditions=3, n_seeds=6, rng=11, ledger=ledger, **kwargs)
    return library, ledger


class TestLibraryResilience:
    def test_clean_non_strict_is_bit_identical(self, delay_prior, slew_prior,
                                               small_cells):
        strict, _ = _run_library(delay_prior, slew_prior, small_cells,
                                 strict=True)
        relaxed, _ = _run_library(delay_prior, slew_prior, small_cells,
                                  strict=False)
        assert relaxed.failures == ()
        assert len(strict.entries) == len(relaxed.entries)
        for lhs, rhs in zip(strict.entries, relaxed.entries):
            assert np.array_equal(lhs.statistical.delay_parameters,
                                  rhs.statistical.delay_parameters)
            assert np.array_equal(lhs.statistical.slew_parameters,
                                  rhs.statistical.slew_parameters)

    def test_quarantined_row_degrades_gracefully(self, delay_prior,
                                                 slew_prior, small_cells):
        clean, _ = _run_library(delay_prior, slew_prior, small_cells)
        clear_all_caches()
        ledger = RunLedger()
        spec = FaultSpec(site="transient.state", kind="nan", at_calls=(0,),
                         rows=(1,))
        with inject([spec], seed=3):
            library = characterize_library(
                get_technology("n28_bulk"), small_cells, delay_prior,
                slew_prior, conditions=3, n_seeds=6, rng=11, ledger=ledger,
                strict=False)
        assert library.failures
        report = library.failures[0]
        assert report.stage == "simulate"
        assert report.error_type == "QuarantinedRows"
        assert ledger.failures() == list(library.failures)
        assert "QuarantinedRows" in format_ledger(ledger)
        # Non-faulted arcs are bit-identical to the clean run.
        degraded = set(library.failed_units())
        assert degraded
        clean_by_unit = {f"{e.cell_name}:{e.arc.name}": e
                         for e in clean.entries}
        checked = 0
        for entry in library.entries:
            unit = f"{entry.cell_name}:{entry.arc.name}"
            if unit in degraded:
                continue
            reference = clean_by_unit[unit]
            assert np.array_equal(entry.statistical.delay_parameters,
                                  reference.statistical.delay_parameters)
            assert np.array_equal(entry.statistical.slew_parameters,
                                  reference.statistical.slew_parameters)
            checked += 1
        assert checked > 0

    def test_strict_mode_fails_fast(self, delay_prior, slew_prior,
                                    small_cells):
        clear_all_caches()
        spec = FaultSpec(site="transient.state", kind="nan", at_calls=(0,),
                         rows=(1,))
        with inject([spec], seed=3):
            with pytest.raises(RuntimeError):
                characterize_library(
                    get_technology("n28_bulk"), small_cells, delay_prior,
                    slew_prior, conditions=3, n_seeds=6, rng=11, strict=True)

    def test_strict_default_from_env(self, delay_prior, slew_prior,
                                     small_cells, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT", "0")
        clear_all_caches()
        spec = FaultSpec(site="transient.state", kind="nan", at_calls=(0,),
                         rows=(1,))
        with inject([spec], seed=3):
            library = characterize_library(
                get_technology("n28_bulk"), small_cells, delay_prior,
                slew_prior, conditions=3, n_seeds=6, rng=11)
        assert library.failures

    def test_corrupted_solve_is_repaired(self, delay_prior, slew_prior,
                                         small_cells):
        ledger = RunLedger()
        clear_all_caches()
        spec = FaultSpec(site="batch_map.result", kind="nan", at_calls=(0,),
                         rows=(2,))
        with inject([spec], seed=9):
            library = characterize_library(
                get_technology("n28_bulk"), small_cells, delay_prior,
                slew_prior, conditions=3, n_seeds=6, rng=11, ledger=ledger,
                strict=False)
        assert any(report.error_type == "RepairedSolve"
                   for report in library.failures)
        assert len(library.entries) == 4
        for entry in library.entries:
            assert np.isfinite(entry.statistical.delay_parameters).all()
        metrics = ledger.as_dict()["metrics"]
        assert metrics.get("map_repaired_scipy", 0) \
            + metrics.get("map_repaired_prior", 0) >= 1

    def test_per_arc_retry_recovers(self, delay_prior, slew_prior,
                                    small_cells):
        ledger = RunLedger()
        clear_all_caches()
        spec = FaultSpec(site="library.arc_job", kind="exception",
                         at_calls=(1,))
        with inject([spec], seed=5):
            library = characterize_library(
                get_technology("n28_bulk"), small_cells, delay_prior,
                slew_prior, conditions=3, n_seeds=6, rng=11,
                pipeline="per_arc", ledger=ledger, strict=False,
                retry_policy=RetryPolicy(max_attempts=2))
        assert library.failures == ()
        assert len(library.entries) == 4
        assert ledger.as_dict()["metrics"]["retries"] >= 1

    def test_per_arc_failure_reported(self, delay_prior, slew_prior,
                                      small_cells):
        clear_all_caches()
        spec = FaultSpec(site="library.arc_job", kind="exception",
                         at_calls=(1,))
        with inject([spec], seed=5):
            library = characterize_library(
                get_technology("n28_bulk"), small_cells, delay_prior,
                slew_prior, conditions=3, n_seeds=6, rng=11,
                pipeline="per_arc", strict=False)
        assert len(library.failures) == 1
        assert library.failures[0].stage == "characterize"
        assert library.failures[0].error_type == "InjectedFault"
        assert len(library.entries) == 3


class TestHistoricalResilience:
    def test_quarantined_reference_condition(self, reference_conditions,
                                             inv_cell, nor2_cell):
        from repro.cells.library import Transition
        clear_all_caches()
        ledger = RunLedger()
        spec = FaultSpec(site="transient.state", kind="nan", at_calls=(0,),
                         rows=(0,))
        with inject([spec], seed=11):
            data = characterize_historical_library(
                get_technology("n45_bulk"), [inv_cell, nor2_cell],
                unit_conditions=reference_conditions,
                transitions=(Transition.FALL,), ledger=ledger, strict=False)
        assert data.failures
        assert data.failures[0].error_type == "QuarantinedRows"
        assert np.isfinite(data.delay_residuals).all()
        assert np.isfinite(data.slew_residuals).all()
        assert len(data.arc_fits) == 2
        assert ledger.failures() == list(data.failures)

    def test_strict_fails_fast(self, reference_conditions, inv_cell,
                               nor2_cell):
        from repro.cells.library import Transition
        clear_all_caches()
        spec = FaultSpec(site="transient.state", kind="nan", at_calls=(0,),
                         rows=(0,))
        with inject([spec], seed=11):
            with pytest.raises(RuntimeError):
                characterize_historical_library(
                    get_technology("n45_bulk"), [inv_cell, nor2_cell],
                    unit_conditions=reference_conditions,
                    transitions=(Transition.FALL,), strict=True)
