"""Tests for the compact MOSFET models, capacitance model, and Ieff."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import (
    AlphaPowerMOSFET,
    CapacitanceModel,
    DeviceParameters,
    Polarity,
    VirtualSourceMOSFET,
    effective_current,
    on_current,
)


def make_nmos(model_class=AlphaPowerMOSFET, **overrides):
    params = DeviceParameters(polarity=Polarity.NMOS, **overrides)
    return model_class(params)


MODEL_CLASSES = [AlphaPowerMOSFET, VirtualSourceMOSFET]


@pytest.mark.parametrize("model_class", MODEL_CLASSES)
class TestDrainCurrentBasics:
    def test_off_device_conducts_negligibly(self, model_class):
        device = make_nmos(model_class)
        assert float(device.current(0.0, 0.9)) < 1e-3 * float(device.current(0.9, 0.9))

    def test_current_positive_when_on(self, model_class):
        device = make_nmos(model_class)
        assert float(device.current(0.9, 0.45)) > 0.0

    def test_zero_vds_gives_zero_current(self, model_class):
        device = make_nmos(model_class)
        assert float(device.current(0.9, 0.0)) == pytest.approx(0.0, abs=1e-12)

    def test_negative_vds_clamped(self, model_class):
        device = make_nmos(model_class)
        assert float(device.current(0.9, -0.1)) == pytest.approx(0.0, abs=1e-12)

    def test_width_scaling_is_linear(self, model_class):
        narrow = make_nmos(model_class, width_um=0.5)
        wide = make_nmos(model_class, width_um=1.5)
        ratio = float(wide.current(0.9, 0.9)) / float(narrow.current(0.9, 0.9))
        assert ratio == pytest.approx(3.0, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(vgs=st.floats(min_value=0.2, max_value=1.2),
           vds_low=st.floats(min_value=0.01, max_value=0.6),
           delta=st.floats(min_value=0.01, max_value=0.6))
    def test_monotonic_in_vds(self, model_class, vgs, vds_low, delta):
        device = make_nmos(model_class)
        low = float(device.current(vgs, vds_low))
        high = float(device.current(vgs, vds_low + delta))
        assert high >= low - 1e-15

    @settings(max_examples=30, deadline=None)
    @given(vds=st.floats(min_value=0.05, max_value=1.0),
           vgs_low=st.floats(min_value=0.0, max_value=0.9),
           delta=st.floats(min_value=0.01, max_value=0.3))
    def test_monotonic_in_vgs(self, model_class, vds, vgs_low, delta):
        device = make_nmos(model_class)
        low = float(device.current(vgs_low, vds))
        high = float(device.current(vgs_low + delta, vds))
        assert high >= low - 1e-15


@pytest.mark.parametrize("model_class", MODEL_CLASSES)
class TestVariation:
    def test_higher_vth_reduces_current(self, model_class):
        device = make_nmos(model_class)
        slower = device.with_variation(delta_vth=0.05)
        assert float(slower.current(0.8, 0.8)) < float(device.current(0.8, 0.8))

    def test_drive_multiplier_scales_current(self, model_class):
        device = make_nmos(model_class)
        stronger = device.with_variation(drive_multiplier=1.2)
        ratio = float(stronger.current(0.8, 0.8)) / float(device.current(0.8, 0.8))
        assert ratio == pytest.approx(1.2, rel=1e-6)

    def test_vectorized_variation(self, model_class):
        device = make_nmos(model_class)
        varied = device.with_variation(delta_vth=np.array([0.0, 0.03, -0.03]))
        currents = varied.current(0.8, 0.8)
        assert currents.shape == (3,)
        assert currents[2] > currents[0] > currents[1]

    def test_invalid_multipliers_raise(self, model_class):
        device = make_nmos(model_class)
        with pytest.raises(ValueError):
            device.with_variation(drive_multiplier=0.0)
        with pytest.raises(ValueError):
            device.with_variation(leff_multiplier=-1.0)

    def test_scaled_width(self, model_class):
        device = make_nmos(model_class, width_um=1.0)
        doubled = device.scaled(2.0)
        assert float(np.asarray(doubled.width_um)) == pytest.approx(2.0)


class TestEffectiveCurrent:
    def test_ieff_below_on_current(self):
        device = make_nmos()
        assert float(effective_current(device, 0.9)) < float(on_current(device, 0.9))

    def test_ieff_increases_with_vdd(self):
        device = make_nmos()
        assert float(effective_current(device, 1.0)) > float(effective_current(device, 0.7))

    def test_ieff_matches_definition(self):
        device = make_nmos()
        vdd = 0.8
        expected = 0.5 * (float(device.current(vdd, vdd / 2))
                          + float(device.current(vdd / 2, vdd)))
        assert float(effective_current(device, vdd)) == pytest.approx(expected)

    def test_invalid_vdd_raises(self):
        device = make_nmos()
        with pytest.raises(ValueError):
            effective_current(device, 0.0)
        with pytest.raises(ValueError):
            on_current(device, -1.0)

    def test_vectorized_over_seeds(self):
        device = make_nmos().with_variation(delta_vth=np.array([0.0, 0.02]))
        values = effective_current(device, 0.8)
        assert values.shape == (2,)
        assert values[0] > values[1]


class TestCapacitanceModel:
    @pytest.fixture()
    def caps(self):
        return CapacitanceModel(cgate_per_um=1e-15, cdrain_per_um=0.5e-15,
                                cmiller_per_um=0.2e-15, cwire_fixed=0.1e-15)

    def test_gate_capacitance(self, caps):
        assert float(caps.gate_capacitance(2.0)) == pytest.approx(2e-15)

    def test_output_parasitic_sums_contributions(self, caps):
        total = float(caps.output_parasitic(1.0, 1.0))
        assert total == pytest.approx(0.5e-15 + 0.5e-15 + 0.1e-15)

    def test_scaled(self, caps):
        scaled = caps.scaled(1.1)
        assert scaled.cgate_per_um == pytest.approx(1.1e-15)
        with pytest.raises(ValueError):
            caps.scaled(0.0)

    def test_miller_capacitance(self, caps):
        assert float(caps.miller_capacitance(3.0)) == pytest.approx(0.6e-15)


class TestDeviceParameters:
    def test_replace_preserves_other_fields(self):
        params = DeviceParameters(polarity=Polarity.PMOS, vth0=0.3)
        updated = params.replace(vth0=0.4)
        assert updated.vth0 == 0.4
        assert updated.polarity is Polarity.PMOS
        assert params.vth0 == 0.3
