"""Tests for the four-parameter compact timing model and its fitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.timing_model import (
    CompactTimingModel,
    DEFAULT_INITIAL_GUESS,
    TimingModelParameters,
    fit_least_squares,
)
from repro.utils.units import FEMTO, PICO


def synthetic_observations(params: TimingModelParameters, n: int = 20, seed: int = 0):
    rng = np.random.default_rng(seed)
    sin = rng.uniform(1e-12, 15e-12, n)
    cload = rng.uniform(0.2e-15, 6e-15, n)
    vdd = rng.uniform(0.65, 1.0, n)
    ieff = 4e-4 * (vdd - 0.3)
    model = CompactTimingModel()
    response = model.evaluate(params, sin, cload, vdd, ieff)
    return sin, cload, vdd, ieff, response


class TestParameters:
    def test_array_round_trip(self):
        params = TimingModelParameters(kd=0.4, cpar_ff=1.2, vprime_v=-0.25,
                                       alpha_ff_per_ps=0.1)
        recovered = TimingModelParameters.from_array(params.as_array())
        assert recovered == params

    def test_from_array_wrong_size(self):
        with pytest.raises(ValueError):
            TimingModelParameters.from_array([1.0, 2.0])

    def test_describe_contains_values(self):
        params = TimingModelParameters(kd=0.4, cpar_ff=1.2, vprime_v=-0.25,
                                       alpha_ff_per_ps=0.1)
        text = params.describe()
        assert "kd=0.400" in text and "fF" in text


class TestEvaluation:
    def test_natural_unit_conversion(self):
        params = TimingModelParameters(kd=1.0, cpar_ff=1.0, vprime_v=0.0,
                                       alpha_ff_per_ps=1.0)
        model = CompactTimingModel()
        # Vdd=1V, Cload=1fF, Sin=1ps, Ieff=1A: charge = 1*(1fF+1fF+1fF) = 3fC.
        value = float(model.evaluate(params, PICO, FEMTO, 1.0, 1.0))
        assert value == pytest.approx(3e-15)

    def test_delay_scales_inversely_with_ieff(self):
        params = TimingModelParameters(kd=0.4, cpar_ff=1.0, vprime_v=-0.2,
                                       alpha_ff_per_ps=0.1)
        model = CompactTimingModel()
        low = float(model.evaluate(params, 5e-12, 2e-15, 0.8, 1e-4))
        high = float(model.evaluate(params, 5e-12, 2e-15, 0.8, 2e-4))
        assert low == pytest.approx(2 * high)

    def test_collapse_diagnostics(self):
        params = TimingModelParameters(kd=0.4, cpar_ff=1.0, vprime_v=-0.2,
                                       alpha_ff_per_ps=0.1)
        model = CompactTimingModel()
        sin, cload = 5e-12, 2e-15
        vdds = np.array([0.7, 0.85, 1.0])
        ieff = 4e-4 * (vdds - 0.3)
        response = model.evaluate(params, sin, cload, vdds, ieff)
        collapsed = model.vdd_collapse(response, ieff, vdds, params.vprime_v)
        assert np.allclose(collapsed, collapsed[0])
        collapsed_load = model.load_slew_collapse(response / ieff * ieff, cload, sin,
                                                  params.cpar_ff,
                                                  params.alpha_ff_per_ps)
        assert np.all(collapsed_load > 0)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            CompactTimingModel(lower_bounds=np.zeros(3), upper_bounds=np.ones(3))
        with pytest.raises(ValueError):
            CompactTimingModel(lower_bounds=np.ones(4), upper_bounds=np.zeros(4))


class TestLeastSquaresFit:
    @settings(max_examples=10, deadline=None)
    @given(kd=st.floats(min_value=0.2, max_value=0.8),
           cpar=st.floats(min_value=0.3, max_value=3.0),
           vprime=st.floats(min_value=-0.4, max_value=0.1),
           alpha=st.floats(min_value=0.01, max_value=0.5))
    def test_recovers_known_parameters(self, kd, cpar, vprime, alpha):
        """Fitting noiseless synthetic data recovers the generating parameters."""
        truth = TimingModelParameters(kd=kd, cpar_ff=cpar, vprime_v=vprime,
                                      alpha_ff_per_ps=alpha)
        sin, cload, vdd, ieff, response = synthetic_observations(truth, n=30)
        result = fit_least_squares(sin, cload, vdd, ieff, response)
        assert result.mean_abs_relative_error < 1e-4
        prediction = CompactTimingModel().evaluate(result.params, sin, cload, vdd,
                                                   ieff)
        assert np.allclose(prediction, response, rtol=1e-3)

    def test_reports_errors_and_convergence(self):
        truth = TimingModelParameters(kd=0.4, cpar_ff=1.0, vprime_v=-0.25,
                                      alpha_ff_per_ps=0.1)
        sin, cload, vdd, ieff, response = synthetic_observations(truth, n=15, seed=3)
        noisy = response * (1.0 + 0.02 * np.sin(np.arange(15)))
        result = fit_least_squares(sin, cload, vdd, ieff, noisy)
        assert result.converged
        assert result.n_observations == 15
        assert 0.0 < result.mean_abs_relative_error < 0.05
        assert result.max_abs_relative_error >= result.mean_abs_relative_error

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_least_squares([1e-12], [1e-15], [0.8], [1e-4], [-1e-12])
        with pytest.raises(ValueError):
            fit_least_squares([1e-12, 2e-12], [1e-15], [0.8], [1e-4], [1e-12])
        with pytest.raises(ValueError):
            fit_least_squares([1e-12], [1e-15], [0.8], [1e-4], [1e-12],
                              weights=[1.0, 2.0])

    def test_weights_prioritize_observations(self):
        truth = TimingModelParameters(kd=0.4, cpar_ff=1.0, vprime_v=-0.25,
                                      alpha_ff_per_ps=0.1)
        sin, cload, vdd, ieff, response = synthetic_observations(truth, n=10, seed=5)
        corrupted = response.copy()
        corrupted[0] *= 1.5
        weights = np.ones(10)
        weights[0] = 1e-6
        result = fit_least_squares(sin, cload, vdd, ieff, corrupted, weights=weights)
        assert abs(result.residuals[1:]).max() < 0.02

    def test_initial_guess_must_have_four_entries(self):
        truth = TimingModelParameters(*DEFAULT_INITIAL_GUESS)
        sin, cload, vdd, ieff, response = synthetic_observations(truth, n=8)
        with pytest.raises(ValueError):
            fit_least_squares(sin, cload, vdd, ieff, response,
                              initial_guess=[0.4, 1.0])
