"""Tests for the experiment runner and speedup extraction (Figs. 6-8 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SimulationCounter, get_technology, make_cell
from repro.analysis import compare_curves, crossover_budget, format_curve_table
from repro.experiments import AccuracyCurve, ExperimentRunner, compute_speedup


def make_curve(method: str, sizes, errors, runs=None) -> AccuracyCurve:
    sizes = tuple(sizes)
    errors = np.asarray(errors, dtype=float)
    runs = np.asarray(runs if runs is not None else sizes, dtype=float)
    return AccuracyCurve(method=method, metric="delay", training_sizes=sizes,
                         mean_error_percent=errors,
                         std_error_percent=np.zeros_like(errors),
                         simulation_runs=runs)


class TestAccuracyCurve:
    def test_error_at_and_runs_to_reach(self):
        curve = make_curve("lut", [1, 5, 20], [30.0, 8.0, 2.0])
        assert curve.error_at(5) == pytest.approx(8.0)
        assert curve.runs_to_reach(10.0) == pytest.approx(5)
        assert curve.runs_to_reach(1.0) is None
        with pytest.raises(KeyError):
            curve.error_at(7)

    def test_rows(self):
        curve = make_curve("bayesian", [1, 2], [5.0, 3.0])
        rows = curve.rows()
        assert rows[0] == (1, 5.0, 0.0, 1.0)


class TestComputeSpeedup:
    def test_matched_accuracy_speedup(self):
        fast = make_curve("bayesian", [1, 2, 3], [6.0, 3.0, 2.5])
        slow = make_curve("lut", [1, 10, 30], [40.0, 12.0, 3.0])
        summary = compute_speedup(fast, slow, target_error_percent=3.0)
        assert summary is not None
        assert summary.fast_runs == pytest.approx(2)
        assert summary.slow_runs == pytest.approx(30)
        assert summary.speedup == pytest.approx(15.0)
        assert "15.0x" in summary.describe()

    def test_default_target_uses_loosest_best(self):
        fast = make_curve("bayesian", [1, 2], [4.0, 2.0])
        slow = make_curve("lut", [1, 20], [50.0, 5.0])
        summary = compute_speedup(fast, slow)
        assert summary is not None
        assert summary.target_error_percent == pytest.approx(5.0)

    def test_unreachable_target_returns_none(self):
        fast = make_curve("bayesian", [1], [4.0])
        slow = make_curve("lut", [1], [50.0])
        assert compute_speedup(fast, slow, target_error_percent=1.0) is None

    def test_crossover_budget(self):
        fast = make_curve("bayesian", [1, 2], [4.0, 2.0])
        slow = make_curve("lut", [1, 10, 30], [50.0, 5.0, 1.5])
        assert crossover_budget(fast, slow) == 30
        assert crossover_budget(slow, fast) is None


class TestCompareCurves:
    def test_winner_and_speedups(self):
        curves = {
            "bayesian": make_curve("bayesian", [1, 5], [4.0, 1.0]),
            "lut": make_curve("lut", [1, 5], [40.0, 6.0]),
        }
        comparison = compare_curves(curves, reference_method="bayesian",
                                    target_error_percent=6.0)
        assert comparison.winner_at(1) == "bayesian"
        assert len(comparison.speedups) == 1
        assert comparison.speedups[0].speedup > 1.0

    def test_reference_must_exist(self):
        with pytest.raises(KeyError):
            compare_curves({"lut": make_curve("lut", [1], [1.0])},
                           reference_method="bayesian")

    def test_format_curve_table(self):
        curves = {
            "bayesian": make_curve("bayesian", [1, 5], [4.0, 1.0]),
            "lut": make_curve("lut", [1, 5], [40.0, 6.0]),
        }
        text = format_curve_table(curves, title="Fig. 6")
        assert "Fig. 6" in text
        assert "bayesian err%" in text
        assert "40" in text


@pytest.mark.slow
class TestExperimentRunnerIntegration:
    @pytest.fixture(scope="class")
    def runner(self, historical_data):
        counter = SimulationCounter()
        return ExperimentRunner(
            technology=get_technology("n14_finfet"),
            cells=[make_cell("NOR2_X1")],
            transitions=("fall",),
            historical=historical_data,
            n_validation=15,
            rng=3,
            counter=counter,
        )

    def test_nominal_curves_shape_and_ordering(self, runner):
        curves = runner.nominal_curves([2, 8], methods=("bayesian", "lut"))
        assert set(curves) == {"bayesian", "lut"}
        bayes = curves["bayesian"]
        lut = curves["lut"]
        assert bayes.training_sizes == (2, 8)
        # The proposed flow at 2 samples already beats the 2-point LUT.
        assert bayes.error_at(2) < lut.error_at(2)
        assert np.all(bayes.simulation_runs > 0)

    def test_statistical_curves_keys(self, runner):
        curves = runner.statistical_curves([3], n_seeds=12,
                                           methods=("bayesian",))
        assert ("bayesian", "mu_delay") in curves
        assert ("bayesian", "sigma_delay") in curves
        mu_curve = curves[("bayesian", "mu_delay")]
        assert mu_curve.mean_error_percent[0] < 20.0
        assert mu_curve.simulation_runs[0] == pytest.approx(3 * 12)

    def test_invalid_method_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.nominal_curves([2], methods=("magic",))
        with pytest.raises(ValueError):
            runner.statistical_curves([2], methods=("lse",))

    def test_validation_conditions_available(self, runner):
        assert len(runner.validation_conditions) == 15
        assert len(runner.arcs()) == 1
