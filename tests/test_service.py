"""Tests for the characterization serving front door.

Covers the four serving disciplines of
:class:`repro.runtime.service.CharacterizationService` -- single-flight
coalescing, cooperative deadlines, admission control / load-shedding, and
the disk circuit breaker -- plus the issue's acceptance scenario: slow
worker, ENOSPC disk and one stuck request, with concurrent clients all
completing and coalesced results bit-identical to solo runs.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import get_technology
from repro.cells.library import Transition
from repro.characterization.input_space import InputSpace
from repro.core.library_flow import characterize_fused_jobs
from repro.runtime import FaultSpec, clear_all_caches, inject
from repro.runtime.accounting import RunLedger
from repro.runtime.executor import get_executor
from repro.runtime.persist import DiskStore
from repro.runtime.resilience import CircuitBreaker, DeadlineExceeded
from repro.runtime.service import (
    CharacterizationService,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.spice.testbench import get_simulation_cache
from repro.utils.rng import ensure_rng


@pytest.fixture(scope="module")
def context(delay_prior, slew_prior):
    """Shared serving context: technology, priors, seeds, conditions."""
    technology = get_technology("n28_bulk")
    variation = technology.variation.sample(3, ensure_rng(11))
    conditions = tuple(InputSpace(technology).sample_lhs(2, ensure_rng(5)))
    return technology, delay_prior, slew_prior, variation, conditions


def make_service(context, **kwargs):
    technology, delay_prior, slew_prior, variation, _ = context
    kwargs.setdefault("batch_window_s", 0.02)
    return CharacterizationService(technology, delay_prior, slew_prior,
                                   variation, **kwargs)


def inv_arcs(inv_cell):
    pin = inv_cell.input_pins[0]
    return (inv_cell.arc(pin, Transition.FALL),
            inv_cell.arc(pin, Transition.RISE))


def solo_reference(context, cell, arcs):
    """The solo-run ground truth: one direct fused pass per the whole job
    list, computed on a cold cache and followed by another cold start so
    the service recomputes rather than replays."""
    technology, delay_prior, slew_prior, variation, conditions = context
    clear_all_caches()
    results, failures = characterize_fused_jobs(
        technology, [(cell, arc) for arc in arcs],
        [list(conditions) for _ in arcs], delay_prior, slew_prior,
        variation, "batched", get_executor("serial"), RunLedger(), None)
    assert not failures
    clear_all_caches()
    return {arc.name: result for arc, result in zip(arcs, results)}


def assert_same_characterization(got, expected):
    assert got is not None
    np.testing.assert_array_equal(got.delay_parameters,
                                  expected.delay_parameters)
    np.testing.assert_array_equal(got.slew_parameters,
                                  expected.slew_parameters)


class TestBasics:
    def test_solo_parity_bit_identical(self, context, inv_cell):
        arcs = inv_arcs(inv_cell)
        expected = solo_reference(context, inv_cell, arcs)
        conditions = context[-1]
        with make_service(context) as service:
            result = service.request(inv_cell, arcs, conditions)
        assert result.complete and not result.degraded
        for arc in arcs:
            assert_same_characterization(result.characterizations[arc.name],
                                         expected[arc.name])

    def test_single_flight_coalesces_identical_requests(self, context,
                                                        inv_cell):
        arcs = inv_arcs(inv_cell)
        conditions = context[-1]
        clear_all_caches()
        service = make_service(context, start=False)
        tickets = [service.submit(inv_cell, arcs, conditions)
                   for _ in range(4)]
        service.start()
        results = [ticket.result(timeout=60) for ticket in tickets]
        service.close()
        # One fused pass served all four: one batch, three coalesced
        # requests, and every result is the same solved model.
        stats = service.stats()
        assert stats.batches == 1
        assert stats.coalesced_arcs == 3 * len(arcs)
        assert sum(result.coalesced for result in results) == 3
        reference = results[0].characterizations
        for result in results[1:]:
            for arc in arcs:
                assert_same_characterization(
                    result.characterizations[arc.name], reference[arc.name])
        metrics = service.ledger.metrics()
        assert metrics["service_requests"] == 4
        assert metrics["service_batches"] == 1

    def test_repeat_request_is_served_from_solved_cache(self, context,
                                                        inv_cell):
        arcs = inv_arcs(inv_cell)
        conditions = context[-1]
        with make_service(context) as service:
            first = service.request(inv_cell, arcs, conditions)
            before = service.ledger.metrics().get("fused_rows_total", 0)
            second = service.request(inv_cell, arcs, conditions)
            after = service.ledger.metrics().get("fused_rows_total", 0)
        assert not first.coalesced and second.coalesced
        assert after == before  # no new pipeline rows for the repeat
        for arc in arcs:
            assert (second.characterizations[arc.name]
                    is first.characterizations[arc.name])

    def test_validation_and_lifecycle(self, context, inv_cell):
        arcs = inv_arcs(inv_cell)
        conditions = context[-1]
        with pytest.raises(ValueError):
            make_service(context, queue_depth=0)
        with pytest.raises(ValueError):
            make_service(context, shed_policy="panic")
        service = make_service(context, start=False)
        with pytest.raises(ValueError):
            service.submit(inv_cell, (), conditions)
        with pytest.raises(ValueError):
            service.submit(inv_cell, arcs, ())
        with pytest.raises(ValueError):
            service.submit(inv_cell, arcs, conditions, deadline_s=0.0)
        service.start()
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(inv_cell, arcs, conditions)


class TestDeadlines:
    def test_expired_in_queue_fails_fast(self, context, inv_cell):
        arcs = inv_arcs(inv_cell)
        conditions = context[-1]
        service = make_service(context, start=False)
        ticket = service.submit(inv_cell, arcs, conditions, deadline_s=0.01)
        time.sleep(0.05)
        service.start()
        with pytest.raises(DeadlineExceeded):
            ticket.result(timeout=30)
        service.close()
        assert service.stats().deadline_misses == 1

    def test_slow_batch_misses_deadline_without_poisoning_peers(
            self, context, inv_cell):
        arcs = inv_arcs(inv_cell)
        conditions = context[-1]
        clear_all_caches()
        expected = solo_reference(context, inv_cell, arcs)
        with inject([FaultSpec(site="service.slow_worker", kind="slow",
                               at_calls=(0,), delay_s=0.3)]):
            service = make_service(context, start=False)
            impatient = service.submit(inv_cell, arcs, conditions,
                                       deadline_s=0.1)
            patient = service.submit(inv_cell, arcs, conditions)
            service.start()
            with pytest.raises(DeadlineExceeded):
                impatient.result(timeout=60)
            result = patient.result(timeout=60)
            # The expired request did not poison the shared batch, and the
            # batch's rows landed in the caches despite the miss: a repeat
            # request is served from the solved-model cache.
            for arc in arcs:
                assert_same_characterization(
                    result.characterizations[arc.name], expected[arc.name])
            retry = service.request(inv_cell, arcs, conditions)
            service.close()
        assert retry.coalesced
        assert service.stats().deadline_misses == 1


class TestAdmission:
    def test_reject_policy_sheds_beyond_queue_depth(self, context, inv_cell):
        arcs = inv_arcs(inv_cell)
        conditions = context[-1]
        service = make_service(context, queue_depth=2, start=False)
        tickets = [service.submit(inv_cell, arcs, conditions)
                   for _ in range(2)]
        with pytest.raises(ServiceOverloaded):
            service.submit(inv_cell, arcs, conditions)
        service.start()
        for ticket in tickets:
            assert ticket.result(timeout=60).complete
        service.close()
        stats = service.stats()
        assert stats.shed == 1
        assert stats.queue_peak <= 2

    def test_degrade_policy_serves_cache_only_partial(self, context,
                                                      inv_cell, nand2_cell):
        arcs = inv_arcs(inv_cell)
        conditions = context[-1]
        with make_service(context, shed_policy="degrade") as service:
            full = service.request(inv_cell, arcs, conditions)  # warm LRU
            # Force the admission check to see a full queue for the next
            # two submits: the warmed cell degrades to its cached models,
            # the cold cell to an all-None partial result.
            with inject([FaultSpec(site="service.queue_full",
                                   kind="exception", at_calls=(0, 1))]):
                warm = service.submit(inv_cell, arcs, conditions)
                cold = service.submit(nand2_cell, inv_arcs(nand2_cell),
                                      conditions)
        warm_result = warm.result(timeout=60)
        assert warm_result.degraded and warm_result.coalesced
        assert warm_result.complete  # every arc came from the solved LRU
        for arc in arcs:
            assert (warm_result.characterizations[arc.name]
                    is full.characterizations[arc.name])
        cold_result = cold.result(timeout=60)
        assert cold_result.degraded and not cold_result.complete
        assert all(value is None
                   for value in cold_result.characterizations.values())
        assert len(cold_result.failures) == 2
        assert service.stats().shed == 2

    def test_queue_full_fault_forces_shedding(self, context, inv_cell):
        arcs = inv_arcs(inv_cell)
        conditions = context[-1]
        with inject([FaultSpec(site="service.queue_full", kind="exception",
                               at_calls=(0,))]):
            service = make_service(context, start=False)
            with pytest.raises(ServiceOverloaded):
                service.submit(inv_cell, arcs, conditions)
            ticket = service.submit(inv_cell, arcs, conditions)
            service.start()
            assert ticket.result(timeout=60).complete
            service.close()
        assert service.stats().shed == 1


class TestDiskBreaker:
    def test_enospc_storm_trips_breaker_and_degrades_to_memory(
            self, context, inv_cell, tmp_path):
        arcs = inv_arcs(inv_cell)
        conditions = context[-1]
        clear_all_caches()
        sim_cache = get_simulation_cache()
        store = DiskStore(tmp_path / "disk", name="simulation")
        sim_cache.attach_disk_store(store)
        try:
            breaker = CircuitBreaker(failure_threshold=1, cooldown_s=30.0)
            with inject([FaultSpec(site="persist.write", kind="enospc",
                                   rate=1.0)]):
                with make_service(context, breaker=breaker) as service:
                    result = service.request(inv_cell, arcs, conditions)
                    assert result.complete  # served despite the dead disk
            assert breaker.state == "open"
            assert breaker.trips == 1
            assert sim_cache.disk_store is None  # degraded to memory-only
            assert service.ledger.metrics()["service_disk_errors"] > 0
        finally:
            sim_cache.detach_disk_store()
            clear_all_caches()

    def test_half_open_probe_reattaches_after_cooldown(self, context,
                                                       inv_cell, nand2_cell,
                                                       tmp_path):
        arcs = inv_arcs(inv_cell)
        conditions = context[-1]
        clear_all_caches()
        sim_cache = get_simulation_cache()
        store = DiskStore(tmp_path / "disk", name="simulation")
        sim_cache.attach_disk_store(store)
        try:
            breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.0)
            with make_service(context, breaker=breaker) as service:
                with inject([FaultSpec(site="persist.write", kind="enospc",
                                       rate=1.0)]):
                    service.request(inv_cell, arcs, conditions)
                assert sim_cache.disk_store is None
                # Zero cooldown: the next batch with fresh rows re-attaches
                # the store as the half-open probe; the disk is healthy
                # again, so the probe closes the breaker.
                service.request(nand2_cell, inv_arcs(nand2_cell), conditions)
                service.request(inv_cell, arcs,
                                tuple(InputSpace(context[0])
                                      .sample_lhs(1, ensure_rng(99))))
            assert sim_cache.disk_store is store
            assert breaker.state == "closed"
            assert store.stats().writes > 0
        finally:
            sim_cache.detach_disk_store()
            clear_all_caches()


class TestConcurrentClients:
    def test_many_threads_submit_and_all_complete(self, context, inv_cell,
                                                  nand2_cell):
        conditions = context[-1]
        cells = [inv_cell, nand2_cell]
        results = {}
        errors = []

        def client(index):
            cell = cells[index % len(cells)]
            try:
                results[index] = service.request(cell, inv_arcs(cell),
                                                 conditions, deadline_s=60.0)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        clear_all_caches()
        with make_service(context, queue_depth=32) as service:
            threads = [threading.Thread(target=client, args=(index,))
                       for index in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        assert not errors
        assert len(results) == 8
        assert all(result.complete for result in results.values())
        stats = service.stats()
        assert stats.completed == 8
        assert stats.deadline_misses == 0  # nominal load: no misses
        # 8 requests over 2 distinct cells: at least 6 were coalesced.
        assert stats.coalesced_arcs >= 6

    def test_acceptance_slow_worker_enospc_and_stuck_request(
            self, context, inv_cell, nand2_cell, tmp_path):
        """The issue's deterministic fault scenario: slow worker + ENOSPC
        disk + one stuck request, N concurrent clients all completing."""
        arcs = inv_arcs(inv_cell)
        conditions = context[-1]
        expected = solo_reference(context, inv_cell, arcs)
        expected_nand = solo_reference(context, nand2_cell,
                                       inv_arcs(nand2_cell))
        clear_all_caches()
        sim_cache = get_simulation_cache()
        store = DiskStore(tmp_path / "disk", name="simulation")
        sim_cache.attach_disk_store(store)
        faults = [
            FaultSpec(site="service.slow_worker", kind="slow",
                      at_calls=(0,), delay_s=0.25),
            FaultSpec(site="service.stuck_request", kind="slow",
                      at_calls=(1,), delay_s=0.4),
            FaultSpec(site="persist.write", kind="enospc", rate=1.0),
        ]
        try:
            breaker = CircuitBreaker(failure_threshold=1, cooldown_s=30.0)
            with inject(faults, seed=13) as injector:
                service = make_service(context, breaker=breaker,
                                       queue_depth=8, start=False)
                # Deterministic submission order; the waiting clients are
                # genuinely concurrent threads.
                impatient = service.submit(inv_cell, arcs, conditions,
                                           deadline_s=0.05)
                stuck = service.submit(inv_cell, arcs, conditions)
                peers = [service.submit(
                    [inv_cell, nand2_cell][index % 2],
                    inv_arcs([inv_cell, nand2_cell][index % 2]), conditions)
                    for index in range(4)]
                outcomes = {}

                def wait(name, ticket):
                    try:
                        outcomes[name] = ticket.result(timeout=120)
                    except BaseException as error:
                        outcomes[name] = error

                waiters = [threading.Thread(target=wait, args=pair)
                           for pair in ([("impatient", impatient),
                                         ("stuck", stuck)]
                                        + [(f"peer{i}", t)
                                           for i, t in enumerate(peers)])]
                for thread in waiters:
                    thread.start()
                service.start()
                for thread in waiters:
                    thread.join(timeout=120)
                service.close()
                fired = {event.site for event in injector.events}
            # Every client completed: the slow batch cost the impatient
            # client its deadline, everyone else got full results.
            assert len(outcomes) == 6
            assert isinstance(outcomes["impatient"], DeadlineExceeded)
            for name, outcome in outcomes.items():
                if name == "impatient":
                    continue
                assert not isinstance(outcome, BaseException), (name, outcome)
                assert outcome.complete
                reference = (expected if "INV" in
                             next(iter(outcome.characterizations))
                             else expected_nand)
                for arc_name, got in outcome.characterizations.items():
                    assert_same_characterization(got, reference[arc_name])
            # The stuck request was held out of the first batch yet still
            # completed -- served by its peers' coalesced batch.
            assert outcomes["stuck"].coalesced
            # The dead disk tripped the breaker; service stayed up.
            assert {"service.slow_worker", "service.stuck_request",
                    "persist.write"} <= fired
            assert breaker.state == "open"
            assert sim_cache.disk_store is None
            stats = service.stats()
            assert stats.completed == 6
            assert stats.deadline_misses == 1
            assert stats.queue_peak <= 8
            assert service.ledger.metrics()["service_rows_shared"] >= 0
        finally:
            sim_cache.detach_disk_store()
            clear_all_caches()
