"""Tests for NLDM tables and the Liberty writer / parser round trip."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cells import Transition
from repro.liberty import (
    CellTimingData,
    LibertyWriter,
    NldmTable,
    TimingTableSet,
    build_nldm_table,
    parse_liberty,
)


def linear_response(sin: float, cload: float) -> float:
    return 2e-12 + 0.2 * sin + 1.5e3 * cload


def sample_table() -> NldmTable:
    return build_nldm_table(linear_response, [1e-12, 5e-12, 10e-12],
                            [0.5e-15, 2e-15, 5e-15])


def sample_cell(with_sigma: bool = True) -> CellTimingData:
    table = sample_table()
    sigma = build_nldm_table(lambda s, c: 0.1 * linear_response(s, c),
                             [1e-12, 5e-12, 10e-12], [0.5e-15, 2e-15, 5e-15])
    arcs = [TimingTableSet(related_pin="A", output_transition=Transition.FALL,
                           delay=table, transition=table,
                           sigma_delay=sigma if with_sigma else None)]
    return CellTimingData(name="NAND2_X1", function="!(A & B)",
                          input_pin_caps_pf={"A": 0.0012, "B": 0.0012},
                          arcs=arcs, area=1.5)


class TestNldmTable:
    def test_lookup_exact_grid_point(self):
        table = sample_table()
        assert table.lookup(5e-12, 2e-15) == pytest.approx(linear_response(5e-12, 2e-15),
                                                           rel=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(sin=st.floats(min_value=1e-12, max_value=10e-12),
           cload=st.floats(min_value=0.5e-15, max_value=5e-15))
    def test_bilinear_reproduces_linear_function(self, sin, cload):
        table = sample_table()
        assert table.lookup(sin, cload) == pytest.approx(linear_response(sin, cload),
                                                         rel=1e-6)

    def test_clamps_outside_range(self):
        table = sample_table()
        assert table.lookup(1e-9, 1e-12) == pytest.approx(table.lookup(10e-12, 5e-15))

    def test_validation(self):
        with pytest.raises(ValueError):
            NldmTable(np.array([1.0, 0.5]), np.array([1.0]), np.zeros((2, 1)))
        with pytest.raises(ValueError):
            NldmTable(np.array([1.0, 2.0]), np.array([1.0]), np.zeros((3, 1)))
        with pytest.raises(ValueError):
            build_nldm_table(linear_response, [], [1e-15])


class TestWriter:
    def test_render_contains_expected_groups(self):
        writer = LibertyWriter("testlib", nominal_voltage=0.9)
        writer.add_cell(sample_cell())
        text = writer.render()
        for token in ("library (testlib)", "lu_table_template", "cell (NAND2_X1)",
                      "cell_fall", "fall_transition", "ocv_sigma_cell_fall",
                      'related_pin : "A"'):
            assert token in text

    def test_duplicate_cell_rejected(self):
        writer = LibertyWriter("testlib", nominal_voltage=0.9)
        writer.add_cell(sample_cell())
        with pytest.raises(ValueError):
            writer.add_cell(sample_cell())

    def test_empty_library_rejected(self):
        writer = LibertyWriter("testlib", nominal_voltage=0.9)
        with pytest.raises(ValueError):
            writer.render()

    def test_cell_without_arcs_rejected(self):
        writer = LibertyWriter("testlib", nominal_voltage=0.9)
        cell = sample_cell()
        cell.arcs = []
        with pytest.raises(ValueError):
            writer.add_cell(cell)

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            LibertyWriter("", nominal_voltage=0.9)
        with pytest.raises(ValueError):
            LibertyWriter("x", nominal_voltage=0.0)

    def test_write_to_file(self, tmp_path):
        writer = LibertyWriter("testlib", nominal_voltage=0.9)
        writer.add_cell(sample_cell())
        path = tmp_path / "out.lib"
        writer.write(str(path))
        assert path.read_text().startswith("library (testlib)")


class TestRoundTrip:
    def test_full_round_trip(self):
        writer = LibertyWriter("rt_lib", nominal_voltage=0.85, temperature_c=50.0)
        writer.add_cell(sample_cell())
        parsed = parse_liberty(writer.render())
        assert parsed.name == "rt_lib"
        assert parsed.nom_voltage == pytest.approx(0.85)
        assert parsed.nom_temperature == pytest.approx(50.0)
        cell = parsed.cell("NAND2_X1")
        assert cell.area == pytest.approx(1.5)
        assert cell.function == "!(A & B)"
        assert cell.input_pin_caps_pf["B"] == pytest.approx(0.0012)
        arc = cell.arcs[0]
        assert arc.related_pin == "A"
        assert arc.output_transition is Transition.FALL
        assert arc.sigma_delay is not None
        # Table values survive the text round trip.
        assert arc.delay.lookup(5e-12, 2e-15) == pytest.approx(
            linear_response(5e-12, 2e-15), rel=1e-4)

    def test_round_trip_without_sigma(self):
        writer = LibertyWriter("rt_lib", nominal_voltage=0.85)
        writer.add_cell(sample_cell(with_sigma=False))
        parsed = parse_liberty(writer.render())
        assert parsed.cell("NAND2_X1").arcs[0].sigma_delay is None

    def test_parser_error_handling(self):
        with pytest.raises(ValueError):
            parse_liberty("")
        with pytest.raises(ValueError):
            parse_liberty("cell (X) {\n}\n")
        with pytest.raises(ValueError):
            parse_liberty("library (x) {\n  area : 1;\n")
        with pytest.raises(KeyError):
            writer = LibertyWriter("lib", nominal_voltage=1.0)
            writer.add_cell(sample_cell())
            parse_liberty(writer.render()).cell("MISSING")
