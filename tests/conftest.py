"""Shared fixtures for the test suite.

Simulation-backed fixtures are session-scoped and use deliberately small
configurations (few reference conditions, two historical nodes, the Table I
cells) so the whole suite stays fast while still exercising the real flows
end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    SimulationCounter,
    get_technology,
    learn_prior,
    make_cell,
)
from repro.core.prior_learning import (
    characterize_historical_library,
    shared_reference_conditions,
)


@pytest.fixture(scope="session")
def tech14():
    """The 14 nm FinFET target technology."""
    return get_technology("n14_finfet")


@pytest.fixture(scope="session")
def tech28():
    """The 28 nm bulk technology used for statistical experiments."""
    return get_technology("n28_bulk")


@pytest.fixture(scope="session")
def tech45():
    """The oldest (45 nm) historical technology."""
    return get_technology("n45_bulk")


@pytest.fixture(scope="session")
def inv_cell():
    """A unit-drive inverter."""
    return make_cell("INV_X1")


@pytest.fixture(scope="session")
def nand2_cell():
    """A unit-drive NAND2."""
    return make_cell("NAND2_X1")


@pytest.fixture(scope="session")
def nor2_cell():
    """A unit-drive NOR2."""
    return make_cell("NOR2_X1")


@pytest.fixture(scope="session")
def reference_conditions():
    """A small shared set of normalized reference conditions."""
    return shared_reference_conditions(8, rng=7)


@pytest.fixture(scope="session")
def historical_data(reference_conditions, inv_cell, nor2_cell):
    """Two characterized historical libraries (small but real simulations)."""
    from repro.cells.library import Transition

    counter = SimulationCounter()
    nodes = [get_technology("n28_bulk"), get_technology("n45_bulk")]
    return [
        characterize_historical_library(
            node, [inv_cell, nor2_cell],
            unit_conditions=reference_conditions,
            transitions=(Transition.FALL,),
            counter=counter,
        )
        for node in nodes
    ]


@pytest.fixture(scope="session")
def delay_prior(historical_data):
    """Delay prior learned from the small historical set."""
    return learn_prior(historical_data, response="delay", method="bp")


@pytest.fixture(scope="session")
def slew_prior(historical_data):
    """Slew prior learned from the small historical set."""
    return learn_prior(historical_data, response="slew", method="bp")


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(12345)
