"""Batched-versus-loop equivalence suite for the STA/SSTA engines.

Property-style grid: every seeded synthetic topology (chain, balanced tree,
random layered DAGs across fanin windows) is analyzed by both engines of
:class:`~repro.sta.analysis.StaticTimingAnalyzer` and
:class:`~repro.sta.ssta.MonteCarloSsta`, and the full reports -- arrivals,
slews, critical path, criticality, per-seed distributions -- must agree to
``rtol <= 1e-12``.  Also covers levelization correctness of
:class:`~repro.sta.netlist.CompiledNetlist`, the shared net-load vector, the
batched timing-view query paths, and the vectorized per-seed prediction of
:class:`~repro.core.statistical_flow.StatisticalCharacterization`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization.input_space import InputCondition
from repro.cells import reduce_cell_cached
from repro.core.statistical_flow import StatisticalCharacterization
from repro.sta import (
    CellTiming,
    MonteCarloSsta,
    StaticTimingAnalyzer,
    StatisticalTimingView,
    TimingView,
    c17_benchmark,
    compile_netlist,
    inverter_chain,
    nand_nor_tree,
    random_layered_dag,
    timing_view_from_statistical,
)
from repro.sta.netlist import Gate, Netlist

RTOL = 1e-12

CELL_NAMES = ("INV_X1", "NAND2_X1", "NOR2_X1")

#: Per-cell slope structure so worst-input selection actually matters:
#: delay and slew both depend on input slew and load, differently per cell.
_CELL_GAIN = {"INV_X1": 1.0, "NAND2_X1": 1.35, "NOR2_X1": 1.7}


def _nominal(cell, input_slew_s, load_cap_f):
    gain = _CELL_GAIN[cell]
    delay = gain * (8e-12 + 2.2e3 * load_cap_f + 0.15 * input_slew_s)
    slew = gain * (3e-12 + 1.1e3 * load_cap_f + 0.08 * input_slew_s)
    return delay, slew


def make_nominal_view() -> TimingView:
    cells = {}
    for name in CELL_NAMES:
        def callback(input_slew_s, load_cap_f, cell=name):
            return _nominal(cell, input_slew_s, load_cap_f)
        cells[name] = CellTiming(cell_name=name, input_cap_f=1.2e-15,
                                 callback=callback)
    return TimingView(vdd=0.9, cells=cells)


def make_statistical_view(n_seeds: int, rng_seed: int = 7
                          ) -> StatisticalTimingView:
    """Per-seed view whose delay AND slew spreads differ per cell, so each
    seed's argmax input (and its slew) genuinely varies across seeds."""
    rng = np.random.default_rng(rng_seed)
    delay_offsets = {name: rng.normal(0.0, 1.5e-12, n_seeds)
                     for name in CELL_NAMES}
    slew_offsets = {name: rng.normal(0.0, 0.6e-12, n_seeds)
                    for name in CELL_NAMES}

    cells = {}
    for name in CELL_NAMES:
        def callback(input_slew_s, load_cap_f, cell=name):
            delay, slew = _nominal(cell, input_slew_s, load_cap_f)
            return delay + delay_offsets[cell], slew + slew_offsets[cell]
        cells[name] = CellTiming(cell_name=name, input_cap_f=1.2e-15,
                                 callback=callback)
    return StatisticalTimingView(vdd=0.9, cells=cells, n_seeds=n_seeds)


def equivalence_netlists():
    yield inverter_chain(12)
    yield nand_nor_tree(16)
    yield c17_benchmark()
    for seed in (1, 2):
        for window in (1, 3):
            yield random_layered_dag(width=7, depth=6, window=window,
                                     rng=seed, name=f"dag_s{seed}_w{window}")


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
class TestCompiledNetlist:
    @pytest.mark.parametrize("netlist", equivalence_netlists(),
                             ids=lambda n: n.name)
    def test_levelization(self, netlist):
        compiled = netlist.compile()
        # Levels partition the gates and are contiguous, in ascending order.
        assert compiled.level_starts[0] == 0
        assert compiled.level_starts[-1] == compiled.n_gates
        assert np.all(np.diff(compiled.gate_level) >= 0)
        # Every gate's level is exactly one more than its worst fanin net's
        # level (primary inputs at level 0).
        net_level = {name: 0 for name in netlist.primary_inputs}
        for index, name in enumerate(compiled.gate_names):
            gate = netlist.gate(name)
            level = 1 + max(net_level[net] for net in gate.input_nets)
            assert level == compiled.gate_level[index]
            net_level[gate.output_net] = level

    def test_compile_is_cached_and_invalidated(self):
        netlist = inverter_chain(3)
        first = netlist.compile()
        assert netlist.compile() is first
        netlist.set_output_load("out", 5e-15)
        assert netlist.compile() is not first

    def test_loop_detected(self):
        netlist = Netlist("loop", ["a"], ["z"])
        netlist.add_gate(Gate("g1", "NAND2_X1", ("a", "y"), "z"))
        netlist.add_gate(Gate("g2", "INV_X1", ("z",), "y"))
        with pytest.raises(ValueError, match="loop"):
            netlist.compile()

    def test_missing_driver_detected(self):
        netlist = Netlist("x", ["a"], ["z"])
        netlist.add_gate(Gate("g1", "INV_X1", ("floating",), "z"))
        with pytest.raises(ValueError, match="no driver"):
            netlist.compile()

    @pytest.mark.parametrize("netlist", equivalence_netlists(),
                             ids=lambda n: n.name)
    def test_net_loads_match_fanout_walk(self, netlist):
        view = make_nominal_view()
        compiled = netlist.compile()
        loads = compiled.net_loads({name: view.input_capacitance(name)
                                    for name in CELL_NAMES})
        for index, net in enumerate(compiled.net_names):
            expected = netlist.external_load(net) + sum(
                view.input_capacitance(gate.cell_name)
                for gate in netlist.fanout_gates(net))
            assert loads[index] == pytest.approx(expected, rel=1e-15)

    def test_duplicate_pin_counted_once(self):
        netlist = Netlist("dup", ["a"], ["z"])
        netlist.add_gate(Gate("g1", "NAND2_X1", ("a", "a"), "z"))
        compiled = netlist.compile()
        loads = compiled.net_loads({"NAND2_X1": 2e-15})
        assert loads[0] == pytest.approx(2e-15)


# ----------------------------------------------------------------------
# Engine equivalence
# ----------------------------------------------------------------------
class TestStaEquivalence:
    @pytest.mark.parametrize("netlist", equivalence_netlists(),
                             ids=lambda n: n.name)
    def test_reports_agree(self, netlist):
        view = make_nominal_view()
        loop = StaticTimingAnalyzer(netlist, view, engine="loop").run()
        batched = StaticTimingAnalyzer(netlist, view, engine="batched").run()
        assert batched.critical_output == loop.critical_output
        assert batched.critical_path == loop.critical_path
        assert batched.critical_delay == pytest.approx(loop.critical_delay,
                                                       rel=RTOL)
        assert set(batched.arrival_times) == set(loop.arrival_times)
        for net, arrival in loop.arrival_times.items():
            assert batched.arrival_times[net] == pytest.approx(arrival, rel=RTOL)
            assert batched.transition_times[net] == pytest.approx(
                loop.transition_times[net], rel=RTOL)

    def test_primary_input_arrival_shifts_all_outputs(self):
        netlist = nand_nor_tree(8)
        view = make_nominal_view()
        for engine in ("loop", "batched"):
            base = StaticTimingAnalyzer(netlist, view, engine=engine).run()
            shifted = StaticTimingAnalyzer(netlist, view, engine=engine,
                                           primary_input_arrival=7e-12).run()
            assert shifted.critical_delay == pytest.approx(
                base.critical_delay + 7e-12, rel=1e-12)
            assert shifted.critical_path == base.critical_path

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            StaticTimingAnalyzer(inverter_chain(2), make_nominal_view(),
                                 engine="gpu")

    @pytest.mark.parametrize("engine", ("loop", "batched"))
    def test_netlist_mutation_after_construction_is_seen(self, engine):
        netlist = inverter_chain(3)
        view = make_nominal_view()
        analyzer = StaticTimingAnalyzer(netlist, view, engine=engine)
        before = analyzer.run().critical_delay
        netlist.set_output_load("out", 9e-15)
        after = analyzer.run().critical_delay
        fresh = StaticTimingAnalyzer(netlist, view, engine=engine).run()
        assert after == fresh.critical_delay
        assert after > before
        assert analyzer.net_load("out") == pytest.approx(9e-15)

    def test_refresh_rechecks_view_coverage(self):
        netlist = inverter_chain(2)
        analyzer = StaticTimingAnalyzer(netlist, make_nominal_view())
        netlist.add_gate(Gate("gx", "XOR2_X1", ("out",), "uncovered"))
        with pytest.raises(KeyError, match="does not cover"):
            analyzer.run()

    def test_batched_on_statistical_view_matches_loop(self):
        netlist = c17_benchmark()
        view = make_statistical_view(n_seeds=32)
        loop = StaticTimingAnalyzer(netlist, view, engine="loop").run()
        batched = StaticTimingAnalyzer(netlist, view, engine="batched").run()
        assert batched.critical_delay == pytest.approx(loop.critical_delay,
                                                       rel=RTOL)
        assert batched.critical_path == loop.critical_path


class TestSstaEquivalence:
    @pytest.mark.parametrize("netlist", equivalence_netlists(),
                             ids=lambda n: n.name)
    @pytest.mark.parametrize("n_seeds", (4, 32))
    def test_reports_agree(self, netlist, n_seeds):
        view = make_statistical_view(n_seeds=n_seeds)
        loop = MonteCarloSsta(netlist, view, engine="loop").run()
        batched = MonteCarloSsta(netlist, view, engine="batched").run()
        assert batched.critical_output == loop.critical_output
        np.testing.assert_allclose(batched.delay_samples, loop.delay_samples,
                                   rtol=RTOL)
        assert batched.summary.mean == pytest.approx(loop.summary.mean, rel=RTOL)
        assert batched.summary.std == pytest.approx(loop.summary.std, rel=RTOL,
                                                    abs=1e-30)
        assert set(batched.output_summaries) == set(loop.output_summaries)
        for net, summary in loop.output_summaries.items():
            assert batched.output_summaries[net].mean == pytest.approx(
                summary.mean, rel=RTOL)
        assert batched.criticality == loop.criticality
        assert sum(loop.criticality.values()) == pytest.approx(1.0)

    def test_primary_input_arrival_threads_through_both_engines(self):
        netlist = c17_benchmark()
        view = make_statistical_view(n_seeds=16)
        for engine in ("loop", "batched"):
            base = MonteCarloSsta(netlist, view, engine=engine).run()
            shifted = MonteCarloSsta(netlist, view, engine=engine,
                                     primary_input_arrival=11e-12).run()
            np.testing.assert_allclose(shifted.delay_samples,
                                       base.delay_samples + 11e-12, rtol=1e-12)

    def test_per_seed_worst_input_slew_selection(self):
        """The driving slew must come from each seed's own argmax input.

        Two parallel chains with very different output slews converge on one
        NAND2; the per-seed offsets make either chain the latest input
        depending on the seed.  The legacy behaviour (one global worst index
        from mean arrivals for all seeds) produces a measurably different
        delay, so this guards the fix in both engines.
        """
        netlist = Netlist("select", ["a", "b"], ["z"])
        netlist.add_gate(Gate("u1", "INV_X1", ("a",), "p"))
        netlist.add_gate(Gate("u2", "NOR2_X1", ("b", "b"), "q"))
        netlist.add_gate(Gate("u3", "NAND2_X1", ("p", "q"), "z"))
        netlist.set_output_load("z", 2e-15)
        netlist.validate()

        n_seeds = 64
        rng = np.random.default_rng(42)
        # The INV chain gets a mean offset matching the NOR chain's larger
        # base delay, so the two inputs arrive in a dead heat on average and
        # per-seed noise flips the winner; their slews differ by the cell
        # gain (1.0 vs 1.7).
        inv_delay, _ = _nominal("INV_X1", 5e-12, 1.2e-15)
        nor_delay, _ = _nominal("NOR2_X1", 5e-12, 1.2e-15)
        offsets = {"INV_X1": rng.normal(nor_delay - inv_delay, 2e-12, n_seeds),
                   "NOR2_X1": rng.normal(0.0, 2e-12, n_seeds),
                   "NAND2_X1": np.zeros(n_seeds)}
        cells = {}
        for name in CELL_NAMES:
            def callback(input_slew_s, load_cap_f, cell=name):
                delay, slew = _nominal(cell, input_slew_s, load_cap_f)
                return delay + offsets[cell], np.full(n_seeds, slew)
            cells[name] = CellTiming(cell_name=name, input_cap_f=1.2e-15,
                                     callback=callback)
        view = StatisticalTimingView(vdd=0.9, cells=cells, n_seeds=n_seeds)

        loop = MonteCarloSsta(netlist, view, engine="loop").run()
        batched = MonteCarloSsta(netlist, view, engine="batched").run()
        np.testing.assert_allclose(batched.delay_samples, loop.delay_samples,
                                   rtol=RTOL)

        # Reconstruct the legacy single-global-index behaviour by hand and
        # check the engines deliberately deviate from it.
        analyzer = MonteCarloSsta(netlist, view, engine="loop")
        arrivals = {"a": np.zeros(n_seeds), "b": np.zeros(n_seeds)}
        slews = {"a": np.full(n_seeds, 5e-12), "b": np.full(n_seeds, 5e-12)}
        for gate_name in ("u1", "u2"):
            gate = netlist.gate(gate_name)
            load = max(analyzer.net_load(gate.output_net), 1e-17)
            delay, slew = view.gate_timing_samples(gate.cell_name,
                                                   slews[gate.input_nets[0]],
                                                   load)
            arrivals[gate.output_net] = arrivals[gate.input_nets[0]] + delay
            slews[gate.output_net] = slew
        stacked = np.stack([arrivals["p"], arrivals["q"]])
        global_index = int(np.argmax(stacked.mean(axis=1)))
        legacy_slew = slews[("p", "q")[global_index]]
        load = max(analyzer.net_load("z"), 1e-17)
        legacy_delay, _ = view.gate_timing_samples("NAND2_X1", legacy_slew, load)
        legacy = stacked.max(axis=0) + legacy_delay
        # Per-seed selection mixes both input slews, so the collapsed table
        # slew differs from the legacy single-input slew.
        assert not np.allclose(loop.delay_samples, legacy, rtol=1e-9, atol=0.0)


# ----------------------------------------------------------------------
# Batched view queries
# ----------------------------------------------------------------------
class TestBatchedViewQueries:
    def test_gate_timing_many_fallback_matches_scalar(self):
        view = make_nominal_view()
        slews = np.linspace(3e-12, 9e-12, 7)
        loads = np.linspace(1e-15, 6e-15, 7)
        delay, slew = view.gate_timing_many("NAND2_X1", slews, loads)
        for index in range(slews.size):
            d, s = view.gate_timing("NAND2_X1", float(slews[index]),
                                    float(loads[index]))
            assert delay[index] == d
            assert slew[index] == s

    def test_gate_timing_samples_many_fallback_matches_scalar(self):
        view = make_statistical_view(n_seeds=8)
        slews = np.linspace(3e-12, 9e-12, 5)
        loads = np.linspace(1e-15, 6e-15, 5)
        delay, slew = view.gate_timing_samples_many("NOR2_X1", slews, loads)
        assert delay.shape == (5, 8)
        for index in range(slews.size):
            d, s = view.gate_timing_samples("NOR2_X1", float(slews[index]),
                                            float(loads[index]))
            np.testing.assert_array_equal(delay[index], d)
            np.testing.assert_array_equal(slew[index], s)

    def test_samples_many_collapses_seedwise_slews(self):
        view = make_statistical_view(n_seeds=8)
        per_seed = np.linspace(3e-12, 9e-12, 3 * 8).reshape(3, 8)
        loads = np.full(3, 2e-15)
        delay, _ = view.gate_timing_samples_many("INV_X1", per_seed, loads)
        collapsed, _ = view.gate_timing_samples_many("INV_X1",
                                                     per_seed.mean(axis=1),
                                                     loads)
        np.testing.assert_allclose(delay, collapsed, rtol=1e-15)

    def test_length_mismatch_rejected(self):
        view = make_nominal_view()
        with pytest.raises(ValueError, match="match"):
            view.gate_timing_many("INV_X1", np.ones(3) * 1e-12, np.ones(2) * 1e-15)

    def test_batch_callback_shape_checked(self):
        cells = {"INV_X1": CellTiming(
            "INV_X1", 1e-15, lambda s, c: (1e-12, 1e-12),
            batch_callback=lambda s, c: (np.ones(s.size + 1), np.ones(s.size + 1)))}
        view = TimingView(vdd=0.9, cells=cells)
        with pytest.raises(ValueError, match="expected"):
            view.gate_timing_many("INV_X1", np.ones(2) * 1e-12, np.ones(2) * 1e-15)


# ----------------------------------------------------------------------
# Vectorized statistical prediction (delay_samples_many / slew_samples_many)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def synthetic_characterization(tech28=None):
    from repro import get_technology, make_cell

    technology = get_technology("n28_bulk")
    cell = make_cell("NAND2_X1")
    variation = technology.variation.sample(24, rng=5)
    inverter = reduce_cell_cached(cell, technology, variation=variation)
    rng = np.random.default_rng(11)
    base = np.array([0.45, 1.2, -0.2, 0.15])
    delay_params = base + rng.normal(0.0, 0.02, (24, 4))
    slew_params = base * 0.8 + rng.normal(0.0, 0.02, (24, 4))
    return StatisticalCharacterization(
        cell_name=cell.name, arc_name="test_arc",
        delay_parameters=delay_params, slew_parameters=slew_params,
        inverter=inverter,
        fitting_conditions=(InputCondition(5e-12, 2e-15, 0.9),),
        simulation_runs=0)


class TestSamplesMany:
    def test_matches_per_condition_samples(self, synthetic_characterization):
        char = synthetic_characterization
        conditions = [InputCondition(sin, cload, vdd)
                      for sin in (3e-12, 8e-12)
                      for cload in (1e-15, 4e-15)
                      for vdd in (0.7, 0.9)]
        sin = np.array([c.sin for c in conditions])
        cload = np.array([c.cload for c in conditions])
        vdd = np.array([c.vdd for c in conditions])
        delay_many = char.delay_samples_many(sin, cload, vdd)
        slew_many = char.slew_samples_many(sin, cload, vdd)
        assert delay_many.shape == (len(conditions), char.n_seeds)
        for index, condition in enumerate(conditions):
            np.testing.assert_allclose(delay_many[index],
                                       char.delay_samples(condition),
                                       rtol=RTOL)
            np.testing.assert_allclose(slew_many[index],
                                       char.slew_samples(condition),
                                       rtol=RTOL)

    def test_length_mismatch_rejected(self, synthetic_characterization):
        with pytest.raises(ValueError, match="same length"):
            synthetic_characterization.delay_samples_many(
                np.ones(3) * 1e-12, np.ones(3) * 1e-15, np.ones(2))

    def test_statistical_factory_uses_vectorized_path(self,
                                                      synthetic_characterization):
        char = synthetic_characterization
        view = timing_view_from_statistical(
            {"NAND2_X1": char}, {"NAND2_X1": 1.5e-15}, vdd=0.9)
        slews = np.array([4e-12, 6e-12, 8e-12])
        loads = np.array([1e-15, 2e-15, 3e-15])
        delay, slew = view.gate_timing_samples_many("NAND2_X1", slews, loads)
        for index in range(slews.size):
            d, s = view.gate_timing_samples("NAND2_X1", float(slews[index]),
                                            float(loads[index]))
            np.testing.assert_allclose(delay[index], d, rtol=RTOL)
            np.testing.assert_allclose(slew[index], s, rtol=RTOL)

    def test_ssta_on_real_characterization_engines_agree(
            self, synthetic_characterization):
        char = synthetic_characterization
        view = timing_view_from_statistical(
            {name: char for name in CELL_NAMES},
            {name: 1.5e-15 for name in CELL_NAMES}, vdd=0.9)
        netlist = random_layered_dag(width=5, depth=4, rng=13)
        loop = MonteCarloSsta(netlist, view, engine="loop").run()
        batched = MonteCarloSsta(netlist, view, engine="batched").run()
        np.testing.assert_allclose(batched.delay_samples, loop.delay_samples,
                                   rtol=1e-9)
        assert batched.criticality == loop.criticality


# ----------------------------------------------------------------------
# Vectorized report summaries
# ----------------------------------------------------------------------
class TestSummarizeMany:
    def test_matches_scalar_summarize(self):
        from repro.analysis.distributions import summarize, summarize_many

        rng = np.random.default_rng(3)
        matrix = 1e-11 + rng.lognormal(0.0, 0.4, (9, 128)) * 1e-12
        many = summarize_many(matrix)
        assert len(many) == 9
        for row, summary in enumerate(many):
            scalar = summarize(matrix[row])
            assert summary.mean == pytest.approx(scalar.mean, rel=1e-12)
            assert summary.std == pytest.approx(scalar.std, rel=1e-12)
            assert summary.skewness == pytest.approx(scalar.skewness, rel=1e-9)
            assert summary.excess_kurtosis == pytest.approx(
                scalar.excess_kurtosis, rel=1e-9)
            assert summary.quantiles == pytest.approx(scalar.quantiles,
                                                      rel=1e-12)
            assert summary.n_samples == scalar.n_samples

    def test_input_validation(self):
        from repro.analysis.distributions import summarize_many

        with pytest.raises(ValueError, match="n_samples"):
            summarize_many(np.ones((3, 1)))
        with pytest.raises(ValueError, match="finite"):
            summarize_many(np.full((2, 4), np.nan))

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")  # scipy on constants
    def test_degenerate_rows_match_scipy_nan(self):
        from repro.analysis.distributions import summarize, summarize_many

        summary = summarize_many(np.ones((1, 8)))[0]
        scalar = summarize(np.ones(8))
        assert summary.std == 0.0
        assert np.isnan(summary.skewness) and np.isnan(scalar.skewness)
        assert np.isnan(summary.excess_kurtosis) and np.isnan(
            scalar.excess_kurtosis)


# ----------------------------------------------------------------------
# Synthetic generators
# ----------------------------------------------------------------------
class TestSyntheticGenerators:
    def test_deterministic_in_seed(self):
        first = random_layered_dag(width=6, depth=5, rng=21)
        second = random_layered_dag(width=6, depth=5, rng=21)
        assert [g.name for g in first.gates] == [g.name for g in second.gates]
        assert [g.input_nets for g in first.gates] == \
            [g.input_nets for g in second.gates]
        different = random_layered_dag(width=6, depth=5, rng=22)
        assert [g.input_nets for g in different.gates] != \
            [g.input_nets for g in first.gates]

    def test_depth_equals_levels(self):
        netlist = random_layered_dag(width=4, depth=9, rng=3)
        compiled = netlist.compile()
        assert compiled.n_levels == 9
        assert compiled.n_gates == 36

    def test_outputs_are_unconsumed_nets(self):
        netlist = random_layered_dag(width=5, depth=4, rng=8)
        for net in netlist.primary_outputs:
            assert not netlist.fanout_gates(net)
            assert netlist.external_load(net) > 0

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="width and depth"):
            random_layered_dag(width=0, depth=3)
        with pytest.raises(ValueError, match="window"):
            random_layered_dag(width=3, depth=3, window=0)
        with pytest.raises(ValueError, match="cell mix"):
            random_layered_dag(width=3, depth=3, cells=())
