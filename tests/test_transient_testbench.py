"""Tests for the transient solver, test benches, sweeps, and run accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import Transition, reduce_cell
from repro.spice import (
    SimulationCounter,
    characterize_arc,
    simulate_arc_transition,
    sweep_conditions,
)
from repro.spice.testbench import characterize_cell_nominal


class TestTransientSolver:
    def test_falling_output_completes(self, tech14, inv_cell):
        inverter = reduce_cell(inv_cell, tech14,
                               arc=inv_cell.arc("A", Transition.FALL))
        result = simulate_arc_transition(inverter, sin=5e-12, cload=2e-15, vdd=0.8)
        final = result.output_waveform.final_value()[0]
        assert final < 0.1 * 0.8
        assert result.delay()[0] > 0.0

    def test_rising_output_completes(self, tech14, inv_cell):
        inverter = reduce_cell(inv_cell, tech14,
                               arc=inv_cell.arc("A", Transition.RISE))
        result = simulate_arc_transition(inverter, sin=5e-12, cload=2e-15, vdd=0.8)
        assert result.output_waveform.final_value()[0] > 0.9 * 0.8

    def test_invalid_arguments(self, tech14, inv_cell):
        inverter = reduce_cell(inv_cell, tech14)
        with pytest.raises(ValueError):
            simulate_arc_transition(inverter, sin=0.0, cload=1e-15, vdd=0.8)
        with pytest.raises(ValueError):
            simulate_arc_transition(inverter, sin=1e-12, cload=1e-15, vdd=0.8,
                                    n_steps=4)

    def test_seed_vectorization_matches_scalar_runs(self, tech28, inv_cell):
        variation = tech28.variation.sample(3, rng=5)
        batch = characterize_arc(inv_cell, tech28, sin=5e-12, cload=2e-15, vdd=0.9,
                                 variation=variation)
        for seed in range(3):
            single = characterize_arc(inv_cell, tech28, sin=5e-12, cload=2e-15,
                                      vdd=0.9, variation=variation.subset([seed]))
            assert batch.delay[seed] == pytest.approx(single.delay[0], rel=1e-6)


class TestTimingTrends:
    def test_delay_increases_with_load(self, tech14, nor2_cell):
        delays = [characterize_arc(nor2_cell, tech14, sin=5e-12, cload=c, vdd=0.8
                                   ).nominal_delay()
                  for c in (0.5e-15, 2e-15, 5e-15)]
        assert delays[0] < delays[1] < delays[2]

    def test_delay_decreases_with_vdd(self, tech14, nor2_cell):
        delays = [characterize_arc(nor2_cell, tech14, sin=5e-12, cload=2e-15, vdd=v
                                   ).nominal_delay()
                  for v in (0.65, 0.8, 1.0)]
        assert delays[0] > delays[1] > delays[2]

    def test_delay_increases_with_input_slew(self, tech14, nor2_cell):
        delays = [characterize_arc(nor2_cell, tech14, sin=s, cload=2e-15, vdd=0.8
                                   ).nominal_delay()
                  for s in (2e-12, 8e-12, 14e-12)]
        assert delays[0] < delays[1] < delays[2]

    def test_larger_drive_is_faster(self, tech14):
        from repro.cells import make_cell

        small = characterize_arc(make_cell("INV_X1"), tech14, sin=5e-12,
                                 cload=4e-15, vdd=0.8).nominal_delay()
        large = characterize_arc(make_cell("INV_X4"), tech14, sin=5e-12,
                                 cload=4e-15, vdd=0.8).nominal_delay()
        assert large < small

    def test_slower_vth_seed_is_slower(self, tech28, inv_cell):
        from repro.technology import VariationSample

        variation = VariationSample(
            delta_vth_nmos=np.array([0.0, 0.05]),
            delta_vth_pmos=np.array([0.0, 0.05]),
            drive_mult_nmos=np.ones(2), drive_mult_pmos=np.ones(2),
            leff_mult=np.ones(2), cap_mult=np.ones(2))
        measurement = characterize_arc(inv_cell, tech28, sin=5e-12, cload=2e-15,
                                       vdd=0.8, variation=variation)
        assert measurement.delay[1] > measurement.delay[0]


class TestMeasurementContainer:
    def test_statistics_fields(self, tech28, inv_cell):
        variation = tech28.variation.sample(32, rng=9)
        measurement = characterize_arc(inv_cell, tech28, sin=5e-12, cload=2e-15,
                                       vdd=0.9, variation=variation)
        stats = measurement.delay_statistics()
        assert set(stats) == {"mean", "std", "skew"}
        assert stats["std"] > 0
        assert measurement.n_seeds == 32

    def test_nominal_accessors(self, tech14, inv_cell):
        measurement = characterize_arc(inv_cell, tech14, sin=5e-12, cload=2e-15,
                                       vdd=0.8)
        assert measurement.nominal_delay() == pytest.approx(float(measurement.delay[0]))
        assert measurement.nominal_slew() == pytest.approx(
            float(measurement.output_slew[0]))


class TestSimulationCounter:
    def test_counts_per_seed(self, tech28, inv_cell):
        counter = SimulationCounter()
        variation = tech28.variation.sample(4, rng=1)
        characterize_arc(inv_cell, tech28, sin=5e-12, cload=2e-15, vdd=0.9,
                         variation=variation, counter=counter, counter_label="x")
        assert counter.total == 4
        assert counter.by_label() == {"x": 4}

    def test_reset_and_validation(self):
        counter = SimulationCounter()
        counter.add(3, "a")
        counter.add(2, "b")
        assert counter.total == 5
        counter.reset()
        assert counter.total == 0
        with pytest.raises(ValueError):
            counter.add(-1)


class TestSweeps:
    def test_sweep_returns_one_measurement_per_condition(self, tech14, nand2_cell):
        counter = SimulationCounter()
        conditions = [(2e-12, 1e-15, 0.7), (5e-12, 2e-15, 0.8), (9e-12, 4e-15, 0.95)]
        measurements = sweep_conditions(nand2_cell, tech14, conditions,
                                        counter=counter)
        assert len(measurements) == 3
        assert counter.total == 3
        assert [m.vdd for m in measurements] == [0.7, 0.8, 0.95]

    def test_sweep_rejects_malformed_conditions(self, tech14, nand2_cell):
        with pytest.raises(ValueError):
            sweep_conditions(nand2_cell, tech14, [(1e-12, 1e-15)])

    def test_characterize_cell_nominal(self, tech14, inv_cell):
        counter = SimulationCounter()
        measurements = characterize_cell_nominal(
            inv_cell, tech14, [(2e-12, 1e-15, 0.8), (5e-12, 2e-15, 0.8)],
            counter=counter)
        assert len(measurements) == 2
        assert counter.total == 2
