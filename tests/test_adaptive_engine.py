"""Tests for the adaptive (Dormand-Prince RK45) transient engine.

Covers accuracy parity against a refined fixed-step reference (the honest
comparison: the fixed engine converges *to* the adaptive answer as its step
count grows), the single-condition wrapper, integration-stats accounting and
ledger recording, bit-identical results under memory-budget chunking and
across executor concurrency modes, window-exhaustion and quarantine
behavior, the ``adaptive.reject`` rejection-storm fault site, stepper-aware
simulation-cache keys, and the runtime engine/tolerance configuration knobs.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.runtime as runtime
from repro.cells import Transition, reduce_cell
from repro.runtime import faultinject
from repro.runtime.accounting import RunLedger
from repro.runtime.faultinject import FaultSpec
from repro.spice import (
    StepperSpec,
    get_simulation_cache,
    simulate_arc_transition_adaptive,
    simulate_arc_transitions,
    simulate_arc_transitions_adaptive,
    sweep_conditions,
)
from repro.spice import transient as serial_engine
from repro.spice.stepper import resolve_stepper
from repro.spice.testbench import SimulationCache

#: Mixed grid spanning slews, loads and supplies (same shape as the batched
#: engine's equivalence grid, including a slow low-Vdd corner).
GRID = [
    (2e-12, 0.5e-15, 1.0),
    (5e-12, 2e-15, 0.9),
    (9e-12, 4e-15, 0.8),
    (14e-12, 1e-15, 0.7),
    (4e-12, 3e-15, 0.62),
]


@pytest.fixture(autouse=True)
def _restore_runtime_config():
    """Engine/tolerance knobs are process-global; leave them as found."""
    config = runtime.runtime_config()
    saved = (config.transient_engine, config.transient_rtol,
             config.transient_atol_frac)
    yield
    runtime.configure(transient_engine=saved[0], transient_rtol=saved[1],
                      transient_atol_frac=saved[2])


class TestAccuracyParity:
    @pytest.mark.parametrize("transition", [Transition.FALL, Transition.RISE])
    def test_closer_to_refined_reference_than_fixed_step(self, tech28,
                                                         nand2_cell,
                                                         transition):
        variation = tech28.variation.sample(5, rng=3)
        arc = nand2_cell.arc("A", transition)
        inverter = reduce_cell(nand2_cell, tech28, arc=arc,
                               variation=variation)
        sin, cload, vdd = (np.array(axis) for axis in zip(*GRID))

        reference = simulate_arc_transitions(
            inverter, sin, cload, vdd,
            n_steps=16 * serial_engine.DEFAULT_STEPS)
        fixed = simulate_arc_transitions(inverter, sin, cload, vdd)
        adaptive = simulate_arc_transitions_adaptive(inverter, sin, cload,
                                                     vdd)

        ref_delay, ref_slew = reference.delay(), reference.output_slew()
        fixed_err = np.max(np.abs(fixed.delay() / ref_delay - 1.0))
        adaptive_err = np.max(np.abs(adaptive.delay() / ref_delay - 1.0))
        # The fixed engine's nominal grid carries ~1e-3 discretization
        # error; the adaptive answer must sit well inside it.
        assert adaptive_err < fixed_err
        assert adaptive_err < 2e-3
        slew_err = np.max(np.abs(adaptive.output_slew() / ref_slew - 1.0))
        assert slew_err < np.max(np.abs(fixed.output_slew() / ref_slew - 1.0))

    def test_single_condition_wrapper_matches_batch(self, tech28, inv_cell):
        inverter = reduce_cell(inv_cell, tech28)
        single = simulate_arc_transition_adaptive(inverter, sin=5e-12,
                                                  cload=2e-15, vdd=0.9)
        batch = simulate_arc_transitions_adaptive(inverter, [5e-12], [2e-15],
                                                  [0.9])
        assert np.array_equal(single.delay(), batch.delay()[0])
        assert np.array_equal(single.output_slew(), batch.output_slew()[0])


class TestIntegrationStats:
    def test_both_engines_attach_stats(self, tech28, inv_cell):
        inverter = reduce_cell(inv_cell, tech28)
        sin, cload, vdd = (np.array(axis) for axis in zip(*GRID))
        fixed = simulate_arc_transitions(inverter, sin, cload, vdd)
        adaptive = simulate_arc_transitions_adaptive(inverter, sin, cload,
                                                     vdd)
        assert fixed.stats.method == "rk4"
        assert adaptive.stats.method == "rk45"
        # Fixed cost is exact: 4 stage evaluations per step per condition.
        assert fixed.stats.rhs_evals == 4 * fixed.stats.steps_taken
        assert fixed.stats.steps_rejected == 0
        assert adaptive.stats.steps_taken > 0
        assert adaptive.stats.rhs_evals > 0
        # The entire point: far fewer evaluations at the same accuracy.
        assert adaptive.stats.rhs_evals < fixed.stats.rhs_evals / 3

    def test_sweep_records_stats_in_ledger(self, tech28, inv_cell):
        get_simulation_cache().clear()
        ledger = RunLedger()
        sweep_conditions(inv_cell, tech28, GRID, engine="adaptive",
                         ledger=ledger)
        metrics = ledger.metrics()
        assert metrics["transient_steps"] > 0
        assert metrics["transient_rhs_evals"] > 0
        assert "transient_steps_rejected" in metrics


class TestDeterminism:
    def test_chunked_sweep_bit_identical(self, tech28, nand2_cell):
        variation = tech28.variation.sample(4, rng=9)
        get_simulation_cache().clear()
        one_pass = sweep_conditions(nand2_cell, tech28, GRID,
                                    variation=variation, engine="adaptive",
                                    cache=False)
        # A tiny budget forces one condition per chunk; the adaptive
        # controller is fully row-local, so results are bit-identical.
        chunked = sweep_conditions(nand2_cell, tech28, GRID,
                                   variation=variation, engine="adaptive",
                                   cache=False, max_bytes=1)
        for a, b in zip(one_pass, chunked):
            assert np.array_equal(a.delay, b.delay)
            assert np.array_equal(a.output_slew, b.output_slew)

    def test_repeat_runs_bit_identical(self, tech28, inv_cell):
        inverter = reduce_cell(inv_cell, tech28)
        sin, cload, vdd = (np.array(axis) for axis in zip(*GRID))
        first = simulate_arc_transitions_adaptive(inverter, sin, cload, vdd)
        second = simulate_arc_transitions_adaptive(inverter, sin, cload, vdd)
        assert np.array_equal(first.delay(), second.delay())
        assert np.array_equal(first.output_slew(), second.output_slew())


class TestFailureModes:
    def test_window_exhaustion_raises_with_reason(self, tech28, inv_cell,
                                                  monkeypatch):
        # Starve the solver exactly as the fixed engines are starved: the
        # adaptive horizon honors the (monkeypatched) extension budget.
        monkeypatch.setattr(serial_engine, "_WINDOW_MARGIN", 1e-3)
        monkeypatch.setattr(serial_engine, "_MAX_EXTENSIONS", 1)
        inverter = reduce_cell(inv_cell, tech28)
        with pytest.raises(RuntimeError, match="did not complete"):
            simulate_arc_transitions_adaptive(inverter, [5e-12], [4e-15],
                                              [0.7])
        with pytest.raises(RuntimeError, match="adaptive stepper"):
            simulate_arc_transitions_adaptive(inverter, [5e-12], [4e-15],
                                              [0.7])

    def test_quarantine_mode_yields_nan_rows(self, tech28, inv_cell,
                                             monkeypatch):
        monkeypatch.setattr(serial_engine, "_WINDOW_MARGIN", 1e-3)
        monkeypatch.setattr(serial_engine, "_MAX_EXTENSIONS", 1)
        inverter = reduce_cell(inv_cell, tech28)
        result = simulate_arc_transitions_adaptive(
            inverter, [5e-12], [4e-15], [0.7], on_failure="quarantine")
        assert result.quarantined[0]
        assert np.all(np.isnan(result.delay()[0]))

    def test_invalid_on_failure_rejected(self, tech28, inv_cell):
        inverter = reduce_cell(inv_cell, tech28)
        with pytest.raises(ValueError, match="on_failure"):
            simulate_arc_transitions_adaptive(inverter, [5e-12], [2e-15],
                                              [0.9], on_failure="ignore")

    def test_rejection_storm_fault_site(self, tech28, inv_cell):
        assert "adaptive.reject" in faultinject.fault_sites()
        inverter = reduce_cell(inv_cell, tech28)
        spec = FaultSpec(site="adaptive.reject", kind="nan", rate=1.0,
                         rows=(0,))
        with faultinject.inject([spec], seed=1):
            # Every trial step rejects; the 0.2x shrink per rejection
            # underflows the step size before the storm counter trips.
            with pytest.raises(RuntimeError,
                               match="step-size underflow|rejection storm"):
                simulate_arc_transitions_adaptive(inverter, [5e-12], [2e-15],
                                                  [0.9])
        # Poison the *last* active row: once it dies and the active set
        # compacts, row index 1 no longer exists and the survivor (still
        # row 0 after prefix compaction) integrates untouched.
        storm = FaultSpec(site="adaptive.reject", kind="nan", rate=1.0,
                          rows=(1,))
        with faultinject.inject([storm], seed=1):
            result = simulate_arc_transitions_adaptive(
                inverter, [5e-12, 5e-12], [2e-15, 2e-15], [0.9, 0.9],
                on_failure="quarantine")
        assert result.quarantined[1]
        assert not result.quarantined[0]
        assert np.all(np.isfinite(result.delay()[0]))


class TestCacheKeys:
    def test_fixed_and_adaptive_entries_never_collide(self, tech28,
                                                      inv_cell):
        cache = get_simulation_cache()
        cache.clear()
        fixed = sweep_conditions(inv_cell, tech28, GRID[:2], engine="batched")
        adaptive = sweep_conditions(inv_cell, tech28, GRID[:2],
                                    engine="adaptive")
        # Four distinct entries: the engines may never replay each other.
        assert cache.stats().misses >= 4
        # And the cached values faithfully replay per engine.
        again = sweep_conditions(inv_cell, tech28, GRID[:2],
                                 engine="adaptive")
        for a, b in zip(adaptive, again):
            assert np.array_equal(a.delay, b.delay)
        assert any(not np.array_equal(a.delay, b.delay)
                   for a, b in zip(fixed, adaptive))

    def test_condition_key_forms(self):
        prefix = ("cell", "tech")
        legacy = SimulationCache.condition_key(prefix, 1e-12, 1e-15, 0.9, 64)
        assert legacy == prefix + (1e-12, 1e-15, 0.9, "rk4", 64)
        spec = StepperSpec(method="rk45")
        keyed = SimulationCache.condition_key(prefix, 1e-12, 1e-15, 0.9, spec)
        assert keyed == prefix + (1e-12, 1e-15, 0.9) + spec.signature()
        passthrough = SimulationCache.condition_key(prefix, 1e-12, 1e-15, 0.9,
                                                    ("rk4", 400))
        assert passthrough == prefix + (1e-12, 1e-15, 0.9, "rk4", 400)

    def test_rk45_signature_ignores_n_steps(self):
        a = StepperSpec(method="rk45", n_steps=100)
        b = StepperSpec(method="rk45", n_steps=6400)
        assert a.signature() == b.signature()
        assert (StepperSpec(method="rk45", rtol=1e-6).signature()
                != a.signature())


@pytest.fixture(scope="module")
def adaptive_priors():
    from repro.core.prior_learning import (
        characterize_historical_library,
        learn_prior,
        shared_reference_conditions,
    )
    from repro import get_technology, make_cell
    from repro.cells import Transition

    unit = shared_reference_conditions(8, rng=7)
    historical = [characterize_historical_library(
        get_technology("n45_bulk"),
        [make_cell("INV_X1"), make_cell("NAND2_X1")],
        unit_conditions=unit, transitions=(Transition.FALL,))]
    return (learn_prior(historical, response="delay"),
            learn_prior(historical, response="slew"))


class TestLibraryConcurrency:
    def test_bit_identical_across_concurrency_modes(self, tech28,
                                                    adaptive_priors):
        from repro import make_cell
        from repro.cells import StandardCellLibrary
        from repro.core.library_flow import characterize_library

        library = StandardCellLibrary(
            "adaptive_equiv", [make_cell("INV_X1"), make_cell("NAND2_X1")])
        results = []
        for concurrency in ("serial", "chunked", "process"):
            get_simulation_cache().clear()
            results.append(characterize_library(
                tech28, library, adaptive_priors[0], adaptive_priors[1],
                conditions=2, n_seeds=8, rng=5, concurrency=concurrency,
                transient_engine="adaptive",
                **({"max_workers": 2} if concurrency == "process" else {})))
        serial = results[0]
        for other in results[1:]:
            for a, b in zip(serial.entries, other.entries):
                np.testing.assert_array_equal(
                    a.statistical.delay_parameters,
                    b.statistical.delay_parameters)
                np.testing.assert_array_equal(
                    a.statistical.slew_parameters,
                    b.statistical.slew_parameters)


class TestRuntimeKnobs:
    def test_engine_resolution_order(self):
        assert runtime.resolve_transient_engine("serial") == "serial"
        runtime.configure(transient_engine="adaptive")
        assert runtime.resolve_transient_engine(None) == "adaptive"
        assert runtime.resolve_transient_engine("batched") == "batched"
        runtime.configure(transient_engine=None)
        assert runtime.resolve_transient_engine(None) == "batched"
        with pytest.raises(ValueError, match="engine"):
            runtime.resolve_transient_engine("rk4")
        with pytest.raises(ValueError, match="transient_engine"):
            runtime.configure(transient_engine="euler")

    def test_tolerance_knobs_resolve_into_default_stepper(self):
        runtime.configure(transient_rtol=1e-5, transient_atol_frac=1e-4)
        spec = resolve_stepper("adaptive")
        assert spec.rtol == 1e-5
        assert spec.atol_frac == 1e-4
        # Fixed-step engines ignore the tolerance knobs entirely.
        assert resolve_stepper("batched").method == "rk4"
        runtime.configure(transient_rtol=None, transient_atol_frac=None)
        assert resolve_stepper("adaptive").rtol == StepperSpec().rtol
        with pytest.raises(ValueError, match="transient_rtol"):
            runtime.configure(transient_rtol=-1.0)

    def test_loose_tolerance_costs_fewer_evaluations(self, tech28, inv_cell):
        inverter = reduce_cell(inv_cell, tech28)
        tight = simulate_arc_transitions_adaptive(
            inverter, [5e-12], [2e-15], [0.9],
            stepper=StepperSpec(method="rk45", rtol=1e-9, atol_frac=1e-9))
        loose = simulate_arc_transitions_adaptive(
            inverter, [5e-12], [2e-15], [0.9],
            stepper=StepperSpec(method="rk45", rtol=1e-5, atol_frac=1e-5))
        assert loose.stats.rhs_evals < tight.stats.rhs_evals
        # The loose answer still lands within its (loose) tolerance class.
        assert np.allclose(loose.delay(), tight.delay(), rtol=1e-3)

    def test_engine_stepper_consistency_enforced(self, tech28, inv_cell):
        with pytest.raises(ValueError, match="inconsistent"):
            sweep_conditions(inv_cell, tech28, GRID[:1], engine="adaptive",
                             stepper=StepperSpec(method="rk4"))
        with pytest.raises(ValueError, match="inconsistent"):
            sweep_conditions(inv_cell, tech28, GRID[:1], engine="batched",
                             stepper=StepperSpec(method="rk45"))
