"""Tests for the multivariate Gaussian density utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bayes import GaussianDensity


def random_spd(dim: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(dim, dim))
    return matrix @ matrix.T + dim * np.eye(dim)


class TestConstruction:
    def test_diagonal_covariance_from_vector(self):
        density = GaussianDensity([0.0, 1.0], [1.0, 4.0])
        assert np.allclose(density.covariance, np.diag([1.0, 4.0]))

    def test_rejects_asymmetric_covariance(self):
        with pytest.raises(ValueError):
            GaussianDensity([0.0, 0.0], [[1.0, 0.5], [0.0, 1.0]])

    def test_rejects_negative_definite(self):
        with pytest.raises(ValueError):
            GaussianDensity([0.0], [[-1.0]])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            GaussianDensity([0.0, 1.0], np.eye(3))

    def test_from_samples_moments(self, rng):
        samples = rng.multivariate_normal([1.0, -2.0], [[2.0, 0.3], [0.3, 0.5]],
                                          size=4000)
        density = GaussianDensity.from_samples(samples)
        assert np.allclose(density.mean, [1.0, -2.0], atol=0.1)
        assert density.covariance[0, 0] == pytest.approx(2.0, rel=0.15)

    def test_from_samples_shrinkage(self, rng):
        samples = rng.multivariate_normal([0.0, 0.0], [[1.0, 0.9], [0.9, 1.0]],
                                          size=500)
        full = GaussianDensity.from_samples(samples, shrinkage=0.0)
        shrunk = GaussianDensity.from_samples(samples, shrinkage=1.0)
        assert abs(shrunk.covariance[0, 1]) < abs(full.covariance[0, 1])

    def test_isotropic(self):
        density = GaussianDensity.isotropic([1.0, 2.0, 3.0], 0.25)
        assert np.allclose(density.standard_deviations(), 0.5)
        with pytest.raises(ValueError):
            GaussianDensity.isotropic([0.0], 0.0)

    def test_information_round_trip(self):
        cov = random_spd(3, 1)
        density = GaussianDensity([1.0, -1.0, 0.5], cov)
        precision, shift = density.to_information()
        rebuilt = GaussianDensity.from_information(precision, shift)
        assert np.allclose(rebuilt.mean, density.mean, atol=1e-8)
        assert np.allclose(rebuilt.covariance, density.covariance, atol=1e-6)


class TestProbabilityOperations:
    def test_log_pdf_peak_at_mean(self):
        density = GaussianDensity([0.5, -0.5], np.eye(2))
        assert density.log_pdf([0.5, -0.5]) > density.log_pdf([1.5, -0.5])

    def test_log_pdf_matches_scipy(self):
        from scipy.stats import multivariate_normal

        cov = random_spd(3, 2)
        mean = np.array([0.1, 0.2, 0.3])
        density = GaussianDensity(mean, cov)
        x = np.array([0.5, -0.2, 0.1])
        expected = multivariate_normal(mean, cov).logpdf(x)
        assert density.log_pdf(x) == pytest.approx(expected, rel=1e-6)

    def test_mahalanobis_zero_at_mean(self):
        density = GaussianDensity([1.0, 1.0], np.eye(2))
        assert density.mahalanobis([1.0, 1.0]) == pytest.approx(0.0, abs=1e-6)

    def test_sampling_moments(self):
        cov = np.array([[0.5, 0.2], [0.2, 0.8]])
        density = GaussianDensity([2.0, -1.0], cov)
        samples = density.sample(20000, rng=3)
        assert np.allclose(samples.mean(axis=0), [2.0, -1.0], atol=0.05)
        assert np.allclose(np.cov(samples, rowvar=False), cov, atol=0.05)

    def test_multiply_of_identical_gaussians_halves_covariance(self):
        density = GaussianDensity([1.0, 2.0], np.eye(2))
        product = density.multiply(density)
        assert np.allclose(product.mean, [1.0, 2.0], atol=1e-8)
        assert np.allclose(product.covariance, 0.5 * np.eye(2), atol=1e-6)

    def test_multiply_dimension_mismatch(self):
        with pytest.raises(ValueError):
            GaussianDensity([0.0], [[1.0]]).multiply(GaussianDensity([0.0, 0.0],
                                                                     np.eye(2)))

    def test_marginal_and_condition(self):
        cov = np.array([[1.0, 0.6], [0.6, 2.0]])
        density = GaussianDensity([0.0, 1.0], cov)
        marginal = density.marginal([1])
        assert marginal.dim == 1
        assert marginal.covariance[0, 0] == pytest.approx(2.0)
        conditional = density.condition([1], [2.0])
        # Conditioning on a higher-than-mean second value raises the first mean.
        assert conditional.mean[0] > 0.0
        assert conditional.covariance[0, 0] < 1.0

    def test_condition_on_everything_raises(self):
        density = GaussianDensity([0.0, 1.0], np.eye(2))
        with pytest.raises(ValueError):
            density.condition([0, 1], [0.0, 1.0])

    def test_kl_divergence_properties(self):
        a = GaussianDensity([0.0, 0.0], np.eye(2))
        b = GaussianDensity([1.0, 0.0], np.eye(2))
        assert a.kl_divergence(a) == pytest.approx(0.0, abs=1e-8)
        assert a.kl_divergence(b) == pytest.approx(0.5, rel=1e-6)

    def test_scaled_covariance(self):
        density = GaussianDensity([0.0], [[2.0]])
        widened = density.scaled_covariance(3.0)
        assert widened.covariance[0, 0] == pytest.approx(6.0)
        with pytest.raises(ValueError):
            density.scaled_covariance(0.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_multiply_is_commutative(self, seed):
        cov_a = random_spd(2, seed)
        cov_b = random_spd(2, seed + 1)
        a = GaussianDensity([0.0, 1.0], cov_a)
        b = GaussianDensity([2.0, -1.0], cov_b)
        ab = a.multiply(b)
        ba = b.multiply(a)
        assert np.allclose(ab.mean, ba.mean, atol=1e-8)
        assert np.allclose(ab.covariance, ba.covariance, atol=1e-8)
