"""Tests for unit constants, conversions, and engineering formatting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.units import (
    FEMTO,
    PICO,
    femtofarads,
    format_engineering,
    from_engineering,
    picoseconds,
    volts,
)


class TestConversions:
    def test_picoseconds(self):
        assert picoseconds(5.0) == pytest.approx(5e-12)

    def test_femtofarads(self):
        assert femtofarads(1.67) == pytest.approx(1.67e-15)

    def test_volts_identity(self):
        assert volts(0.8) == 0.8

    def test_prefix_constants(self):
        assert PICO == pytest.approx(1e-12)
        assert FEMTO == pytest.approx(1e-15)


class TestFormatEngineering:
    def test_picosecond_value(self):
        assert format_engineering(5.09e-12, "s") == "5.09ps"

    def test_femtofarad_value(self):
        assert format_engineering(1.67e-15, "F") == "1.67fF"

    def test_zero(self):
        assert format_engineering(0.0, "V") == "0V"

    def test_unit_scale(self):
        assert format_engineering(3.5, "V") == "3.5V"

    def test_kilo_scale(self):
        assert format_engineering(1.2e4, "Hz") == "12kHz"

    def test_non_finite(self):
        assert "inf" in format_engineering(math.inf, "s")

    def test_negative_value(self):
        assert format_engineering(-2.5e-9, "s") == "-2.5ns"


class TestFromEngineering:
    def test_parse_pico(self):
        assert from_engineering("5.09p") == pytest.approx(5.09e-12)

    def test_parse_with_unit(self):
        assert from_engineering("1.67fF") == pytest.approx(1.67e-15)

    def test_parse_plain_number(self):
        assert from_engineering("0.7") == pytest.approx(0.7)

    def test_parse_nano_with_unit(self):
        assert from_engineering("3nV") == pytest.approx(3e-9)

    def test_empty_string_raises(self):
        with pytest.raises(ValueError):
            from_engineering("")

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            from_engineering("abc")

    @given(st.floats(min_value=1e-14, max_value=1e3, allow_nan=False,
                     allow_infinity=False))
    def test_round_trip_within_precision(self, value):
        """format -> parse recovers the value to formatting precision."""
        text = format_engineering(value, "", digits=6)
        recovered = from_engineering(text)
        assert recovered == pytest.approx(value, rel=1e-4)
