"""Dense-output (cubic Hermite) waveform evaluation on non-uniform grids.

The adaptive stepper emits coarse, deliberately non-uniform time grids plus
the exact integrator derivatives at every sample.  ``Waveform`` /
``WaveformBatch`` use those derivatives for cubic Hermite interpolation in
``value_at`` and bisection-refined ``crossing_time``, so timing extraction
on an adaptive grid matches the fixed-step engines' dense uniform grids.
A cubic polynomial is the exact-reproduction witness: Hermite interpolation
is exact for cubics on any grid, while linear interpolation on the same
coarse grid is visibly wrong.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import reduce_cell
from repro.spice import simulate_arc_transition_adaptive, simulate_arc_transitions
from repro.spice import transient as serial_engine
from repro.spice.waveform import Waveform, WaveformBatch

#: Deliberately non-uniform sample times on [0, 1] (adaptive-style grid).
GRID = np.array([0.0, 0.07, 0.1, 0.34, 0.5, 0.62, 0.9, 1.0])


def _cubic(t):
    """A cubic with a single crossing of 0.4 inside (0, 1)."""
    return 2.0 * t**3 - 3.0 * t**2 + 2.0 * t


def _cubic_deriv(t):
    return 6.0 * t**2 - 6.0 * t + 2.0


def _true_crossing(threshold):
    """Exact real root of ``_cubic(t) == threshold`` inside (0, 1)."""
    roots = np.roots([2.0, -3.0, 2.0, -threshold])
    real = roots[np.abs(roots.imag) < 1e-12].real
    (root,) = real[(real > 0.0) & (real < 1.0)]
    return root


class TestWaveformDenseOutput:
    def test_value_at_reproduces_cubic_exactly(self):
        wave = Waveform(GRID, _cubic(GRID), derivative=_cubic_deriv(GRID))
        linear = Waveform(GRID, _cubic(GRID))
        for when in (0.05, 0.2, 0.45, 0.75, 0.95):
            exact = _cubic(when)
            assert wave.value_at(when)[0] == pytest.approx(exact, abs=1e-12)
        # The same coarse grid without derivatives is measurably off.
        assert abs(linear.value_at(0.2)[0] - _cubic(0.2)) > 1e-3

    def test_crossing_time_refined_beyond_linear(self):
        wave = Waveform(GRID, _cubic(GRID), derivative=_cubic_deriv(GRID))
        linear = Waveform(GRID, _cubic(GRID))
        truth = _true_crossing(0.4)
        hermite_err = abs(wave.crossing_time(0.4)[0] - truth)
        linear_err = abs(linear.crossing_time(0.4)[0] - truth)
        assert hermite_err < 1e-12
        assert hermite_err < linear_err / 1000

    def test_nonfinite_derivative_falls_back_to_linear(self):
        deriv = _cubic_deriv(GRID).copy()
        deriv[:] = np.nan
        wave = Waveform(GRID, _cubic(GRID), derivative=deriv)
        linear = Waveform(GRID, _cubic(GRID))
        assert wave.crossing_time(0.4)[0] == pytest.approx(
            linear.crossing_time(0.4)[0])
        assert wave.value_at(0.2)[0] == pytest.approx(linear.value_at(0.2)[0])

    def test_derivative_shape_validated(self):
        with pytest.raises(ValueError, match="derivative"):
            Waveform(GRID, _cubic(GRID), derivative=_cubic_deriv(GRID[:-1]))

    def test_seed_slice_keeps_derivative(self):
        volt = np.stack([_cubic(GRID), 1.0 - _cubic(GRID)], axis=1)
        deriv = np.stack([_cubic_deriv(GRID), -_cubic_deriv(GRID)], axis=1)
        wave = Waveform(GRID, volt, derivative=deriv)
        single = wave.seed(0)
        assert single.derivative is not None
        assert single.value_at(0.2)[0] == pytest.approx(_cubic(0.2),
                                                        abs=1e-12)


class TestWaveformBatchDenseOutput:
    def _batch(self, with_derivative=True):
        # Two conditions on different non-uniform grids, one seed each;
        # condition 1 runs on a shifted/stretched copy of the base grid.
        t0, t1 = GRID, 2.0 * GRID
        time = np.stack([t0, t1])
        volt = np.stack([_cubic(t0), _cubic(t1 / 2.0)])[:, :, np.newaxis]
        deriv = None
        if with_derivative:
            deriv = np.stack([_cubic_deriv(t0),
                              _cubic_deriv(t1 / 2.0) / 2.0])[:, :, np.newaxis]
        return WaveformBatch(time, volt,
                             valid_len=np.array([t0.size, t1.size]),
                             derivative=deriv)

    def test_batch_crossing_matches_per_condition_waveform(self):
        batch = self._batch()
        crossings = batch.crossing_time(np.array([0.4, 0.4]))
        for index in range(2):
            single = batch.condition(index)
            assert single.derivative is not None
            assert crossings[index, 0] == pytest.approx(
                single.crossing_time(0.4)[0], rel=1e-12)

    def test_batch_hermite_beats_linear_crossing(self):
        truth = _true_crossing(0.4)
        hermite = self._batch().crossing_time(np.array([0.4, 0.4]))
        linear = self._batch(with_derivative=False).crossing_time(
            np.array([0.4, 0.4]))
        assert abs(hermite[0, 0] - truth) < 1e-12
        assert abs(hermite[1, 0] - 2.0 * truth) < 2e-12
        assert abs(hermite[0, 0] - truth) < abs(linear[0, 0] - truth) / 1000


class TestAdaptiveGridExtraction:
    def test_adaptive_waveforms_carry_derivatives(self, tech28, inv_cell):
        inverter = reduce_cell(inv_cell, tech28)
        result = simulate_arc_transition_adaptive(inverter, sin=5e-12,
                                                  cload=2e-15, vdd=0.9)
        wave = result.output_waveform
        assert wave.derivative is not None
        # The grid really is non-uniform (that is the whole point).
        steps = np.diff(wave.time)
        assert steps.max() > 2.0 * steps.min()

    def test_delay_on_coarse_adaptive_grid_matches_refined_fixed(self, tech28,
                                                                 inv_cell):
        # The adaptive grid has far fewer samples than even the nominal
        # fixed grid, yet dense output keeps the 50% crossing within the
        # refined fixed-step engine's answer (the nominal fixed grid itself
        # carries a few-tenths-percent discretization error).
        inverter = reduce_cell(inv_cell, tech28)
        refined = simulate_arc_transitions(
            inverter, [5e-12], [2e-15], [0.9],
            n_steps=16 * serial_engine.DEFAULT_STEPS)
        nominal = simulate_arc_transitions(inverter, [5e-12], [2e-15], [0.9])
        adaptive = simulate_arc_transition_adaptive(inverter, sin=5e-12,
                                                    cload=2e-15, vdd=0.9)
        assert adaptive.output_waveform.time.size < \
            nominal.output_waveforms.time.shape[1] / 4
        np.testing.assert_allclose(adaptive.delay(), refined.delay()[0],
                                   rtol=1e-3)
