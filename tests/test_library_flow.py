"""Tests for the library-scale characterization orchestrator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SimulationCounter, get_technology, make_cell
from repro.cells.library import StandardCellLibrary, Transition
from repro.core.library_flow import (
    LibraryCharacterization,
    characterize_library,
)
from repro.liberty import parse_liberty
from repro.sta import MonteCarloSsta, StaticTimingAnalyzer, c17_benchmark


@pytest.fixture(scope="module")
def small_library():
    return StandardCellLibrary("unit_lib", [make_cell("INV_X1"),
                                            make_cell("NAND2_X1")])


@pytest.fixture(scope="module")
def library_result(tech28_module, small_library, priors_module):
    delay_prior, slew_prior = priors_module
    counter = SimulationCounter()
    result = characterize_library(
        tech28_module, small_library, delay_prior, slew_prior,
        conditions=2, n_seeds=10, rng=5, counter=counter)
    return result, counter


# The session fixtures in conftest.py build priors from INV/NOR2; reuse the
# same machinery at module scope with the cells characterized here.
@pytest.fixture(scope="module")
def tech28_module():
    return get_technology("n28_bulk")


@pytest.fixture(scope="module")
def priors_module(tech28_module):
    from repro.core.prior_learning import (
        characterize_historical_library,
        learn_prior,
        shared_reference_conditions,
    )

    unit = shared_reference_conditions(8, rng=7)
    historical = [characterize_historical_library(
        get_technology("n45_bulk"),
        [make_cell("INV_X1"), make_cell("NAND2_X1")],
        unit_conditions=unit, transitions=(Transition.FALL,))]
    return (learn_prior(historical, response="delay"),
            learn_prior(historical, response="slew"))


class TestCharacterizeLibrary:
    def test_covers_every_cell_and_transition(self, library_result):
        result, _ = library_result
        assert result.cell_names() == ["INV_X1", "NAND2_X1"]
        arc_names = [entry.arc.name for entry in result.entries]
        assert arc_names == [
            "INV_X1:A->Z(fall)", "INV_X1:A->Z(rise)",
            "NAND2_X1:A->Z(fall)", "NAND2_X1:A->Z(rise)",
        ]
        assert result.n_seeds == 10
        assert result.solver == "batched"

    def test_simulation_run_accounting(self, library_result):
        result, counter = library_result
        # 4 arcs x 2 conditions x 10 seeds, charged per arc under a
        # library:<cell>:<arc> label.
        assert result.simulation_runs == 4 * 2 * 10
        assert counter.total == result.simulation_runs
        labels = counter.by_label()
        assert labels["library:INV_X1:INV_X1:A->Z(fall)"] == 20

    def test_shared_seed_batch_across_arcs(self, library_result):
        result, _ = library_result
        fingerprints = {
            entry.statistical.inverter.nmos.params.vth0.tobytes()
            for entry in result.entries if entry.cell_name == "INV_X1"
        }
        # Same variation sample feeds both INV arcs (same devices -> same
        # per-seed threshold arrays).
        assert len(fingerprints) == 1

    def test_entry_lookup(self, library_result):
        result, _ = library_result
        entry = result.get("INV_X1", "INV_X1:A->Z(rise)")
        assert entry.arc.output_transition is Transition.RISE
        assert entry.input_cap_f > 0.0
        with pytest.raises(KeyError):
            result.get("INV_X1", "INV_X1:B->Z(rise)")
        with pytest.raises(KeyError):
            result.arcs_of("XOR2_X1")

    def test_all_extractions_converged(self, library_result):
        result, _ = library_result
        assert result.unconverged_arcs() == []

    def test_input_validation(self, tech28_module, small_library,
                              priors_module):
        delay_prior, slew_prior = priors_module
        with pytest.raises(ValueError):
            characterize_library(tech28_module, [], delay_prior, slew_prior)
        with pytest.raises(ValueError):
            characterize_library(tech28_module, small_library, delay_prior,
                                 slew_prior, concurrency="threads")
        with pytest.raises(ValueError):
            characterize_library(tech28_module, small_library, delay_prior,
                                 slew_prior, solver="magic")
        with pytest.raises(ValueError):
            characterize_library(tech28_module, small_library, delay_prior,
                                 slew_prior, input_pins="last")
        with pytest.raises(ValueError):
            characterize_library(tech28_module, small_library, delay_prior,
                                 slew_prior, conditions=[])


class TestProcessConcurrency:
    def test_process_matches_serial_bitwise(self, tech28_module, small_library,
                                            priors_module, library_result):
        delay_prior, slew_prior = priors_module
        serial, serial_counter = library_result
        counter = SimulationCounter()
        parallel = characterize_library(
            tech28_module, small_library, delay_prior, slew_prior,
            conditions=2, n_seeds=10, rng=5, counter=counter,
            concurrency="process", max_workers=2)
        assert parallel.concurrency == "process"
        assert counter.total == serial_counter.total
        assert counter.by_label() == serial_counter.by_label()
        assert len(parallel.entries) == len(serial.entries)
        for a, b in zip(serial.entries, parallel.entries):
            assert a.arc.name == b.arc.name
            np.testing.assert_array_equal(a.statistical.delay_parameters,
                                          b.statistical.delay_parameters)
            np.testing.assert_array_equal(a.statistical.slew_parameters,
                                          b.statistical.slew_parameters)
            assert a.statistical.fitting_conditions == \
                b.statistical.fitting_conditions


class TestDownstreamConsumers:
    def test_liberty_round_trip(self, library_result):
        result, _ = library_result
        writer = result.liberty_writer(n_slew=3, n_cap=3)
        text = writer.render()
        parsed = parse_liberty(text)
        assert sorted(parsed.cells) == ["INV_X1", "NAND2_X1"]
        cell = parsed.cells["INV_X1"]
        # Both transitions present, each with delay + transition + sigma.
        assert len(cell.arcs) == 2
        for arc in cell.arcs:
            assert arc.delay is not None
            assert arc.transition is not None
            assert arc.sigma_delay is not None
            assert np.all(arc.delay.values_ns > 0.0)

    def test_timing_view_feeds_ssta(self, library_result):
        result, _ = library_result
        view = result.timing_view(transition=Transition.FALL)
        assert view.n_seeds == result.n_seeds
        netlist = c17_benchmark()
        sta = StaticTimingAnalyzer(netlist, view,
                                   primary_input_slew=5e-12).run()
        ssta = MonteCarloSsta(netlist, view, primary_input_slew=5e-12).run()
        assert sta.critical_delay > 0.0
        assert ssta.summary.std > 0.0
        assert ssta.summary.mean == pytest.approx(sta.critical_delay, rel=0.5)

    def test_all_pins_emit_their_own_capacitance(self, tech28_module,
                                                 priors_module):
        delay_prior, slew_prior = priors_module
        result = characterize_library(
            tech28_module, [make_cell("NAND2_X1")], delay_prior, slew_prior,
            conditions=2, n_seeds=4, rng=2, transitions=(Transition.FALL,),
            input_pins="all")
        assert [entry.arc.input_pin for entry in result.entries] == ["A", "B"]
        parsed = parse_liberty(result.liberty_writer(n_slew=2, n_cap=2).render())
        caps = parsed.cells["NAND2_X1"].input_pin_caps_pf
        assert sorted(caps) == ["A", "B"]
        for entry in result.entries:
            assert caps[entry.arc.input_pin] == pytest.approx(
                entry.input_cap_f * 1e12, rel=1e-5)

    def test_timing_view_missing_transition(self, tech28_module,
                                            priors_module):
        delay_prior, slew_prior = priors_module
        fall_only = characterize_library(
            tech28_module, [make_cell("INV_X1")], delay_prior, slew_prior,
            conditions=2, n_seeds=4, rng=1,
            transitions=(Transition.FALL,))
        with pytest.raises(KeyError):
            fall_only.timing_view(transition=Transition.RISE)
