"""Tests for the synthetic PDKs, process variation, corners, and samplers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import Polarity
from repro.technology import (
    ProcessCorner,
    ProcessVariationModel,
    TechnologyNode,
    VariationSample,
    corner_sample,
    full_factorial_grid,
    get_technology,
    historical_technologies,
    latin_hypercube,
    list_technologies,
    random_uniform,
    scale_to_ranges,
)
from repro.technology.pdk import DEFAULT_HISTORICAL_SET, TECHNOLOGY_REGISTRY


class TestRegistry:
    def test_all_nodes_construct(self):
        for name in TECHNOLOGY_REGISTRY:
            node = get_technology(name)
            assert isinstance(node, TechnologyNode)
            assert node.name == name

    def test_list_sorted_by_feature_size(self):
        names = list_technologies()
        sizes = [get_technology(name).node_nm for name in names]
        assert sizes == sorted(sizes)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown technology"):
            get_technology("n7_dreams")

    def test_historical_excludes_target(self):
        nodes = historical_technologies(exclude="n14_finfet")
        assert all(node.name != "n14_finfet" for node in nodes)
        assert len(nodes) == len(DEFAULT_HISTORICAL_SET) - 1

    def test_historical_flavor_filter(self):
        nodes = historical_technologies(flavor="hp")
        assert all(node.flavor == "hp" for node in nodes)

    def test_historical_sorted_newest_first(self):
        years = [node.year for node in historical_technologies()]
        assert years == sorted(years, reverse=True)

    def test_finfet_nodes_use_virtual_source(self):
        node = get_technology("n14_finfet")
        assert node.device_model.__name__ == "VirtualSourceMOSFET"
        planar = get_technology("n45_bulk")
        assert planar.device_model.__name__ == "AlphaPowerMOSFET"


class TestTechnologyNode:
    def test_make_devices_have_correct_polarity(self, tech14):
        assert tech14.make_nmos(0.5).polarity is Polarity.NMOS
        assert tech14.make_pmos(1.0).polarity is Polarity.PMOS

    def test_newer_node_drives_more_current_per_um(self, tech14, tech45):
        new = float(tech14.make_nmos(1.0).on_current(tech14.vdd_nominal))
        old = float(tech45.make_nmos(1.0).on_current(tech45.vdd_nominal))
        assert new > old

    def test_input_ranges_ordering(self, tech14):
        ranges = tech14.input_ranges()
        assert set(ranges) == {"sin", "cload", "vdd"}
        for low, high in ranges.values():
            assert 0 < low < high

    def test_clip_vdd(self, tech14):
        low, high = tech14.vdd_range
        assert tech14.clip_vdd(0.0) == low
        assert tech14.clip_vdd(5.0) == high

    def test_describe_mentions_name(self, tech28):
        assert "n28_bulk" in tech28.describe()

    def test_variation_devices(self, tech28):
        variation = tech28.variation.sample(4, rng=0)
        nmos = tech28.make_nmos(0.5, variation)
        currents = nmos.current(tech28.vdd_nominal, tech28.vdd_nominal)
        assert currents.shape == (4,)
        assert np.std(currents) > 0


class TestVariationSample:
    def test_nominal_is_identity(self):
        nominal = VariationSample.nominal(3)
        assert nominal.n_seeds == 3
        assert np.allclose(nominal.delta_vth_nmos, 0.0)
        assert np.allclose(nominal.drive_mult_pmos, 1.0)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            VariationSample(
                delta_vth_nmos=np.zeros(3), delta_vth_pmos=np.zeros(2),
                drive_mult_nmos=np.ones(3), drive_mult_pmos=np.ones(3),
                leff_mult=np.ones(3), cap_mult=np.ones(3))

    def test_subset(self):
        sample = ProcessVariationModel().sample(10, rng=1)
        subset = sample.subset([0, 4, 7])
        assert subset.n_seeds == 3
        assert subset.delta_vth_nmos[1] == sample.delta_vth_nmos[4]


class TestProcessVariationModel:
    def test_sample_statistics(self):
        model = ProcessVariationModel(sigma_vth_global=0.02, avt_mv_um=0.0)
        sample = model.sample(4000, rng=3)
        assert np.std(sample.delta_vth_nmos) == pytest.approx(0.02, rel=0.1)
        assert np.mean(sample.drive_mult_nmos) == pytest.approx(1.0, rel=0.05)

    def test_nmos_pmos_correlation(self):
        model = ProcessVariationModel(sigma_vth_global=0.03, avt_mv_um=0.0,
                                      nmos_pmos_vth_correlation=0.9)
        sample = model.sample(4000, rng=4)
        correlation = np.corrcoef(sample.delta_vth_nmos, sample.delta_vth_pmos)[0, 1]
        assert correlation == pytest.approx(0.9, abs=0.1)

    def test_local_sigma_pelgrom_scaling(self):
        model = ProcessVariationModel(avt_mv_um=2.0)
        small = model.local_vth_sigma(width_um=0.2, length_um=0.03)
        large = model.local_vth_sigma(width_um=0.8, length_um=0.03)
        assert small == pytest.approx(2.0 * large, rel=1e-9)

    def test_invalid_inputs(self):
        model = ProcessVariationModel()
        with pytest.raises(ValueError):
            model.sample(0)
        with pytest.raises(ValueError):
            model.local_vth_sigma(width_um=-1.0)

    def test_total_sigma_combines_components(self):
        model = ProcessVariationModel(sigma_vth_global=0.01, avt_mv_um=1.0)
        assert model.total_vth_sigma() > 0.01


class TestCorners:
    def test_tt_is_nominal(self):
        sample = corner_sample(ProcessVariationModel(), ProcessCorner.TT)
        assert float(sample.delta_vth_nmos[0]) == 0.0
        assert float(sample.drive_mult_nmos[0]) == 1.0

    def test_ff_is_faster_than_ss(self):
        model = ProcessVariationModel()
        fast = corner_sample(model, ProcessCorner.FF)
        slow = corner_sample(model, ProcessCorner.SS)
        assert fast.delta_vth_nmos[0] < slow.delta_vth_nmos[0]
        assert fast.drive_mult_nmos[0] > slow.drive_mult_nmos[0]

    def test_skewed_corner(self):
        sample = corner_sample(ProcessVariationModel(), ProcessCorner.FS)
        assert sample.delta_vth_nmos[0] < 0 < sample.delta_vth_pmos[0]

    def test_negative_sigma_raises(self):
        with pytest.raises(ValueError):
            corner_sample(ProcessVariationModel(), ProcessCorner.FF, n_sigma=-1.0)


class TestSamplers:
    def test_random_uniform_shape_and_range(self):
        points = random_uniform(50, 3, rng=0)
        assert points.shape == (50, 3)
        assert np.all((points >= 0.0) & (points <= 1.0))

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=2, max_value=40))
    def test_latin_hypercube_stratification(self, n):
        points = latin_hypercube(n, 2, rng=1)
        for dim in range(2):
            strata = np.floor(points[:, dim] * n).astype(int)
            assert sorted(strata.tolist()) == list(range(n))

    def test_full_factorial_grid(self):
        grid = full_factorial_grid([2, 3, 2])
        assert grid.shape == (12, 3)
        assert np.all((grid >= 0.0) & (grid <= 1.0))

    def test_single_level_dimension_centred(self):
        grid = full_factorial_grid([1, 2])
        assert np.all(grid[:, 0] == 0.5)

    def test_scale_to_ranges_linear_and_log(self):
        unit = np.array([[0.0, 0.0], [1.0, 1.0]])
        scaled = scale_to_ranges(unit, [(1.0, 3.0), (1e-15, 1e-13)],
                                 log_scale=[False, True])
        assert scaled[0, 0] == pytest.approx(1.0)
        assert scaled[1, 0] == pytest.approx(3.0)
        assert scaled[0, 1] == pytest.approx(1e-15)
        assert scaled[1, 1] == pytest.approx(1e-13)

    def test_scale_to_ranges_validation(self):
        with pytest.raises(ValueError):
            scale_to_ranges(np.zeros((2, 2)), [(0, 1)])
        with pytest.raises(ValueError):
            scale_to_ranges(np.zeros((2, 1)), [(1.0, 0.5)])

    def test_invalid_sampler_arguments(self):
        with pytest.raises(ValueError):
            random_uniform(0, 3)
        with pytest.raises(ValueError):
            latin_hypercube(5, 0)
        with pytest.raises(ValueError):
            full_factorial_grid([])
