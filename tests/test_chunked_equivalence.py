"""Chunked-versus-unchunked equivalence across all three batched engines.

The memory-budgeted chunk planner (:mod:`repro.runtime.chunking`) splits
each engine's work axis -- conditions in the transient sweep, seeds in the
MAP solver, query points in the timing views -- into independently computed
blocks, so a budgeted run must reproduce the unbudgeted run exactly.  Every
test here forces aggressively small budgets (many chunks) and pins the
results at ``rtol <= 1e-12`` (they are bit-identical in practice, because
chunk rows never interact inside any engine).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.runtime as runtime
from repro.core.batch_map import BatchMapObservations, map_estimate_batch
from repro.core.statistical_flow import StatisticalCharacterizer
from repro.spice.sweep import sweep_conditions
from repro.sta import MonteCarloSsta, StaticTimingAnalyzer
from repro.sta.synthetic import random_layered_dag

RTOL = 1e-12

#: A small (sin, cload, vdd) grid spanning slow and fast corners.
CONDITIONS = [
    (4e-12, 1.5e-15, 0.85),
    (9e-12, 3.0e-15, 0.90),
    (15e-12, 6.0e-15, 0.80),
    (6e-12, 2.0e-15, 0.95),
    (12e-12, 4.5e-15, 0.88),
]


@pytest.fixture(autouse=True)
def _unconfigured_runtime():
    """Each test starts and ends without a global chunk budget."""
    runtime.configure(max_bytes=None)
    yield
    runtime.configure(max_bytes=None)


class TestTransientSweepChunking:
    def test_chunked_sweep_matches_unchunked(self, tech28, nand2_cell):
        variation = tech28.variation.sample(12, rng=31)
        baseline = sweep_conditions(nand2_cell, tech28, CONDITIONS,
                                    variation=variation, cache=False)
        # max_bytes=1 forces one condition per chunk (the budget floor).
        chunked = sweep_conditions(nand2_cell, tech28, CONDITIONS,
                                   variation=variation, cache=False,
                                   max_bytes=1)
        for base, chunk in zip(baseline, chunked):
            np.testing.assert_allclose(chunk.delay, base.delay, rtol=RTOL)
            np.testing.assert_allclose(chunk.output_slew, base.output_slew,
                                       rtol=RTOL)

    def test_global_budget_is_honored(self, tech28, inv_cell):
        baseline = sweep_conditions(inv_cell, tech28, CONDITIONS, cache=False)
        runtime.configure(max_bytes=50_000)
        chunked = sweep_conditions(inv_cell, tech28, CONDITIONS, cache=False)
        for base, chunk in zip(baseline, chunked):
            np.testing.assert_allclose(chunk.delay, base.delay, rtol=RTOL)

    def test_counter_accounting_unchanged(self, tech28, inv_cell):
        from repro.spice.testbench import SimulationCounter

        variation = tech28.variation.sample(5, rng=3)
        plain, budgeted = SimulationCounter(), SimulationCounter()
        sweep_conditions(inv_cell, tech28, CONDITIONS, variation=variation,
                         cache=False, counter=plain)
        sweep_conditions(inv_cell, tech28, CONDITIONS, variation=variation,
                         cache=False, counter=budgeted, max_bytes=1)
        assert budgeted.total == plain.total == len(CONDITIONS) * 5
        assert budgeted.by_label() == plain.by_label()


class TestMapSolverChunking:
    @pytest.fixture(scope="class")
    def observations(self):
        rng = np.random.default_rng(11)
        k, n_seeds = 5, 37
        return BatchMapObservations(
            sin=np.abs(rng.normal(6e-12, 1e-12, k)),
            cload=np.abs(rng.normal(2e-15, 4e-16, k)),
            vdd=np.full(k, 0.9),
            ieff=np.abs(rng.normal(1e-4, 8e-6, (n_seeds, k))),
            response=np.abs(rng.normal(1.2e-11, 1.5e-12, (n_seeds, k))),
        )

    def test_chunked_solve_is_bit_identical(self, delay_prior, observations):
        baseline = map_estimate_batch(delay_prior, observations)
        # A budget of three seeds' working set -> ~13 chunks of 37 seeds.
        item_bytes = 8 * (6 * observations.k + 80)
        chunked = map_estimate_batch(delay_prior, observations,
                                     max_bytes=3 * item_bytes)
        np.testing.assert_allclose(chunked.parameters, baseline.parameters,
                                   rtol=RTOL)
        np.testing.assert_array_equal(chunked.converged, baseline.converged)
        np.testing.assert_array_equal(chunked.n_iterations,
                                      baseline.n_iterations)
        np.testing.assert_allclose(chunked.residuals, baseline.residuals,
                                   rtol=RTOL)

    def test_shared_ieff_row_and_global_budget(self, delay_prior, observations):
        shared = BatchMapObservations(
            sin=observations.sin, cload=observations.cload,
            vdd=observations.vdd, ieff=observations.ieff[0],
            response=observations.response)
        baseline = map_estimate_batch(delay_prior, shared)
        runtime.configure(max_bytes=2_000)
        chunked = map_estimate_batch(delay_prior, shared)
        np.testing.assert_allclose(chunked.parameters, baseline.parameters,
                                   rtol=RTOL)

    def test_characterizer_budget_end_to_end(self, tech28, inv_cell,
                                             delay_prior, slew_prior):
        variation = tech28.variation.sample(10, rng=5)

        def run(max_bytes):
            characterizer = StatisticalCharacterizer(
                tech28, inv_cell, delay_prior, slew_prior, n_seeds=10,
                max_bytes=max_bytes)
            characterizer.use_variation(variation)
            return characterizer.characterize(
                [c for c in _fit_conditions(tech28)])

        baseline = run(None)
        budgeted = run(10_000)
        np.testing.assert_allclose(budgeted.delay_parameters,
                                   baseline.delay_parameters, rtol=RTOL)
        np.testing.assert_allclose(budgeted.slew_parameters,
                                   baseline.slew_parameters, rtol=RTOL)


def _fit_conditions(technology):
    from repro.characterization.input_space import InputSpace

    return InputSpace(technology).sample_lhs(3, np.random.default_rng(2))


class TestTimingGraphChunking:
    @pytest.fixture(scope="class")
    def ssta_setup(self, tech28, delay_prior, slew_prior, inv_cell,
                   nand2_cell, nor2_cell):
        from repro.core.library_flow import characterize_library

        library = characterize_library(
            tech28, [inv_cell, nand2_cell, nor2_cell], delay_prior,
            slew_prior, conditions=3, n_seeds=16, rng=23)
        view = library.timing_view()
        netlist = random_layered_dag(width=12, depth=6, window=2, rng=41)
        return netlist, view

    def test_chunked_ssta_is_bit_identical(self, ssta_setup):
        netlist, view = ssta_setup
        baseline = MonteCarloSsta(netlist, view).run()
        runtime.configure(max_bytes=4_000)  # a few query points per chunk
        chunked = MonteCarloSsta(netlist, view).run()
        np.testing.assert_allclose(chunked.delay_samples,
                                   baseline.delay_samples, rtol=RTOL)
        assert chunked.critical_output == baseline.critical_output
        assert chunked.criticality == baseline.criticality
        for net, summary in baseline.output_summaries.items():
            assert chunked.output_summaries[net].mean == pytest.approx(
                summary.mean, rel=RTOL)

    def test_chunked_deterministic_sta_matches(self, ssta_setup):
        netlist, view = ssta_setup
        baseline = StaticTimingAnalyzer(netlist, view).run()
        runtime.configure(max_bytes=4_000)
        chunked = StaticTimingAnalyzer(netlist, view).run()
        assert chunked.critical_delay == pytest.approx(
            baseline.critical_delay, rel=RTOL)
        assert chunked.critical_path == baseline.critical_path
        for net, arrival in baseline.arrival_times.items():
            assert chunked.arrival_times[net] == pytest.approx(arrival,
                                                               rel=RTOL)

    def test_view_query_chunking_direct(self, ssta_setup):
        _, view = ssta_setup
        cell = view.input_capacitances().keys().__iter__().__next__()
        rng = np.random.default_rng(9)
        slews = np.abs(rng.normal(8e-12, 2e-12, 50))
        loads = np.abs(rng.normal(3e-15, 5e-16, 50))
        base_delay, base_slew = view.gate_timing_samples_many(cell, slews,
                                                              loads)
        runtime.configure(max_bytes=1)  # one point per chunk
        chunk_delay, chunk_slew = view.gate_timing_samples_many(cell, slews,
                                                                loads)
        np.testing.assert_allclose(chunk_delay, base_delay, rtol=RTOL)
        np.testing.assert_allclose(chunk_slew, base_slew, rtol=RTOL)
