"""Tests for waveform measurements and ramp stimuli."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import (
    DELAY_THRESHOLD,
    RampStimulus,
    SLEW_DERATE,
    Waveform,
)


def ramp_waveform(vdd: float, slew: float, rising: bool = True,
                  t_end: float = None, n: int = 400) -> Waveform:
    t_end = t_end if t_end is not None else 3 * slew
    time = np.linspace(0.0, t_end, n)
    return RampStimulus(vdd=vdd, slew=slew, rising=rising).waveform(time)


class TestWaveformBasics:
    def test_requires_increasing_time(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 0.0, 1.0]), np.zeros(3))

    def test_requires_matching_shapes(self):
        with pytest.raises(ValueError):
            Waveform(np.linspace(0, 1, 5), np.zeros((4, 2)))

    def test_multi_seed_storage(self):
        wave = Waveform(np.linspace(0, 1, 10), np.zeros((10, 3)))
        assert wave.n_seeds == 3
        single = wave.seed(1)
        assert single.n_seeds == 1

    def test_value_at_interpolates(self):
        wave = Waveform(np.array([0.0, 1.0]), np.array([0.0, 2.0]))
        assert wave.value_at(0.5)[0] == pytest.approx(1.0)


class TestCrossingAndSlew:
    def test_rising_crossing_time(self):
        wave = ramp_waveform(1.0, 10e-12)
        cross = wave.crossing_time(0.5)
        assert cross[0] == pytest.approx(5e-12, rel=1e-3)

    def test_falling_crossing_time(self):
        wave = ramp_waveform(1.0, 10e-12, rising=False)
        cross = wave.crossing_time(0.5)
        assert cross[0] == pytest.approx(5e-12, rel=1e-3)

    def test_no_crossing_returns_nan(self):
        wave = Waveform(np.linspace(0, 1, 10), np.full(10, 0.2))
        assert np.isnan(wave.crossing_time(0.5, rising=True)[0])

    @settings(max_examples=25, deadline=None)
    @given(slew=st.floats(min_value=1e-12, max_value=50e-12),
           vdd=st.floats(min_value=0.5, max_value=1.2))
    def test_linear_ramp_slew_measurement_recovers_input(self, slew, vdd):
        """Measuring a perfect ramp returns its full-swing transition time."""
        wave = ramp_waveform(vdd, slew, n=2000)
        measured = wave.transition_time(vdd)[0]
        assert measured == pytest.approx(slew, rel=2e-2)

    def test_propagation_delay_between_shifted_ramps(self):
        time = np.linspace(0, 40e-12, 2000)
        early = RampStimulus(vdd=1.0, slew=10e-12).waveform(time)
        late = Waveform(time, RampStimulus(vdd=1.0, slew=10e-12,
                                           start_time=7e-12).voltage(time))
        delay = late.propagation_delay(early, vdd=1.0)
        assert delay[0] == pytest.approx(7e-12, rel=1e-2)

    def test_invalid_vdd_raises(self):
        wave = ramp_waveform(1.0, 5e-12)
        with pytest.raises(ValueError):
            wave.transition_time(0.0)
        with pytest.raises(ValueError):
            wave.propagation_delay(wave, -1.0)

    def test_settled_and_final_value(self):
        wave = ramp_waveform(0.8, 5e-12, t_end=30e-12)
        assert wave.final_value()[0] == pytest.approx(0.8)
        assert bool(wave.settled(0.8, 0.01)[0])


class TestRampStimulus:
    def test_voltage_profile(self):
        ramp = RampStimulus(vdd=1.0, slew=10e-12)
        assert ramp.voltage(np.array(0.0)) == pytest.approx(0.0)
        assert ramp.voltage(np.array(5e-12)) == pytest.approx(0.5)
        assert ramp.voltage(np.array(20e-12)) == pytest.approx(1.0)

    def test_falling_profile(self):
        ramp = RampStimulus(vdd=1.0, slew=10e-12, rising=False)
        assert ramp.voltage(np.array(0.0)) == pytest.approx(1.0)
        assert ramp.voltage(np.array(10e-12)) == pytest.approx(0.0)

    def test_slope_active_only_during_ramp(self):
        ramp = RampStimulus(vdd=1.0, slew=10e-12)
        assert ramp.slope(np.array(5e-12)) == pytest.approx(1.0 / 10e-12)
        assert ramp.slope(np.array(15e-12)) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RampStimulus(vdd=0.0, slew=1e-12)
        with pytest.raises(ValueError):
            RampStimulus(vdd=1.0, slew=0.0)
        with pytest.raises(ValueError):
            RampStimulus(vdd=1.0, slew=1e-12, start_time=-1.0)

    def test_slew_derate_consistency(self):
        # The measurement convention and the stimulus definition agree: the
        # 20-80% width of the generated ramp is SLEW_DERATE times the slew.
        ramp = RampStimulus(vdd=1.0, slew=10e-12)
        time = np.linspace(0, 30e-12, 3000)
        wave = ramp.waveform(time)
        low = wave.crossing_time(0.2)[0]
        high = wave.crossing_time(0.8)[0]
        assert (high - low) == pytest.approx(SLEW_DERATE * 10e-12, rel=1e-2)
