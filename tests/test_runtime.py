"""Unit tests of the ``repro.runtime`` substrate.

Covers the generic LRU (eviction order, byte bounding, statistics, the
registry and ``configure(cache_bytes=...)``), the deterministic chunk
planner, the executor modes, and :class:`RunLedger` recording/merging.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.runtime as runtime
from repro.runtime import RunLedger, configure, get_executor, plan_chunks
from repro.runtime.cache import (
    LruCache,
    cache_stats,
    default_sizeof,
    register_cache,
    registered_caches,
)
from repro.runtime.chunking import chunk_count
from repro.runtime.executor import EXECUTOR_MODES


@pytest.fixture(autouse=True)
def _reset_runtime_config():
    """Restore the process-wide runtime config after each test."""
    yield
    configure(max_bytes=None, cache_bytes=None)


class TestLruCache:
    def test_hits_misses_and_values(self):
        cache = LruCache("t_basic", max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        assert cache.get("b") == 2
        assert (cache.hits, cache.misses) == (2, 1)
        assert len(cache) == 2

    def test_eviction_order_is_least_recently_used(self):
        cache = LruCache("t_order", max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, key.upper())
        # Touch "a" so "b" becomes the LRU entry.
        assert cache.get("a") == "A"
        cache.put("d", "D")
        assert "b" not in cache
        assert all(key in cache for key in ("a", "c", "d"))
        assert cache.evictions == 1
        # Re-inserting an existing key refreshes recency, not occupancy.
        cache.put("c", "C2")
        cache.put("e", "E")
        assert "a" not in cache  # "a" was oldest after c's refresh
        assert cache.get("c") == "C2"

    def test_byte_bound_evicts_and_counts(self):
        cache = LruCache("t_bytes", max_bytes=100)
        cache.put("a", None, nbytes=40)
        cache.put("b", None, nbytes=40)
        assert cache.current_bytes == 80
        cache.put("c", None, nbytes=40)  # 120 > 100: "a" must go
        assert "a" not in cache
        assert cache.current_bytes == 80
        assert cache.evictions == 1

    def test_oversized_entry_rejected_not_flushing(self):
        cache = LruCache("t_oversize", max_bytes=100)
        cache.put("small", None, nbytes=60)
        cache.put("huge", None, nbytes=1000)
        assert "huge" not in cache
        assert "small" in cache  # the rest of the cache survived
        assert cache.evictions == 1

    def test_disable_enable_and_clear(self):
        cache = LruCache("t_toggle", max_entries=4)
        cache.put("a", 1)
        cache.disable()
        assert cache.get("a") is None  # disabled: no hit, no miss count
        cache.put("b", 2)  # disabled: not stored
        cache.enable()
        assert cache.get("a") == 1
        assert "b" not in cache
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)

    def test_set_bounds_applies_immediately(self):
        cache = LruCache("t_rebound")
        for index in range(10):
            cache.put(index, index)
        cache.set_bounds(max_entries=3)
        assert len(cache) == 3
        assert cache.evictions == 7
        # Remaining entries are the three most recent.
        assert all(index in cache for index in (7, 8, 9))

    def test_stats_snapshot(self):
        cache = LruCache("t_stats", max_entries=2, max_bytes=1000)
        cache.put("a", np.zeros(8))
        cache.get("a")
        cache.get("zzz")
        stats = cache.stats()
        assert stats.name == "t_stats"
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.entries == 1
        assert stats.current_bytes == 64
        assert stats.hit_rate == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            LruCache("bad", max_entries=0)
        with pytest.raises(ValueError):
            LruCache("bad", max_bytes=0)
        cache = LruCache("t_validate")
        with pytest.raises(ValueError):
            cache.set_bounds(max_entries=-1)


class TestLruCacheThreadSafety:
    def test_concurrent_hammer_loses_no_updates_or_counts(self):
        """Many threads hammering one cache: no lost updates, no stat races.

        Each thread owns a disjoint keyspace, so every read-back must see
        the thread's own last write; the shared stat counters must sum
        exactly (every ``get`` is a hit or a miss, puts never vanish).
        """
        import threading

        cache = LruCache("t_hammer")  # unbounded: no evictions to reason about
        n_threads, n_rounds = 8, 300
        errors = []
        barrier = threading.Barrier(n_threads)

        def worker(tid):
            try:
                barrier.wait()
                for round_ in range(n_rounds):
                    key = (tid, round_ % 7)
                    cache.put(key, (tid, round_))
                    got = cache.get(key)
                    if got != (tid, round_):
                        errors.append((tid, round_, got))
                    cache.get((tid, "absent", round_))  # guaranteed miss
                    cache.stats()  # snapshot while others mutate
                    if round_ % 50 == 0:
                        cache.discard((tid, 0))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        total_gets = n_threads * n_rounds * 2
        assert cache.hits + cache.misses == total_gets
        assert cache.hits == n_threads * n_rounds
        assert cache.evictions == 0
        # Byte accounting stayed consistent with the surviving entries.
        stats = cache.stats()
        assert stats.entries == len(cache)

    def test_concurrent_registry_registration(self):
        import threading

        errors = []
        barrier = threading.Barrier(8)

        def worker(tid):
            try:
                barrier.wait()
                for index in range(50):
                    register_cache(LruCache(f"t_reg_race_{tid}_{index}"))
                    registered_caches()
                    cache_stats()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        names = [name for name in registered_caches()
                 if name.startswith("t_reg_race_")]
        assert len(names) == 8 * 50


class TestSizeof:
    def test_arrays_and_containers(self):
        assert default_sizeof(np.zeros(100)) == 800
        nested = {"a": np.zeros(10), "b": [np.zeros(5), "xyz"]}
        size = default_sizeof(nested)
        assert size >= 80 + 40 + 3

    def test_cycles_do_not_hang(self):
        loop = []
        loop.append(loop)
        assert default_sizeof(loop) >= 0


class TestRegistryAndConfigure:
    def test_registered_cache_reports_stats(self):
        cache = register_cache(LruCache("t_registered", max_entries=8))
        cache.put("k", 1)
        cache.get("k")
        stats = cache_stats()
        assert stats["t_registered"].hits == 1
        assert "t_registered" in registered_caches()

    def test_configure_cache_bytes_rebounds_registered_caches(self):
        cache = runtime.register_runtime_cache(
            LruCache("t_configured", max_bytes=1000))
        for index in range(6):
            cache.put(index, None, nbytes=100)
        configure(cache_bytes=250)
        assert cache.max_bytes == 250
        assert cache.current_bytes <= 250
        assert cache.evictions >= 3
        # None restores the registered default bound.
        configure(cache_bytes=None)
        assert cache.max_bytes == 1000

    def test_configure_applies_to_global_simulation_cache(self):
        from repro.spice.testbench import get_simulation_cache

        sim = get_simulation_cache()
        original = sim.max_bytes
        configure(cache_bytes=2**20)
        assert get_simulation_cache().max_bytes == 2**20
        configure(cache_bytes=None)
        assert get_simulation_cache().max_bytes == original
        assert cache_stats()["simulation"].name == "simulation"

    def test_configure_max_bytes_round_trip(self):
        configure(max_bytes=12345)
        assert runtime.runtime_config().max_bytes == 12345
        assert runtime.resolve_max_bytes(None) == 12345
        assert runtime.resolve_max_bytes(7) == 7
        configure(max_bytes=None)
        assert runtime.resolve_max_bytes(None) is None

    def test_configure_validation(self):
        with pytest.raises(ValueError):
            configure(max_bytes=0)
        with pytest.raises(ValueError):
            configure(cache_bytes=-5)


class TestChunkPlanning:
    def test_no_budget_is_one_chunk(self):
        assert plan_chunks(10) == [slice(0, 10)]
        assert plan_chunks(10, item_bytes=100, max_bytes=None) == [slice(0, 10)]

    def test_budget_splits_balanced_and_covering(self):
        chunks = plan_chunks(10, item_bytes=100, max_bytes=300)
        sizes = [c.stop - c.start for c in chunks]
        assert sum(sizes) == 10
        assert max(sizes) <= 3
        assert max(sizes) - min(sizes) <= 1
        assert chunks[0].start == 0 and chunks[-1].stop == 10
        for left, right in zip(chunks, chunks[1:]):
            assert left.stop == right.start

    def test_budget_smaller_than_item_still_schedules(self):
        chunks = plan_chunks(4, item_bytes=1000, max_bytes=1)
        assert [c.stop - c.start for c in chunks] == [1, 1, 1, 1]

    def test_deterministic(self):
        assert (plan_chunks(1000, 64, 4096)
                == plan_chunks(1000, 64, 4096))

    def test_empty_and_validation(self):
        assert plan_chunks(0, 8, 100) == []
        assert chunk_count(0, 8, 100) == 0
        with pytest.raises(ValueError):
            chunk_count(-1, 8, 100)
        with pytest.raises(ValueError):
            chunk_count(1, -8, 100)

    def test_explicit_chunk_count(self):
        chunks = plan_chunks(7, n_chunks=3)
        assert [c.stop - c.start for c in chunks] == [3, 2, 2]
        # More chunks than items collapses to one item per chunk.
        assert len(plan_chunks(2, n_chunks=5)) == 2


def _square(value):
    return value * value


def _square_with_ledger(value):
    ledger = RunLedger()
    ledger.add_metric("jobs", 1)
    ledger.add_simulations(2, label="t_exec")
    return value * value, ledger


class TestExecutors:
    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_map_preserves_order(self, mode):
        executor = get_executor(mode, max_workers=2, chunk_size=3)
        assert executor.map(_square, range(10)) == [v * v for v in range(10)]
        assert executor.map(_square, []) == []

    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_map_accounted_merges_in_payload_order(self, mode):
        executor = get_executor(mode, max_workers=2, chunk_size=2)
        ledger = RunLedger()
        results = executor.map_accounted(_square_with_ledger, range(5),
                                         ledger=ledger)
        assert results == [v * v for v in range(5)]
        assert ledger.metrics()["jobs"] == 5
        assert ledger.simulations_by_label() == {"t_exec": 10}

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            get_executor("threads")
        with pytest.raises(ValueError):
            get_executor("chunked", chunk_size=0)


class TestRunLedger:
    def test_stage_timing_and_merge(self):
        a = RunLedger()
        with a.stage("simulate"):
            pass
        a.add_simulations(5, label="x")
        a.add_metric("solver_iterations", 3)
        a.add_cache_activity("simulation", hits=2, misses=1)

        b = RunLedger()
        with b.stage("simulate"):
            pass
        b.add_simulations(7, label="x")
        b.add_simulations(1, label="y")
        b.add_metric("solver_iterations", 4)
        b.add_cache_activity("simulation", evictions=6)

        a.merge(b)
        assert a.simulations_total == 13
        assert a.simulations_by_label() == {"x": 12, "y": 1}
        assert a.stages()["simulate"]["calls"] == 2
        assert a.stage_seconds("simulate") >= 0.0
        assert a.metrics() == {"solver_iterations": 7}
        assert a.cache_activity()["simulation"] == {
            "hits": 2, "misses": 1, "evictions": 6}

    def test_caches_context_records_deltas(self):
        cache = register_cache(LruCache("t_ledger_cache", max_entries=4))
        cache.put("k", 1)
        ledger = RunLedger()
        with ledger.caches(names=["t_ledger_cache"]):
            cache.get("k")
            cache.get("absent")
        activity = ledger.cache_activity()["t_ledger_cache"]
        assert activity == {"hits": 1, "misses": 1, "evictions": 0}

    def test_as_dict_round_trips_to_json(self):
        import json

        ledger = RunLedger()
        with ledger.stage("s"):
            pass
        ledger.add_simulations(1)
        payload = json.loads(json.dumps(ledger.as_dict()))
        assert payload["simulations_total"] == 1
        assert "s" in payload["stages"]

    def test_validation(self):
        with pytest.raises(ValueError):
            RunLedger().add_simulations(-1)

    def test_gauges_keep_maximum_and_max_merge(self):
        a = RunLedger()
        a.set_gauge("service_queue_peak", 3)
        a.set_gauge("service_queue_peak", 2)  # lower value is ignored
        assert a.gauges() == {"service_queue_peak": 3.0}

        b = RunLedger()
        b.set_gauge("service_queue_peak", 7)
        b.set_gauge("batch_peak", 1)
        a.merge(b)
        assert a.gauges() == {"service_queue_peak": 7.0, "batch_peak": 1.0}
        assert a.as_dict()["gauges"]["service_queue_peak"] == 7.0


class TestCacheTokenPickling:
    """Cache-key tokens are process-local and must not survive pickling.

    A pickled object landing in another process would otherwise carry a
    token that process's own counter independently hands to an unrelated
    instance, silently cross-serving cached compile / Ieff entries.
    """

    def test_netlist_token_reissued_on_unpickle(self):
        import pickle

        from repro.sta import c17_benchmark

        netlist = c17_benchmark()
        compiled = netlist.compile()
        loaded = pickle.loads(pickle.dumps(netlist))
        assert loaded._token != netlist._token
        # The reissued token keys its own compilation, not the original's.
        assert loaded.compile() is not compiled
        assert [g.name for g in loaded.gates] == [g.name for g in netlist.gates]

    def test_ieff_token_dropped_on_pickle(self, tech28, inv_cell):
        import pickle

        from repro.cells import reduce_cell_cached
        from repro.characterization.input_space import InputCondition
        from repro.core.statistical_flow import StatisticalCharacterization

        variation = tech28.variation.sample(4, rng=2)
        inverter = reduce_cell_cached(inv_cell, tech28, variation=variation)
        characterization = StatisticalCharacterization(
            cell_name="INV_X1", arc_name="arc",
            delay_parameters=np.full((4, 4), 0.3),
            slew_parameters=np.full((4, 4), 0.2),
            inverter=inverter,
            fitting_conditions=(InputCondition(5e-12, 2e-15, 0.9),),
            simulation_runs=0)
        row = characterization._ieff_row(0.9)  # assigns a token
        assert "_ieff_token" in characterization.__dict__
        loaded = pickle.loads(pickle.dumps(characterization))
        assert "_ieff_token" not in loaded.__dict__
        # The clone reissues its own token and computes identical rows.
        np.testing.assert_array_equal(loaded._ieff_row(0.9), row)
        assert loaded.__dict__["_ieff_token"] != characterization.__dict__[
            "_ieff_token"]


class TestRunLedgerFormatting:
    def test_format_ledger_renders_all_sections(self):
        from repro.analysis import format_ledger

        ledger = RunLedger()
        with ledger.stage("simulate"):
            pass
        ledger.add_simulations(4, label="arc")
        ledger.add_metric("solver_iterations", 9)
        ledger.add_cache_activity("simulation", hits=3)
        text = format_ledger(ledger, title="Test ledger")
        for token in ("Test ledger", "simulate", "TOTAL", "solver_iterations",
                      "simulation", "evictions"):
            assert token in text
        assert "(empty ledger)" in format_ledger(RunLedger())
