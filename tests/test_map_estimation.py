"""Tests for MAP parameter extraction (Eq. 15)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayes import GaussianDensity
from repro.core.map_estimation import MapObservations, map_estimate
from repro.core.timing_model import CompactTimingModel, TimingModelParameters


TRUTH = TimingModelParameters(kd=0.40, cpar_ff=1.2, vprime_v=-0.25,
                              alpha_ff_per_ps=0.10)


def synthetic_observations(n: int, noise: float = 0.0, seed: int = 0,
                           params: TimingModelParameters = TRUTH,
                           beta=None) -> MapObservations:
    rng = np.random.default_rng(seed)
    sin = rng.uniform(1e-12, 15e-12, n)
    cload = rng.uniform(0.3e-15, 6e-15, n)
    vdd = rng.uniform(0.65, 1.0, n)
    ieff = 4e-4 * (vdd - 0.3)
    response = CompactTimingModel().evaluate(params, sin, cload, vdd, ieff)
    response = response * (1.0 + noise * rng.standard_normal(n))
    return MapObservations(sin=sin, cload=cload, vdd=vdd, ieff=ieff,
                           response=response, beta=beta)


def tight_prior_at(params: TimingModelParameters, scale: float = 1e-6
                   ) -> GaussianDensity:
    return GaussianDensity(params.as_array(), scale * np.eye(4))


class TestMapObservations:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            MapObservations(sin=[1e-12, 2e-12], cload=[1e-15], vdd=[0.8],
                            ieff=[1e-4], response=[1e-12])

    def test_positive_response_required(self):
        with pytest.raises(ValueError):
            MapObservations(sin=[1e-12], cload=[1e-15], vdd=[0.8], ieff=[1e-4],
                            response=[0.0])

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            MapObservations(sin=[1e-12], cload=[1e-15], vdd=[0.8], ieff=[1e-4],
                            response=[1e-12], beta=[-1.0])

    def test_k_property(self):
        obs = synthetic_observations(5)
        assert obs.k == 5


class TestMapEstimate:
    def test_tight_prior_dominates_with_no_informative_data(self):
        """With a nearly-delta prior the estimate sticks to the prior mean."""
        biased = TimingModelParameters(kd=0.6, cpar_ff=2.0, vprime_v=-0.1,
                                       alpha_ff_per_ps=0.3)
        observations = synthetic_observations(1, params=TRUTH,
                                              beta=np.array([1.0]))
        result = map_estimate(tight_prior_at(biased), observations)
        assert np.allclose(result.params.as_array(), biased.as_array(), atol=0.02)

    def test_abundant_precise_data_overrides_loose_prior(self):
        prior = GaussianDensity(np.array([0.6, 2.5, 0.0, 0.5]), 0.5 * np.eye(4))
        observations = synthetic_observations(40, beta=np.full(40, 1e6))
        result = map_estimate(prior, observations)
        prediction = CompactTimingModel().evaluate(
            result.params, observations.sin, observations.cload, observations.vdd,
            observations.ieff)
        assert np.allclose(prediction, observations.response, rtol=1e-3)

    def test_small_k_with_good_prior_beats_no_prior(self):
        """The headline behaviour: k=2 plus a decent prior is accurate."""
        from repro.core.timing_model import fit_least_squares

        near_truth = TimingModelParameters(kd=0.42, cpar_ff=1.3, vprime_v=-0.22,
                                           alpha_ff_per_ps=0.12)
        prior = GaussianDensity(near_truth.as_array(), np.diag([0.02, 0.2, 0.05,
                                                                0.05]) ** 2)
        observations = synthetic_observations(2, noise=0.01, seed=5,
                                              beta=np.full(2, 1e4))
        map_result = map_estimate(prior, observations)

        lse_result = fit_least_squares(observations.sin, observations.cload,
                                       observations.vdd, observations.ieff,
                                       observations.response,
                                       initial_guess=np.array([1.0, 5.0, 0.3, 1.0]))
        # Evaluate both on a dense synthetic validation set.
        validation = synthetic_observations(100, seed=99)
        model = CompactTimingModel()
        map_error = np.mean(np.abs(
            model.evaluate(map_result.params, validation.sin, validation.cload,
                           validation.vdd, validation.ieff) - validation.response)
            / validation.response)
        lse_error = np.mean(np.abs(
            model.evaluate(lse_result.params, validation.sin, validation.cload,
                           validation.vdd, validation.ieff) - validation.response)
            / validation.response)
        assert map_error < 0.03
        assert map_error < lse_error

    def test_beta_weights_emphasize_trusted_conditions(self):
        observations = synthetic_observations(6, seed=2)
        corrupted_response = observations.response.copy()
        corrupted_response[0] *= 1.4
        beta = np.full(6, 1e4)
        beta[0] = 1e-2
        corrupted = MapObservations(sin=observations.sin, cload=observations.cload,
                                    vdd=observations.vdd, ieff=observations.ieff,
                                    response=corrupted_response, beta=beta)
        prior = GaussianDensity(TRUTH.as_array(), 0.1 * np.eye(4))
        result = map_estimate(prior, corrupted)
        assert abs(result.residuals[1:]).max() < 0.05

    def test_accepts_timing_prior_wrapper(self, delay_prior):
        observations = synthetic_observations(3)
        result = map_estimate(delay_prior, observations)
        assert result.converged
        assert result.n_observations == 3

    def test_prior_weight_validation(self):
        observations = synthetic_observations(3)
        with pytest.raises(ValueError):
            map_estimate(tight_prior_at(TRUTH), observations, prior_weight=0.0)

    def test_wrong_prior_dimension_rejected(self):
        observations = synthetic_observations(3)
        with pytest.raises(ValueError):
            map_estimate(GaussianDensity([0.0, 0.0], np.eye(2)), observations)
