"""Tests for netlists, timing views, STA, and Monte Carlo SSTA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sta import (
    CellTiming,
    Gate,
    MonteCarloSsta,
    Netlist,
    StaticTimingAnalyzer,
    StatisticalTimingView,
    TimingView,
    c17_benchmark,
    inverter_chain,
    nand_nor_tree,
)

#: Simple synthetic timing: delay grows linearly with load, slew is constant.
_UNIT_DELAY = 10e-12
_LOAD_SLOPE = 2e3          # seconds per farad
_INPUT_CAP = 1e-15


def nominal_callback(input_slew_s: float, load_cap_f: float):
    delay = _UNIT_DELAY + _LOAD_SLOPE * load_cap_f + 0.1 * input_slew_s
    return delay, 4e-12


def make_nominal_view(cell_names=("INV_X1", "NAND2_X1", "NOR2_X1")) -> TimingView:
    cells = {name: CellTiming(cell_name=name, input_cap_f=_INPUT_CAP,
                              callback=nominal_callback)
             for name in cell_names}
    return TimingView(vdd=0.9, cells=cells)


def make_statistical_view(n_seeds=16, spread=1e-12,
                          cell_names=("INV_X1", "NAND2_X1", "NOR2_X1")
                          ) -> StatisticalTimingView:
    rng = np.random.default_rng(0)
    offsets = {name: rng.normal(0.0, spread, size=n_seeds) for name in cell_names}

    def make_callback(name):
        def callback(input_slew_s, load_cap_f):
            base, slew = nominal_callback(input_slew_s, load_cap_f)
            return base + offsets[name], np.full(n_seeds, slew)
        return callback

    cells = {name: CellTiming(cell_name=name, input_cap_f=_INPUT_CAP,
                              callback=make_callback(name))
             for name in cell_names}
    return StatisticalTimingView(vdd=0.9, cells=cells, n_seeds=n_seeds)


class TestNetlist:
    def test_generators_validate(self):
        for netlist in (inverter_chain(5), nand_nor_tree(8), c17_benchmark()):
            netlist.validate()
            assert netlist.gates

    def test_inverter_chain_structure(self):
        chain = inverter_chain(3)
        assert len(chain.gates) == 3
        assert chain.primary_inputs == ["in"]
        assert chain.external_load("out") > 0

    def test_nand_nor_tree_requires_power_of_two(self):
        with pytest.raises(ValueError):
            nand_nor_tree(6)

    def test_duplicate_driver_rejected(self):
        netlist = Netlist("x", ["a"], ["z"])
        netlist.add_gate(Gate("g1", "INV_X1", ("a",), "z"))
        with pytest.raises(ValueError):
            netlist.add_gate(Gate("g2", "INV_X1", ("a",), "z"))

    def test_missing_driver_detected(self):
        netlist = Netlist("x", ["a"], ["z"])
        netlist.add_gate(Gate("g1", "INV_X1", ("floating",), "z"))
        with pytest.raises(ValueError, match="no driver"):
            netlist.validate()

    def test_combinational_loop_detected(self):
        netlist = Netlist("loop", ["a"], ["z"])
        netlist.add_gate(Gate("g1", "NAND2_X1", ("a", "y"), "z"))
        netlist.add_gate(Gate("g2", "INV_X1", ("z",), "y"))
        with pytest.raises(ValueError, match="loop"):
            netlist.validate()

    def test_fanout_and_nets(self):
        c17 = c17_benchmark()
        fanout = [g.name for g in c17.fanout_gates("N11")]
        assert set(fanout) == {"g16", "g19"}
        assert "N22" in c17.nets()

    def test_gate_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Gate("g", "INV_X1", ("a",), "a")


class TestTimingView:
    def test_basic_queries(self):
        view = make_nominal_view()
        assert view.has_cell("INV_X1")
        assert not view.has_cell("XOR2_X1")
        delay, slew = view.gate_timing("INV_X1", 5e-12, 2e-15)
        assert delay > _UNIT_DELAY
        assert slew == pytest.approx(4e-12)
        with pytest.raises(KeyError):
            view.input_capacitance("XOR2_X1")

    def test_statistical_view_seed_checking(self):
        view = make_statistical_view(n_seeds=8)
        delay, slew = view.gate_timing_samples("INV_X1", 5e-12, 2e-15)
        assert delay.shape == (8,)
        assert slew.shape == (8,)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingView(vdd=0.0, cells={"INV_X1": CellTiming("INV_X1", 1e-15,
                                                            nominal_callback)})
        with pytest.raises(ValueError):
            TimingView(vdd=0.9, cells={})
        with pytest.raises(ValueError):
            StatisticalTimingView(vdd=0.9, cells={"INV_X1": CellTiming(
                "INV_X1", 1e-15, nominal_callback)}, n_seeds=1)


class TestStaticTimingAnalyzer:
    def test_chain_delay_adds_up(self):
        chain = inverter_chain(4, load_f=2e-15)
        view = make_nominal_view()
        report = StaticTimingAnalyzer(chain, view, primary_input_slew=5e-12).run()
        # Interior stages drive one inverter input; the last stage drives the
        # external load.
        interior = _UNIT_DELAY + _LOAD_SLOPE * _INPUT_CAP + 0.1 * 5e-12
        last = _UNIT_DELAY + _LOAD_SLOPE * 2e-15 + 0.1 * 4e-12
        expected = interior + 2 * (_UNIT_DELAY + _LOAD_SLOPE * _INPUT_CAP
                                   + 0.1 * 4e-12) + last
        assert report.critical_delay == pytest.approx(expected, rel=1e-6)
        assert report.critical_path == ("u1", "u2", "u3", "u4")
        assert report.critical_output == "out"

    def test_c17_critical_path_depth(self):
        report = StaticTimingAnalyzer(c17_benchmark(), make_nominal_view()).run()
        # The deepest paths in C17 have three levels of logic.
        assert len(report.critical_path) == 3
        assert report.critical_delay > 3 * _UNIT_DELAY

    def test_missing_cell_rejected(self):
        view = make_nominal_view(cell_names=("INV_X1",))
        with pytest.raises(KeyError):
            StaticTimingAnalyzer(c17_benchmark(), view)

    def test_arrival_monotone_along_path(self):
        netlist = nand_nor_tree(4)
        report = StaticTimingAnalyzer(netlist, make_nominal_view()).run()
        arrivals = [report.arrival_times[netlist.gate(name).output_net]
                    for name in report.critical_path]
        assert arrivals == sorted(arrivals)

    def test_invalid_input_slew(self):
        with pytest.raises(ValueError):
            StaticTimingAnalyzer(inverter_chain(2), make_nominal_view(),
                                 primary_input_slew=0.0)


class TestMonteCarloSsta:
    def test_distribution_statistics(self):
        ssta = MonteCarloSsta(c17_benchmark(), make_statistical_view(n_seeds=64))
        report = ssta.run()
        assert report.delay_samples.shape == (64,)
        assert report.summary.std > 0
        assert set(report.output_summaries) == {"N22", "N23"}
        assert report.summary.mean >= max(s.mean for s in
                                          report.output_summaries.values()) - 1e-15

    def test_mean_matches_deterministic_sta(self):
        netlist = inverter_chain(3)
        sta = StaticTimingAnalyzer(netlist, make_nominal_view()).run()
        ssta = MonteCarloSsta(netlist, make_statistical_view(n_seeds=256,
                                                             spread=0.2e-12)).run()
        assert ssta.summary.mean == pytest.approx(sta.critical_delay, rel=0.05)

    def test_variation_accumulates_with_depth(self):
        shallow = MonteCarloSsta(inverter_chain(2),
                                 make_statistical_view(n_seeds=128)).run()
        deep = MonteCarloSsta(inverter_chain(8),
                              make_statistical_view(n_seeds=128)).run()
        assert deep.summary.std > shallow.summary.std

    def test_missing_cell_rejected(self):
        view = make_statistical_view(cell_names=("INV_X1",))
        with pytest.raises(KeyError):
            MonteCarloSsta(c17_benchmark(), view)
