"""Tests for cell topologies, the catalog, and equivalent-inverter reduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells import (
    Cell,
    StandardCellLibrary,
    Transition,
    available_cells,
    default_library,
    device,
    make_cell,
    parallel,
    reduce_cell,
    series,
)
from repro.cells.topology import TransistorSpec


class TestNetworkReduction:
    def test_single_device(self):
        net = device("A", 1.5)
        assert net.on_width() == pytest.approx(1.5)
        assert net.switching_width("A") == pytest.approx(1.5)

    def test_series_combines_harmonically(self):
        net = series(device("A", 2.0), device("B", 2.0))
        assert net.on_width() == pytest.approx(1.0)
        assert net.switching_width("A") == pytest.approx(1.0)

    def test_parallel_keeps_only_switching_branch(self):
        net = parallel(device("A", 1.0), device("B", 3.0))
        assert net.on_width() == pytest.approx(4.0)
        assert net.switching_width("A") == pytest.approx(1.0)
        assert net.switching_width("B") == pytest.approx(3.0)

    def test_nested_aoi_pull_down(self):
        # AOI21 pull-down: (A series B) parallel C.
        net = parallel(series(device("A", 2.0), device("B", 2.0)), device("C", 1.0))
        assert net.switching_width("A") == pytest.approx(1.0)
        assert net.switching_width("C") == pytest.approx(1.0)

    def test_series_with_parallel_companion(self):
        # OAI21 pull-down: (A parallel B) series C; switching A keeps only A in
        # the parallel group but C fully on.
        net = series(parallel(device("A", 2.0), device("B", 2.0)), device("C", 2.0))
        assert net.switching_width("A") == pytest.approx(1.0)

    def test_unknown_pin_raises(self):
        net = series(device("A"), device("B"))
        with pytest.raises(KeyError):
            net.switching_width("C")

    def test_output_adjacent_width(self):
        stacked = series(device("A", 2.0), device("B", 2.0))
        assert stacked.output_adjacent_width() == pytest.approx(2.0)
        split = parallel(device("A", 1.0), device("B", 1.0))
        assert split.output_adjacent_width() == pytest.approx(2.0)

    def test_stack_depth(self):
        assert device("A").stack_depth() == 1
        assert series(device("A"), device("B"), device("C")).stack_depth() == 3
        assert parallel(series(device("A"), device("B")), device("C")).stack_depth() == 2

    def test_pins_and_total_width(self):
        net = parallel(series(device("A", 2.0), device("B", 2.0)), device("C", 1.0))
        assert net.pins() == ["A", "B", "C"]
        assert net.total_width() == pytest.approx(5.0)

    def test_invalid_constructions(self):
        with pytest.raises(ValueError):
            TransistorSpec(pin="A", width=0.0)
        with pytest.raises(ValueError):
            TransistorSpec(pin="", width=1.0)
        with pytest.raises(ValueError):
            series()


class TestCatalog:
    def test_default_cells_available(self):
        names = available_cells()
        for expected in ("INV_X1", "NAND2_X1", "NOR2_X1", "AOI21_X1", "OAI22_X1"):
            assert expected in names

    def test_make_cell_unknown_raises(self):
        with pytest.raises(KeyError):
            make_cell("XOR9_X1")

    def test_inverter_structure(self):
        inv = make_cell("INV_X1")
        assert inv.input_pins == ["A"]
        assert inv.timing_arcs()[0].cell_name == "INV_X1"
        assert len(inv.timing_arcs()) == 2

    def test_nand2_stack_upsizing(self):
        nand = make_cell("NAND2_X1")
        # The series NMOS stack is upsized so its equivalent width matches a
        # unit inverter's pull-down.
        assert nand.pull_down.switching_width("A") == pytest.approx(1.0)

    def test_drive_variants_scale_unit_widths(self):
        x1 = make_cell("INV_X1")
        x4 = make_cell("INV_X4")
        assert x4.nmos_unit_width_um == pytest.approx(4 * x1.nmos_unit_width_um)

    def test_default_library_contents(self):
        library = default_library(["INV_X1", "NAND2_X1"])
        assert len(library) == 2
        assert "INV_X1" in library
        assert library.get("NAND2_X1").drive_strength == 1

    def test_library_rejects_duplicates(self):
        library = default_library(["INV_X1"])
        with pytest.raises(ValueError):
            library.add(make_cell("INV_X1"))

    def test_library_subset_and_arcs(self):
        library = default_library(["INV_X1", "NOR2_X1", "NAND3_X1"])
        subset = library.subset(["NOR2_X1"])
        assert subset.cell_names() == ["NOR2_X1"]
        assert len(library.timing_arcs()) == 2 + 4 + 6

    def test_cell_validation_rejects_mismatched_networks(self):
        with pytest.raises(ValueError):
            Cell(name="BROKEN", function="?", pull_up=device("A"),
                 pull_down=device("B"))

    def test_input_gate_width(self):
        nand = make_cell("NAND2_X1")
        width = nand.input_gate_width_um("A")
        assert width == pytest.approx(2.0 * nand.nmos_unit_width_um
                                      + 1.0 * nand.pmos_unit_width_um)
        with pytest.raises(KeyError):
            nand.input_gate_width_um("Q")


class TestEquivalentInverter:
    def test_inverter_reduction_matches_unit_widths(self, tech14, inv_cell):
        inverter = reduce_cell(inv_cell, tech14)
        assert float(np.asarray(inverter.nmos.width_um)) == pytest.approx(
            inv_cell.nmos_unit_width_um)
        assert float(np.asarray(inverter.pmos.width_um)) == pytest.approx(
            inv_cell.pmos_unit_width_um)

    def test_fall_arc_driven_by_nmos(self, tech14, nor2_cell):
        arc = nor2_cell.arc("A", Transition.FALL)
        inverter = reduce_cell(nor2_cell, tech14, arc=arc)
        assert inverter.driving_device is inverter.nmos
        assert inverter.restoring_device is inverter.pmos

    def test_rise_arc_driven_by_pmos(self, tech14, nor2_cell):
        arc = nor2_cell.arc("A", Transition.RISE)
        inverter = reduce_cell(nor2_cell, tech14, arc=arc)
        assert inverter.driving_device is inverter.pmos

    def test_nor2_pull_up_weaker_than_inverter(self, tech14, inv_cell, nor2_cell):
        # NOR2's series PMOS stack (even upsized 2x) matches the inverter
        # pull-up width; its pull-down is a single unit NMOS.
        nor_rise = reduce_cell(nor2_cell, tech14,
                               arc=nor2_cell.arc("A", Transition.RISE))
        inv_rise = reduce_cell(inv_cell, tech14,
                               arc=inv_cell.arc("A", Transition.RISE))
        assert float(np.asarray(nor_rise.pmos.width_um)) == pytest.approx(
            float(np.asarray(inv_rise.pmos.width_um)))

    def test_parasitic_cap_positive_and_scales_with_variation(self, tech28, nand2_cell):
        nominal = reduce_cell(nand2_cell, tech28)
        assert float(np.asarray(nominal.parasitic_cap)) > 0.0
        variation = tech28.variation.sample(5, rng=0)
        varied = reduce_cell(nand2_cell, tech28, variation=variation)
        assert np.asarray(varied.parasitic_cap).shape == (5,)
        assert varied.n_seeds == 5

    def test_effective_current_positive(self, tech14, nand2_cell):
        inverter = reduce_cell(nand2_cell, tech14)
        assert float(inverter.effective_current(tech14.vdd_nominal)) > 0.0

    def test_unknown_pin_raises(self, tech14, nand2_cell):
        from repro.cells.library import TimingArc

        bad_arc = TimingArc(cell_name=nand2_cell.name, input_pin="Q",
                            output_transition=Transition.FALL)
        with pytest.raises(KeyError):
            reduce_cell(nand2_cell, tech14, arc=bad_arc)
