"""Tests for the library input space and its samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization import InputCondition, InputSpace
from repro.characterization.input_space import conditions_to_arrays


class TestInputCondition:
    def test_rejects_non_positive_values(self):
        with pytest.raises(ValueError):
            InputCondition(sin=0.0, cload=1e-15, vdd=0.8)
        with pytest.raises(ValueError):
            InputCondition(sin=1e-12, cload=-1e-15, vdd=0.8)

    def test_tuple_and_describe(self):
        condition = InputCondition(sin=5.09e-12, cload=1.67e-15, vdd=0.734)
        assert condition.as_tuple() == (5.09e-12, 1.67e-15, 0.734)
        text = condition.describe()
        assert "5.09ps" in text and "1.67fF" in text and "0.734V" in text

    def test_conditions_to_arrays(self):
        conditions = [InputCondition(1e-12, 1e-15, 0.7),
                      InputCondition(2e-12, 2e-15, 0.8)]
        sin, cload, vdd = conditions_to_arrays(conditions)
        assert np.allclose(sin, [1e-12, 2e-12])
        assert np.allclose(vdd, [0.7, 0.8])
        with pytest.raises(ValueError):
            conditions_to_arrays([])


class TestInputSpace:
    def test_samples_stay_in_range(self, tech14):
        space = InputSpace(tech14)
        for condition in space.sample_random(100, rng=0):
            assert tech14.slew_range[0] <= condition.sin <= tech14.slew_range[1]
            assert tech14.cload_range[0] <= condition.cload <= tech14.cload_range[1]
            assert tech14.vdd_range[0] <= condition.vdd <= tech14.vdd_range[1]

    def test_lhs_sample_count(self, tech14):
        assert len(InputSpace(tech14).sample_lhs(7, rng=1)) == 7

    def test_grid_size(self, tech28):
        grid = InputSpace(tech28).grid(3, 4, 2)
        assert len(grid) == 24
        vdds = sorted({c.vdd for c in grid})
        assert len(vdds) == 2

    def test_grid_for_budget_never_exceeds(self, tech14):
        space = InputSpace(tech14)
        for budget in (1, 2, 5, 10, 27, 60, 100):
            grid = space.grid_for_budget(budget)
            assert 1 <= len(grid) <= budget

    def test_grid_for_budget_improves_with_budget(self, tech14):
        space = InputSpace(tech14)
        assert len(space.grid_for_budget(64)) > len(space.grid_for_budget(8))
        with pytest.raises(ValueError):
            space.grid_for_budget(0)

    def test_normalize_unit_cube(self, tech14):
        space = InputSpace(tech14)
        corners = space.corners()
        unit = space.normalize(corners)
        assert unit.shape == (8, 3)
        assert np.all((unit >= -1e-9) & (unit <= 1.0 + 1e-9))
        center_unit = space.normalize([space.center()])
        assert np.allclose(center_unit, 0.5)

    def test_center_in_range(self, tech45):
        center = InputSpace(tech45).center()
        assert tech45.vdd_range[0] < center.vdd < tech45.vdd_range[1]

    def test_deterministic_with_seed(self, tech14):
        space = InputSpace(tech14)
        a = space.sample_random(5, rng=3)
        b = space.sample_random(5, rng=3)
        assert [c.as_tuple() for c in a] == [c.as_tuple() for c in b]
