"""Tests for the LUT / LSE / Monte Carlo baselines and the error metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.characterization import (
    InputCondition,
    InputSpace,
    LseCharacterizer,
    LutCharacterizer,
    StatisticalLutCharacterizer,
    mean_relative_error,
    nominal_baseline,
    statistical_baseline,
    statistical_errors,
)
from repro.characterization.lut import LutGrid
from repro.characterization.metrics import mean_abs_error, mean_relative_error_percent
from repro.spice import SimulationCounter


class TestMetrics:
    def test_mean_abs_error(self):
        assert mean_abs_error([1.0, 2.0], [1.5, 1.5]) == pytest.approx(0.5)

    def test_mean_relative_error(self):
        assert mean_relative_error([1.1, 2.2], [1.0, 2.0]) == pytest.approx(0.1)
        assert mean_relative_error_percent([1.1], [1.0]) == pytest.approx(10.0)

    def test_relative_error_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            mean_relative_error([1.0], [0.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_abs_error([1.0, 2.0], [1.0])

    def test_statistical_errors_fields(self):
        errors = statistical_errors([1.0e-12, 2.0e-12], [0.1e-12, 0.2e-12],
                                    [1.1e-12, 1.9e-12], [0.1e-12, 0.25e-12])
        assert errors.mean_abs_mu == pytest.approx(0.1e-12, rel=1e-6)
        assert errors.relative_sigma_percent > 0.0

    @settings(max_examples=20, deadline=None)
    @given(scale=st.floats(min_value=0.5, max_value=2.0))
    def test_relative_error_is_scale_invariant(self, scale):
        predicted = np.array([1.0, 2.0, 3.0])
        reference = np.array([1.1, 1.9, 3.2])
        assert mean_relative_error(predicted * scale, reference * scale) == \
            pytest.approx(mean_relative_error(predicted, reference))


class TestLutGrid:
    def make_linear_grid(self):
        sin_axis = np.array([1e-12, 5e-12, 10e-12])
        cload_axis = np.array([1e-15, 3e-15])
        vdd_axis = np.array([0.7, 0.9])
        values = np.empty((3, 2, 2))
        for i, s in enumerate(sin_axis):
            for j, c in enumerate(cload_axis):
                for k, v in enumerate(vdd_axis):
                    values[i, j, k] = 1e-12 + 0.1 * s + 1e3 * c - 2e-12 * v
        return LutGrid(sin_axis, cload_axis, vdd_axis, values)

    def test_exact_at_grid_nodes(self):
        grid = self.make_linear_grid()
        value = grid.interpolate(InputCondition(5e-12, 3e-15, 0.9))
        assert value == pytest.approx(1e-12 + 0.5e-12 + 3e-12 - 1.8e-12)

    def test_trilinear_reproduces_linear_functions(self):
        grid = self.make_linear_grid()
        condition = InputCondition(3e-12, 2e-15, 0.8)
        expected = 1e-12 + 0.1 * 3e-12 + 1e3 * 2e-15 - 2e-12 * 0.8
        assert grid.interpolate(condition) == pytest.approx(expected, rel=1e-9)

    def test_clamping_outside_grid(self):
        grid = self.make_linear_grid()
        inside = grid.interpolate(InputCondition(10e-12, 3e-15, 0.9))
        outside = grid.interpolate(InputCondition(50e-12, 9e-15, 1.2))
        assert outside == pytest.approx(inside)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LutGrid(np.array([1.0, 2.0]), np.array([1.0]), np.array([1.0]),
                    np.zeros((1, 1, 1)))
        with pytest.raises(ValueError):
            LutGrid(np.array([2.0, 1.0]), np.array([1.0]), np.array([1.0]),
                    np.zeros((2, 1, 1)))

    def test_n_entries(self):
        assert self.make_linear_grid().n_entries == 12

    def test_interpolate_many_matches_scalar_path(self):
        grid = self.make_linear_grid()
        rng = np.random.default_rng(3)
        conditions = [InputCondition(sin=float(s), cload=float(c), vdd=float(v))
                      for s, c, v in zip(rng.uniform(0.5e-12, 20e-12, 40),
                                         rng.uniform(0.5e-15, 5e-15, 40),
                                         rng.uniform(0.6, 1.1, 40))]
        # Include exact grid nodes and clamped out-of-range points.
        conditions += [InputCondition(5e-12, 3e-15, 0.9),
                       InputCondition(50e-12, 9e-15, 1.3),
                       InputCondition(1e-13, 1e-16, 0.1)]
        vectorized = grid.interpolate_many(conditions)
        scalar = np.array([grid.interpolate(c) for c in conditions])
        np.testing.assert_allclose(vectorized, scalar, rtol=1e-12, atol=0.0)

    def test_interpolate_many_degenerate_axes(self):
        grid = LutGrid(np.array([2e-12]), np.array([1e-15, 4e-15]),
                       np.array([0.8]), np.arange(2.0).reshape(1, 2, 1))
        conditions = [InputCondition(1e-12, 2.5e-15, 0.9),
                      InputCondition(9e-12, 1e-15, 0.5)]
        vectorized = grid.interpolate_many(conditions)
        scalar = np.array([grid.interpolate(c) for c in conditions])
        np.testing.assert_allclose(vectorized, scalar, rtol=1e-12, atol=0.0)

    def test_interpolate_many_empty(self):
        assert self.make_linear_grid().interpolate_many([]).shape == (0,)


class TestLutCharacterizer:
    def test_build_and_predict(self, tech14, inv_cell):
        counter = SimulationCounter()
        lut = LutCharacterizer(tech14, inv_cell, counter=counter)
        lut.build(8)
        assert lut.simulation_runs == 8
        assert counter.total == 8
        conditions = InputSpace(tech14).sample_random(5, rng=2)
        delays = lut.predict_delay(conditions)
        slews = lut.predict_slew(conditions)
        assert delays.shape == (5,)
        assert np.all(delays > 0) and np.all(slews > 0)

    def test_query_before_build_raises(self, tech14, inv_cell):
        lut = LutCharacterizer(tech14, inv_cell)
        with pytest.raises(RuntimeError):
            lut.predict_delay([InputCondition(5e-12, 2e-15, 0.8)])

    def test_non_factorial_conditions_rejected(self, tech14, inv_cell):
        lut = LutCharacterizer(tech14, inv_cell)
        conditions = InputSpace(tech14).sample_random(4, rng=3)
        with pytest.raises(ValueError):
            lut.build_from_conditions(conditions)


class TestStatisticalLut:
    def test_build_and_statistics(self, tech28, inv_cell):
        variation = tech28.variation.sample(25, rng=4)
        counter = SimulationCounter()
        lut = StatisticalLutCharacterizer(tech28, inv_cell, variation,
                                          counter=counter)
        lut.build(4)
        assert lut.simulation_runs == 4 * 25
        stats = lut.predict_statistics([InputCondition(5e-12, 2e-15, 0.9)])
        assert stats["mu_delay"][0] > 0
        assert stats["sigma_delay"][0] > 0
        samples = lut.delay_distribution(InputCondition(5e-12, 2e-15, 0.9),
                                         n_samples=500, rng=0)
        assert samples.shape == (500,)

    def test_requires_multiple_seeds(self, tech28, inv_cell):
        from repro.technology import VariationSample

        with pytest.raises(ValueError):
            StatisticalLutCharacterizer(tech28, inv_cell, VariationSample.nominal(1))


class TestLseCharacterizer:
    def test_fit_and_predict_accuracy(self, tech14, nor2_cell):
        counter = SimulationCounter()
        lse = LseCharacterizer(tech14, nor2_cell, counter=counter)
        lse.fit(8, rng=1)
        assert lse.simulation_runs == 8
        validation = InputSpace(tech14).sample_random(20, rng=11)
        baseline = nominal_baseline(nor2_cell, tech14, validation)
        error = mean_relative_error(lse.predict_delay(validation), baseline.delay)
        assert error < 0.05
        assert lse.delay_fit.n_observations == 8

    def test_query_before_fit_raises(self, tech14, inv_cell):
        lse = LseCharacterizer(tech14, inv_cell)
        with pytest.raises(RuntimeError):
            lse.predict_slew([InputCondition(5e-12, 2e-15, 0.8)])


class TestBaselines:
    def test_nominal_baseline(self, tech14, inv_cell):
        counter = SimulationCounter()
        conditions = InputSpace(tech14).sample_random(6, rng=8)
        baseline = nominal_baseline(inv_cell, tech14, conditions, counter=counter)
        assert baseline.n_conditions == 6
        assert baseline.simulation_runs == 6
        assert np.all(baseline.delay > 0)

    def test_statistical_baseline(self, tech28, inv_cell):
        variation = tech28.variation.sample(20, rng=6)
        conditions = InputSpace(tech28).sample_random(3, rng=9)
        baseline = statistical_baseline(inv_cell, tech28, conditions, variation)
        assert baseline.delay_samples.shape == (3, 20)
        stats = baseline.statistics()
        assert np.all(stats["sigma_delay"] > 0)
        assert baseline.n_seeds == 20

    def test_empty_conditions_rejected(self, tech14, inv_cell):
        with pytest.raises(ValueError):
            nominal_baseline(inv_cell, tech14, [])
