"""Process-variation model and Monte Carlo variation samples.

Statistical characterization needs an ensemble of "process seeds": concrete
realizations of the manufacturing variation that perturb every device in a
cell.  The model here separates

* **global (inter-die) variation** -- shared by all devices of a seed:
  threshold-voltage shifts common to all NMOS (and, separately, all PMOS)
  devices, drive-strength (mobility / saturation velocity) multipliers, an
  effective-channel-length multiplier, and a parasitic-capacitance
  multiplier;
* **local (intra-die mismatch) variation** -- independent per device:
  Pelgrom-style threshold mismatch whose sigma scales as
  ``avt / sqrt(W * L)``.

The magnitudes are configured per technology node (newer nodes have larger
relative variation), which is what makes the 28 nm statistical experiments of
the paper (Figs. 7-9) meaningful.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class VariationSample:
    """A batch of process seeds.

    Every field is a NumPy array of shape ``(n_seeds,)``.  A sample with all
    zeros / ones represents the nominal process.

    Attributes
    ----------
    delta_vth_nmos, delta_vth_pmos:
        Additive threshold-voltage shifts in volts (global + local component
        for the switching device of the cell under characterization).
    drive_mult_nmos, drive_mult_pmos:
        Multiplicative drive-strength factors.
    leff_mult:
        Multiplicative effective-channel-length factor (shared polarity).
    cap_mult:
        Multiplicative factor on parasitic capacitances.
    """

    delta_vth_nmos: np.ndarray
    delta_vth_pmos: np.ndarray
    drive_mult_nmos: np.ndarray
    drive_mult_pmos: np.ndarray
    leff_mult: np.ndarray
    cap_mult: np.ndarray

    def __post_init__(self) -> None:
        arrays = [
            self.delta_vth_nmos,
            self.delta_vth_pmos,
            self.drive_mult_nmos,
            self.drive_mult_pmos,
            self.leff_mult,
            self.cap_mult,
        ]
        sizes = {np.asarray(a).shape for a in arrays}
        if len(sizes) != 1:
            raise ValueError(f"all variation arrays must share a shape, got {sizes}")

    @property
    def n_seeds(self) -> int:
        """Number of process seeds in this sample."""
        return int(np.asarray(self.delta_vth_nmos).size)

    @classmethod
    def nominal(cls, n_seeds: int = 1) -> "VariationSample":
        """A sample representing the nominal (typical) process."""
        if n_seeds < 1:
            raise ValueError("n_seeds must be at least 1")
        zeros = np.zeros(n_seeds)
        ones = np.ones(n_seeds)
        return cls(
            delta_vth_nmos=zeros.copy(),
            delta_vth_pmos=zeros.copy(),
            drive_mult_nmos=ones.copy(),
            drive_mult_pmos=ones.copy(),
            leff_mult=ones.copy(),
            cap_mult=ones.copy(),
        )

    def subset(self, indices) -> "VariationSample":
        """Return a sample containing only the selected seed indices."""
        indices = np.asarray(indices)
        return VariationSample(
            delta_vth_nmos=np.asarray(self.delta_vth_nmos)[indices],
            delta_vth_pmos=np.asarray(self.delta_vth_pmos)[indices],
            drive_mult_nmos=np.asarray(self.drive_mult_nmos)[indices],
            drive_mult_pmos=np.asarray(self.drive_mult_pmos)[indices],
            leff_mult=np.asarray(self.leff_mult)[indices],
            cap_mult=np.asarray(self.cap_mult)[indices],
        )

    def shifted(self, **changes) -> "VariationSample":
        """Return a copy with the given arrays replaced (for corner analysis)."""
        return replace(self, **changes)

    def fingerprint(self) -> str:
        """Content hash of the seed batch, for memoization keys.

        Two samples with bitwise-identical arrays share a fingerprint, so the
        equivalent-inverter reduction and simulation caches can recognise
        repeated sweeps over the same seeds regardless of object identity.
        Computed lazily and memoized on the (frozen) instance; the arrays
        are never mutated after construction.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        for array in (self.delta_vth_nmos, self.delta_vth_pmos,
                      self.drive_mult_nmos, self.drive_mult_pmos,
                      self.leff_mult, self.cap_mult):
            contiguous = np.ascontiguousarray(np.asarray(array, dtype=float))
            digest.update(str(contiguous.shape).encode())
            digest.update(contiguous.tobytes())
        fingerprint = digest.hexdigest()
        object.__setattr__(self, "_fingerprint", fingerprint)
        return fingerprint


@dataclass(frozen=True)
class ProcessVariationModel:
    """Per-node configuration of process-variation magnitudes.

    Attributes
    ----------
    sigma_vth_global:
        Standard deviation of the inter-die threshold shift, in volts.
    avt_mv_um:
        Pelgrom mismatch coefficient in mV*um; the local threshold-mismatch
        sigma for a device of width ``W`` um and length ``L`` um is
        ``avt_mv_um / sqrt(W * L) * 1e-3`` volts.
    sigma_drive:
        Relative standard deviation of the drive-strength multiplier.
    sigma_leff:
        Relative standard deviation of the effective-length multiplier.
    sigma_cap:
        Relative standard deviation of the parasitic-capacitance multiplier.
    nmos_pmos_vth_correlation:
        Correlation coefficient between the NMOS and PMOS global threshold
        shifts (process steps such as gate-stack deposition affect both).
    reference_width_um, reference_length_um:
        Device geometry used when converting the Pelgrom coefficient into a
        mismatch sigma for the equivalent switching device.
    """

    sigma_vth_global: float = 0.015
    avt_mv_um: float = 1.8
    sigma_drive: float = 0.04
    sigma_leff: float = 0.02
    sigma_cap: float = 0.03
    nmos_pmos_vth_correlation: float = 0.6
    reference_width_um: float = 0.5
    reference_length_um: float = 0.03

    def local_vth_sigma(self, width_um: Optional[float] = None,
                        length_um: Optional[float] = None) -> float:
        """Pelgrom mismatch sigma in volts for the given device geometry."""
        width = self.reference_width_um if width_um is None else width_um
        length = self.reference_length_um if length_um is None else length_um
        if width <= 0.0 or length <= 0.0:
            raise ValueError("device geometry must be positive")
        return self.avt_mv_um * 1e-3 / np.sqrt(width * length)

    def sample(self, n_seeds: int, rng: RandomState = None) -> VariationSample:
        """Draw ``n_seeds`` Monte Carlo process seeds.

        Global threshold shifts for NMOS/PMOS are drawn from a correlated
        bivariate Gaussian; multiplicative factors are drawn log-normally so
        they remain strictly positive.
        """
        if n_seeds < 1:
            raise ValueError("n_seeds must be at least 1")
        generator = ensure_rng(rng)

        rho = float(np.clip(self.nmos_pmos_vth_correlation, -1.0, 1.0))
        cov = self.sigma_vth_global ** 2 * np.array([[1.0, rho], [rho, 1.0]])
        global_vth = generator.multivariate_normal(np.zeros(2), cov, size=n_seeds)

        local_sigma = self.local_vth_sigma()
        local_n = generator.normal(0.0, local_sigma, size=n_seeds)
        local_p = generator.normal(0.0, local_sigma, size=n_seeds)

        def lognormal_multiplier(sigma: float) -> np.ndarray:
            if sigma <= 0.0:
                return np.ones(n_seeds)
            log_sigma = np.sqrt(np.log1p(sigma ** 2))
            return generator.lognormal(mean=-0.5 * log_sigma ** 2, sigma=log_sigma,
                                       size=n_seeds)

        return VariationSample(
            delta_vth_nmos=global_vth[:, 0] + local_n,
            delta_vth_pmos=global_vth[:, 1] + local_p,
            drive_mult_nmos=lognormal_multiplier(self.sigma_drive),
            drive_mult_pmos=lognormal_multiplier(self.sigma_drive),
            leff_mult=lognormal_multiplier(self.sigma_leff),
            cap_mult=lognormal_multiplier(self.sigma_cap),
        )

    def total_vth_sigma(self) -> float:
        """Combined (global + local) threshold-shift sigma in volts."""
        return float(np.hypot(self.sigma_vth_global, self.local_vth_sigma()))
