"""Technology-node descriptor.

A :class:`TechnologyNode` bundles everything the characterization flows need
to know about one fabrication process: nominal device parameters for both
polarities, which compact device model to use (planar alpha-power vs FinFET
virtual-source), capacitance coefficients, the supported supply / input-slew /
load-capacitance ranges that define the library input space, and a
process-variation model.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Tuple, Type

import numpy as np

from repro.devices import (
    AlphaPowerMOSFET,
    CapacitanceModel,
    DeviceParameters,
    MOSFET,
    Polarity,
    VirtualSourceMOSFET,
)
from repro.technology.variation import ProcessVariationModel, VariationSample

#: Mapping from the ``device_family`` string to the compact model class.
_DEVICE_MODELS: dict = {
    "planar": AlphaPowerMOSFET,
    "finfet": VirtualSourceMOSFET,
}


@dataclass(frozen=True)
class TechnologyNode:
    """Description of one synthetic fabrication process.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"n14_finfet"``.
    node_nm:
        Nominal feature size in nanometres (14, 16, 20, 28, 32, 45).
    device_family:
        ``"planar"`` (alpha-power model) or ``"finfet"`` (virtual-source).
    substrate:
        ``"bulk"`` or ``"soi"``.
    flavor:
        ``"hp"`` (high performance) or ``"lp"`` (low power); used by the
        prior-selection logic when matching historical libraries.
    vdd_nominal:
        Nominal supply voltage in volts.
    vdd_range:
        ``(min, max)`` supply range covered by characterization, in volts.
    slew_range:
        ``(min, max)`` input transition times in seconds.
    cload_range:
        ``(min, max)`` output load capacitances in farads.
    nmos, pmos:
        Nominal :class:`~repro.devices.mosfet.DeviceParameters` of unit-width
        devices for each polarity.
    capacitance:
        Per-width capacitance coefficients.
    variation:
        Process-variation magnitudes for Monte Carlo characterization.
    year:
        Approximate production year; used to order nodes in the historical
        chain of the belief-propagation prior.
    """

    name: str
    node_nm: float
    device_family: str
    substrate: str
    flavor: str
    vdd_nominal: float
    vdd_range: Tuple[float, float]
    slew_range: Tuple[float, float]
    cload_range: Tuple[float, float]
    nmos: DeviceParameters
    pmos: DeviceParameters
    capacitance: CapacitanceModel
    variation: ProcessVariationModel = field(default_factory=ProcessVariationModel)
    year: int = 2015

    def __post_init__(self) -> None:
        if self.device_family not in _DEVICE_MODELS:
            raise ValueError(
                f"unknown device_family {self.device_family!r}; "
                f"expected one of {sorted(_DEVICE_MODELS)}"
            )
        if self.substrate not in ("bulk", "soi"):
            raise ValueError(f"unknown substrate {self.substrate!r}")
        if self.nmos.polarity is not Polarity.NMOS:
            raise ValueError("nmos parameters must have NMOS polarity")
        if self.pmos.polarity is not Polarity.PMOS:
            raise ValueError("pmos parameters must have PMOS polarity")
        for label, (low, high) in (
            ("vdd_range", self.vdd_range),
            ("slew_range", self.slew_range),
            ("cload_range", self.cload_range),
        ):
            if not (0.0 < low < high):
                raise ValueError(f"{label} must satisfy 0 < min < max, got {(low, high)}")

    def fingerprint(self) -> str:
        """Content hash of the node's physical description.

        Used by the simulation and reduction caches so that a modified copy
        of a node (e.g. ``dataclasses.replace(node, vdd_nominal=...)``) is
        never served another node's cached results, even when it reuses the
        name.  Computed lazily and memoized on the (frozen) instance.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            payload = repr(dataclasses.astuple(self)).encode()
            cached = hashlib.sha256(payload).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # ------------------------------------------------------------------
    # Device construction
    # ------------------------------------------------------------------
    @property
    def device_model(self) -> Type[MOSFET]:
        """The compact device-model class used by this node."""
        return _DEVICE_MODELS[self.device_family]

    def make_nmos(self, width_um: float = 1.0,
                  variation: VariationSample | None = None) -> MOSFET:
        """Instantiate an NMOS device of the given width.

        If a :class:`VariationSample` is supplied, the returned device carries
        per-seed parameter arrays and all current evaluations are vectorized
        over the seeds.
        """
        device = self.device_model(self.nmos.replace(width_um=width_um))
        if variation is not None:
            device = device.with_variation(
                delta_vth=variation.delta_vth_nmos,
                drive_multiplier=variation.drive_mult_nmos,
                leff_multiplier=variation.leff_mult,
            )
        return device

    def make_pmos(self, width_um: float = 2.0,
                  variation: VariationSample | None = None) -> MOSFET:
        """Instantiate a PMOS device of the given width (see :meth:`make_nmos`)."""
        device = self.device_model(self.pmos.replace(width_um=width_um))
        if variation is not None:
            device = device.with_variation(
                delta_vth=variation.delta_vth_pmos,
                drive_multiplier=variation.drive_mult_pmos,
                leff_multiplier=variation.leff_mult,
            )
        return device

    # ------------------------------------------------------------------
    # Input-space helpers
    # ------------------------------------------------------------------
    def input_ranges(self) -> dict:
        """The library input space of this node as ``{name: (min, max)}``.

        Order matches the paper's convention: input slew, load capacitance,
        supply voltage.
        """
        return {
            "sin": self.slew_range,
            "cload": self.cload_range,
            "vdd": self.vdd_range,
        }

    def clip_vdd(self, vdd: float) -> float:
        """Clamp a supply value into this node's supported range."""
        low, high = self.vdd_range
        return float(np.clip(vdd, low, high))

    def describe(self) -> str:
        """One-line human-readable summary used in reports."""
        return (
            f"{self.name}: {self.node_nm:g} nm {self.device_family} "
            f"({self.substrate}, {self.flavor}), Vdd={self.vdd_nominal:g} V"
        )
