"""Deterministic process corners.

Besides Monte Carlo seeds, library characterization traditionally uses fixed
process corners (typical, fast, slow and the skewed fast/slow combinations).
Corners are represented as deterministic :class:`VariationSample` instances a
fixed number of global sigmas away from nominal, so they plug into the same
vectorized simulation paths as Monte Carlo seeds.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.technology.variation import ProcessVariationModel, VariationSample


class ProcessCorner(str, enum.Enum):
    """Named process corners (NMOS letter first, PMOS letter second)."""

    TT = "tt"
    FF = "ff"
    SS = "ss"
    FS = "fs"
    SF = "sf"


#: Signed sigma multipliers (nmos, pmos); "fast" means lower threshold and
#: stronger drive, "slow" the opposite.
_CORNER_SIGNS = {
    ProcessCorner.TT: (0.0, 0.0),
    ProcessCorner.FF: (-1.0, -1.0),
    ProcessCorner.SS: (+1.0, +1.0),
    ProcessCorner.FS: (-1.0, +1.0),
    ProcessCorner.SF: (+1.0, -1.0),
}


def corner_sample(model: ProcessVariationModel,
                  corner: ProcessCorner,
                  n_sigma: float = 3.0) -> VariationSample:
    """Build the deterministic variation sample for a process corner.

    Parameters
    ----------
    model:
        The node's process-variation model (provides the sigma magnitudes).
    corner:
        Which corner to generate.
    n_sigma:
        How many global sigmas the corner sits from nominal (3 by default,
        the usual sign-off convention).

    Returns
    -------
    VariationSample
        A single-seed sample; fast corners have negative threshold shifts and
        drive multipliers above one.
    """
    if n_sigma < 0.0:
        raise ValueError("n_sigma must be non-negative")
    sign_n, sign_p = _CORNER_SIGNS[ProcessCorner(corner)]
    dvth_n = sign_n * n_sigma * model.sigma_vth_global
    dvth_p = sign_p * n_sigma * model.sigma_vth_global
    drive_n = 1.0 - sign_n * n_sigma * model.sigma_drive
    drive_p = 1.0 - sign_p * n_sigma * model.sigma_drive
    drive_n = max(drive_n, 0.05)
    drive_p = max(drive_p, 0.05)
    return VariationSample(
        delta_vth_nmos=np.array([dvth_n]),
        delta_vth_pmos=np.array([dvth_p]),
        drive_mult_nmos=np.array([drive_n]),
        drive_mult_pmos=np.array([drive_p]),
        leff_mult=np.array([1.0]),
        cap_mult=np.array([1.0]),
    )
