"""Synthetic process design kits (PDKs).

The paper's experiments use six proprietary industrial design kits spanning
14 nm to 45 nm, bulk and SOI substrates, FinFET and planar devices.  This
module defines synthetic stand-ins with the same qualitative spread:

================  ========  ========  =========  =======  ==========
name              node      family    substrate  flavor   Vdd (nom)
================  ========  ========  =========  =======  ==========
``n14_finfet``    14 nm     finfet    bulk       hp       0.80 V
``n16_finfet_soi``16 nm     finfet    soi        hp       0.85 V
``n20_planar``    20 nm     planar    bulk       hp       0.90 V
``n28_bulk``      28 nm     planar    bulk       hp       0.90 V
``n28_lp``        28 nm     planar    bulk       lp       1.00 V
``n32_soi``       32 nm     planar    soi        hp       0.95 V
``n45_bulk``      45 nm     planar    bulk       hp       1.10 V
================  ========  ========  =========  =======  ==========

Device parameters follow published trends (threshold voltages rising and
drive currents falling toward older nodes; FinFETs with near-ideal
subthreshold swing and balanced N/P drive).  Absolute values are not intended
to match any foundry; what matters for the reproduction is that the compact
timing-model parameters extracted from these nodes are *similar but not
identical* across nodes, which is the property the Bayesian prior exploits.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.devices import CapacitanceModel, DeviceParameters, Polarity
from repro.technology.node import TechnologyNode
from repro.technology.variation import ProcessVariationModel
from repro.utils.units import FEMTO, PICO


def make_technology(
    name: str,
    node_nm: float,
    device_family: str,
    substrate: str,
    flavor: str,
    vdd_nominal: float,
    vdd_range: tuple,
    slew_range_ps: tuple,
    cload_range_ff: tuple,
    nmos_kwargs: dict,
    pmos_kwargs: dict,
    cap_kwargs: dict,
    variation_kwargs: dict,
    year: int,
) -> TechnologyNode:
    """Assemble a :class:`TechnologyNode` from plain keyword dictionaries.

    This is the factory the registry uses; it is exported so users can define
    additional synthetic nodes (e.g. a skewed copy of an existing node for
    prior-selection studies) without touching the library internals.
    """
    nmos = DeviceParameters(polarity=Polarity.NMOS, **nmos_kwargs)
    pmos = DeviceParameters(polarity=Polarity.PMOS, **pmos_kwargs)
    capacitance = CapacitanceModel(**cap_kwargs)
    variation = ProcessVariationModel(**variation_kwargs)
    return TechnologyNode(
        name=name,
        node_nm=node_nm,
        device_family=device_family,
        substrate=substrate,
        flavor=flavor,
        vdd_nominal=vdd_nominal,
        vdd_range=vdd_range,
        slew_range=(slew_range_ps[0] * PICO, slew_range_ps[1] * PICO),
        cload_range=(cload_range_ff[0] * FEMTO, cload_range_ff[1] * FEMTO),
        nmos=nmos,
        pmos=pmos,
        capacitance=capacitance,
        variation=variation,
        year=year,
    )


def _n14_finfet() -> TechnologyNode:
    return make_technology(
        name="n14_finfet",
        node_nm=14,
        device_family="finfet",
        substrate="bulk",
        flavor="hp",
        vdd_nominal=0.80,
        vdd_range=(0.65, 1.00),
        slew_range_ps=(1.0, 15.0),
        cload_range_ff=(0.2, 6.0),
        nmos_kwargs=dict(vth0=0.32, alpha=1.05, k_drive=1.40e-3, dibl=0.060,
                         lambda_clm=0.030, vdsat_coeff=0.34,
                         subthreshold_swing=0.068, leff_nm=16.0),
        pmos_kwargs=dict(vth0=0.30, alpha=1.08, k_drive=1.20e-3, dibl=0.065,
                         lambda_clm=0.032, vdsat_coeff=0.36,
                         subthreshold_swing=0.070, leff_nm=16.0),
        cap_kwargs=dict(cgate_per_um=1.10e-15, cdrain_per_um=0.70e-15,
                        cmiller_per_um=0.24e-15, cwire_fixed=0.05e-15),
        variation_kwargs=dict(sigma_vth_global=0.018, avt_mv_um=1.30,
                              sigma_drive=0.050, sigma_leff=0.025,
                              sigma_cap=0.035, reference_width_um=0.35,
                              reference_length_um=0.016),
        year=2015,
    )


def _n16_finfet_soi() -> TechnologyNode:
    return make_technology(
        name="n16_finfet_soi",
        node_nm=16,
        device_family="finfet",
        substrate="soi",
        flavor="hp",
        vdd_nominal=0.85,
        vdd_range=(0.70, 1.00),
        slew_range_ps=(1.5, 18.0),
        cload_range_ff=(0.2, 7.0),
        nmos_kwargs=dict(vth0=0.33, alpha=1.08, k_drive=1.30e-3, dibl=0.058,
                         lambda_clm=0.028, vdsat_coeff=0.35,
                         subthreshold_swing=0.066, leff_nm=18.0),
        pmos_kwargs=dict(vth0=0.31, alpha=1.10, k_drive=1.10e-3, dibl=0.062,
                         lambda_clm=0.030, vdsat_coeff=0.37,
                         subthreshold_swing=0.068, leff_nm=18.0),
        cap_kwargs=dict(cgate_per_um=1.05e-15, cdrain_per_um=0.62e-15,
                        cmiller_per_um=0.22e-15, cwire_fixed=0.05e-15),
        variation_kwargs=dict(sigma_vth_global=0.017, avt_mv_um=1.35,
                              sigma_drive=0.048, sigma_leff=0.024,
                              sigma_cap=0.034, reference_width_um=0.35,
                              reference_length_um=0.018),
        year=2014,
    )


def _n20_planar() -> TechnologyNode:
    return make_technology(
        name="n20_planar",
        node_nm=20,
        device_family="planar",
        substrate="bulk",
        flavor="hp",
        vdd_nominal=0.90,
        vdd_range=(0.75, 1.05),
        slew_range_ps=(2.0, 20.0),
        cload_range_ff=(0.3, 8.0),
        nmos_kwargs=dict(vth0=0.36, alpha=1.22, k_drive=9.0e-4, dibl=0.085,
                         lambda_clm=0.050, vdsat_coeff=0.48,
                         subthreshold_swing=0.086, leff_nm=24.0),
        pmos_kwargs=dict(vth0=0.34, alpha=1.28, k_drive=5.6e-4, dibl=0.090,
                         lambda_clm=0.055, vdsat_coeff=0.52,
                         subthreshold_swing=0.090, leff_nm=24.0),
        cap_kwargs=dict(cgate_per_um=0.98e-15, cdrain_per_um=0.58e-15,
                        cmiller_per_um=0.21e-15, cwire_fixed=0.06e-15),
        variation_kwargs=dict(sigma_vth_global=0.016, avt_mv_um=1.60,
                              sigma_drive=0.045, sigma_leff=0.022,
                              sigma_cap=0.032, reference_width_um=0.45,
                              reference_length_um=0.024),
        year=2013,
    )


def _n28_bulk() -> TechnologyNode:
    return make_technology(
        name="n28_bulk",
        node_nm=28,
        device_family="planar",
        substrate="bulk",
        flavor="hp",
        vdd_nominal=0.90,
        vdd_range=(0.70, 1.05),
        slew_range_ps=(2.0, 25.0),
        cload_range_ff=(0.3, 10.0),
        nmos_kwargs=dict(vth0=0.38, alpha=1.30, k_drive=7.5e-4, dibl=0.090,
                         lambda_clm=0.055, vdsat_coeff=0.52,
                         subthreshold_swing=0.088, leff_nm=32.0),
        pmos_kwargs=dict(vth0=0.36, alpha=1.35, k_drive=4.6e-4, dibl=0.095,
                         lambda_clm=0.060, vdsat_coeff=0.56,
                         subthreshold_swing=0.092, leff_nm=32.0),
        cap_kwargs=dict(cgate_per_um=0.92e-15, cdrain_per_um=0.55e-15,
                        cmiller_per_um=0.20e-15, cwire_fixed=0.07e-15),
        variation_kwargs=dict(sigma_vth_global=0.016, avt_mv_um=1.80,
                              sigma_drive=0.042, sigma_leff=0.020,
                              sigma_cap=0.030, reference_width_um=0.50,
                              reference_length_um=0.032),
        year=2012,
    )


def _n28_lp() -> TechnologyNode:
    return make_technology(
        name="n28_lp",
        node_nm=28,
        device_family="planar",
        substrate="bulk",
        flavor="lp",
        vdd_nominal=1.00,
        vdd_range=(0.80, 1.15),
        slew_range_ps=(3.0, 30.0),
        cload_range_ff=(0.3, 10.0),
        nmos_kwargs=dict(vth0=0.46, alpha=1.32, k_drive=6.2e-4, dibl=0.075,
                         lambda_clm=0.045, vdsat_coeff=0.55,
                         subthreshold_swing=0.084, leff_nm=34.0),
        pmos_kwargs=dict(vth0=0.44, alpha=1.38, k_drive=3.8e-4, dibl=0.080,
                         lambda_clm=0.050, vdsat_coeff=0.58,
                         subthreshold_swing=0.088, leff_nm=34.0),
        cap_kwargs=dict(cgate_per_um=0.95e-15, cdrain_per_um=0.56e-15,
                        cmiller_per_um=0.20e-15, cwire_fixed=0.07e-15),
        variation_kwargs=dict(sigma_vth_global=0.015, avt_mv_um=1.85,
                              sigma_drive=0.040, sigma_leff=0.020,
                              sigma_cap=0.030, reference_width_um=0.50,
                              reference_length_um=0.034),
        year=2012,
    )


def _n32_soi() -> TechnologyNode:
    return make_technology(
        name="n32_soi",
        node_nm=32,
        device_family="planar",
        substrate="soi",
        flavor="hp",
        vdd_nominal=0.95,
        vdd_range=(0.80, 1.10),
        slew_range_ps=(3.0, 35.0),
        cload_range_ff=(0.4, 12.0),
        nmos_kwargs=dict(vth0=0.40, alpha=1.32, k_drive=6.6e-4, dibl=0.080,
                         lambda_clm=0.050, vdsat_coeff=0.55,
                         subthreshold_swing=0.086, leff_nm=36.0),
        pmos_kwargs=dict(vth0=0.38, alpha=1.38, k_drive=4.0e-4, dibl=0.085,
                         lambda_clm=0.055, vdsat_coeff=0.58,
                         subthreshold_swing=0.090, leff_nm=36.0),
        cap_kwargs=dict(cgate_per_um=0.88e-15, cdrain_per_um=0.50e-15,
                        cmiller_per_um=0.19e-15, cwire_fixed=0.08e-15),
        variation_kwargs=dict(sigma_vth_global=0.015, avt_mv_um=1.90,
                              sigma_drive=0.040, sigma_leff=0.018,
                              sigma_cap=0.028, reference_width_um=0.55,
                              reference_length_um=0.036),
        year=2010,
    )


def _n45_bulk() -> TechnologyNode:
    return make_technology(
        name="n45_bulk",
        node_nm=45,
        device_family="planar",
        substrate="bulk",
        flavor="hp",
        vdd_nominal=1.10,
        vdd_range=(0.90, 1.20),
        slew_range_ps=(5.0, 60.0),
        cload_range_ff=(0.5, 20.0),
        nmos_kwargs=dict(vth0=0.45, alpha=1.40, k_drive=5.4e-4, dibl=0.100,
                         lambda_clm=0.060, vdsat_coeff=0.60,
                         subthreshold_swing=0.092, leff_nm=50.0),
        pmos_kwargs=dict(vth0=0.42, alpha=1.45, k_drive=3.2e-4, dibl=0.105,
                         lambda_clm=0.065, vdsat_coeff=0.64,
                         subthreshold_swing=0.096, leff_nm=50.0),
        cap_kwargs=dict(cgate_per_um=0.85e-15, cdrain_per_um=0.48e-15,
                        cmiller_per_um=0.18e-15, cwire_fixed=0.10e-15),
        variation_kwargs=dict(sigma_vth_global=0.014, avt_mv_um=2.20,
                              sigma_drive=0.038, sigma_leff=0.016,
                              sigma_cap=0.026, reference_width_um=0.60,
                              reference_length_um=0.050),
        year=2008,
    )


#: Factory functions for every synthetic node, keyed by node name.
TECHNOLOGY_REGISTRY = {
    "n14_finfet": _n14_finfet,
    "n16_finfet_soi": _n16_finfet_soi,
    "n20_planar": _n20_planar,
    "n28_bulk": _n28_bulk,
    "n28_lp": _n28_lp,
    "n32_soi": _n32_soi,
    "n45_bulk": _n45_bulk,
}

#: The six nodes used as the paper's default historical set (Ntech = 6).
DEFAULT_HISTORICAL_SET = (
    "n14_finfet",
    "n16_finfet_soi",
    "n20_planar",
    "n28_bulk",
    "n32_soi",
    "n45_bulk",
)


def list_technologies() -> List[str]:
    """Names of every synthetic technology node, sorted by feature size."""
    names = list(TECHNOLOGY_REGISTRY)
    return sorted(names, key=lambda name: (get_technology(name).node_nm, name))


def get_technology(name: str) -> TechnologyNode:
    """Look up a synthetic technology node by name.

    Raises
    ------
    KeyError
        If no node with that name is registered.
    """
    try:
        factory = TECHNOLOGY_REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(TECHNOLOGY_REGISTRY))
        raise KeyError(f"unknown technology {name!r}; available: {available}") from None
    return factory()


def historical_technologies(exclude: str | Sequence[str] = (),
                            flavor: str | None = None) -> List[TechnologyNode]:
    """The historical library set used to learn priors.

    Parameters
    ----------
    exclude:
        Name (or names) of the *target* technology to leave out, mirroring
        the paper's setup where the target node never contributes to its own
        prior.
    flavor:
        Optionally restrict to one process flavor (``"hp"`` or ``"lp"``) --
        the bias/variance trade-off in historical-library selection discussed
        in Section IV of the paper.

    Returns
    -------
    list of TechnologyNode
        The selected historical nodes ordered from newest to oldest.
    """
    if isinstance(exclude, str):
        excluded = {exclude}
    else:
        excluded = set(exclude)
    nodes = [get_technology(name) for name in DEFAULT_HISTORICAL_SET
             if name not in excluded]
    if flavor is not None:
        nodes = [node for node in nodes if node.flavor == flavor]
    return sorted(nodes, key=lambda node: node.year, reverse=True)
