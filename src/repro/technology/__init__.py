"""Synthetic technology nodes (PDKs), process variation, and samplers.

The paper characterizes production libraries from six fabrication processes
(14 nm to 45 nm, bulk and SOI, FinFET and planar).  Those design kits are
proprietary, so this package provides *synthetic* PDKs with the same
qualitative structure: per-node device parameters, capacitance coefficients,
supply/slew/load ranges, and a parametric process-variation model.  The
compact-model parameters extracted from these nodes exhibit the same
cross-node similarity the paper exploits (its Table I), which is what the
belief-propagation prior needs.
"""

from repro.technology.node import TechnologyNode
from repro.technology.variation import ProcessVariationModel, VariationSample
from repro.technology.corners import ProcessCorner, corner_sample
from repro.technology.pdk import (
    TECHNOLOGY_REGISTRY,
    get_technology,
    historical_technologies,
    list_technologies,
    make_technology,
)
from repro.technology.sampling import (
    full_factorial_grid,
    latin_hypercube,
    random_uniform,
    scale_to_ranges,
)

__all__ = [
    "ProcessCorner",
    "ProcessVariationModel",
    "TECHNOLOGY_REGISTRY",
    "TechnologyNode",
    "VariationSample",
    "corner_sample",
    "full_factorial_grid",
    "get_technology",
    "historical_technologies",
    "latin_hypercube",
    "list_technologies",
    "make_technology",
    "random_uniform",
    "scale_to_ranges",
]
