"""Generic experiment-design samplers.

These helpers generate points in a unit hypercube (or directly in physical
ranges) and are shared by the process-space Monte Carlo flow and the
library-input-space sampling used for training / validation sets:

* :func:`random_uniform` -- plain Monte Carlo sampling (the paper's 1000-point
  validation set of Fig. 5);
* :func:`latin_hypercube` -- space-filling designs for small fitting sets, so
  two or three training points do not accidentally land on top of each other;
* :func:`full_factorial_grid` -- the regular grids used by the look-up-table
  baseline.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng


def random_uniform(n_points: int, n_dims: int, rng: RandomState = None) -> np.ndarray:
    """Uniform random points in the unit hypercube, shape ``(n_points, n_dims)``."""
    if n_points < 1 or n_dims < 1:
        raise ValueError("n_points and n_dims must be at least 1")
    generator = ensure_rng(rng)
    return generator.random((n_points, n_dims))


def latin_hypercube(n_points: int, n_dims: int, rng: RandomState = None) -> np.ndarray:
    """Latin-hypercube sample in the unit hypercube, shape ``(n_points, n_dims)``.

    Each dimension is divided into ``n_points`` equal strata and exactly one
    point is placed (uniformly) inside each stratum, with an independent
    random permutation per dimension.
    """
    if n_points < 1 or n_dims < 1:
        raise ValueError("n_points and n_dims must be at least 1")
    generator = ensure_rng(rng)
    samples = np.empty((n_points, n_dims))
    for dim in range(n_dims):
        permutation = generator.permutation(n_points)
        offsets = generator.random(n_points)
        samples[:, dim] = (permutation + offsets) / n_points
    return samples


def full_factorial_grid(levels: Sequence[int]) -> np.ndarray:
    """Full-factorial grid in the unit hypercube.

    Parameters
    ----------
    levels:
        Number of levels per dimension; a dimension with ``L`` levels places
        points at the centres of ``L`` equal strata (so single-level
        dimensions sit at 0.5 rather than at an edge).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(prod(levels), len(levels))``.
    """
    levels = [int(level) for level in levels]
    if not levels or any(level < 1 for level in levels):
        raise ValueError("levels must be a non-empty sequence of positive integers")
    axes = []
    for level in levels:
        if level == 1:
            axes.append(np.array([0.5]))
        else:
            axes.append(np.linspace(0.0, 1.0, level))
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.reshape(-1) for m in mesh], axis=-1)


def scale_to_ranges(unit_points: np.ndarray,
                    ranges: Sequence[Tuple[float, float]],
                    log_scale: Sequence[bool] | None = None) -> np.ndarray:
    """Map unit-hypercube points into physical ranges.

    Parameters
    ----------
    unit_points:
        Array of shape ``(n_points, n_dims)`` with entries in ``[0, 1]``.
    ranges:
        One ``(min, max)`` pair per dimension.
    log_scale:
        Optional per-dimension flags; when true the dimension is mapped
        logarithmically (useful for load capacitance, which spans more than a
        decade).

    Returns
    -------
    numpy.ndarray
        Points of the same shape in physical units.
    """
    unit_points = np.asarray(unit_points, dtype=float)
    if unit_points.ndim != 2:
        raise ValueError("unit_points must be a 2-D array")
    if unit_points.shape[1] != len(ranges):
        raise ValueError(
            f"dimension mismatch: points have {unit_points.shape[1]} dims, "
            f"{len(ranges)} ranges given"
        )
    if log_scale is None:
        log_scale = [False] * len(ranges)
    if len(log_scale) != len(ranges):
        raise ValueError("log_scale must have one entry per dimension")

    scaled = np.empty_like(unit_points)
    for dim, ((low, high), is_log) in enumerate(zip(ranges, log_scale)):
        if not (low < high):
            raise ValueError(f"range for dimension {dim} must satisfy min < max")
        column = unit_points[:, dim]
        if is_log:
            if low <= 0.0:
                raise ValueError("log-scaled ranges require positive bounds")
            scaled[:, dim] = np.exp(np.log(low) + column * (np.log(high) - np.log(low)))
        else:
            scaled[:, dim] = low + column * (high - low)
    return scaled
