"""The "proposed model + least squares" baseline.

The paper's Figs. 6 and 8 compare three flows: the full proposal (compact
model + Bayesian MAP), the compact model fitted with a plain least-squares
error function, and the look-up table.  The LSE flow isolates the
contribution of the analytical model itself: it benefits from the model's
sparsity (four parameters) but, lacking the prior, needs at least as many
observations as parameters before its extraction is well determined.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.cells.equivalent_inverter import reduce_cell_cached
from repro.cells.library import Cell, TimingArc
from repro.characterization.input_space import (
    InputCondition,
    InputSpace,
    conditions_to_arrays,
)
from repro.core.timing_model import CompactTimingModel, FitResult, fit_least_squares
from repro.spice.sweep import sweep_conditions
from repro.spice.testbench import SimulationCounter
from repro.technology.node import TechnologyNode
from repro.utils.rng import RandomState, ensure_rng


class LseCharacterizer:
    """Compact-model characterization with plain least-squares extraction."""

    def __init__(self, technology: TechnologyNode, cell: Cell,
                 arc: Optional[TimingArc] = None,
                 counter: Optional[SimulationCounter] = None):
        self._technology = technology
        self._cell = cell
        self._arc = arc if arc is not None else cell.timing_arcs()[1]
        self._counter = counter
        self._space = InputSpace(technology)
        self._inverter = reduce_cell_cached(cell, technology, arc=self._arc)
        self._model = CompactTimingModel()
        self._delay_fit: Optional[FitResult] = None
        self._slew_fit: Optional[FitResult] = None
        self._simulation_runs = 0

    @property
    def simulation_runs(self) -> int:
        """Simulator invocations spent fitting."""
        return self._simulation_runs

    @property
    def delay_fit(self) -> FitResult:
        """The delay-parameter fit (raises if :meth:`fit` was not called)."""
        if self._delay_fit is None:
            raise RuntimeError("call fit() before querying the characterizer")
        return self._delay_fit

    @property
    def slew_fit(self) -> FitResult:
        """The slew-parameter fit."""
        if self._slew_fit is None:
            raise RuntimeError("call fit() before querying the characterizer")
        return self._slew_fit

    def fit(self, conditions: Union[int, Sequence[InputCondition]],
            rng: RandomState = None) -> "LseCharacterizer":
        """Simulate the fitting conditions and extract parameters by least squares."""
        if isinstance(conditions, int):
            conditions = self._space.sample_lhs(conditions, ensure_rng(rng))
        conditions = list(conditions)
        if not conditions:
            raise ValueError("at least one fitting condition is required")

        runs_before = self._counter.total if self._counter is not None else 0
        measurements = sweep_conditions(
            self._cell, self._technology, [c.as_tuple() for c in conditions],
            arc=self._arc, counter=self._counter,
            counter_label=f"lse_fit:{self._cell.name}")
        self._simulation_runs = ((self._counter.total - runs_before)
                                 if self._counter is not None else len(conditions))

        sin, cload, vdd = conditions_to_arrays(conditions)
        ieff = self._effective_currents(vdd)
        delays = np.array([m.nominal_delay() for m in measurements])
        slews = np.array([m.nominal_slew() for m in measurements])
        self._delay_fit = fit_least_squares(sin, cload, vdd, ieff, delays,
                                            model=self._model)
        self._slew_fit = fit_least_squares(sin, cload, vdd, ieff, slews,
                                           model=self._model)
        return self

    def _effective_currents(self, vdd: np.ndarray) -> np.ndarray:
        vdd = np.asarray(vdd, dtype=float).reshape(-1)
        return np.asarray(self._inverter.effective_current(vdd),
                          dtype=float).reshape(-1)

    def predict_delay(self, conditions: Sequence[InputCondition]) -> np.ndarray:
        """Model-predicted delay at arbitrary operating points."""
        return self._predict(conditions, self.delay_fit)

    def predict_slew(self, conditions: Sequence[InputCondition]) -> np.ndarray:
        """Model-predicted output slew at arbitrary operating points."""
        return self._predict(conditions, self.slew_fit)

    def _predict(self, conditions: Sequence[InputCondition], fit: FitResult
                 ) -> np.ndarray:
        sin, cload, vdd = conditions_to_arrays(list(conditions))
        ieff = self._effective_currents(vdd)
        return self._model.evaluate(fit.params, sin, cload, vdd, ieff)
