"""Look-up-table (LUT) characterization baseline.

The conventional flow stores delay and output slew (and, in the statistical
variant, their means and standard deviations) in a table indexed by the input
conditions and answers queries by multilinear interpolation.  Its simulation
cost is the full grid size (times the number of Monte Carlo seeds for the
statistical variant), which is exactly what the paper's proposed flow avoids.

The interpolator here is a tri-linear scheme with clamping outside the grid,
matching the NLDM-style tables of commercial characterization tools.  Grid
axes with a single sample degenerate gracefully (that dimension is treated as
constant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import Cell, TimingArc
from repro.characterization.input_space import InputCondition, InputSpace
from repro.spice.sweep import sweep_conditions
from repro.spice.testbench import SimulationCounter
from repro.technology.node import TechnologyNode
from repro.technology.variation import VariationSample


def _axis_weights(axis: np.ndarray, value: float) -> Tuple[int, int, float]:
    """Bracket ``value`` on ``axis`` and return (low index, high index, fraction)."""
    if axis.size == 1:
        return 0, 0, 0.0
    clamped = float(np.clip(value, axis[0], axis[-1]))
    high = int(np.searchsorted(axis, clamped))
    high = min(max(high, 1), axis.size - 1)
    low = high - 1
    span = axis[high] - axis[low]
    fraction = 0.0 if span == 0.0 else (clamped - axis[low]) / span
    return low, high, fraction


def _axis_weights_many(axis: np.ndarray, values: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`_axis_weights` over an array of query values.

    One ``np.searchsorted`` call brackets every query at once; degenerate
    single-sample axes collapse to index 0 with zero fraction, exactly like
    the scalar path.
    """
    values = np.asarray(values, dtype=float)
    if axis.size == 1:
        zero = np.zeros(values.shape, dtype=int)
        return zero, zero, np.zeros(values.shape)
    clamped = np.clip(values, axis[0], axis[-1])
    high = np.clip(np.searchsorted(axis, clamped), 1, axis.size - 1)
    low = high - 1
    span = axis[high] - axis[low]
    safe = np.where(span == 0.0, 1.0, span)
    fraction = np.where(span == 0.0, 0.0, (clamped - axis[low]) / safe)
    return low, high, fraction


@dataclass(frozen=True)
class LutGrid:
    """A three-dimensional table over ``(Sin, Cload, Vdd)``."""

    sin_axis: np.ndarray
    cload_axis: np.ndarray
    vdd_axis: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        expected = (self.sin_axis.size, self.cload_axis.size, self.vdd_axis.size)
        if self.values.shape != expected:
            raise ValueError(
                f"values shape {self.values.shape} does not match axes {expected}"
            )
        for name, axis in (("sin_axis", self.sin_axis),
                           ("cload_axis", self.cload_axis),
                           ("vdd_axis", self.vdd_axis)):
            if axis.size > 1 and np.any(np.diff(axis) <= 0.0):
                raise ValueError(f"{name} must be strictly increasing")

    @property
    def n_entries(self) -> int:
        """Number of table entries (the grid's simulation cost per seed)."""
        return int(self.values.size)

    def interpolate(self, condition: InputCondition) -> float:
        """Tri-linear interpolation (with clamping) at one operating point."""
        s0, s1, fs = _axis_weights(self.sin_axis, condition.sin)
        c0, c1, fc = _axis_weights(self.cload_axis, condition.cload)
        v0, v1, fv = _axis_weights(self.vdd_axis, condition.vdd)
        total = 0.0
        for si, ws in ((s0, 1.0 - fs), (s1, fs)):
            if ws == 0.0:
                continue
            for ci, wc in ((c0, 1.0 - fc), (c1, fc)):
                if wc == 0.0:
                    continue
                for vi, wv in ((v0, 1.0 - fv), (v1, fv)):
                    if wv == 0.0:
                        continue
                    total += ws * wc * wv * float(self.values[si, ci, vi])
        return total

    def interpolate_many(self, conditions: Sequence[InputCondition]) -> np.ndarray:
        """Interpolate at many operating points in one vectorized pass.

        Equivalent to mapping :meth:`interpolate` over the conditions (the
        test suite enforces exact agreement) but brackets every query with
        one ``np.searchsorted`` per axis and gathers all eight trilinear
        corners as fancy-indexed array reads, so library-scale query loads
        (validation sets, NLDM table grids) cost one NumPy pass instead of a
        Python loop.
        """
        conditions = list(conditions)
        if not conditions:
            return np.zeros(0)
        sin = np.array([c.sin for c in conditions])
        cload = np.array([c.cload for c in conditions])
        vdd = np.array([c.vdd for c in conditions])
        s0, s1, fs = _axis_weights_many(self.sin_axis, sin)
        c0, c1, fc = _axis_weights_many(self.cload_axis, cload)
        v0, v1, fv = _axis_weights_many(self.vdd_axis, vdd)
        values = self.values
        ws, wc, wv = 1.0 - fs, 1.0 - fc, 1.0 - fv
        return (
            ws * (wc * (wv * values[s0, c0, v0] + fv * values[s0, c0, v1])
                  + fc * (wv * values[s0, c1, v0] + fv * values[s0, c1, v1]))
            + fs * (wc * (wv * values[s1, c0, v0] + fv * values[s1, c0, v1])
                    + fc * (wv * values[s1, c1, v0] + fv * values[s1, c1, v1]))
        )


def _grid_axes(conditions: Sequence[InputCondition]
               ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    sin_axis = np.unique([c.sin for c in conditions])
    cload_axis = np.unique([c.cload for c in conditions])
    vdd_axis = np.unique([c.vdd for c in conditions])
    if sin_axis.size * cload_axis.size * vdd_axis.size != len(conditions):
        raise ValueError("conditions do not form a full factorial grid")
    return sin_axis, cload_axis, vdd_axis


def _values_to_grid(conditions: Sequence[InputCondition], values: np.ndarray,
                    axes: Tuple[np.ndarray, np.ndarray, np.ndarray]) -> np.ndarray:
    sin_axis, cload_axis, vdd_axis = axes
    grid = np.empty((sin_axis.size, cload_axis.size, vdd_axis.size))
    for condition, value in zip(conditions, values):
        i = int(np.searchsorted(sin_axis, condition.sin))
        j = int(np.searchsorted(cload_axis, condition.cload))
        k = int(np.searchsorted(vdd_axis, condition.vdd))
        grid[i, j, k] = value
    return grid


class LutCharacterizer:
    """Nominal LUT characterization of one cell timing arc."""

    def __init__(self, technology: TechnologyNode, cell: Cell,
                 arc: Optional[TimingArc] = None,
                 counter: Optional[SimulationCounter] = None):
        self._technology = technology
        self._cell = cell
        self._arc = arc if arc is not None else cell.timing_arcs()[1]
        self._counter = counter
        self._space = InputSpace(technology)
        self._delay_lut: Optional[LutGrid] = None
        self._slew_lut: Optional[LutGrid] = None
        self._simulation_runs = 0

    @property
    def simulation_runs(self) -> int:
        """Simulator invocations spent building the table."""
        return self._simulation_runs

    @property
    def delay_table(self) -> LutGrid:
        """The built delay table (raises if :meth:`build` was not called)."""
        if self._delay_lut is None:
            raise RuntimeError("call build() before querying the LUT")
        return self._delay_lut

    @property
    def slew_table(self) -> LutGrid:
        """The built output-slew table."""
        if self._slew_lut is None:
            raise RuntimeError("call build() before querying the LUT")
        return self._slew_lut

    def build(self, n_points: int) -> "LutCharacterizer":
        """Build the tables from a grid of roughly ``n_points`` conditions.

        The grid dimensions are the most balanced factorization not exceeding
        ``n_points`` (see :meth:`InputSpace.grid_for_budget`), which is how
        the LUT baseline is given the same simulation budget as ``n_points``
        training samples of the proposed flow.
        """
        conditions = self._space.grid_for_budget(n_points)
        return self.build_from_conditions(conditions)

    def build_from_conditions(self, conditions: Sequence[InputCondition]
                              ) -> "LutCharacterizer":
        """Build the tables from an explicit full-factorial condition list."""
        conditions = list(conditions)
        axes = _grid_axes(conditions)
        runs_before = self._counter.total if self._counter is not None else 0
        measurements = sweep_conditions(
            self._cell, self._technology, [c.as_tuple() for c in conditions],
            arc=self._arc, counter=self._counter,
            counter_label=f"lut:{self._cell.name}")
        self._simulation_runs = ((self._counter.total - runs_before)
                                 if self._counter is not None else len(conditions))
        delays = np.array([m.nominal_delay() for m in measurements])
        slews = np.array([m.nominal_slew() for m in measurements])
        self._delay_lut = LutGrid(*axes, _values_to_grid(conditions, delays, axes))
        self._slew_lut = LutGrid(*axes, _values_to_grid(conditions, slews, axes))
        return self

    def predict_delay(self, conditions: Sequence[InputCondition]) -> np.ndarray:
        """Interpolated delay at arbitrary operating points."""
        return self.delay_table.interpolate_many(conditions)

    def predict_slew(self, conditions: Sequence[InputCondition]) -> np.ndarray:
        """Interpolated output slew at arbitrary operating points."""
        return self.slew_table.interpolate_many(conditions)


class StatisticalLutCharacterizer:
    """Statistical LUT characterization (mean and sigma tables).

    At every grid point the full Monte Carlo seed batch is simulated; the
    table stores the per-point mean and standard deviation, and queries are
    answered by interpolating those moments.  The predicted distribution at
    any point is therefore Gaussian -- which is exactly the limitation the
    paper's Fig. 9 exposes at low supply voltages.
    """

    def __init__(self, technology: TechnologyNode, cell: Cell,
                 variation: VariationSample,
                 arc: Optional[TimingArc] = None,
                 counter: Optional[SimulationCounter] = None):
        if variation.n_seeds < 2:
            raise ValueError("statistical LUT needs at least 2 seeds")
        self._technology = technology
        self._cell = cell
        self._arc = arc if arc is not None else cell.timing_arcs()[1]
        self._variation = variation
        self._counter = counter
        self._space = InputSpace(technology)
        self._tables: Dict[str, LutGrid] = {}
        self._simulation_runs = 0

    @property
    def simulation_runs(self) -> int:
        """Simulator invocations spent building the tables."""
        return self._simulation_runs

    def build(self, n_points: int) -> "StatisticalLutCharacterizer":
        """Build mean/sigma tables from a grid of roughly ``n_points`` conditions."""
        conditions = self._space.grid_for_budget(n_points)
        return self.build_from_conditions(conditions)

    def build_from_conditions(self, conditions: Sequence[InputCondition]
                              ) -> "StatisticalLutCharacterizer":
        """Build mean/sigma tables from an explicit full-factorial grid."""
        conditions = list(conditions)
        axes = _grid_axes(conditions)
        runs_before = self._counter.total if self._counter is not None else 0
        measurements = sweep_conditions(
            self._cell, self._technology, [c.as_tuple() for c in conditions],
            arc=self._arc, variation=self._variation, counter=self._counter,
            counter_label=f"lut_statistical:{self._cell.name}")
        self._simulation_runs = ((self._counter.total - runs_before)
                                 if self._counter is not None
                                 else len(conditions) * self._variation.n_seeds)
        stats = {
            "mu_delay": np.array([np.mean(m.delay) for m in measurements]),
            "sigma_delay": np.array([np.std(m.delay) for m in measurements]),
            "mu_slew": np.array([np.mean(m.output_slew) for m in measurements]),
            "sigma_slew": np.array([np.std(m.output_slew) for m in measurements]),
        }
        self._tables = {name: LutGrid(*axes, _values_to_grid(conditions, values, axes))
                        for name, values in stats.items()}
        return self

    def _table(self, name: str) -> LutGrid:
        if name not in self._tables:
            raise RuntimeError("call build() before querying the LUT")
        return self._tables[name]

    def predict_statistics(self, conditions: Sequence[InputCondition]
                           ) -> Dict[str, np.ndarray]:
        """Interpolated mean/sigma of delay and slew at arbitrary points."""
        conditions = list(conditions)
        return {name: self._table(name).interpolate_many(conditions)
                for name in ("mu_delay", "sigma_delay", "mu_slew", "sigma_slew")}

    def delay_distribution(self, condition: InputCondition, n_samples: int = 2000,
                           rng=None) -> np.ndarray:
        """Samples of the (Gaussian) delay distribution the LUT flow predicts."""
        from repro.utils.rng import ensure_rng

        stats = self.predict_statistics([condition])
        generator = ensure_rng(rng)
        return generator.normal(float(stats["mu_delay"][0]),
                                float(stats["sigma_delay"][0]), size=n_samples)
