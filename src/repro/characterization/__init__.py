"""Library-input-space handling, baselines, and error metrics.

This package contains everything needed to *compare* the paper's proposed
flow against conventional approaches:

* :mod:`repro.characterization.input_space` -- the ``(Sin, Cload, Vdd)``
  library input space, its samplers and grids (the paper's Fig. 5 workload);
* :mod:`repro.characterization.lut` -- the look-up-table characterization
  baseline with trilinear interpolation (nominal and statistical variants);
* :mod:`repro.characterization.lse` -- the "proposed model + least squares"
  baseline (compact model without the Bayesian prior);
* :mod:`repro.characterization.monte_carlo` -- brute-force baseline
  characterization used as the accuracy reference;
* :mod:`repro.characterization.metrics` -- the error metrics of Eqs. 16-19.

Experiment orchestration (the error-versus-training-samples curves behind
Figs. 6-8) lives one layer up, in :mod:`repro.experiments`.
"""

from repro.characterization.input_space import InputCondition, InputSpace
from repro.characterization.metrics import (
    StatisticalErrors,
    mean_abs_error,
    mean_relative_error,
    statistical_errors,
)
from repro.characterization.lut import LutCharacterizer, LutGrid, StatisticalLutCharacterizer
from repro.characterization.lse import LseCharacterizer
from repro.characterization.monte_carlo import (
    BaselineCharacterization,
    StatisticalBaseline,
    nominal_baseline,
    statistical_baseline,
)

__all__ = [
    "BaselineCharacterization",
    "InputCondition",
    "InputSpace",
    "LseCharacterizer",
    "LutCharacterizer",
    "LutGrid",
    "StatisticalBaseline",
    "StatisticalErrors",
    "StatisticalLutCharacterizer",
    "mean_abs_error",
    "mean_relative_error",
    "nominal_baseline",
    "statistical_baseline",
    "statistical_errors",
]
