"""Brute-force baseline characterization.

The accuracy reference ("baseline characterization") of the paper is direct
simulation at every validation input condition: nominal SPICE runs for the
nominal experiments, and full Monte Carlo over process seeds for the
statistical experiments.  These functions provide exactly that, with
simulation-run accounting so speedups can be computed against them.

Both baselines run on the batched transient engine: every requested
condition is integrated in one ``(n_conditions, n_seeds)`` RK4 pass of
:func:`repro.spice.batch.simulate_arc_transitions` (via
:func:`repro.spice.sweep.sweep_conditions`), and previously simulated
operating points are served from the global simulation cache.  The
simulation-run counters are unaffected by either optimization -- they keep
counting the runs the flow *requires*, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import Cell, TimingArc
from repro.characterization.input_space import InputCondition
from repro.spice.sweep import sweep_conditions
from repro.spice.testbench import SimulationCounter
from repro.technology.node import TechnologyNode
from repro.technology.variation import VariationSample


@dataclass(frozen=True)
class BaselineCharacterization:
    """Nominal baseline: directly simulated delay/slew at every condition."""

    cell_name: str
    arc_name: str
    conditions: Tuple[InputCondition, ...]
    delay: np.ndarray
    slew: np.ndarray
    simulation_runs: int

    @property
    def n_conditions(self) -> int:
        """Number of validation conditions."""
        return len(self.conditions)


@dataclass(frozen=True)
class StatisticalBaseline:
    """Statistical baseline: per-condition Monte Carlo delay/slew ensembles."""

    cell_name: str
    arc_name: str
    conditions: Tuple[InputCondition, ...]
    delay_samples: np.ndarray
    slew_samples: np.ndarray
    simulation_runs: int

    @property
    def n_conditions(self) -> int:
        """Number of validation conditions."""
        return len(self.conditions)

    @property
    def n_seeds(self) -> int:
        """Number of Monte Carlo seeds per condition."""
        return int(self.delay_samples.shape[1])

    def statistics(self) -> Dict[str, np.ndarray]:
        """Per-condition mean and standard deviation of delay and slew."""
        return {
            "mu_delay": self.delay_samples.mean(axis=1),
            "sigma_delay": self.delay_samples.std(axis=1),
            "mu_slew": self.slew_samples.mean(axis=1),
            "sigma_slew": self.slew_samples.std(axis=1),
        }


def nominal_baseline(
    cell: Cell,
    technology: TechnologyNode,
    conditions: Sequence[InputCondition],
    arc: Optional[TimingArc] = None,
    counter: Optional[SimulationCounter] = None,
) -> BaselineCharacterization:
    """Directly simulate every condition once (nominal process)."""
    conditions = tuple(conditions)
    if not conditions:
        raise ValueError("at least one condition is required")
    arc = arc if arc is not None else cell.timing_arcs()[1]
    runs_before = counter.total if counter is not None else 0
    measurements = sweep_conditions(
        cell, technology, [c.as_tuple() for c in conditions], arc=arc,
        counter=counter, counter_label=f"baseline_nominal:{cell.name}")
    runs = (counter.total - runs_before) if counter is not None else len(conditions)
    return BaselineCharacterization(
        cell_name=cell.name,
        arc_name=arc.name,
        conditions=conditions,
        delay=np.array([m.nominal_delay() for m in measurements]),
        slew=np.array([m.nominal_slew() for m in measurements]),
        simulation_runs=runs,
    )


def statistical_baseline(
    cell: Cell,
    technology: TechnologyNode,
    conditions: Sequence[InputCondition],
    variation: VariationSample,
    arc: Optional[TimingArc] = None,
    counter: Optional[SimulationCounter] = None,
) -> StatisticalBaseline:
    """Simulate every condition for every Monte Carlo seed (the costly flow)."""
    conditions = tuple(conditions)
    if not conditions:
        raise ValueError("at least one condition is required")
    if variation.n_seeds < 2:
        raise ValueError("statistical baseline needs at least 2 seeds")
    arc = arc if arc is not None else cell.timing_arcs()[1]
    runs_before = counter.total if counter is not None else 0
    measurements = sweep_conditions(
        cell, technology, [c.as_tuple() for c in conditions], arc=arc,
        variation=variation, counter=counter,
        counter_label=f"baseline_statistical:{cell.name}")
    runs = ((counter.total - runs_before) if counter is not None
            else len(conditions) * variation.n_seeds)
    delay_samples = np.stack([np.asarray(m.delay).reshape(-1) for m in measurements],
                             axis=0)
    slew_samples = np.stack([np.asarray(m.output_slew).reshape(-1)
                             for m in measurements], axis=0)
    return StatisticalBaseline(
        cell_name=cell.name,
        arc_name=arc.name,
        conditions=conditions,
        delay_samples=delay_samples,
        slew_samples=slew_samples,
        simulation_runs=runs,
    )
