"""Error metrics for characterization accuracy (Eqs. 16-19 of the paper).

The paper reports two families of numbers:

* **nominal** prediction error -- the average relative error of predicted
  delay / slew against the baseline characterization over the validation
  input set (the percentage axis of Fig. 6);
* **statistical** prediction errors -- the average absolute error of the
  predicted mean and standard deviation of delay / slew against the
  Monte Carlo baseline (Eqs. 16-19), which the figures again show as
  percentages of the baseline quantities.

Both absolute and percentage forms are provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _validate_pair(predicted, reference) -> tuple:
    predicted = np.asarray(predicted, dtype=float).reshape(-1)
    reference = np.asarray(reference, dtype=float).reshape(-1)
    if predicted.size != reference.size:
        raise ValueError(
            f"predicted has {predicted.size} entries, reference has {reference.size}"
        )
    if predicted.size == 0:
        raise ValueError("at least one value is required")
    return predicted, reference


def mean_abs_error(predicted, reference) -> float:
    """Mean absolute error ``mean(|predicted - reference|)`` (Eqs. 16-19 form)."""
    predicted, reference = _validate_pair(predicted, reference)
    return float(np.mean(np.abs(predicted - reference)))


def mean_relative_error(predicted, reference) -> float:
    """Mean absolute relative error ``mean(|predicted - reference| / |reference|)``.

    Raises
    ------
    ValueError
        If any reference value is zero (relative error undefined).
    """
    predicted, reference = _validate_pair(predicted, reference)
    if np.any(reference == 0.0):
        raise ValueError("reference values must be non-zero for relative error")
    return float(np.mean(np.abs(predicted - reference) / np.abs(reference)))


def mean_relative_error_percent(predicted, reference) -> float:
    """Mean absolute relative error expressed in percent."""
    return 100.0 * mean_relative_error(predicted, reference)


@dataclass(frozen=True)
class StatisticalErrors:
    """Statistical-characterization errors of one response (delay or slew).

    Attributes
    ----------
    mean_abs_mu:
        Eq. 16/17: average absolute error of the predicted mean, in seconds.
    mean_abs_sigma:
        Eq. 18/19: average absolute error of the predicted standard
        deviation, in seconds.
    relative_mu_percent:
        Mean-prediction error as a percentage of the baseline mean.
    relative_sigma_percent:
        Sigma-prediction error as a percentage of the baseline sigma.
    """

    mean_abs_mu: float
    mean_abs_sigma: float
    relative_mu_percent: float
    relative_sigma_percent: float


def statistical_errors(predicted_mu, predicted_sigma, baseline_mu, baseline_sigma
                       ) -> StatisticalErrors:
    """Compute the Eq. 16-19 errors plus their percentage forms.

    All arguments are arrays over the validation input conditions.
    """
    predicted_mu, baseline_mu = _validate_pair(predicted_mu, baseline_mu)
    predicted_sigma, baseline_sigma = _validate_pair(predicted_sigma, baseline_sigma)
    mu_abs = float(np.mean(np.abs(predicted_mu - baseline_mu)))
    sigma_abs = float(np.mean(np.abs(predicted_sigma - baseline_sigma)))
    if np.any(baseline_mu == 0.0) or np.any(baseline_sigma == 0.0):
        raise ValueError("baseline statistics must be non-zero")
    mu_rel = float(np.mean(np.abs(predicted_mu - baseline_mu) / np.abs(baseline_mu)))
    sigma_rel = float(np.mean(np.abs(predicted_sigma - baseline_sigma)
                              / np.abs(baseline_sigma)))
    return StatisticalErrors(
        mean_abs_mu=mu_abs,
        mean_abs_sigma=sigma_abs,
        relative_mu_percent=100.0 * mu_rel,
        relative_sigma_percent=100.0 * sigma_rel,
    )
