"""The library input space ``xi = (Sin, Cload, Vdd)``.

The paper's central idea is to exploit structure in this space (rather than
in process space).  :class:`InputSpace` binds the per-technology ranges into
samplers for

* the large random validation set (1000 points, Fig. 5),
* the small space-filling fitting sets (k = 1 ... 100 training points), and
* the regular grids used by the look-up-table baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.technology.node import TechnologyNode
from repro.technology.sampling import (
    full_factorial_grid,
    latin_hypercube,
    random_uniform,
    scale_to_ranges,
)
from repro.utils.rng import RandomState
from repro.utils.units import format_engineering


@dataclass(frozen=True)
class InputCondition:
    """One operating point of the library input space.

    Attributes
    ----------
    sin:
        Input transition time in seconds.
    cload:
        Output load capacitance in farads.
    vdd:
        Supply voltage in volts.
    """

    sin: float
    cload: float
    vdd: float

    def __post_init__(self) -> None:
        if self.sin <= 0.0 or self.cload <= 0.0 or self.vdd <= 0.0:
            raise ValueError("sin, cload and vdd must all be positive")

    def as_tuple(self) -> Tuple[float, float, float]:
        """``(sin, cload, vdd)`` as plain floats."""
        return (self.sin, self.cload, self.vdd)

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``"Sin=5.09ps, Cload=1.67fF, Vdd=0.734V"``."""
        return (f"Sin={format_engineering(self.sin, 's')}, "
                f"Cload={format_engineering(self.cload, 'F')}, "
                f"Vdd={self.vdd:.3g}V")


def conditions_to_arrays(conditions: Sequence[InputCondition]
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a list of conditions into ``(sin, cload, vdd)`` arrays."""
    if not conditions:
        raise ValueError("conditions must not be empty")
    sin = np.array([c.sin for c in conditions])
    cload = np.array([c.cload for c in conditions])
    vdd = np.array([c.vdd for c in conditions])
    return sin, cload, vdd


class InputSpace:
    """Samplers over a technology node's library input space."""

    #: Dimension order used throughout: input slew, load capacitance, supply.
    DIMENSIONS = ("sin", "cload", "vdd")

    def __init__(self, technology: TechnologyNode):
        self._technology = technology
        ranges = technology.input_ranges()
        self._ranges = [ranges["sin"], ranges["cload"], ranges["vdd"]]

    @property
    def technology(self) -> TechnologyNode:
        """The technology node whose ranges define this space."""
        return self._technology

    @property
    def ranges(self) -> List[Tuple[float, float]]:
        """``[(sin_min, sin_max), (cload_min, cload_max), (vdd_min, vdd_max)]``."""
        return [tuple(r) for r in self._ranges]

    # ------------------------------------------------------------------
    # Converters
    # ------------------------------------------------------------------
    def _to_conditions(self, points: np.ndarray) -> List[InputCondition]:
        return [InputCondition(sin=float(p[0]), cload=float(p[1]), vdd=float(p[2]))
                for p in points]

    def normalize(self, conditions: Sequence[InputCondition]) -> np.ndarray:
        """Map conditions to the unit cube (used for precision-model lookups)."""
        sin, cload, vdd = conditions_to_arrays(conditions)
        stacked = np.stack([sin, cload, vdd], axis=-1)
        lows = np.array([r[0] for r in self._ranges])
        highs = np.array([r[1] for r in self._ranges])
        return (stacked - lows) / (highs - lows)

    # ------------------------------------------------------------------
    # Samplers
    # ------------------------------------------------------------------
    def sample_random(self, n_points: int, rng: RandomState = None
                      ) -> List[InputCondition]:
        """Uniform random operating points (the Fig. 5 validation workload)."""
        unit = random_uniform(n_points, 3, rng)
        return self._to_conditions(scale_to_ranges(unit, self._ranges))

    def sample_lhs(self, n_points: int, rng: RandomState = None
                   ) -> List[InputCondition]:
        """Latin-hypercube operating points (used for the small fitting sets)."""
        unit = latin_hypercube(n_points, 3, rng)
        return self._to_conditions(scale_to_ranges(unit, self._ranges))

    def grid(self, n_sin: int, n_cload: int, n_vdd: int) -> List[InputCondition]:
        """Full-factorial grid (the look-up-table baseline's table axes)."""
        unit = full_factorial_grid([n_sin, n_cload, n_vdd])
        return self._to_conditions(scale_to_ranges(unit, self._ranges))

    def grid_for_budget(self, n_points: int) -> List[InputCondition]:
        """A roughly cubic grid containing at most ``n_points`` conditions.

        Used to give the LUT baseline the same simulation budget as a given
        number of training samples: the grid dimensions are chosen as the
        most balanced factorization not exceeding the budget.
        """
        if n_points < 1:
            raise ValueError("n_points must be at least 1")
        best = (1, 1, 1)
        best_total = 1
        limit = int(round(n_points ** (1.0 / 3.0))) + 2
        for n_sin in range(1, max(limit, 2) + 1):
            for n_cload in range(1, max(limit, 2) + 1):
                for n_vdd in range(1, max(limit, 2) + 1):
                    total = n_sin * n_cload * n_vdd
                    if total <= n_points and total > best_total:
                        best, best_total = (n_sin, n_cload, n_vdd), total
                    elif total == best_total and total <= n_points:
                        # Prefer more balanced grids at equal budget.
                        if np.std([n_sin, n_cload, n_vdd]) < np.std(best):
                            best = (n_sin, n_cload, n_vdd)
        return self.grid(*best)

    def center(self) -> InputCondition:
        """The mid-range operating point."""
        mids = [(low + high) / 2.0 for low, high in self._ranges]
        return InputCondition(sin=mids[0], cload=mids[1], vdd=mids[2])

    def corners(self) -> List[InputCondition]:
        """The eight extreme corners of the input space."""
        unit = full_factorial_grid([2, 2, 2])
        return self._to_conditions(scale_to_ranges(unit, self._ranges))
