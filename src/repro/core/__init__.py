"""The paper's primary contribution.

* :mod:`repro.core.timing_model` -- the ultra-compact four-parameter
  analytical model for gate delay and output slew (Section III of the paper).
* :mod:`repro.core.prior_learning` -- learning the conjugate Gaussian prior
  and the input-condition-dependent model precision from historical
  technology nodes, optionally through Gaussian belief propagation
  (Section IV).
* :mod:`repro.core.map_estimation` -- maximum-a-posteriori extraction of the
  timing-model parameters from a handful of target-technology simulations
  (Eq. 15).
* :mod:`repro.core.characterizer` -- the nominal characterization flow.
* :mod:`repro.core.statistical_flow` -- the per-seed statistical
  characterization flow of Fig. 4.
"""

from repro.core.timing_model import (
    CompactTimingModel,
    FitResult,
    TimingModelParameters,
    fit_least_squares,
)
from repro.core.prior_learning import (
    HistoricalLibraryData,
    TimingPrior,
    characterize_historical_library,
    learn_prior,
)
from repro.core.map_estimation import MapObservations, map_estimate
from repro.core.characterizer import BayesianCharacterizer, NominalCharacterization
from repro.core.statistical_flow import (
    StatisticalCharacterization,
    StatisticalCharacterizer,
)

__all__ = [
    "BayesianCharacterizer",
    "CompactTimingModel",
    "FitResult",
    "HistoricalLibraryData",
    "MapObservations",
    "NominalCharacterization",
    "StatisticalCharacterization",
    "StatisticalCharacterizer",
    "TimingModelParameters",
    "TimingPrior",
    "characterize_historical_library",
    "fit_least_squares",
    "learn_prior",
    "map_estimate",
]
