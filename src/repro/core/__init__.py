"""The paper's primary contribution.

* :mod:`repro.core.timing_model` -- the ultra-compact four-parameter
  analytical model for gate delay and output slew (Section III of the paper).
* :mod:`repro.core.prior_learning` -- learning the conjugate Gaussian prior
  and the input-condition-dependent model precision from historical
  technology nodes, optionally through Gaussian belief propagation
  (Section IV).
* :mod:`repro.core.map_estimation` -- maximum-a-posteriori extraction of the
  timing-model parameters from a handful of target-technology simulations
  (Eq. 15).
* :mod:`repro.core.batch_map` -- the seed-vectorized Levenberg-Marquardt MAP
  solver that extracts every Monte Carlo seed's parameters at once.
* :mod:`repro.core.characterizer` -- the nominal characterization flow.
* :mod:`repro.core.statistical_flow` -- the per-seed statistical
  characterization flow of Fig. 4.
* :mod:`repro.core.library_flow` -- the library-scale orchestrator that
  characterizes every cell x arc of a library in one call.
"""

from repro.core.timing_model import (
    CompactTimingModel,
    FitResult,
    TimingModelParameters,
    fit_least_squares,
)
from repro.core.prior_learning import (
    HistoricalLibraryData,
    TimingPrior,
    characterize_historical_libraries,
    characterize_historical_library,
    learn_class_priors,
    learn_prior,
    learn_priors,
)
from repro.core.map_estimation import MapObservations, map_estimate
from repro.core.batch_map import (
    BatchMapObservations,
    BatchMapResult,
    fit_least_squares_stacked,
    map_estimate_batch,
    map_estimate_stacked,
)
from repro.core.simulation_plan import SimulationPlan
from repro.core.characterizer import BayesianCharacterizer, NominalCharacterization
from repro.core.statistical_flow import (
    StatisticalCharacterization,
    StatisticalCharacterizer,
)
from repro.core.library_flow import (
    LibraryArcCharacterization,
    LibraryCharacterization,
    characterize_library,
)

__all__ = [
    "BatchMapObservations",
    "BatchMapResult",
    "BayesianCharacterizer",
    "CompactTimingModel",
    "FitResult",
    "HistoricalLibraryData",
    "LibraryArcCharacterization",
    "LibraryCharacterization",
    "MapObservations",
    "NominalCharacterization",
    "SimulationPlan",
    "StatisticalCharacterization",
    "StatisticalCharacterizer",
    "TimingModelParameters",
    "TimingPrior",
    "characterize_historical_libraries",
    "characterize_historical_library",
    "characterize_library",
    "fit_least_squares",
    "fit_least_squares_stacked",
    "learn_class_priors",
    "learn_prior",
    "learn_priors",
    "map_estimate",
    "map_estimate_batch",
    "map_estimate_stacked",
]
