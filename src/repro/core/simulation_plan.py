"""Signature-grouped global simulation planning (the fused pipelines' front half).

PR 5 introduced a library-wide fused characterization pipeline: flatten every
``(cell, arc, condition)`` of a workload into one global plan, consult the
simulation cache per row, group the remaining rows by *equivalent-inverter
simulation signature* (footprint-equivalent cells reduce to bit-identical
inverters), dedup physically identical rows, and integrate each group in a
handful of mega-batched RK4 passes.  That planning logic is useful beyond
library characterization -- historical-library characterization for prior
learning (:mod:`repro.core.prior_learning`) runs the same row shape -- so it
lives here, importable by both flows without creating an import cycle
(:mod:`repro.core.library_flow` imports :mod:`repro.core.prior_learning`
for :class:`~repro.core.prior_learning.TimingPrior`).

The :class:`SimulationPlan` protocol is three phases, with the caller owning
the :class:`~repro.runtime.accounting.RunLedger` stage windows (stage names
differ per flow -- ``fused:*`` for the library pipeline, ``priors:*`` for
historical characterization):

1. :meth:`SimulationPlan.add_job` per (cell, arc) with its operating points
   (consults the reduction and simulation caches row by row), then
   :meth:`SimulationPlan.record_metrics`;
2. :meth:`SimulationPlan.simulate` -- each signature group split on the flat
   row axis by the memory budget and the executor's shard hint, one
   :func:`simulate_rows_job` per chunk through
   ``executor.map_accounted`` (process-safe);
3. :meth:`SimulationPlan.finalize` -- scatter group results to every
   ``(job, condition)`` row and fill the simulation cache.

After ``finalize``, ``plan.job_delays[job][cond]`` / ``job_slews`` hold one
``(n_seeds,)`` array per row (cached rows are filled during planning).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.equivalent_inverter import reduce_cell_cached
from repro.cells.library import Cell, TimingArc
from repro.runtime import resolve_max_bytes
from repro.runtime.accounting import RunLedger
from repro.runtime.chunking import plan_chunks
from repro.spice.adaptive import simulate_arc_transitions_adaptive
from repro.spice.batch import simulate_arc_transitions, transient_item_bytes
from repro.spice.stepper import StepperSpec
from repro.spice.sweep import record_integration_stats
from repro.spice.testbench import SimulationCache, get_simulation_cache
from repro.spice.transient import DEFAULT_STEPS
from repro.technology.node import TechnologyNode
from repro.technology.variation import VariationSample


def simulate_rows_job(payload: tuple):
    """Integrate one chunk of flat simulation rows; module-level for pickling.

    The payload carries a *representative* (cell, arc) of the chunk's
    signature group -- every row in the chunk reduces to a bit-identical
    equivalent inverter, so one reduction serves all rows whatever cell
    they came from -- and the :class:`~repro.spice.stepper.StepperSpec`
    selecting the integration scheme (``rk45`` dispatches to the adaptive
    engine).  Returns the per-row delay/slew matrices plus the chunk's
    :class:`RunLedger` (integration wall time under the flow's own stage
    label and the chunk's step/RHS-evaluation metrics, merged back in
    payload order by the executor).
    """
    (technology, cell, arc, variation, triples, stepper, stage,
     on_failure) = payload
    ledger = RunLedger()
    with ledger.caches():
        inverter = reduce_cell_cached(cell, technology, arc=arc,
                                      variation=variation)
        with ledger.stage(stage):
            if stepper.method == "rk45":
                result = simulate_arc_transitions_adaptive(
                    inverter, triples[:, 0], triples[:, 1], triples[:, 2],
                    stepper=stepper, on_failure=on_failure)
            else:
                result = simulate_arc_transitions(
                    inverter, triples[:, 0], triples[:, 1], triples[:, 2],
                    n_steps=stepper.n_steps, on_failure=on_failure)
            record_integration_stats(ledger, result.stats)
            delay = np.asarray(result.delay(), dtype=float)
            slew = np.asarray(result.output_slew(), dtype=float)
    return (delay, slew, result.quarantined), ledger


@dataclass
class SignatureGroup:
    """Simulation rows sharing one equivalent-inverter signature.

    ``cell``/``arc`` are the representative reduction (first job that hit
    the signature); ``rows`` are ``(job, cond, key, slot)`` tuples in
    deterministic (job, condition) order, where ``slot`` indexes into
    ``triples`` -- the group's *unique* operating points.  Rows of
    footprint-twin arcs at the same operating point are physically the same
    simulation, so they share a slot and are integrated exactly once (a
    dedup the per-arc pipeline cannot see: its cache keys carry the cell
    identity).
    """

    cell: Cell
    arc: TimingArc
    rows: List[tuple] = field(default_factory=list)
    triples: List[tuple] = field(default_factory=list)
    slot_index: Dict[tuple, int] = field(default_factory=dict)
    delays: List[Optional[np.ndarray]] = field(default_factory=list)
    slews: List[Optional[np.ndarray]] = field(default_factory=list)
    quarantined: List[bool] = field(default_factory=list)

    def add_row(self, job: int, cond: int, key: tuple,
                triple: tuple) -> None:
        slot = self.slot_index.get(triple)
        if slot is None:
            slot = len(self.triples)
            self.slot_index[triple] = slot
            self.triples.append(triple)
            self.delays.append(None)
            self.slews.append(None)
            self.quarantined.append(False)
        self.rows.append((job, cond, key, slot))


class SimulationPlan:
    """One cache-aware, signature-grouped plan over flat (job, condition) rows."""

    def __init__(self, technology: TechnologyNode,
                 variation: Optional[VariationSample] = None,
                 n_steps: int = DEFAULT_STEPS,
                 integrate_stage: str = "fused:integrate",
                 on_failure: str = "raise",
                 stepper: Optional[StepperSpec] = None) -> None:
        if on_failure not in ("raise", "quarantine"):
            raise ValueError(f"on_failure must be 'raise' or 'quarantine', "
                             f"got {on_failure!r}")
        self.technology = technology
        self.variation = variation
        self.n_steps = int(n_steps)
        #: Integration scheme of every batched call (and the engine part of
        #: every simulation-cache key); defaults to fixed-step RK4 at
        #: ``n_steps``, the historical behaviour.
        self.stepper = (stepper if stepper is not None
                        else StepperSpec(method="rk4", n_steps=self.n_steps))
        self.n_seeds = variation.n_seeds if variation is not None else 1
        self.integrate_stage = integrate_stage
        #: Fault handling forwarded to every batched transient call; with
        #: ``"quarantine"``, broken rows land in :attr:`quarantined_rows`
        #: instead of aborting the plan.
        self.on_failure = on_failure
        #: After ``finalize``: job index -> sorted condition indices whose
        #: simulation was quarantined (NaN delay/slew, not cached).
        self.quarantined_rows: Dict[int, List[int]] = {}
        self._cache = get_simulation_cache()
        self._variation_fp = (variation.fingerprint() if variation is not None
                              else "nominal")
        #: Equivalent-inverter reduction per job, in job order.
        self.inverters: List = []
        #: Per-job, per-condition ``(n_seeds,)`` delay/slew rows.
        self.job_delays: List[List[Optional[np.ndarray]]] = []
        self.job_slews: List[List[Optional[np.ndarray]]] = []
        self.groups: Dict[tuple, SignatureGroup] = {}
        self._n_rows_total = 0
        self._payload_slots: List[Tuple[SignatureGroup, slice]] = []
        self._results: Optional[list] = None

    # ------------------------------------------------------------------
    # Phase 1: planning
    # ------------------------------------------------------------------
    def add_job(self, cell: Cell, arc: TimingArc,
                triples: Sequence[Sequence[float]]) -> int:
        """Register one (cell, arc) with its operating points.

        Resolves the equivalent-inverter reduction, consults the simulation
        cache per condition, and files the remaining rows into signature
        groups.  Returns the job index.
        """
        job = len(self.inverters)
        inverter = reduce_cell_cached(cell, self.technology, arc=arc,
                                      variation=self.variation)
        self.inverters.append(inverter)
        prefix = SimulationCache.arc_prefix(cell, self.technology, arc,
                                            self._variation_fp)
        signature = inverter.simulation_signature()
        triples = [tuple(float(value) for value in triple)
                   for triple in triples]
        delays: List[Optional[np.ndarray]] = [None] * len(triples)
        slews: List[Optional[np.ndarray]] = [None] * len(triples)
        for cond, triple in enumerate(triples):
            key = SimulationCache.condition_key(prefix, *triple, self.stepper)
            cached = self._cache.get(key)
            if cached is not None:
                delays[cond], slews[cond] = cached
                continue
            group = self.groups.get(signature)
            if group is None:
                group = SignatureGroup(cell=cell, arc=arc)
                self.groups[signature] = group
            group.add_row(job, cond, key, triple)
        self.job_delays.append(delays)
        self.job_slews.append(slews)
        self._n_rows_total += len(triples)
        return job

    def record_metrics(self, ledger: RunLedger,
                       prefix: str = "fused") -> None:
        """Dedup/cache accounting under the flow's metric prefix."""
        planned_rows = sum(len(group.rows) for group in self.groups.values())
        unique_rows = sum(len(group.triples) for group in self.groups.values())
        ledger.add_metric(f"{prefix}_rows_total", self._n_rows_total)
        ledger.add_metric(f"{prefix}_rows_simulated", unique_rows)
        ledger.add_metric(f"{prefix}_rows_deduplicated",
                          planned_rows - unique_rows)
        ledger.add_metric(f"{prefix}_rows_cached",
                          self._n_rows_total - planned_rows)
        ledger.add_metric(f"{prefix}_signature_groups", len(self.groups))
        ledger.add_metric(f"{prefix}_rows_cross_job_shared",
                          sum(self.shared_row_counts().values()))
        if self.groups:
            ledger.add_group_sizes(
                f"{prefix}:signature_rows",
                [len(group.triples) for group in self.groups.values()])

    def shared_row_counts(self) -> Dict[int, int]:
        """Per-job count of planned rows whose slot serves another job too.

        This is the plan's request-attribution view: for each job, how many
        of its cache-missing rows are physically identical to a row some
        *other* job planned (same signature group, same operating-point
        slot) and therefore integrate exactly once for all of them.  The
        serving front door reports these counts as its coalescing metric --
        a row shared across jobs is work one request did for another.  Jobs
        whose rows all hit the cache (or that never missed) are absent.
        """
        slot_jobs: Dict[tuple, set] = {}
        for signature, group in self.groups.items():
            for job, cond, key, slot in group.rows:
                slot_jobs.setdefault((signature, slot), set()).add(job)
        counts: Dict[int, int] = {}
        for signature, group in self.groups.items():
            for job, cond, key, slot in group.rows:
                if len(slot_jobs[(signature, slot)]) > 1:
                    counts[job] = counts.get(job, 0) + 1
        return counts

    @property
    def needs_simulation(self) -> bool:
        """Whether any row missed the cache (phases 2/3 have work to do)."""
        return bool(self.groups)

    # ------------------------------------------------------------------
    # Phase 2: mega-batched integration
    # ------------------------------------------------------------------
    def simulate(self, executor, ledger: RunLedger,
                 max_bytes: Optional[int] = None,
                 on_chunk=None) -> None:
        """Integrate every signature group, split on the flat row axis.

        Chunks honor the ``runtime`` memory budget and the executor's shard
        hint (rows are independent, so any split reproduces the one-pass
        results).  Worker-side cache activity arrives in the per-job ledgers
        merged by ``map_accounted``.

        ``on_chunk(payload_index, result)``, when given, fires as each
        chunk's result becomes available -- pair it with
        :meth:`commit_chunk` to persist completed rows mid-run (the
        checkpoint layer's crash-safety window is one chunk, not the whole
        simulate phase).
        """
        budget = resolve_max_bytes(max_bytes)
        item_bytes = transient_item_bytes(self.n_seeds, self.n_steps)
        payloads = []
        self._payload_slots = []
        for group in self.groups.values():
            n_unique = len(group.triples)
            for chunk in plan_chunks(n_unique, item_bytes, budget,
                                     min_chunks=executor.shard_hint(n_unique)):
                triples = np.array(group.triples[chunk], dtype=float)
                payloads.append((self.technology, group.cell, group.arc,
                                 self.variation, triples, self.stepper,
                                 self.integrate_stage, self.on_failure))
                self._payload_slots.append((group, chunk))
        self._results = executor.map_accounted(simulate_rows_job, payloads,
                                               ledger=ledger,
                                               on_result=on_chunk)

    def commit_chunk(self, payload_index: int, result, sink) -> int:
        """Write one completed chunk's clean rows through ``sink``.

        ``result`` is the chunk's bare map result (``(delay, slew,
        quarantined)``); ``sink(key, delay_row, slew_row)`` receives every
        non-quarantined row under its simulation-cache condition key --
        footprint twins sharing a slot each get their own key, exactly the
        entries :meth:`finalize` would put in the cache at the end of the
        phase.  Returns the number of rows written.  Quarantined rows are
        deliberately skipped: a resumed run must re-simulate them, not
        replay the failure.
        """
        group, chunk = self._payload_slots[payload_index]
        delay, slew, quarantined = result
        written = 0
        for job, cond, key, slot in group.rows:
            if not (chunk.start <= slot < chunk.stop):
                continue
            offset = slot - chunk.start
            if quarantined is not None and quarantined[offset]:
                continue
            sink(key, np.asarray(delay[offset], dtype=float),
                 np.asarray(slew[offset], dtype=float))
            written += 1
        return written

    # ------------------------------------------------------------------
    # Phase 3: scatter + cache fill
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Scatter group results to every row and fill the simulation cache.

        Call inside ``ledger.caches()`` so the cache *puts* are attributed
        to the parent (worker windows are merged separately and must not be
        double-counted).
        """
        if self._results is None:
            raise RuntimeError("finalize() requires a prior simulate() call")
        for (group, chunk), (delay, slew, quarantined) in zip(
                self._payload_slots, self._results):
            for index, slot in enumerate(range(chunk.start, chunk.stop)):
                group.delays[slot] = np.asarray(delay[index], dtype=float)
                group.slews[slot] = np.asarray(slew[index], dtype=float)
                if quarantined is not None and quarantined[index]:
                    group.quarantined[slot] = True
        for group in self.groups.values():
            for job, cond, key, slot in group.rows:
                delay_row = group.delays[slot]
                slew_row = group.slews[slot]
                self.job_delays[job][cond] = delay_row
                self.job_slews[job][cond] = slew_row
                if group.quarantined[slot]:
                    # A quarantined row is a failed measurement: record it
                    # against every job that shares the slot and keep it out
                    # of the simulation cache (a retry must re-simulate, not
                    # replay the failure).
                    self.quarantined_rows.setdefault(job, []).append(cond)
                    continue
                self._cache.put(key, delay_row, slew_row)
        for conds in self.quarantined_rows.values():
            conds.sort()
