"""Library-scale statistical characterization orchestrator.

The per-arc flows (:class:`~repro.core.characterizer.BayesianCharacterizer`,
:class:`~repro.core.statistical_flow.StatisticalCharacterizer`) characterize
one timing arc at a time; a real library job characterizes *every cell and
arc* of a standard-cell library against one learned prior.  This module
orchestrates that workload:

* one shared Monte Carlo seed batch, so every arc's per-seed parameters are
  statistically comparable (and SSTA can correlate them seed-by-seed);
* fitting conditions drawn once, deterministically, in job order -- results
  are bit-identical no matter how the jobs are executed;
* the learned priors, the equivalent-inverter reduction cache and the global
  :class:`~repro.spice.testbench.SimulationCache` are shared across arcs;
* execution through the pluggable runtime executor
  (:mod:`repro.runtime.executor`): ``concurrency="serial"`` shares the
  in-process caches, ``"chunked"`` walks deterministic job chunks, and
  ``"process"`` fans the work out over a process pool;
* simulation-run accounting identical to running the per-arc flows by hand:
  each arc charges ``k * n_seeds`` runs under a ``library:<cell>:<arc>``
  label, whichever execution mode or pipeline ran it, and
  :class:`~repro.runtime.accounting.RunLedger` records merge into one
  library-level ledger in deterministic order.

Two pipelines produce identical results:

* ``pipeline="fused"`` (default) flattens every ``(cell, arc, condition)``
  of the library into one global simulation plan.  Rows first consult the
  simulation cache; the remaining rows are grouped by *equivalent-inverter
  simulation signature* (see
  :meth:`repro.cells.equivalent_inverter.EquivalentInverter.simulation_signature`),
  so footprint-equivalent cells share a handful of mega-batched RK4 passes
  instead of one pass per arc -- and rows that are physically identical
  (same signature, same operating point, e.g. footprint twins on a shared
  condition grid) are integrated exactly once and scattered to every arc
  that needs them.  Groups are split on the flat row axis --
  honoring the ``runtime`` memory budget and the executor's shard hint
  (better process-pool load balance than whole-arc fan-out) -- and all
  extractions land in a single stacked, block-diagonal MAP solve
  (:func:`repro.core.batch_map.map_estimate_stacked`).
* ``pipeline="per_arc"`` runs one simulate-and-extract job per arc (the
  pre-fusion flow), kept for parity testing; its results, counter charges
  and ledger run counts are identical to the fused pipeline's.

The resulting :class:`LibraryCharacterization` feeds the downstream
consumers directly: :meth:`LibraryCharacterization.liberty_writer` emits a
Liberty library with NLDM mean tables plus LVF-style sigma tables, and
:meth:`LibraryCharacterization.timing_view` builds the per-seed
:class:`~repro.sta.timing_view.StatisticalTimingView` Monte Carlo SSTA
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cells.equivalent_inverter import reduce_cell_cached
from repro.cells.library import Cell, StandardCellLibrary, TimingArc, Transition
from repro.characterization.input_space import InputCondition, InputSpace
from repro.core.batch_map import (
    map_estimate_batch,
    map_estimate_stacked,
    repair_batch_result,
)
from repro.core.prior_learning import TimingPrior
from repro.core.simulation_plan import SimulationPlan
from repro.core.statistical_flow import (
    SOLVERS,
    StatisticalCharacterization,
    StatisticalCharacterizer,
    arc_observation_pair,
)
from repro.liberty.tables import NldmTable
from repro.liberty.writer import CellTimingData, LibertyWriter, TimingTableSet
from repro.runtime import faultinject, resolve_transient_engine
from repro.runtime.accounting import RunLedger
from repro.runtime.checkpoint import Checkpointer
from repro.runtime.executor import EXECUTOR_MODES, get_executor
from repro.runtime.persist import stable_key_digest
from repro.runtime.resilience import (
    FailureReport,
    RetryPolicy,
    resolve_strict,
    run_with_retry,
)
from repro.spice.stepper import StepperSpec, resolve_stepper
from repro.spice.testbench import SimulationCounter, get_simulation_cache
from repro.technology.node import TechnologyNode
from repro.technology.variation import VariationSample
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.units import NANO, PICO

SITE_ARC_JOB = faultinject.register_fault_site(
    "library.arc_job",
    "one per-arc characterization job of the library orchestrator")

#: Execution modes of :func:`characterize_library` (the runtime executor's).
CONCURRENCY_MODES = EXECUTOR_MODES

#: Characterization pipelines of :func:`characterize_library`.
PIPELINES = ("fused", "per_arc")


@dataclass(frozen=True)
class LibraryArcCharacterization:
    """One characterized (cell, arc) entry of a library run.

    Attributes
    ----------
    cell_name:
        Owning cell.
    arc:
        The characterized timing arc.
    statistical:
        Per-seed extraction result for the arc.
    input_cap_f:
        Nominal input-pin capacitance of the arc's switching pin, farads.
    function:
        Boolean function of the cell output (for Liberty emission).
    area:
        Cell area proxy (total device width, square micrometres).
    """

    cell_name: str
    arc: TimingArc
    statistical: StatisticalCharacterization
    input_cap_f: float
    function: str
    area: float


@dataclass(frozen=True)
class LibraryCharacterization:
    """Statistical characterization of a whole cell library.

    Attributes
    ----------
    library_name, technology_name:
        Identification of the characterized library and target node.
    vdd_nominal:
        Nominal supply of the target technology (default table supply).
    slew_range, cload_range:
        Input-space ranges of the target technology (default table axes).
    n_seeds:
        Monte Carlo seeds shared by every arc.
    solver, concurrency:
        How the parameter extraction and the fan-out were executed.
    simulation_runs:
        Total simulator invocations across all arcs.
    entries:
        One :class:`LibraryArcCharacterization` per characterized arc, in
        deterministic (cell, arc) order.
    pipeline:
        Which characterization pipeline ran (``"fused"`` or ``"per_arc"``;
        both produce identical entries).
    ledger:
        Unified :class:`~repro.runtime.accounting.RunLedger` of the run:
        per-arc ledgers merged in job order plus the orchestrator's own
        stage timings (identical accounting across execution modes).
    failures:
        Structured :class:`~repro.runtime.resilience.FailureReport` records
        of arcs that degraded (quarantined rows, repaired solves) or failed
        outright under ``strict=False``; empty on a clean or strict run.
        Arcs named here but absent from :attr:`entries` failed completely.
    """

    library_name: str
    technology_name: str
    vdd_nominal: float
    slew_range: Tuple[float, float]
    cload_range: Tuple[float, float]
    n_seeds: int
    solver: str
    concurrency: str
    simulation_runs: int
    entries: Tuple[LibraryArcCharacterization, ...]
    pipeline: str = "fused"
    ledger: Optional[RunLedger] = field(default=None, compare=False)
    failures: Tuple[FailureReport, ...] = ()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def failed_units(self) -> List[str]:
        """``cell:arc`` labels that degraded or failed, in report order."""
        seen: List[str] = []
        for report in self.failures:
            if report.unit not in seen:
                seen.append(report.unit)
        return seen
    def cell_names(self) -> List[str]:
        """Characterized cell names in deterministic order."""
        names: List[str] = []
        for entry in self.entries:
            if entry.cell_name not in names:
                names.append(entry.cell_name)
        return names

    def arcs_of(self, cell_name: str) -> List[LibraryArcCharacterization]:
        """All characterized arcs of one cell."""
        found = [e for e in self.entries if e.cell_name == cell_name]
        if not found:
            raise KeyError(f"no characterized arcs for cell {cell_name!r}")
        return found

    def get(self, cell_name: str, arc_name: Optional[str] = None
            ) -> LibraryArcCharacterization:
        """One entry by cell (and optionally arc) name."""
        for entry in self.arcs_of(cell_name):
            if arc_name is None or entry.arc.name == arc_name:
                return entry
        raise KeyError(f"cell {cell_name!r} has no characterized arc {arc_name!r}")

    def input_capacitances(self) -> Dict[str, float]:
        """Nominal input capacitance per cell (first characterized arc)."""
        return {name: self.arcs_of(name)[0].input_cap_f
                for name in self.cell_names()}

    def unconverged_arcs(self) -> List[str]:
        """Arc names with at least one unconverged extraction seed."""
        return [entry.arc.name for entry in self.entries
                if entry.statistical.unconverged_seeds().size > 0]

    # ------------------------------------------------------------------
    # Downstream consumers
    # ------------------------------------------------------------------
    def timing_view(self, vdd: Optional[float] = None,
                    transition: Transition = Transition.FALL
                    ) -> "StatisticalTimingView":
        """Per-seed timing view for Monte Carlo SSTA.

        Picks, per cell, the characterized arc with the requested output
        transition (the first one in entry order).  All arcs share the seed
        batch, so the view's per-seed samples stay correlated across cells.
        """
        # Deferred: repro.sta pulls in the analysis/experiments packages,
        # which import repro.core back (cycle at package-init time only).
        from repro.sta.timing_view import timing_view_from_statistical

        vdd = float(vdd) if vdd is not None else self.vdd_nominal
        characterizations: Dict[str, StatisticalCharacterization] = {}
        input_caps: Dict[str, float] = {}
        for name in self.cell_names():
            matching = [e for e in self.arcs_of(name)
                        if e.arc.output_transition is Transition(transition)]
            if not matching:
                raise KeyError(
                    f"cell {name!r} has no characterized "
                    f"{Transition(transition).value} arc")
            characterizations[name] = matching[0].statistical
            input_caps[name] = matching[0].input_cap_f
        return timing_view_from_statistical(characterizations, input_caps, vdd=vdd)

    def liberty_writer(self, vdd: Optional[float] = None,
                       n_slew: int = 4, n_cap: int = 4,
                       library_name: Optional[str] = None) -> LibertyWriter:
        """Liberty export: NLDM mean tables plus LVF-style sigma tables.

        Every characterized arc becomes one ``timing`` group of its cell with
        ``cell_rise``/``cell_fall`` (mean delay), transition (mean slew) and
        ``ocv_sigma`` (delay standard deviation) tables evaluated on an
        ``n_slew x n_cap`` grid at the given supply.  Use
        ``.render()`` / ``.write(path)`` on the returned writer.
        """
        vdd = float(vdd) if vdd is not None else self.vdd_nominal
        slew_axis = np.linspace(self.slew_range[0], self.slew_range[1], n_slew)
        cap_axis = np.linspace(self.cload_range[0], self.cload_range[1], n_cap)
        writer = LibertyWriter(
            library_name or f"repro_{self.technology_name}", nominal_voltage=vdd)
        grid = [InputCondition(sin=float(s), cload=float(c), vdd=vdd)
                for s in slew_axis for c in cap_axis]
        shape = (slew_axis.size, cap_axis.size)

        for cell_name in self.cell_names():
            arcs: List[TimingTableSet] = []
            for entry in self.arcs_of(cell_name):
                stats = entry.statistical.predict_statistics(grid)

                def table(values: np.ndarray) -> NldmTable:
                    return NldmTable(
                        input_slews_ns=slew_axis / NANO,
                        load_caps_pf=cap_axis / PICO,
                        values_ns=values.reshape(shape) / NANO,
                    )

                arcs.append(TimingTableSet(
                    related_pin=entry.arc.input_pin,
                    output_transition=entry.arc.output_transition,
                    delay=table(stats["mu_delay"]),
                    transition=table(stats["mu_slew"]),
                    sigma_delay=table(stats["sigma_delay"]),
                ))
            first = self.arcs_of(cell_name)[0]
            # Per-pin capacitances from each pin's own characterized arcs
            # (pins can present different gate widths on asymmetric cells).
            pin_caps = {entry.arc.input_pin: entry.input_cap_f / PICO
                        for entry in self.arcs_of(cell_name)}
            writer.add_cell(CellTimingData(
                name=cell_name,
                function=first.function,
                input_pin_caps_pf=dict(sorted(pin_caps.items())),
                arcs=arcs,
                area=first.area,
            ))
        return writer


def _arc_jobs(cells: Sequence[Cell], transitions: Sequence[Transition],
              input_pins: str) -> List[Tuple[Cell, TimingArc]]:
    """Deterministic (cell, arc) job list."""
    jobs: List[Tuple[Cell, TimingArc]] = []
    for cell in cells:
        pins = cell.input_pins if input_pins == "all" else cell.input_pins[:1]
        for pin in pins:
            for transition in transitions:
                jobs.append((cell, cell.arc(pin, Transition(transition))))
    return jobs


def _characterize_arc_job(payload: tuple):
    """One (cell, arc) characterization; module-level for process pickling.

    Runs with a local counter (``None``): ``sweep_conditions`` charges
    deterministically per condition x seed, so the parent can account runs
    identically for serial and process execution.  Returns the
    characterization together with the job's own :class:`RunLedger`
    (filled in whatever process ran the job; the executor merges ledgers
    back in payload order).

    Resilience lives inside the job (rather than at the executor) so one
    retry layer covers the whole attempt: the optional
    :class:`~repro.runtime.resilience.RetryPolicy` re-runs a failing arc,
    and under ``strict=False`` an arc that still fails returns a
    :class:`~repro.runtime.resilience.FailureReport` in place of its
    characterization instead of aborting the library run.
    """
    (technology, cell, arc, delay_prior, slew_prior, variation, conditions,
     solver, transient_engine, max_bytes, strict, retry_policy) = payload
    ledger = RunLedger()

    def attempt():
        faultinject.fire(SITE_ARC_JOB)
        characterizer = StatisticalCharacterizer(
            technology, cell, delay_prior, slew_prior, arc=arc,
            n_seeds=variation.n_seeds, solver=solver, ledger=ledger,
            max_bytes=max_bytes, transient_engine=transient_engine)
        characterizer.use_variation(variation)
        return characterizer.characterize(list(conditions))

    unit = f"{cell.name}:{arc.name}"
    try:
        return run_with_retry(attempt, retry_policy, site=f"arc:{unit}",
                              ledger=ledger), ledger
    except Exception as error:
        if strict:
            raise
        return FailureReport.from_exception(unit, "characterize", error), ledger


def characterize_fused_jobs(
    technology: TechnologyNode,
    jobs: List[Tuple[Cell, TimingArc]],
    job_conditions: List[List[InputCondition]],
    delay_prior: TimingPrior,
    slew_prior: TimingPrior,
    variation: VariationSample,
    solver: str,
    executor,
    ledger: RunLedger,
    max_bytes: Optional[int],
    strict: bool = True,
    checkpointer: Optional[Checkpointer] = None,
    stepper: Optional[StepperSpec] = None,
) -> "Tuple[List[Optional[StatisticalCharacterization]], List[FailureReport]]":
    """The fused library pipeline: plan -> mega-batch -> stacked solve.

    Produces exactly the per-arc pipeline's characterizations (same values,
    same per-arc ledger run counts); the planning/mega-batching half is the
    shared :class:`~repro.core.simulation_plan.SimulationPlan` (also driving
    historical characterization for prior learning); see the module
    docstring for the design.  Public since PR 10: the characterization
    service (:mod:`repro.runtime.service`) drives it directly with coalesced
    job lists that need not share a condition count -- full-condition jobs
    are stacked per distinct ``k`` (one block-diagonal solve per group;
    blocks are independent, so the grouping is bit-identical to solving any
    other way).

    With ``strict=False`` the pipeline degrades per row instead of aborting:
    broken simulation rows are quarantined by the transient engine, arcs
    with surviving conditions are extracted from the reduced set (their
    stacked-solve peers keep their full blocks, bit-identical to a clean
    run), arcs with no surviving conditions come back as ``None``, and every
    degradation is described by a :class:`FailureReport` in the second
    return value.

    ``checkpointer`` commits each completed simulation chunk's rows to the
    durable store *as it finishes* (crash window: one chunk).  The stacked
    MAP solve is block-independent per arc -- each arc's block enters and
    leaves the solve untouched by its peers -- which is what makes a resumed
    run over any job subset bit-identical to the uninterrupted run.
    """
    n_seeds = variation.n_seeds
    failures: List[FailureReport] = []

    # ------------------------------------------------------------------
    # Plan: resolve reductions, consult the simulation cache per row, and
    # group the rows that still need integrating by inverter signature.
    # The plan consults the reduction cache and the simulation cache per
    # row; recording its cache deltas keeps the fused ledger as observable
    # as the per-arc pipeline's (which wraps its sweeps in ledger.caches()).
    # ------------------------------------------------------------------
    plan = SimulationPlan(technology, variation=variation,
                          integrate_stage="fused:integrate",
                          on_failure="raise" if strict else "quarantine",
                          stepper=stepper)
    with ledger.stage("fused:plan"), ledger.caches():
        for job, (cell, arc) in enumerate(jobs):
            plan.add_job(cell, arc, [condition.as_tuple()
                                     for condition in job_conditions[job]])
        plan.record_metrics(ledger, prefix="fused")
    inverters = plan.inverters
    job_delays = plan.job_delays
    job_slews = plan.job_slews

    # ------------------------------------------------------------------
    # Simulate: each signature group is one mega-batched RK4 pass, split on
    # the flat row axis by the memory budget and the executor's shard hint
    # (rows are independent, so any split reproduces the one-pass results).
    # ------------------------------------------------------------------
    if plan.needs_simulation:
        # Worker-side cache activity (reductions, any in-worker cache use)
        # arrives in the per-job ledgers merged by map_accounted; only the
        # parent-side scatter (its cache *puts*) is snapshotted here, so
        # serial execution does not double-count the workers' windows.
        on_chunk = None
        if checkpointer is not None:
            def on_chunk(payload_index, result):
                written = plan.commit_chunk(payload_index, result,
                                            checkpointer.row_sink)
                checkpointer.journal_rows(written)
        with ledger.stage("fused:simulate"):
            plan.simulate(executor, ledger, max_bytes=max_bytes,
                          on_chunk=on_chunk)
        with ledger.caches():
            plan.finalize()

    # ------------------------------------------------------------------
    # Account: each arc requires k * n_seeds runs whether its rows were
    # simulated or replayed from the cache (identical to the per-arc flow).
    # ------------------------------------------------------------------
    for job, (cell, arc) in enumerate(jobs):
        ledger.add_simulations(len(job_conditions[job]) * n_seeds,
                               label=f"proposed_statistical:{cell.name}")

    # ------------------------------------------------------------------
    # Quarantine bookkeeping: each job keeps the conditions whose rows
    # simulated cleanly (all of them on a clean or strict run).  A degraded
    # arc fits on its surviving conditions; an arc with none is dropped.
    # ------------------------------------------------------------------
    job_kept: List[Optional[List[int]]] = []
    for job, (cell, arc) in enumerate(jobs):
        bad = plan.quarantined_rows.get(job)
        if not bad:
            job_kept.append(list(range(len(job_conditions[job]))))
            continue
        kept = [cond for cond in range(len(job_conditions[job]))
                if cond not in set(bad)]
        detail = (f"{len(bad)} of {len(job_conditions[job])} fitting "
                  f"conditions quarantined (indices {bad})")
        if not kept:
            detail += "; no conditions survived, arc dropped"
        failures.append(FailureReport(unit=f"{cell.name}:{arc.name}",
                                      stage="simulate", error=detail,
                                      error_type="QuarantinedRows"))
        job_kept.append(kept if kept else None)

    # ------------------------------------------------------------------
    # Extract: stack every arc's seed batch into one block-diagonal MAP
    # solve per response (batched solver); the scipy parity solver keeps
    # its per-arc trust-region loops on the injected measurements.
    # ------------------------------------------------------------------
    characterizations: List[Optional[StatisticalCharacterization]] = []
    if solver == "batched":
        space = InputSpace(technology)
        delay_obs_of: Dict[int, object] = {}
        slew_obs_of: Dict[int, object] = {}
        stacked_jobs: List[int] = []
        degraded_jobs: List[int] = []
        with ledger.stage("fused:extract"):
            for job, (cell, arc) in enumerate(jobs):
                kept = job_kept[job]
                if kept is None:
                    continue
                delay_obs, slew_obs = arc_observation_pair(
                    technology, inverters[job],
                    [job_conditions[job][cond] for cond in kept],
                    delay_prior, slew_prior,
                    np.stack([job_delays[job][cond] for cond in kept], axis=0),
                    np.stack([job_slews[job][cond] for cond in kept], axis=0),
                    space=space)
                delay_obs_of[job] = delay_obs
                slew_obs_of[job] = slew_obs
                if len(kept) == len(job_conditions[job]):
                    stacked_jobs.append(job)
                else:
                    degraded_jobs.append(job)
        delay_results: Dict[int, object] = {}
        slew_results: Dict[int, object] = {}
        with ledger.stage("fused:solve"):
            # The stacked solver needs a uniform condition count k across
            # its blocks; coalesced workloads (the serving front door) mix
            # requests with different k, so stack once per distinct k.
            # Blocks are independent, so the partition cannot change any
            # arc's numbers.
            by_k: Dict[int, List[int]] = {}
            for job in stacked_jobs:
                by_k.setdefault(len(job_conditions[job]), []).append(job)
            for k_jobs in by_k.values():
                delay_results.update(zip(k_jobs, map_estimate_stacked(
                    delay_prior, [delay_obs_of[job] for job in k_jobs],
                    max_bytes=max_bytes)))
                slew_results.update(zip(k_jobs, map_estimate_stacked(
                    slew_prior, [slew_obs_of[job] for job in k_jobs],
                    max_bytes=max_bytes)))
            # Degraded arcs carry fewer conditions than the stacked blocks
            # (which need a uniform k), so each gets its own solve; blocks
            # are independent rows either way, so their stacked peers stay
            # bit-identical to a clean run.
            for job in degraded_jobs:
                delay_results[job] = map_estimate_batch(
                    delay_prior, delay_obs_of[job], max_bytes=max_bytes)
                slew_results[job] = map_estimate_batch(
                    slew_prior, slew_obs_of[job], max_bytes=max_bytes)
            ledger.add_metric(
                "solver_iterations",
                int(sum(int(result.n_iterations.sum())
                        for result in delay_results.values())
                    + sum(int(result.n_iterations.sum())
                          for result in slew_results.values())))
        if not strict:
            # Corrupted-solve fallback chain (batched -> scipy -> prior
            # mean, per seed row).  A clean result passes through as the
            # same object, so nothing here perturbs the fault-free path.
            for job in sorted(delay_results):
                cell, arc = jobs[job]
                for response, results_map, obs_of, prior in (
                        ("delay", delay_results, delay_obs_of, delay_prior),
                        ("slew", slew_results, slew_obs_of, slew_prior)):
                    result = results_map[job]
                    repaired = repair_batch_result(
                        result, obs_of[job], prior, ledger=ledger)
                    if repaired is not result:
                        results_map[job] = repaired
                        broken = int(np.count_nonzero(
                            ~np.all(np.isfinite(result.parameters), axis=1)))
                        failures.append(FailureReport(
                            unit=f"{cell.name}:{arc.name}", stage="extract",
                            error=(f"{response} solve produced {broken} "
                                   f"non-finite seed rows; repaired via the "
                                   f"scipy/prior fallback chain"),
                            error_type="RepairedSolve"))
        for job, (cell, arc) in enumerate(jobs):
            if job not in delay_results:
                characterizations.append(None)
                continue
            runs = len(job_conditions[job]) * n_seeds
            characterizations.append(StatisticalCharacterization(
                cell_name=cell.name,
                arc_name=arc.name,
                delay_parameters=delay_results[job].parameters,
                slew_parameters=slew_results[job].parameters,
                inverter=inverters[job],
                fitting_conditions=tuple(job_conditions[job][cond]
                                         for cond in job_kept[job]),
                simulation_runs=runs,
                solver=solver,
                delay_converged=delay_results[job].converged,
                slew_converged=slew_results[job].converged,
            ))
    else:
        with ledger.stage("fused:extract"):
            for job, (cell, arc) in enumerate(jobs):
                kept = job_kept[job]
                if kept is None:
                    characterizations.append(None)
                    continue
                characterizer = StatisticalCharacterizer(
                    technology, cell, delay_prior, slew_prior, arc=arc,
                    n_seeds=n_seeds, solver=solver, ledger=ledger,
                    max_bytes=max_bytes)
                characterizer.use_variation(variation)
                try:
                    characterizations.append(
                        characterizer.characterize_from_measurements(
                            [job_conditions[job][cond] for cond in kept],
                            np.stack([job_delays[job][cond] for cond in kept],
                                     axis=0),
                            np.stack([job_slews[job][cond] for cond in kept],
                                     axis=0),
                            simulation_runs=len(job_conditions[job]) * n_seeds))
                except Exception as error:
                    if strict:
                        raise
                    characterizations.append(None)
                    failures.append(FailureReport.from_exception(
                        f"{cell.name}:{arc.name}", "extract", error))
    return characterizations, failures


def _checkpoint_signature(
    technology: TechnologyNode,
    library_name: str,
    jobs: List[Tuple[Cell, TimingArc]],
    job_conditions: List[List[InputCondition]],
    variation: VariationSample,
    delay_prior: TimingPrior,
    slew_prior: TimingPrior,
    solver: str,
    stepper: StepperSpec,
) -> str:
    """Stable digest of every input that shapes a library run's results.

    Two runs with the same signature produce bit-identical entries, so a
    checkpoint written under this signature can be resumed safely; anything
    that would change the numbers -- technology or variation content, the
    job list, any fitting condition, either prior, the solver, the
    transient stepper (scheme, step count or tolerances) -- changes the
    digest.  A resume under a different integration engine or tolerance
    therefore raises :class:`~repro.runtime.checkpoint.CheckpointMismatch`
    instead of silently mixing results of different numerical schemes.
    """
    return stable_key_digest((
        "characterize_library",
        technology.name,
        technology.fingerprint(),
        library_name,
        tuple((cell.name, arc.name) for cell, arc in jobs),
        tuple(tuple(condition.as_tuple() for condition in conditions)
              for conditions in job_conditions),
        variation.fingerprint(),
        int(variation.n_seeds),
        delay_prior.fingerprint(),
        slew_prior.fingerprint(),
        solver,
        stepper.signature(),
    ))


def _solved_payload(result: StatisticalCharacterization) -> dict:
    """The picklable solved-model record persisted per characterized arc.

    Everything that cannot be recomputed deterministically from the run
    inputs: the extracted parameters, convergence flags, the (possibly
    degraded) fitting conditions and the run accounting.  The equivalent
    inverter is deliberately absent -- it is a pure function of (cell,
    technology, variation) and is rebuilt on load.
    """
    return {
        "delay_parameters": np.asarray(result.delay_parameters, dtype=float),
        "slew_parameters": np.asarray(result.slew_parameters, dtype=float),
        "delay_converged": result.delay_converged,
        "slew_converged": result.slew_converged,
        "conditions": tuple(condition.as_tuple()
                            for condition in result.fitting_conditions),
        "simulation_runs": int(result.simulation_runs),
        "solver": result.solver,
    }


def _restore_solved(payload: dict, cell: Cell, arc: TimingArc,
                    technology: TechnologyNode,
                    variation: VariationSample
                    ) -> StatisticalCharacterization:
    """Rebuild one arc's characterization from its persisted solved model."""
    inverter = reduce_cell_cached(cell, technology, arc=arc,
                                  variation=variation)
    conditions = tuple(InputCondition(sin=sin, cload=cload, vdd=vdd)
                       for sin, cload, vdd in payload["conditions"])
    return StatisticalCharacterization(
        cell_name=cell.name,
        arc_name=arc.name,
        delay_parameters=np.asarray(payload["delay_parameters"], dtype=float),
        slew_parameters=np.asarray(payload["slew_parameters"], dtype=float),
        inverter=inverter,
        fitting_conditions=conditions,
        simulation_runs=int(payload["simulation_runs"]),
        solver=str(payload["solver"]),
        delay_converged=payload.get("delay_converged"),
        slew_converged=payload.get("slew_converged"),
    )


def _characterize_fused_checkpointed(
    technology: TechnologyNode,
    jobs: List[Tuple[Cell, TimingArc]],
    job_conditions: List[List[InputCondition]],
    delay_prior: TimingPrior,
    slew_prior: TimingPrior,
    variation: VariationSample,
    solver: str,
    executor,
    ledger: RunLedger,
    max_bytes: Optional[int],
    strict: bool,
    checkpointer: Checkpointer,
    preloaded: Dict[int, StatisticalCharacterization],
    stepper: Optional[StepperSpec] = None,
) -> "Tuple[List[Optional[StatisticalCharacterization]], List[FailureReport]]":
    """Run :func:`characterize_fused_jobs` under a checkpoint.

    Jobs with a journaled solve are replayed from the solved-model store;
    the rest run through the normal fused pipeline with the checkpoint's
    simulation store attached as the simulation cache's durable tier (rows
    the killed run committed are disk hits during planning; completed
    chunks commit as they finish).  The stacked solve is block-independent
    per arc, so the recomputed subset is bit-identical to its blocks in an
    uninterrupted run.
    """
    cache = get_simulation_cache()
    previous_store = cache.disk_store
    cache.attach_disk_store(checkpointer.sim_store)
    try:
        remaining = [job for job in range(len(jobs)) if job not in preloaded]
        sub_results, failures = characterize_fused_jobs(
            technology,
            [jobs[job] for job in remaining],
            [job_conditions[job] for job in remaining],
            delay_prior, slew_prior, variation, solver, executor, ledger,
            max_bytes, strict=strict, checkpointer=checkpointer,
            stepper=stepper)
        for job, result in zip(remaining, sub_results):
            if result is not None:
                cell, arc = jobs[job]
                checkpointer.commit_solve(job, f"{cell.name}:{arc.name}",
                                          _solved_payload(result))
        for report in failures:
            checkpointer.record_failure(report)
        checkpointer.mark_complete()
        results: List[Optional[StatisticalCharacterization]] = []
        computed = iter(sub_results)
        for job, (cell, arc) in enumerate(jobs):
            if job in preloaded:
                # Replayed arcs still account their simulations, so the
                # resumed ledger carries the same per-cell run labels.
                ledger.add_simulations(
                    len(job_conditions[job]) * variation.n_seeds,
                    label=f"proposed_statistical:{cell.name}")
                results.append(preloaded[job])
            else:
                results.append(next(computed))
        return results, failures
    finally:
        if previous_store is not None:
            cache.attach_disk_store(previous_store)
        else:
            cache.detach_disk_store()


def characterize_library(
    technology: TechnologyNode,
    library: Union[StandardCellLibrary, Sequence[Cell]],
    delay_prior: TimingPrior,
    slew_prior: TimingPrior,
    conditions: Union[int, Sequence[InputCondition]] = 4,
    n_seeds: int = 200,
    transitions: Sequence[Transition] = (Transition.FALL, Transition.RISE),
    input_pins: str = "first",
    variation: Optional[VariationSample] = None,
    rng: RandomState = None,
    counter: Optional[SimulationCounter] = None,
    solver: str = "batched",
    concurrency: str = "serial",
    pipeline: str = "fused",
    max_workers: Optional[int] = None,
    ledger: Optional[RunLedger] = None,
    max_bytes: Optional[int] = None,
    strict: Optional[bool] = None,
    retry_policy: Optional[RetryPolicy] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    transient_engine: Optional[str] = None,
) -> LibraryCharacterization:
    """Statistically characterize every requested arc of a cell library.

    Parameters
    ----------
    technology:
        Target technology node.
    library:
        A :class:`StandardCellLibrary` or a plain cell sequence.
    delay_prior, slew_prior:
        Learned priors shared by every arc.
    conditions:
        Number of fitting conditions per arc (drawn per arc by Latin
        hypercube from the orchestrator's ``rng``) or one explicit condition
        list shared by all arcs.
    n_seeds:
        Monte Carlo seeds (ignored when ``variation`` is given).
    transitions:
        Output transitions to characterize per input pin.
    input_pins:
        ``"first"`` (one switching pin per cell, the paper's convention) or
        ``"all"``.
    variation:
        Optional explicit seed batch shared by every arc.
    rng:
        Random source for seed sampling and condition selection.
    counter:
        Optional simulation-run accounting; every arc charges
        ``k * n_seeds`` runs under ``library:<cell>:<arc>``, identically in
        both execution modes.
    solver:
        Parameter-extraction solver (see
        :class:`~repro.core.statistical_flow.StatisticalCharacterizer`).
    concurrency:
        Runtime executor mode: ``"serial"`` (default; shares the in-process
        simulation cache), ``"chunked"`` (serial semantics over
        deterministic job chunks) or ``"process"`` (process-pool fan-out).
        Results are deterministic and identical across modes: the seed
        batch and every arc's fitting conditions are fixed in the parent
        before dispatch.
    pipeline:
        ``"fused"`` (default) runs the library-wide fused pipeline -- one
        global simulation plan grouped by equivalent-inverter signature,
        one stacked MAP solve per response; under ``concurrency="process"``
        it fans out chunks of the *flat simulation axis* (better load
        balance than whole-arc jobs, since arcs of very different cost
        split evenly).  ``"per_arc"`` runs the pre-fusion one-job-per-arc
        flow (kept for parity testing); both pipelines produce identical
        results, counter charges and ledger run counts.
    max_workers:
        Process-pool size for ``concurrency="process"``.
    ledger:
        Optional :class:`~repro.runtime.accounting.RunLedger`; per-arc
        ledgers (stage wall time, simulation runs, solver iterations,
        cache activity) merge into it in job order, identically in every
        execution mode.  The merged record is also attached to the result.
    max_bytes:
        Memory budget threaded to every arc's batched engines (explicitly,
        so process workers honor it too); ``None`` defers each process to
        its own ``repro.runtime.configure(max_bytes=...)``.
    strict:
        ``True`` (the default, also via ``REPRO_STRICT``) fails fast on the
        first broken arc, exactly the pre-resilience behavior.  ``False``
        degrades gracefully: broken simulation rows are quarantined, arcs
        re-fit on their surviving conditions, corrupted solves run the
        scipy/prior repair chain, and arcs that still fail are dropped --
        every degradation lands as a
        :class:`~repro.runtime.resilience.FailureReport` on the result's
        ``failures`` and the ledger.  Non-faulted arcs are bit-identical
        between the two modes.
    retry_policy:
        Optional :class:`~repro.runtime.resilience.RetryPolicy` re-running
        failed work before it counts as broken (per simulation chunk in the
        fused pipeline, per arc job in the per-arc pipeline); ``None``
        disables retries.
    checkpoint_dir:
        Optional checkpoint directory (fused pipeline only).  The run
        journals completed work units there and commits simulated rows and
        solved models to crash-safe on-disk stores
        (:mod:`repro.runtime.checkpoint`), so a killed run can be resumed.
    resume:
        With ``checkpoint_dir``: replay the directory's journal -- arcs
        solved by the previous (killed) run load from the solved-model
        store, committed simulation rows are disk hits, and only the
        missing rows are re-integrated.  The resumed result is
        bit-identical to an uninterrupted run; failures persisted by the
        previous run are merged into the result's ``failures``.  Resuming
        against a checkpoint whose run signature differs (any input
        changed) raises
        :class:`~repro.runtime.checkpoint.CheckpointMismatch`.
    transient_engine:
        Transient integration engine of the simulate phase: ``"batched"``
        (fixed-step lockstep RK4), ``"adaptive"`` (error-controlled RK45;
        typically 3x+ fewer RHS evaluations at equal accuracy), or
        ``"serial"`` (equivalence-testing engine; the fused pipeline has no
        serial path, so it falls back to the numerically identical batched
        engine there).  ``None`` defers to
        ``runtime.configure(transient_engine=...)`` /
        ``REPRO_TRANSIENT_ENGINE``.  The engine's stepper signature is part
        of every simulation-cache key and of the checkpoint run signature.

    Raises
    ------
    ValueError
        On an empty library or invalid mode switches.
    """
    if concurrency not in CONCURRENCY_MODES:
        raise ValueError(
            f"concurrency must be one of {CONCURRENCY_MODES}, got {concurrency!r}")
    if pipeline not in PIPELINES:
        raise ValueError(
            f"pipeline must be one of {PIPELINES}, got {pipeline!r}")
    if solver not in SOLVERS:
        raise ValueError(f"solver must be one of {SOLVERS}, got {solver!r}")
    if input_pins not in ("first", "all"):
        raise ValueError(f"input_pins must be 'first' or 'all', got {input_pins!r}")
    cells = list(library)
    if not cells:
        raise ValueError("the library has no cells to characterize")
    library_name = (library.name if isinstance(library, StandardCellLibrary)
                    else f"{technology.name}_cells")

    generator = ensure_rng(rng)
    if variation is None:
        variation = technology.variation.sample(int(n_seeds), generator)
    if variation.n_seeds < 2:
        raise ValueError("library characterization needs at least 2 seeds")

    jobs = _arc_jobs(cells, transitions, input_pins)
    space = InputSpace(technology)
    if isinstance(conditions, int):
        # Per-arc condition draws happen in job order *before* any dispatch,
        # so serial and process execution see identical inputs.
        job_conditions = [space.sample_lhs(conditions, generator) for _ in jobs]
    else:
        shared = list(conditions)
        if not shared:
            raise ValueError("at least one fitting condition is required")
        job_conditions = [shared for _ in jobs]

    strict_mode = resolve_strict(strict)
    run_ledger = ledger if ledger is not None else RunLedger()
    failures: List[FailureReport] = []

    # The fused pipeline has no serial path (serial is the equivalence twin
    # of the batched fixed-step engine, numerically identical to it), so a
    # resolved "serial" runs the batched engine there; the per-arc pipeline
    # honors it as-is through each arc's sweep.
    resolved_engine = resolve_transient_engine(transient_engine)
    fused_engine = "adaptive" if resolved_engine == "adaptive" else "batched"
    stepper = resolve_stepper(fused_engine)

    checkpointer: Optional[Checkpointer] = None
    preloaded: Dict[int, StatisticalCharacterization] = {}
    prior_failures: List[FailureReport] = []
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")
    if checkpoint_dir is not None:
        if pipeline != "fused":
            raise ValueError("checkpoint_dir requires pipeline='fused'")
        signature = _checkpoint_signature(
            technology, library_name, jobs, job_conditions, variation,
            delay_prior, slew_prior, solver, stepper)
        checkpointer = Checkpointer(checkpoint_dir, signature, resume=resume)
        if resume:
            prior_failures = checkpointer.failures()
            for job in checkpointer.solved_jobs():
                if not 0 <= job < len(jobs):
                    continue
                payload = checkpointer.load_solved(job)
                if payload is None:
                    continue  # entry lost or quarantined: recompute the arc
                cell, arc = jobs[job]
                preloaded[job] = _restore_solved(payload, cell, arc,
                                                 technology, variation)
    # The per-arc pipeline retries inside the job (one layer around the
    # whole attempt); the fused pipeline retries at the executor, around
    # each simulation chunk.
    executor = get_executor(
        concurrency, max_workers=max_workers,
        retry_policy=retry_policy if pipeline == "fused" else None)
    with run_ledger.stage("characterize_library"):
        if pipeline == "fused":
            if checkpointer is not None:
                results, failures = _characterize_fused_checkpointed(
                    technology, jobs, job_conditions, delay_prior, slew_prior,
                    variation, solver, executor, run_ledger, max_bytes,
                    strict_mode, checkpointer, preloaded, stepper=stepper)
            else:
                results, failures = characterize_fused_jobs(
                    technology, jobs, job_conditions, delay_prior, slew_prior,
                    variation, solver, executor, run_ledger, max_bytes,
                    strict=strict_mode, stepper=stepper)
        else:
            payloads = [
                (technology, cell, arc, delay_prior, slew_prior, variation,
                 job_conditions[index], solver, resolved_engine, max_bytes,
                 strict_mode, retry_policy)
                for index, (cell, arc) in enumerate(jobs)
            ]
            results = executor.map_accounted(_characterize_arc_job, payloads,
                                             ledger=run_ledger)

    entries: List[LibraryArcCharacterization] = []
    total_runs = 0
    for (cell, arc), result in zip(jobs, results):
        if isinstance(result, FailureReport):
            failures.append(result)
            continue
        if result is None:
            continue
        if counter is not None:
            counter.add(result.simulation_runs,
                        label=f"library:{cell.name}:{arc.name}")
        total_runs += result.simulation_runs
        nominal = reduce_cell_cached(cell, technology, arc=arc)
        entries.append(LibraryArcCharacterization(
            cell_name=cell.name,
            arc=arc,
            statistical=result,
            input_cap_f=float(np.mean(np.asarray(nominal.input_cap))),
            function=cell.function,
            area=cell.total_device_width_um(),
        ))
    for report in failures:
        run_ledger.add_failure(report)
    if strict_mode and failures:
        # characterize_fused_jobs and the arc jobs fail fast under strict mode;
        # this is a defensive backstop, not a reachable path.
        raise RuntimeError(f"strict run recorded failures: "
                           f"{[f.describe() for f in failures]}")
    if prior_failures:
        # Failures persisted by the killed run surface on the resumed
        # result (and its ledger) but are exempt from this run's strict
        # check: they are history, and their recompute already happened.
        for report in prior_failures:
            run_ledger.add_failure(report)
        failures = prior_failures + failures
    if not entries:
        raise RuntimeError(
            "no arcs survived characterization; failures: "
            + "; ".join(report.describe() for report in failures))

    return LibraryCharacterization(
        library_name=library_name,
        technology_name=technology.name,
        vdd_nominal=technology.vdd_nominal,
        slew_range=tuple(technology.slew_range),
        cload_range=tuple(technology.cload_range),
        n_seeds=variation.n_seeds,
        solver=solver,
        concurrency=concurrency,
        simulation_runs=total_runs,
        entries=tuple(entries),
        pipeline=pipeline,
        ledger=run_ledger,
        failures=tuple(failures),
    )
