"""Ultra-compact analytical timing model (Section III of the paper).

Delay and output slew of a cell arc are both modelled with the same
four-parameter expression

.. math::

    T = k_d \\, \\frac{(V_{dd} + V')(C_{load} + C_{par} + \\alpha S_{in})}{I_{eff}}

which generalizes the classic ``Cload * Vdd / Idsat`` delay metric:

* ``kd`` -- dimensionless scaling factor;
* ``Cpar`` -- parasitic output capacitance not included in ``Cload``;
* ``V'`` -- supply-offset correction that fixes the low-``Vdd`` behaviour;
* ``alpha`` -- linear sensitivity of the switched charge to the input slew.

For numerical conditioning (and so reports read like the paper's Table I),
parameters are stored in "natural" units -- ``Cpar`` in femtofarads and
``alpha`` in femtofarads per picosecond -- giving all four parameters
magnitudes of order one.  The evaluation functions convert internally; every
physical input and output stays in SI units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from repro.utils.units import FEMTO, PICO

#: Number of model parameters.
N_PARAMETERS = 4

#: Parameter names in canonical order.
PARAMETER_NAMES = ("kd", "cpar_ff", "vprime_v", "alpha_ff_per_ps")

#: Default parameter bounds in natural units: ``kd`` dimensionless, ``Cpar``
#: in fF, ``V'`` in volts, ``alpha`` in fF/ps.  They are intentionally loose;
#: they exist to keep the optimizer out of unphysical regions (negative
#: capacitance, supply offsets beyond the rail).
DEFAULT_LOWER_BOUNDS = np.array([1e-3, 0.0, -0.60, 0.0])
DEFAULT_UPPER_BOUNDS = np.array([5.0, 20.0, 0.60, 10.0])

#: Default initial guess used when no prior information is available.
DEFAULT_INITIAL_GUESS = np.array([0.4, 1.0, -0.25, 0.1])


@dataclass(frozen=True)
class TimingModelParameters:
    """The four compact-model parameters in natural units.

    Attributes
    ----------
    kd:
        Dimensionless delay scaling factor.
    cpar_ff:
        Parasitic capacitance in femtofarads.
    vprime_v:
        Supply-voltage offset in volts (typically negative).
    alpha_ff_per_ps:
        Input-slew charge coefficient in femtofarads per picosecond.
    """

    kd: float
    cpar_ff: float
    vprime_v: float
    alpha_ff_per_ps: float

    def as_array(self) -> np.ndarray:
        """Parameters as a length-4 array in canonical order."""
        return np.array([self.kd, self.cpar_ff, self.vprime_v, self.alpha_ff_per_ps])

    @classmethod
    def from_array(cls, values: Sequence[float]) -> "TimingModelParameters":
        """Build parameters from a length-4 array in canonical order."""
        values = np.asarray(values, dtype=float).reshape(-1)
        if values.size != N_PARAMETERS:
            raise ValueError(f"expected {N_PARAMETERS} parameters, got {values.size}")
        return cls(kd=float(values[0]), cpar_ff=float(values[1]),
                   vprime_v=float(values[2]), alpha_ff_per_ps=float(values[3]))

    def describe(self) -> str:
        """Compact human-readable rendering (Table I style)."""
        return (f"kd={self.kd:.3f}, Cpar={self.cpar_ff:.3f} fF, "
                f"V'={self.vprime_v:+.3f} V, alpha={self.alpha_ff_per_ps:.3f} fF/ps")


class CompactTimingModel:
    """Evaluation of the four-parameter timing model.

    The class is stateless apart from the parameter bounds; a single instance
    serves both the delay and the output-slew response (with different
    parameter values), mirroring the paper's "same format, different fitting
    parameters" observation.
    """

    def __init__(self,
                 lower_bounds: Optional[np.ndarray] = None,
                 upper_bounds: Optional[np.ndarray] = None):
        self._lower = (np.asarray(lower_bounds, dtype=float)
                       if lower_bounds is not None else DEFAULT_LOWER_BOUNDS.copy())
        self._upper = (np.asarray(upper_bounds, dtype=float)
                       if upper_bounds is not None else DEFAULT_UPPER_BOUNDS.copy())
        if self._lower.shape != (N_PARAMETERS,) or self._upper.shape != (N_PARAMETERS,):
            raise ValueError("bounds must be length-4 arrays")
        if np.any(self._lower >= self._upper):
            raise ValueError("lower bounds must be strictly below upper bounds")

    @property
    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` parameter bounds in natural units."""
        return self._lower.copy(), self._upper.copy()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    @staticmethod
    def evaluate_array(theta: np.ndarray, sin: np.ndarray, cload: np.ndarray,
                       vdd: np.ndarray, ieff: np.ndarray) -> np.ndarray:
        """Evaluate the model for a parameter array in natural units.

        All physical arguments are in SI units (seconds, farads, volts,
        amperes) and broadcast against each other; the returned response is
        in seconds.
        """
        theta = np.asarray(theta, dtype=float)
        kd = theta[..., 0]
        cpar = theta[..., 1] * FEMTO
        vprime = theta[..., 2]
        alpha = theta[..., 3] * FEMTO / PICO
        sin = np.asarray(sin, dtype=float)
        cload = np.asarray(cload, dtype=float)
        vdd = np.asarray(vdd, dtype=float)
        ieff = np.asarray(ieff, dtype=float)
        charge = (vdd + vprime) * (cload + cpar + alpha * sin)
        return kd * charge / ieff

    def evaluate(self, params: TimingModelParameters, sin, cload, vdd, ieff
                 ) -> np.ndarray:
        """Evaluate the model for a :class:`TimingModelParameters` instance."""
        return self.evaluate_array(params.as_array(), sin, cload, vdd, ieff)

    @staticmethod
    def evaluate_and_jacobian(theta: np.ndarray, sin: np.ndarray,
                              cload: np.ndarray, vdd: np.ndarray,
                              ieff: np.ndarray
                              ) -> Tuple[np.ndarray, np.ndarray]:
        """Model predictions plus the analytic Jacobian in natural units.

        The model is affine in three of its four parameters and bilinear in
        the fourth, so the Jacobian is available in closed form -- this is
        what lets the batched MAP solver (:mod:`repro.core.batch_map`) take
        exact Gauss-Newton steps instead of re-evaluating the model four
        extra times per seed for finite differences.

        Parameters
        ----------
        theta:
            Parameter matrix of shape ``(n_batch, 4)`` in natural units --
            one row per Monte Carlo seed (a single length-4 vector is
            accepted and treated as a batch of one).
        sin, cload, vdd:
            Operating points of shape ``(k,)`` in SI units, shared by every
            batch row, or ``(n_batch, k)`` with one condition set per row
            (the stacked library-wide MAP solve, where each row belongs to
            a different arc with its own fitting conditions).
        ieff:
            Effective currents in amperes, shape ``(k,)`` (shared) or
            ``(n_batch, k)`` (per-seed).

        Returns
        -------
        (prediction, jacobian):
            ``prediction`` has shape ``(n_batch, k)`` (seconds) and
            ``jacobian`` shape ``(n_batch, k, 4)`` with
            ``jacobian[..., i] = d prediction / d theta_i`` in natural
            units (i.e. per fF for ``Cpar`` and per fF/ps for ``alpha``).
        """
        theta = np.atleast_2d(np.asarray(theta, dtype=float))
        if theta.ndim != 2 or theta.shape[1] != N_PARAMETERS:
            raise ValueError(f"theta must have shape (n_batch, {N_PARAMETERS})")

        def rows(name: str, value) -> np.ndarray:
            array = np.asarray(value, dtype=float)
            if array.ndim <= 1:
                return array.reshape(-1)[np.newaxis, :]
            if array.ndim != 2 or array.shape[0] != theta.shape[0]:
                raise ValueError(
                    f"{name} must have shape (k,) or (n_batch, k), "
                    f"got {array.shape} for n_batch={theta.shape[0]}")
            return array

        sin = rows("sin", sin)
        cload = rows("cload", cload)
        vdd = rows("vdd", vdd)
        ieff = rows("ieff", ieff)

        kd = theta[:, 0:1]
        cpar = theta[:, 1:2] * FEMTO
        vprime = theta[:, 2:3]
        alpha = theta[:, 3:4] * FEMTO / PICO

        supply = vdd + vprime                             # (n_batch, k)
        charge_cap = cload + cpar + alpha * sin
        inv_ieff = 1.0 / ieff                             # broadcasts over rows
        prediction = kd * supply * charge_cap * inv_ieff

        jacobian = np.empty(np.broadcast(prediction, sin).shape + (N_PARAMETERS,))
        jacobian[..., 0] = supply * charge_cap * inv_ieff
        jacobian[..., 1] = kd * supply * inv_ieff * FEMTO
        jacobian[..., 2] = kd * charge_cap * inv_ieff
        jacobian[..., 3] = kd * supply * sin * inv_ieff * (FEMTO / PICO)
        return prediction, jacobian

    # ------------------------------------------------------------------
    # Diagnostics used by the Fig. 2 / Fig. 3 collapse benchmarks
    # ------------------------------------------------------------------
    @staticmethod
    def vdd_collapse(response: np.ndarray, ieff: np.ndarray, vdd: np.ndarray,
                     vprime_v: float) -> np.ndarray:
        """``T * Ieff / (Vdd + V')`` -- constant across Vdd if the model holds."""
        response = np.asarray(response, dtype=float)
        ieff = np.asarray(ieff, dtype=float)
        vdd = np.asarray(vdd, dtype=float)
        return response * ieff / (vdd + vprime_v)

    @staticmethod
    def load_slew_collapse(response: np.ndarray, cload: np.ndarray, sin: np.ndarray,
                           cpar_ff: float, alpha_ff_per_ps: float) -> np.ndarray:
        """``T / (Cload + Cpar + alpha*Sin)`` -- constant if the model holds."""
        response = np.asarray(response, dtype=float)
        cload = np.asarray(cload, dtype=float)
        sin = np.asarray(sin, dtype=float)
        denominator = cload + cpar_ff * FEMTO + alpha_ff_per_ps * FEMTO / PICO * sin
        return response / denominator


@dataclass(frozen=True)
class FitResult:
    """Outcome of a least-squares or MAP parameter extraction.

    Attributes
    ----------
    params:
        The extracted parameters.
    mean_abs_relative_error:
        Mean absolute relative error of the fit on its own training data.
    max_abs_relative_error:
        Worst-case training relative error.
    residuals:
        Relative residuals (model - observed) / observed, one per sample.
    n_observations:
        Number of training samples used.
    converged:
        Whether the optimizer reported success.
    """

    params: TimingModelParameters
    mean_abs_relative_error: float
    max_abs_relative_error: float
    residuals: np.ndarray
    n_observations: int
    converged: bool


def fit_least_squares(
    sin: np.ndarray,
    cload: np.ndarray,
    vdd: np.ndarray,
    ieff: np.ndarray,
    response: np.ndarray,
    model: Optional[CompactTimingModel] = None,
    initial_guess: Optional[np.ndarray] = None,
    weights: Optional[np.ndarray] = None,
) -> FitResult:
    """Plain (non-Bayesian) least-squares extraction of the model parameters.

    Relative residuals are minimized, so small and large responses are
    weighted evenly across the input space.  This is the "Proposed Model +
    LSE" baseline of the paper's Figs. 6 and 8; the MAP estimator in
    :mod:`repro.core.map_estimation` adds the prior and precision terms.

    Parameters
    ----------
    sin, cload, vdd, ieff:
        Operating-point arrays (SI units), all of the same length.
    response:
        Observed delay or output slew, in seconds.
    model:
        Optional :class:`CompactTimingModel` (supplies bounds).
    initial_guess:
        Optional starting parameter vector in natural units.
    weights:
        Optional non-negative per-sample weights applied to the relative
        residuals.

    Raises
    ------
    ValueError
        On shape mismatches or non-positive responses.
    """
    model = model or CompactTimingModel()
    sin = np.asarray(sin, dtype=float).reshape(-1)
    cload = np.asarray(cload, dtype=float).reshape(-1)
    vdd = np.asarray(vdd, dtype=float).reshape(-1)
    ieff = np.asarray(ieff, dtype=float).reshape(-1)
    response = np.asarray(response, dtype=float).reshape(-1)
    n_obs = response.size
    for name, array in (("sin", sin), ("cload", cload), ("vdd", vdd), ("ieff", ieff)):
        if array.size != n_obs:
            raise ValueError(f"{name} has {array.size} entries, expected {n_obs}")
    if n_obs == 0:
        raise ValueError("at least one observation is required")
    if np.any(response <= 0.0):
        raise ValueError("responses must be strictly positive")
    if weights is None:
        weights = np.ones(n_obs)
    else:
        weights = np.asarray(weights, dtype=float).reshape(-1)
        if weights.size != n_obs:
            raise ValueError("weights must match the number of observations")
        if np.any(weights < 0.0):
            raise ValueError("weights must be non-negative")

    lower, upper = model.bounds
    if initial_guess is None:
        guess = DEFAULT_INITIAL_GUESS.copy()
    else:
        guess = np.asarray(initial_guess, dtype=float).reshape(-1).copy()
        if guess.size != N_PARAMETERS:
            raise ValueError(f"initial_guess must have {N_PARAMETERS} entries")
    guess = np.clip(guess, lower + 1e-9, upper - 1e-9)
    sqrt_weights = np.sqrt(weights)

    def residual(theta: np.ndarray) -> np.ndarray:
        prediction = CompactTimingModel.evaluate_array(theta, sin, cload, vdd, ieff)
        return sqrt_weights * (prediction - response) / response

    solution = least_squares(residual, guess, bounds=(lower, upper), method="trf")
    relative = (CompactTimingModel.evaluate_array(solution.x, sin, cload, vdd, ieff)
                - response) / response
    params = TimingModelParameters.from_array(solution.x)
    return FitResult(
        params=params,
        mean_abs_relative_error=float(np.mean(np.abs(relative))),
        max_abs_relative_error=float(np.max(np.abs(relative))),
        residuals=relative,
        n_observations=n_obs,
        converged=bool(solution.success),
    )
