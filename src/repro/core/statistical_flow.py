"""Statistical (process-variation-aware) characterization flow (Fig. 4).

The statistical half of the paper's flow works per Monte Carlo process seed:

1. draw ``Nsample`` process seeds;
2. simulate each of the ``k`` fitting input conditions once per seed (the
   ``.ALTER``-style batched sweep is vectorized over seeds here);
3. extract the compact-model parameters ``P_T^(j)`` / ``P_S^(j)`` of every
   seed ``j`` by MAP estimation against the historical prior;
4. for any queried operating point, evaluate the compact model with every
   seed's parameters to obtain the full delay / slew *distribution* -- mean,
   standard deviation, and the (generally non-Gaussian) probability density
   of the paper's Fig. 9.

The total simulation cost is ``O(k * Nsample)``, compared with
``O(N_LUT * Nsample)`` for a statistical look-up table.
"""

from __future__ import annotations

import itertools
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cells.equivalent_inverter import EquivalentInverter, reduce_cell_cached
from repro.cells.library import Cell, TimingArc
from repro.characterization.input_space import (
    InputCondition,
    InputSpace,
    conditions_to_arrays,
)
from repro.core.batch_map import BatchMapObservations, map_estimate_batch
from repro.core.map_estimation import MapObservations, map_estimate
from repro.core.prior_learning import TimingPrior
from repro.core.timing_model import CompactTimingModel, TimingModelParameters
from repro.runtime import register_runtime_cache
from repro.runtime.accounting import RunLedger
from repro.runtime.cache import LruCache
from repro.spice.sweep import sweep_conditions
from repro.spice.testbench import SimulationCounter
from repro.technology.node import TechnologyNode
from repro.technology.variation import VariationSample
from repro.utils.rng import RandomState, ensure_rng

#: Parameter-extraction solvers selectable in :class:`StatisticalCharacterizer`.
SOLVERS = ("batched", "scipy")

#: Per-(characterization, supply) effective-current rows.  An STA run queries
#: one analysis supply thousands of times per characterization; the
#: device-model evaluation is identical every time, so it is paid once and
#: its reuse is visible in ``repro.runtime.cache_stats()["ieff"]``.
_IEFF_CACHE = register_runtime_cache(
    LruCache("ieff", max_entries=4096, max_bytes=64 * 2**20))

#: Distinct tokens identifying characterization instances in the Ieff cache
#: (tokens are never reused, unlike ``id()``).
_IEFF_TOKENS = itertools.count()


def arc_observation_pair(
    technology: TechnologyNode,
    inverter: EquivalentInverter,
    conditions: Sequence[InputCondition],
    delay_prior: TimingPrior,
    slew_prior: TimingPrior,
    delay_matrix: np.ndarray,
    slew_matrix: np.ndarray,
    space: Optional[InputSpace] = None,
) -> Tuple[BatchMapObservations, BatchMapObservations]:
    """Build the (delay, slew) MAP observation blocks of one arc.

    This is the single definition of how measured per-seed samples become
    Eq. 15 observations -- the per-seed effective currents at each fitting
    supply, the precision weights from the learned priors, the
    condition-major measurement matrices transposed to seed-major rows.
    :meth:`StatisticalCharacterizer.characterize` and the fused library
    pipeline both call it, so the two extraction paths can never drift.

    Parameters
    ----------
    technology:
        Target node (supplies the input-space normalization of the
        precision model).
    inverter:
        Seed-vectorized equivalent inverter of the arc.
    conditions:
        The ``k`` fitting conditions, in measurement order.
    delay_prior, slew_prior:
        Learned priors whose precision models weight the residuals.
    delay_matrix, slew_matrix:
        Measured responses of shape ``(k, n_seeds)`` (condition-major, the
        layout :func:`repro.spice.sweep.sweep_conditions` produces), SI
        seconds.
    space:
        Optional pre-built :class:`InputSpace` (avoids rebuilding it per
        arc in library-scale loops).
    """
    conditions = list(conditions)
    sin, cload, vdd = conditions_to_arrays(conditions)
    space = space if space is not None else InputSpace(technology)
    unit = space.normalize(conditions)
    delay_beta = delay_prior.precision_model.beta(unit)
    slew_beta = slew_prior.precision_model.beta(unit)

    delay_matrix = np.asarray(delay_matrix, dtype=float)
    slew_matrix = np.asarray(slew_matrix, dtype=float)
    if (delay_matrix.ndim != 2 or delay_matrix.shape[0] != len(conditions)
            or slew_matrix.shape != delay_matrix.shape):
        raise ValueError(
            f"measurement matrices must have shape ({len(conditions)}, "
            f"n_seeds); got {delay_matrix.shape} and {slew_matrix.shape}")
    n_seeds = delay_matrix.shape[1]

    # Per-seed effective currents at each fitting condition's supply,
    # evaluated in one broadcast over (k, n_seeds).
    ieff_matrix = np.broadcast_to(
        np.atleast_2d(np.asarray(
            inverter.effective_current(np.asarray(vdd)[:, np.newaxis]),
            dtype=float)),
        (len(conditions), n_seeds)).copy()

    delay_obs = BatchMapObservations(
        sin=sin, cload=cload, vdd=vdd, ieff=ieff_matrix.T,
        response=delay_matrix.T, beta=delay_beta)
    slew_obs = BatchMapObservations(
        sin=sin, cload=cload, vdd=vdd, ieff=ieff_matrix.T,
        response=slew_matrix.T, beta=slew_beta)
    return delay_obs, slew_obs


@dataclass(frozen=True)
class StatisticalCharacterization:
    """Per-seed compact-model parameters of one arc plus prediction helpers.

    Attributes
    ----------
    cell_name, arc_name:
        Identification of the characterized arc.
    delay_parameters, slew_parameters:
        Arrays of shape ``(n_seeds, 4)`` with one extracted parameter vector
        per Monte Carlo seed (natural units).
    inverter:
        The seed-vectorized equivalent inverter (needed to evaluate ``Ieff``
        per seed at prediction time).
    fitting_conditions:
        The ``k`` input conditions that were simulated.
    simulation_runs:
        Total simulator invocations spent (``k * n_seeds``).
    solver:
        Which extraction solver produced the parameters (``"batched"`` or
        ``"scipy"``).
    delay_converged, slew_converged:
        Optional per-seed convergence flags from the batched solver
        (``None`` for the scipy path, whose per-seed ``FitResult`` objects
        are not retained).
    """

    cell_name: str
    arc_name: str
    delay_parameters: np.ndarray
    slew_parameters: np.ndarray
    inverter: EquivalentInverter
    fitting_conditions: Tuple[InputCondition, ...]
    simulation_runs: int
    _model: CompactTimingModel = CompactTimingModel()
    solver: str = "batched"
    delay_converged: Optional[np.ndarray] = None
    slew_converged: Optional[np.ndarray] = None

    def __getstate__(self):
        # The Ieff-cache token is process-local: a pickled copy landing in
        # another process must not collide with tokens that process's own
        # counter already handed out, so it is dropped here and lazily
        # reissued by :meth:`_ieff_row` on first use.
        state = self.__dict__.copy()
        state.pop("_ieff_token", None)
        return state

    def __setstate__(self, state) -> None:
        # Bypasses the frozen dataclass's __setattr__ (plain dict update).
        self.__dict__.update(state)

    def unconverged_seeds(self) -> np.ndarray:
        """Seed indices whose delay or slew extraction failed to converge.

        Empty when everything converged, and also for the scipy path (which
        does not retain per-seed flags).
        """
        flags = np.zeros(self.n_seeds, dtype=bool)
        if self.delay_converged is not None:
            flags |= ~np.asarray(self.delay_converged, dtype=bool)
        if self.slew_converged is not None:
            flags |= ~np.asarray(self.slew_converged, dtype=bool)
        return np.nonzero(flags)[0]

    @property
    def n_seeds(self) -> int:
        """Number of Monte Carlo seeds."""
        return int(self.delay_parameters.shape[0])

    @property
    def k(self) -> int:
        """Number of fitting input conditions."""
        return len(self.fitting_conditions)

    # ------------------------------------------------------------------
    # Per-seed prediction
    # ------------------------------------------------------------------
    def _samples(self, condition: InputCondition, parameters: np.ndarray
                 ) -> np.ndarray:
        ieff = np.asarray(self.inverter.effective_current(condition.vdd),
                          dtype=float).reshape(-1)
        if ieff.size == 1:
            ieff = np.full(self.n_seeds, float(ieff[0]))
        # evaluate_array broadcasts per-seed parameter rows against the
        # per-seed effective currents, so the whole ensemble evaluates at once.
        return np.asarray(self._model.evaluate_array(
            parameters, condition.sin, condition.cload, condition.vdd, ieff),
            dtype=float).reshape(-1)

    def _ieff_row(self, vdd: float) -> np.ndarray:
        """Per-seed effective currents at one supply, cached per vdd value.

        Rows live in the runtime-registered ``"ieff"`` LRU, keyed by a
        token unique to this characterization instance plus the supply, so
        hits/misses/evictions are visible in ``runtime.cache_stats()`` and
        the memory is bounded globally rather than per instance.  (The
        token lives outside the frozen dataclass fields.)
        """
        token = self.__dict__.get("_ieff_token")
        if token is None:
            token = next(_IEFF_TOKENS)
            object.__setattr__(self, "_ieff_token", token)
        key = (token, float(vdd))
        row = _IEFF_CACHE.get(key)
        if row is None:
            row = np.asarray(self.inverter.effective_current(vdd),
                             dtype=float).reshape(-1)
            if row.size == 1:
                row = np.full(self.n_seeds, float(row[0]))
            _IEFF_CACHE.put(key, row, nbytes=row.nbytes)
        return row

    def _samples_many(self, sin: np.ndarray, cload: np.ndarray,
                      vdd: np.ndarray, parameters: np.ndarray) -> np.ndarray:
        sin = np.asarray(sin, dtype=float).reshape(-1)
        cload = np.asarray(cload, dtype=float).reshape(-1)
        vdd = np.asarray(vdd, dtype=float).reshape(-1)
        if sin.size != cload.size or sin.size != vdd.size:
            raise ValueError("sin, cload and vdd must have the same length")
        if sin.size and np.all(vdd == vdd[0]):
            ieff = np.broadcast_to(self._ieff_row(float(vdd[0])),
                                   (sin.size, self.n_seeds))
        else:
            ieff = np.broadcast_to(
                np.atleast_2d(np.asarray(
                    self.inverter.effective_current(vdd[:, np.newaxis]),
                    dtype=float)),
                (sin.size, self.n_seeds))
        # evaluate_array broadcasts the (n_seeds, 4) parameter matrix against
        # the (n_points, 1) condition columns and the (n_points, n_seeds)
        # effective currents: the whole ensemble at every operating point
        # evaluates in one array pass.
        return np.asarray(self._model.evaluate_array(
            parameters, sin[:, np.newaxis], cload[:, np.newaxis],
            vdd[:, np.newaxis], ieff), dtype=float)

    def delay_samples(self, condition: InputCondition) -> np.ndarray:
        """Per-seed delay predictions (seconds) at one operating point."""
        return self._samples(condition, self.delay_parameters)

    def slew_samples(self, condition: InputCondition) -> np.ndarray:
        """Per-seed output-slew predictions (seconds) at one operating point."""
        return self._samples(condition, self.slew_parameters)

    def delay_samples_many(self, sin: np.ndarray, cload: np.ndarray,
                           vdd: np.ndarray) -> np.ndarray:
        """Per-seed delays at many operating points, shape ``(n_points, n_seeds)``.

        The vectorized form of :meth:`delay_samples`: condition arrays in SI
        units, one row of seed samples per operating point.  This is the
        query path the batched STA/SSTA engines hit once per netlist level
        and cell type.
        """
        return self._samples_many(sin, cload, vdd, self.delay_parameters)

    def slew_samples_many(self, sin: np.ndarray, cload: np.ndarray,
                          vdd: np.ndarray) -> np.ndarray:
        """Per-seed output slews at many points, shape ``(n_points, n_seeds)``."""
        return self._samples_many(sin, cload, vdd, self.slew_parameters)

    def delay_statistics(self, condition: InputCondition) -> Dict[str, float]:
        """Mean / std / skew of the predicted delay distribution."""
        return _moments(self.delay_samples(condition))

    def slew_statistics(self, condition: InputCondition) -> Dict[str, float]:
        """Mean / std / skew of the predicted slew distribution."""
        return _moments(self.slew_samples(condition))

    def predict_statistics(self, conditions: Sequence[InputCondition]
                           ) -> Dict[str, np.ndarray]:
        """Vectorized mean/std prediction over many operating points.

        Returns a dictionary with arrays ``mu_delay``, ``sigma_delay``,
        ``mu_slew``, ``sigma_slew`` of length ``len(conditions)``.
        """
        sin, cload, vdd = conditions_to_arrays(list(conditions))
        delay = self.delay_samples_many(sin, cload, vdd)
        slew = self.slew_samples_many(sin, cload, vdd)
        return {"mu_delay": delay.mean(axis=1), "sigma_delay": delay.std(axis=1),
                "mu_slew": slew.mean(axis=1), "sigma_slew": slew.std(axis=1)}

    def mean_parameters(self, response: str = "delay") -> TimingModelParameters:
        """Average extracted parameters across seeds."""
        matrix = (self.delay_parameters if response == "delay"
                  else self.slew_parameters)
        return TimingModelParameters.from_array(matrix.mean(axis=0))


def _moments(values: np.ndarray) -> Dict[str, float]:
    values = np.asarray(values, dtype=float).reshape(-1)
    mean = float(np.mean(values))
    std = float(np.std(values))
    skew = float(np.mean(((values - mean) / std) ** 3)) if std > 0 else 0.0
    return {"mean": mean, "std": std, "skew": skew}


class StatisticalCharacterizer:
    """Proposed-flow statistical characterizer for one cell timing arc.

    ``ledger`` threads a :class:`~repro.runtime.accounting.RunLedger`
    through the run (``simulate`` / ``extract`` stage timings, simulation
    runs, solver iterations, cache activity); ``max_bytes`` bounds the
    batched engines' working sets via deterministic chunking (``None``
    defers to ``repro.runtime.configure(max_bytes=...)``).
    """

    def __init__(
        self,
        technology: TechnologyNode,
        cell: Cell,
        delay_prior: TimingPrior,
        slew_prior: TimingPrior,
        arc: Optional[TimingArc] = None,
        n_seeds: int = 200,
        rng: RandomState = None,
        counter: Optional[SimulationCounter] = None,
        solver: str = "batched",
        ledger: Optional[RunLedger] = None,
        max_bytes: Optional[int] = None,
        transient_engine: Optional[str] = None,
    ):
        if n_seeds < 2:
            raise ValueError("statistical characterization needs at least 2 seeds")
        if solver not in SOLVERS:
            raise ValueError(f"solver must be one of {SOLVERS}, got {solver!r}")
        self._technology = technology
        self._cell = cell
        self._arc = arc if arc is not None else cell.timing_arcs()[1]
        self._delay_prior = delay_prior
        self._slew_prior = slew_prior
        self._n_seeds = int(n_seeds)
        self._rng = ensure_rng(rng)
        self._counter = counter
        self._space = InputSpace(technology)
        self._model = CompactTimingModel()
        self._variation: Optional[VariationSample] = None
        self._solver = solver
        self._ledger = ledger
        self._max_bytes = max_bytes
        #: Transient integration engine of the simulate stage (``None``
        #: defers to ``runtime.configure(transient_engine=...)``).
        self._transient_engine = transient_engine

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_seeds(self) -> int:
        """Number of Monte Carlo seeds used per characterization."""
        return self._n_seeds

    @property
    def solver(self) -> str:
        """The default parameter-extraction solver (``"batched"`` / ``"scipy"``)."""
        return self._solver

    @property
    def variation(self) -> Optional[VariationSample]:
        """The Monte Carlo seeds of the latest characterization (if any)."""
        return self._variation

    def use_variation(self, variation: VariationSample) -> None:
        """Force a specific seed batch (so baselines share the same seeds)."""
        if variation.n_seeds < 2:
            raise ValueError("need at least 2 seeds")
        self._variation = variation
        self._n_seeds = variation.n_seeds

    # ------------------------------------------------------------------
    # Characterization
    # ------------------------------------------------------------------
    def characterize(self, conditions: Union[int, Sequence[InputCondition]],
                     rng: RandomState = None,
                     solver: Optional[str] = None) -> StatisticalCharacterization:
        """Run the statistical flow with ``k`` fitting conditions.

        Parameters
        ----------
        conditions:
            Number of fitting conditions (chosen by Latin hypercube) or an
            explicit condition list.
        rng:
            Random source for automatic condition selection.
        solver:
            Parameter-extraction solver for this run: ``"batched"`` (the
            seed-vectorized Levenberg-Marquardt solver of
            :mod:`repro.core.batch_map`, default) or ``"scipy"`` (one
            trust-region solve per seed and response; kept for parity
            testing).  ``None`` uses the constructor's choice.
        """
        solver = self._solver if solver is None else solver
        if solver not in SOLVERS:
            raise ValueError(f"solver must be one of {SOLVERS}, got {solver!r}")
        if isinstance(conditions, int):
            conditions = self._space.sample_lhs(conditions,
                                                ensure_rng(rng) if rng is not None
                                                else self._rng)
        conditions = list(conditions)
        if not conditions:
            raise ValueError("at least one fitting condition is required")

        if self._variation is None:
            self._variation = self._technology.variation.sample(self._n_seeds,
                                                                self._rng)
        variation = self._variation
        inverter = reduce_cell_cached(self._cell, self._technology,
                                      arc=self._arc, variation=variation)

        ledger = self._ledger
        runs_before = self._counter.total if self._counter is not None else 0
        with (ledger.stage("simulate") if ledger is not None else nullcontext()), \
             (ledger.caches() if ledger is not None else nullcontext()):
            measurements = sweep_conditions(
                self._cell, self._technology, [c.as_tuple() for c in conditions],
                arc=self._arc, variation=variation, counter=self._counter,
                counter_label=f"proposed_statistical:{self._cell.name}",
                engine=self._transient_engine,
                max_bytes=self._max_bytes,
                ledger=ledger,
            )
        runs = ((self._counter.total - runs_before) if self._counter is not None
                else len(conditions) * variation.n_seeds)
        if ledger is not None:
            ledger.add_simulations(
                runs, label=f"proposed_statistical:{self._cell.name}")

        delay_matrix = np.stack([np.asarray(m.delay).reshape(-1)
                                 for m in measurements], axis=0)
        slew_matrix = np.stack([np.asarray(m.output_slew).reshape(-1)
                                for m in measurements], axis=0)
        return self._extract(conditions, inverter, delay_matrix, slew_matrix,
                             runs, solver)

    def characterize_from_measurements(
        self,
        conditions: Sequence[InputCondition],
        delay_matrix: np.ndarray,
        slew_matrix: np.ndarray,
        solver: Optional[str] = None,
        simulation_runs: Optional[int] = None,
    ) -> StatisticalCharacterization:
        """Extraction-only flow: inject presimulated per-seed measurements.

        The fused library pipeline (and any caller that obtained the
        transient samples elsewhere -- a replayed cache, an external
        simulator, a shared mega-batch) hands the measured matrices straight
        to the MAP extraction, skipping the simulate stage entirely.  The
        result is indistinguishable from :meth:`characterize` run on the
        same samples.

        Parameters
        ----------
        conditions:
            The ``k`` fitting conditions the matrices were measured at.
        delay_matrix, slew_matrix:
            Measured responses of shape ``(k, n_seeds)`` (condition-major),
            SI seconds, with ``n_seeds`` matching the characterizer's seed
            batch.
        solver:
            Extraction solver override (as in :meth:`characterize`).
        simulation_runs:
            Run count recorded on the result; defaults to ``k * n_seeds``
            (what measuring the matrices costs), letting orchestrators that
            account runs themselves keep the per-arc bookkeeping identical.

        Raises
        ------
        ValueError
            If no seed batch is pinned (call :meth:`use_variation` first --
            the per-seed effective currents require the concrete seeds) or
            on shape mismatches.
        """
        solver = self._solver if solver is None else solver
        if solver not in SOLVERS:
            raise ValueError(f"solver must be one of {SOLVERS}, got {solver!r}")
        conditions = list(conditions)
        if not conditions:
            raise ValueError("at least one fitting condition is required")
        if self._variation is None:
            raise ValueError(
                "characterize_from_measurements needs a pinned seed batch; "
                "call use_variation() with the seeds the measurements were "
                "simulated with")
        delay_matrix = np.asarray(delay_matrix, dtype=float)
        slew_matrix = np.asarray(slew_matrix, dtype=float)
        expected = (len(conditions), self._variation.n_seeds)
        if delay_matrix.shape != expected or slew_matrix.shape != expected:
            raise ValueError(
                f"measurement matrices must have shape {expected}, got "
                f"{delay_matrix.shape} and {slew_matrix.shape}")
        inverter = reduce_cell_cached(self._cell, self._technology,
                                      arc=self._arc, variation=self._variation)
        runs = (int(simulation_runs) if simulation_runs is not None
                else len(conditions) * self._variation.n_seeds)
        return self._extract(conditions, inverter, delay_matrix, slew_matrix,
                             runs, solver)

    def _extract(self, conditions: List[InputCondition],
                 inverter: EquivalentInverter, delay_matrix: np.ndarray,
                 slew_matrix: np.ndarray, runs: int,
                 solver: str) -> StatisticalCharacterization:
        """The shared extract stage behind both characterization entry points."""
        ledger = self._ledger
        delay_obs, slew_obs = arc_observation_pair(
            self._technology, inverter, conditions, self._delay_prior,
            self._slew_prior, delay_matrix, slew_matrix, space=self._space)

        n_seeds = delay_obs.n_seeds
        delay_converged: Optional[np.ndarray] = None
        slew_converged: Optional[np.ndarray] = None
        with (ledger.stage("extract") if ledger is not None else nullcontext()):
            if solver == "batched":
                # One seed-vectorized Levenberg-Marquardt solve per response:
                # every seed is a row of the (n_seeds, k) observation matrices.
                delay_result = map_estimate_batch(
                    self._delay_prior, delay_obs, model=self._model,
                    max_bytes=self._max_bytes)
                slew_result = map_estimate_batch(
                    self._slew_prior, slew_obs, model=self._model,
                    max_bytes=self._max_bytes)
                delay_params = delay_result.parameters
                slew_params = slew_result.parameters
                delay_converged = delay_result.converged
                slew_converged = slew_result.converged
                if ledger is not None:
                    ledger.add_metric(
                        "solver_iterations",
                        int(delay_result.n_iterations.sum()
                            + slew_result.n_iterations.sum()))
            else:
                delay_params = np.empty((n_seeds, 4))
                slew_params = np.empty((n_seeds, 4))
                for seed in range(n_seeds):
                    seed_delay = MapObservations(
                        sin=delay_obs.sin, cload=delay_obs.cload,
                        vdd=delay_obs.vdd, ieff=delay_obs.ieff[seed],
                        response=delay_obs.response[seed], beta=delay_obs.beta)
                    seed_slew = MapObservations(
                        sin=slew_obs.sin, cload=slew_obs.cload,
                        vdd=slew_obs.vdd, ieff=slew_obs.ieff[seed],
                        response=slew_obs.response[seed], beta=slew_obs.beta)
                    delay_params[seed] = map_estimate(self._delay_prior, seed_delay,
                                                      model=self._model).params.as_array()
                    slew_params[seed] = map_estimate(self._slew_prior, seed_slew,
                                                     model=self._model).params.as_array()
                if ledger is not None:
                    ledger.add_metric("extraction_solves", 2 * n_seeds)

        return StatisticalCharacterization(
            cell_name=self._cell.name,
            arc_name=self._arc.name,
            delay_parameters=delay_params,
            slew_parameters=slew_params,
            inverter=inverter,
            fitting_conditions=tuple(conditions),
            simulation_runs=runs,
            solver=solver,
            delay_converged=delay_converged,
            slew_converged=slew_converged,
        )

    #: Alias so the statistical flow matches the nominal characterizer's
    #: ``fit()`` entry point.
    fit = characterize
