"""Learning priors from historical technology nodes (Section IV of the paper).

The flow of the paper's Fig. 4 has a "historical learning" phase: every cell
of every available historical library is characterized over its own input
space, the compact timing model is fitted per cell/arc, and the resulting
parameter vectors are fused into

* a conjugate Gaussian prior ``N(mu_t0, Sigma_t0)`` over the timing-model
  parameter mean of the *target* technology, and
* the input-condition-dependent model precision ``beta(xi)`` of Eq. 9.

Two fusion methods are provided:

``"empirical"``
    Pool all historical parameter vectors and take their sample mean and
    covariance (with optional shrinkage) -- the straightforward reading of
    the paper's equations.

``"bp"``
    Build a Gaussian factor graph with one variable per historical
    technology plus a shared global variable, attach each technology's
    parameter evidence to its node, link every node to the global variable
    with a technology-drift covariance, and run belief propagation.  The
    prior for the target technology is the *predictive* distribution of a
    new leaf: the global belief widened by the drift covariance.  On this
    star topology BP is exact, and the same machinery supports richer
    structure (chains ordered by production year, flavor sub-groups).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bayes.factor_graph import GaussianFactorGraph
from repro.bayes.gaussian import GaussianDensity
from repro.bayes.precision import PrecisionModel
from repro.cells.equivalent_inverter import reduce_cell_cached
from repro.cells.library import Cell, Transition
from repro.characterization.input_space import InputSpace
from repro.core.timing_model import (
    CompactTimingModel,
    FitResult,
    N_PARAMETERS,
    fit_least_squares,
)
from repro.spice.sweep import sweep_conditions
from repro.spice.testbench import SimulationCounter
from repro.technology.node import TechnologyNode
from repro.technology.sampling import latin_hypercube
from repro.utils.rng import RandomState, ensure_rng

#: Response names handled throughout the flow.
RESPONSES = ("delay", "slew")

#: Default number of reference conditions used to characterize each
#: historical library (the paper uses the full LUT grid; a moderate
#: space-filling set gives the same parameter estimates far cheaper).
DEFAULT_REFERENCE_CONDITIONS = 24


@dataclass(frozen=True)
class ArcFit:
    """Compact-model fits of one cell arc in one historical technology."""

    cell_name: str
    arc_name: str
    delay_fit: FitResult
    slew_fit: FitResult


@dataclass(frozen=True)
class HistoricalLibraryData:
    """Everything learned from characterizing one historical library.

    Attributes
    ----------
    technology_name:
        Name of the historical technology node.
    unit_conditions:
        Normalized (unit-cube) reference conditions shared across
        technologies, shape ``(n_conditions, 3)``.
    arc_fits:
        Per-arc compact-model fits.
    delay_residuals, slew_residuals:
        Relative model residuals averaged across arcs, one per reference
        condition (inputs to the Eq. 9 precision estimate).
    simulation_runs:
        Number of simulator invocations spent on this library.
    """

    technology_name: str
    unit_conditions: np.ndarray
    arc_fits: Tuple[ArcFit, ...]
    delay_residuals: np.ndarray
    slew_residuals: np.ndarray
    simulation_runs: int

    def parameter_matrix(self, response: str) -> np.ndarray:
        """Stack of fitted parameter vectors, shape ``(n_arcs, 4)``."""
        _check_response(response)
        rows = []
        for fit in self.arc_fits:
            result = fit.delay_fit if response == "delay" else fit.slew_fit
            rows.append(result.params.as_array())
        return np.array(rows)

    def mean_parameters(self, response: str) -> np.ndarray:
        """Average parameter vector across the library's arcs."""
        return self.parameter_matrix(response).mean(axis=0)

    def mean_fit_error(self, response: str) -> float:
        """Average of the per-arc mean absolute relative fitting errors."""
        _check_response(response)
        errors = [fit.delay_fit.mean_abs_relative_error if response == "delay"
                  else fit.slew_fit.mean_abs_relative_error
                  for fit in self.arc_fits]
        return float(np.mean(errors))


@dataclass(frozen=True)
class TimingPrior:
    """The learned prior for one response (delay or slew).

    Attributes
    ----------
    response:
        ``"delay"`` or ``"slew"``.
    density:
        Gaussian prior over the timing-model parameters (natural units).
    precision_model:
        The Eq. 9 model precision as a function of the normalized operating
        point.
    technology_names:
        Historical technologies that contributed.
    method:
        ``"bp"`` or ``"empirical"``.
    """

    response: str
    density: GaussianDensity
    precision_model: PrecisionModel
    technology_names: Tuple[str, ...]
    method: str

    def describe(self) -> str:
        """One-line summary of the prior."""
        stds = self.density.standard_deviations()
        return (f"{self.response} prior from {len(self.technology_names)} technologies "
                f"({self.method}): mean={np.round(self.density.mean, 3)}, "
                f"std={np.round(stds, 3)}")


def _check_response(response: str) -> None:
    if response not in RESPONSES:
        raise ValueError(f"response must be one of {RESPONSES}, got {response!r}")


def shared_reference_conditions(n_conditions: int = DEFAULT_REFERENCE_CONDITIONS,
                                rng: RandomState = 1234) -> np.ndarray:
    """Normalized reference conditions shared by all historical libraries.

    Using the *same* unit-cube points for every technology (each mapped into
    that technology's own physical ranges) is what makes the cross-technology
    residual variance of Eq. 9 well defined per condition.
    """
    if n_conditions < N_PARAMETERS + 1:
        raise ValueError(
            f"need at least {N_PARAMETERS + 1} reference conditions to fit the model"
        )
    return latin_hypercube(n_conditions, 3, ensure_rng(rng))


def characterize_historical_library(
    technology: TechnologyNode,
    cells: Sequence[Cell],
    unit_conditions: Optional[np.ndarray] = None,
    transitions: Sequence[Transition] = (Transition.FALL, Transition.RISE),
    counter: Optional[SimulationCounter] = None,
    engine: str = "batched",
) -> HistoricalLibraryData:
    """Characterize one historical library and fit the compact model per arc.

    For every cell and requested output transition (using the first input pin
    of each cell, as the paper models one timing arc at a time), the shared
    normalized reference conditions are mapped into the technology's ranges,
    simulated nominally, and fitted with plain least squares.

    Parameters
    ----------
    technology:
        The historical node.
    cells:
        Cells to characterize (e.g. the Table I set INV/NAND2/NOR2).
    unit_conditions:
        Normalized reference conditions; defaults to
        :func:`shared_reference_conditions`.
    transitions:
        Output transitions to cover.
    counter:
        Optional simulation-run accounting.
    engine:
        Transient engine for the per-arc reference sweeps: ``"batched"``
        (default) integrates each arc's whole reference-condition set in one
        2-D RK4 pass of :mod:`repro.spice.batch`, so prior learning rides
        the batched engine's speedup; ``"serial"`` keeps the per-condition
        reference integrator for equivalence runs.
    """
    if unit_conditions is None:
        unit_conditions = shared_reference_conditions()
    unit_conditions = np.atleast_2d(np.asarray(unit_conditions, dtype=float))
    space = InputSpace(technology)
    lows = np.array([r[0] for r in space.ranges])
    highs = np.array([r[1] for r in space.ranges])
    physical = lows + unit_conditions * (highs - lows)
    conditions = [tuple(row) for row in physical]

    local_counter = counter if counter is not None else SimulationCounter()
    runs_before = local_counter.total

    arc_fits: List[ArcFit] = []
    delay_residual_rows: List[np.ndarray] = []
    slew_residual_rows: List[np.ndarray] = []

    for cell in cells:
        for transition in transitions:
            arc = cell.arc(cell.input_pins[0], Transition(transition))
            measurements = sweep_conditions(
                cell, technology, conditions, arc=arc,
                counter=local_counter,
                counter_label=f"historical:{technology.name}:{cell.name}",
                engine=engine,
            )
            sin = physical[:, 0]
            cload = physical[:, 1]
            vdd = physical[:, 2]
            inverter = reduce_cell_cached(cell, technology, arc=arc)
            ieff = np.asarray(inverter.effective_current(vdd),
                              dtype=float).reshape(-1)
            delays = np.array([m.nominal_delay() for m in measurements])
            slews = np.array([m.nominal_slew() for m in measurements])

            delay_fit = fit_least_squares(sin, cload, vdd, ieff, delays)
            slew_fit = fit_least_squares(sin, cload, vdd, ieff, slews)
            arc_fits.append(ArcFit(cell_name=cell.name, arc_name=arc.name,
                                   delay_fit=delay_fit, slew_fit=slew_fit))
            delay_residual_rows.append(delay_fit.residuals)
            slew_residual_rows.append(slew_fit.residuals)

    delay_residuals = np.mean(np.array(delay_residual_rows), axis=0)
    slew_residuals = np.mean(np.array(slew_residual_rows), axis=0)
    runs = local_counter.total - runs_before

    return HistoricalLibraryData(
        technology_name=technology.name,
        unit_conditions=unit_conditions,
        arc_fits=tuple(arc_fits),
        delay_residuals=delay_residuals,
        slew_residuals=slew_residuals,
        simulation_runs=runs,
    )


def learn_prior(
    historical: Sequence[HistoricalLibraryData],
    response: str = "delay",
    method: str = "bp",
    shrinkage: float = 0.1,
    prior_widening: float = 1.0,
) -> TimingPrior:
    """Fuse historical libraries into a :class:`TimingPrior`.

    Parameters
    ----------
    historical:
        Characterized historical libraries (at least one).
    response:
        ``"delay"`` or ``"slew"``.
    method:
        ``"bp"`` (Gaussian belief propagation over the technology star) or
        ``"empirical"`` (pooled sample mean / covariance).
    shrinkage:
        Covariance shrinkage toward the diagonal, useful because the number
        of historical technologies is small.
    prior_widening:
        Multiplier applied to the final prior covariance (ablation knob; 1.0
        reproduces the paper's flow).

    Raises
    ------
    ValueError
        If no historical data is given or the method is unknown.
    """
    _check_response(response)
    if not historical:
        raise ValueError("at least one historical library is required")
    if method not in ("bp", "empirical"):
        raise ValueError(f"method must be 'bp' or 'empirical', got {method!r}")
    if prior_widening <= 0.0:
        raise ValueError("prior_widening must be positive")

    technology_names = tuple(data.technology_name for data in historical)
    pooled = np.vstack([data.parameter_matrix(response) for data in historical])

    if method == "empirical" or len(historical) == 1:
        density = GaussianDensity.from_samples(pooled, shrinkage=shrinkage,
                                               jitter=1e-8)
        effective_method = "empirical"
    else:
        per_tech_means = np.array([data.mean_parameters(response)
                                   for data in historical])
        # Technology-drift covariance: spread of per-technology means, with
        # shrinkage and a floor so the star links never collapse.
        drift = np.cov(per_tech_means, rowvar=False, ddof=1)
        drift = np.atleast_2d(drift)
        drift = (1.0 - shrinkage) * drift + shrinkage * np.diag(np.diag(drift))
        drift = drift + 1e-8 * np.eye(N_PARAMETERS)

        leaves: Dict[str, GaussianDensity] = {}
        for data in historical:
            matrix = data.parameter_matrix(response)
            within = GaussianDensity.from_samples(matrix, shrinkage=shrinkage,
                                                  jitter=1e-8)
            # Evidence of the technology mean: sample mean with standard
            # error of the mean as covariance.
            sem_cov = within.covariance / max(matrix.shape[0], 1)
            leaves[data.technology_name] = GaussianDensity(within.mean,
                                                           sem_cov + 1e-10 * np.eye(N_PARAMETERS))
        graph = GaussianFactorGraph.star("global", leaves, drift)
        beliefs = graph.run_belief_propagation()
        global_belief = beliefs["global"]
        # Predictive distribution for a new technology node: global belief
        # widened by the technology-drift covariance.
        density = GaussianDensity(global_belief.mean,
                                  global_belief.covariance + drift)
        effective_method = "bp"

    if prior_widening != 1.0:
        density = density.scaled_covariance(prior_widening)

    residual_key = "delay_residuals" if response == "delay" else "slew_residuals"
    residual_matrix = np.array([getattr(data, residual_key) for data in historical])
    precision_model = PrecisionModel.from_residuals(historical[0].unit_conditions,
                                                    residual_matrix)
    return TimingPrior(
        response=response,
        density=density,
        precision_model=precision_model,
        technology_names=technology_names,
        method=effective_method,
    )


def learn_priors(historical: Sequence[HistoricalLibraryData], method: str = "bp",
                 shrinkage: float = 0.1) -> Dict[str, TimingPrior]:
    """Learn both the delay and the slew prior from the same historical data."""
    return {response: learn_prior(historical, response=response, method=method,
                                  shrinkage=shrinkage)
            for response in RESPONSES}
