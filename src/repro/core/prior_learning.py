"""Learning priors from historical technology nodes (Section IV of the paper).

The flow of the paper's Fig. 4 has a "historical learning" phase: every cell
of every available historical library is characterized over its own input
space, the compact timing model is fitted per cell/arc, and the resulting
parameter vectors are fused into

* a conjugate Gaussian prior ``N(mu_t0, Sigma_t0)`` over the timing-model
  parameter mean of the *target* technology, and
* the input-condition-dependent model precision ``beta(xi)`` of Eq. 9.

Two fusion methods are provided:

``"empirical"``
    Pool all historical parameter vectors and take their sample mean and
    covariance (with optional shrinkage) -- the straightforward reading of
    the paper's equations.

``"bp"``
    Build a Gaussian factor graph with one variable per historical
    technology plus a shared global variable, attach each technology's
    parameter evidence to its node, link every node to the global variable
    with a technology-drift covariance, and run belief propagation.  The
    prior for the target technology is the *predictive* distribution of a
    new leaf: the global belief widened by the drift covariance.  On this
    star topology BP is exact, and the same machinery supports richer
    structure (chains ordered by production year, flavor sub-groups).

Both halves of the phase run fleet-scale batched:

* :func:`characterize_historical_library` (default ``engine="fused"``)
  pushes every (cell, arc, condition) row of a historical node through the
  shared :class:`~repro.core.simulation_plan.SimulationPlan` -- one
  signature-grouped mega-batched RK4 pass per equivalent-inverter footprint
  with cross-arc dedup -- and fits all arcs in one stacked least-squares
  solve (:func:`repro.core.batch_map.fit_least_squares_stacked`);
* :func:`learn_priors` and :func:`learn_class_priors` stack every
  (response x arc-class) star graph into one
  :class:`~repro.bayes.factor_graph.BatchedFactorGraph` run, so a fleet of
  priors costs one batched BP call instead of one Python message loop per
  prior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bayes.factor_graph import BatchedFactorGraph, GaussianFactorGraph
from repro.bayes.gaussian import GaussianDensity
from repro.bayes.precision import PrecisionModel
from repro.cells.equivalent_inverter import reduce_cell_cached
from repro.cells.library import Cell, Transition
from repro.characterization.input_space import InputSpace
from repro.core.simulation_plan import SimulationPlan
from repro.core.timing_model import (
    CompactTimingModel,
    FitResult,
    N_PARAMETERS,
    fit_least_squares,
)
from repro.runtime.accounting import RunLedger
from repro.runtime.executor import get_executor
from repro.runtime.resilience import (
    FailureReport,
    RetryPolicy,
    resolve_strict,
    run_with_retry,
)
from repro.spice.sweep import sweep_conditions
from repro.spice.testbench import SimulationCounter
from repro.technology.node import TechnologyNode
from repro.technology.sampling import latin_hypercube
from repro.utils.rng import RandomState, ensure_rng

#: Response names handled throughout the flow.
RESPONSES = ("delay", "slew")

#: Default number of reference conditions used to characterize each
#: historical library (the paper uses the full LUT grid; a moderate
#: space-filling set gives the same parameter estimates far cheaper).
DEFAULT_REFERENCE_CONDITIONS = 24

#: Engines of :func:`characterize_historical_library`.
HISTORICAL_ENGINES = ("fused", "batched", "serial")

#: Belief-propagation engines of :func:`learn_priors` /
#: :func:`learn_class_priors` (forwarded to
#: :meth:`repro.bayes.factor_graph.BatchedFactorGraph.run_belief_propagation`).
PRIOR_ENGINES = ("batched", "loop")


@dataclass(frozen=True)
class ArcFit:
    """Compact-model fits of one cell arc in one historical technology."""

    cell_name: str
    arc_name: str
    delay_fit: FitResult
    slew_fit: FitResult


@dataclass(frozen=True)
class HistoricalLibraryData:
    """Everything learned from characterizing one historical library.

    Attributes
    ----------
    technology_name:
        Name of the historical technology node.
    unit_conditions:
        Normalized (unit-cube) reference conditions shared across
        technologies, shape ``(n_conditions, 3)``.
    arc_fits:
        Per-arc compact-model fits.
    delay_residuals, slew_residuals:
        Relative model residuals averaged across arcs, one per reference
        condition (inputs to the Eq. 9 precision estimate).
    simulation_runs:
        Number of simulator invocations spent on this library.
    failures:
        Structured :class:`~repro.runtime.resilience.FailureReport` records
        of arcs that degraded (quarantined reference conditions) or were
        dropped under ``strict=False``; empty on a clean or strict run.
    """

    technology_name: str
    unit_conditions: np.ndarray
    arc_fits: Tuple[ArcFit, ...]
    delay_residuals: np.ndarray
    slew_residuals: np.ndarray
    simulation_runs: int
    failures: Tuple[FailureReport, ...] = ()

    def parameter_matrix(self, response: str) -> np.ndarray:
        """Stack of fitted parameter vectors, shape ``(n_arcs, 4)``."""
        _check_response(response)
        rows = []
        for fit in self.arc_fits:
            result = fit.delay_fit if response == "delay" else fit.slew_fit
            rows.append(result.params.as_array())
        return np.array(rows)

    def mean_parameters(self, response: str) -> np.ndarray:
        """Average parameter vector across the library's arcs."""
        return self.parameter_matrix(response).mean(axis=0)

    def mean_fit_error(self, response: str) -> float:
        """Average of the per-arc mean absolute relative fitting errors."""
        _check_response(response)
        errors = [fit.delay_fit.mean_abs_relative_error if response == "delay"
                  else fit.slew_fit.mean_abs_relative_error
                  for fit in self.arc_fits]
        return float(np.mean(errors))


@dataclass(frozen=True)
class TimingPrior:
    """The learned prior for one response (delay or slew).

    Attributes
    ----------
    response:
        ``"delay"`` or ``"slew"``.
    density:
        Gaussian prior over the timing-model parameters (natural units).
    precision_model:
        The Eq. 9 model precision as a function of the normalized operating
        point.
    technology_names:
        Historical technologies that contributed.
    method:
        ``"bp"`` or ``"empirical"``.
    """

    response: str
    density: GaussianDensity
    precision_model: PrecisionModel
    technology_names: Tuple[str, ...]
    method: str

    def describe(self) -> str:
        """One-line summary of the prior."""
        stds = self.density.standard_deviations()
        return (f"{self.response} prior from {len(self.technology_names)} technologies "
                f"({self.method}): mean={np.round(self.density.mean, 3)}, "
                f"std={np.round(stds, 3)}")

    def fingerprint(self) -> str:
        """Stable SHA-256 digest of everything that shapes this prior.

        Two priors with the same fingerprint produce bit-identical MAP
        solves; the digest goes into durable cache keys and the
        checkpoint run signature, so it must be identical across processes
        (no ``hash()``/``repr`` anywhere -- see
        :func:`repro.runtime.persist.stable_key_digest`).
        """
        from repro.runtime.persist import stable_key_digest

        return stable_key_digest((
            "timing_prior",
            self.response,
            self.method,
            tuple(self.technology_names),
            np.asarray(self.density.mean, dtype=float),
            np.asarray(self.density.covariance, dtype=float),
            np.asarray(self.precision_model.unit_conditions, dtype=float),
            np.asarray(self.precision_model.precisions, dtype=float),
        ))


def _check_response(response: str) -> None:
    if response not in RESPONSES:
        raise ValueError(f"response must be one of {RESPONSES}, got {response!r}")


def shared_reference_conditions(n_conditions: int = DEFAULT_REFERENCE_CONDITIONS,
                                rng: RandomState = 1234) -> np.ndarray:
    """Normalized reference conditions shared by all historical libraries.

    Using the *same* unit-cube points for every technology (each mapped into
    that technology's own physical ranges) is what makes the cross-technology
    residual variance of Eq. 9 well defined per condition.
    """
    if n_conditions < N_PARAMETERS + 1:
        raise ValueError(
            f"need at least {N_PARAMETERS + 1} reference conditions to fit the model"
        )
    return latin_hypercube(n_conditions, 3, ensure_rng(rng))


def _characterize_fused_historical(
    technology: TechnologyNode,
    arcs: Sequence[Tuple[Cell, object]],
    physical: np.ndarray,
    conditions: Sequence[tuple],
    counter: SimulationCounter,
    ledger: RunLedger,
    max_bytes: Optional[int],
    strict: bool = True,
    retry_policy: Optional[RetryPolicy] = None,
) -> Tuple[List[Optional[ArcFit]], List[Optional[np.ndarray]],
           List[Optional[np.ndarray]], List[FailureReport]]:
    """Fused engine: one global simulation plan + one stacked model fit.

    Every (cell, arc, condition) row of the historical node flows through
    the shared :class:`SimulationPlan` (signature grouping dedups rows of
    footprint-twin arcs, the simulation cache fills repeat visits), then all
    (arc x response) compact models are fitted in one stacked
    Levenberg-Marquardt solve.

    With ``strict=False`` broken rows are quarantined instead of aborting:
    degraded arcs are fitted on their surviving reference conditions (with
    NaN placeholders padding their residual rows back to full length), arcs
    with no surviving conditions come back as ``None``, and every
    degradation lands as a :class:`FailureReport` in the fourth return
    value.  Clean arcs keep their full stacked blocks either way.
    """
    # Deferred: batch_map imports TimingPrior from this module.
    from repro.core.batch_map import (
        BatchMapObservations,
        fit_least_squares_stacked,
    )

    plan = SimulationPlan(technology, variation=None,
                          integrate_stage="priors:integrate",
                          on_failure="raise" if strict else "quarantine")
    with ledger.stage("priors:plan"), ledger.caches():
        for cell, arc in arcs:
            plan.add_job(cell, arc, conditions)
        plan.record_metrics(ledger, prefix="priors")
    if plan.needs_simulation:
        executor = get_executor("serial", retry_policy=retry_policy)
        with ledger.stage("priors:simulate"):
            plan.simulate(executor, ledger, max_bytes=max_bytes)
        with ledger.caches():
            plan.finalize()

    for cell, _arc in arcs:
        counter.add(len(conditions),
                    label=f"historical:{technology.name}:{cell.name}")

    n_cond = len(conditions)
    failures: List[FailureReport] = []
    job_kept: List[Optional[List[int]]] = []
    for job, (cell, arc) in enumerate(arcs):
        bad = plan.quarantined_rows.get(job)
        if not bad:
            job_kept.append(list(range(n_cond)))
            continue
        kept = [cond for cond in range(n_cond) if cond not in set(bad)]
        detail = (f"{len(bad)} of {n_cond} reference conditions quarantined "
                  f"(indices {bad})")
        if not kept:
            detail += "; no conditions survived, arc dropped"
        failures.append(FailureReport(
            unit=f"{technology.name}:{cell.name}:{arc.name}",
            stage="simulate", error=detail, error_type="QuarantinedRows"))
        job_kept.append(kept if kept else None)

    sin = physical[:, 0]
    cload = physical[:, 1]
    vdd = physical[:, 2]
    with ledger.stage("priors:fit"):
        blocks: List[BatchMapObservations] = []
        block_jobs: List[int] = []
        degraded_blocks: Dict[int, tuple] = {}
        for job in range(len(arcs)):
            kept = job_kept[job]
            if kept is None:
                continue
            ieff = np.asarray(plan.inverters[job].effective_current(vdd),
                              dtype=float).reshape(-1)
            full = len(kept) == n_cond
            rows = None if full else np.array(kept)
            delays = np.array([plan.job_delays[job][cond].reshape(-1)[0]
                               for cond in kept])
            slews = np.array([plan.job_slews[job][cond].reshape(-1)[0]
                              for cond in kept])
            pair = (BatchMapObservations(
                        sin=sin if full else sin[rows],
                        cload=cload if full else cload[rows],
                        vdd=vdd if full else vdd[rows],
                        ieff=ieff if full else ieff[rows],
                        response=delays[np.newaxis, :]),
                    BatchMapObservations(
                        sin=sin if full else sin[rows],
                        cload=cload if full else cload[rows],
                        vdd=vdd if full else vdd[rows],
                        ieff=ieff if full else ieff[rows],
                        response=slews[np.newaxis, :]))
            if full:
                block_jobs.append(job)
                blocks.extend(pair)
            else:
                # Fewer conditions than the stacked blocks (which need a
                # uniform k): the degraded arc gets its own solve.  Blocks
                # are independent rows, so the stacked peers are unaffected.
                degraded_blocks[job] = pair
        delay_fits: Dict[int, object] = {}
        slew_fits: Dict[int, object] = {}
        if blocks:
            results = fit_least_squares_stacked(blocks, max_bytes=max_bytes)
            for index, job in enumerate(block_jobs):
                delay_fits[job] = results[2 * index].fit_result(0)
                slew_fits[job] = results[2 * index + 1].fit_result(0)
        for job, (delay_obs, slew_obs) in degraded_blocks.items():
            delay_fits[job] = fit_least_squares_stacked(
                [delay_obs], max_bytes=max_bytes)[0].fit_result(0)
            slew_fits[job] = fit_least_squares_stacked(
                [slew_obs], max_bytes=max_bytes)[0].fit_result(0)

    arc_fits: List[Optional[ArcFit]] = []
    delay_residual_rows: List[Optional[np.ndarray]] = []
    slew_residual_rows: List[Optional[np.ndarray]] = []
    for job, (cell, arc) in enumerate(arcs):
        if job not in delay_fits:
            arc_fits.append(None)
            delay_residual_rows.append(None)
            slew_residual_rows.append(None)
            continue
        delay_fit = delay_fits[job]
        slew_fit = slew_fits[job]
        arc_fits.append(ArcFit(cell_name=cell.name, arc_name=arc.name,
                               delay_fit=delay_fit, slew_fit=slew_fit))
        kept = job_kept[job]
        if len(kept) == n_cond:
            delay_residual_rows.append(delay_fit.residuals)
            slew_residual_rows.append(slew_fit.residuals)
        else:
            # Pad back to full length with NaN at the quarantined
            # conditions; the caller's cross-arc average skips them there.
            delay_row = np.full(n_cond, np.nan)
            delay_row[kept] = delay_fit.residuals
            slew_row = np.full(n_cond, np.nan)
            slew_row[kept] = slew_fit.residuals
            delay_residual_rows.append(delay_row)
            slew_residual_rows.append(slew_row)
    return arc_fits, delay_residual_rows, slew_residual_rows, failures


def characterize_historical_library(
    technology: TechnologyNode,
    cells: Sequence[Cell],
    unit_conditions: Optional[np.ndarray] = None,
    transitions: Sequence[Transition] = (Transition.FALL, Transition.RISE),
    counter: Optional[SimulationCounter] = None,
    engine: str = "fused",
    ledger: Optional[RunLedger] = None,
    max_bytes: Optional[int] = None,
    strict: Optional[bool] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> HistoricalLibraryData:
    """Characterize one historical library and fit the compact model per arc.

    For every cell and requested output transition (using the first input pin
    of each cell, as the paper models one timing arc at a time), the shared
    normalized reference conditions are mapped into the technology's ranges,
    simulated nominally, and fitted with plain least squares.

    Parameters
    ----------
    technology:
        The historical node.
    cells:
        Cells to characterize (e.g. the Table I set INV/NAND2/NOR2).
    unit_conditions:
        Normalized reference conditions; defaults to
        :func:`shared_reference_conditions`.
    transitions:
        Output transitions to cover.
    counter:
        Optional simulation-run accounting.
    engine:
        ``"fused"`` (default) flattens every (cell, arc, condition) row into
        one :class:`SimulationPlan` -- signature-grouped mega-batched RK4
        with cross-arc dedup and cache reuse -- and fits all arcs in one
        stacked least-squares solve; ``"batched"`` integrates each arc's
        reference-condition set in its own 2-D RK4 pass; ``"serial"`` keeps
        the per-condition reference integrator for equivalence runs.
    ledger:
        Optional :class:`RunLedger`; stages ``priors:plan``,
        ``priors:simulate``/``priors:integrate`` and ``priors:fit`` plus
        per-node simulation counts are recorded on it.
    max_bytes:
        Memory budget forwarded to the fused planner and stacked fit.
    strict:
        ``True`` (the default, also via ``REPRO_STRICT``) fails fast on the
        first broken arc.  ``False`` degrades gracefully: quarantined rows
        are excluded from the affected arc's fit (NaN-padded out of the
        Eq. 9 residual average), arcs that fail completely are dropped, and
        every degradation lands as a
        :class:`~repro.runtime.resilience.FailureReport` on the result's
        ``failures`` and the ledger.
    retry_policy:
        Optional :class:`~repro.runtime.resilience.RetryPolicy` re-running
        failed work (per simulation chunk under the fused engine, per arc
        otherwise) before it counts as broken.
    """
    if engine not in HISTORICAL_ENGINES:
        raise ValueError(
            f"engine must be one of {HISTORICAL_ENGINES}, got {engine!r}")
    if unit_conditions is None:
        unit_conditions = shared_reference_conditions()
    unit_conditions = np.atleast_2d(np.asarray(unit_conditions, dtype=float))
    space = InputSpace(technology)
    lows = np.array([r[0] for r in space.ranges])
    highs = np.array([r[1] for r in space.ranges])
    physical = lows + unit_conditions * (highs - lows)
    conditions = [tuple(row) for row in physical]

    strict_mode = resolve_strict(strict)
    local_counter = counter if counter is not None else SimulationCounter()
    run_ledger = ledger if ledger is not None else RunLedger()
    runs_before = local_counter.total
    failures: List[FailureReport] = []

    arcs = [(cell, cell.arc(cell.input_pins[0], Transition(transition)))
            for cell in cells for transition in transitions]

    if engine == "fused":
        arc_fits, delay_residual_rows, slew_residual_rows, failures = (
            _characterize_fused_historical(technology, arcs, physical,
                                           conditions, local_counter,
                                           run_ledger, max_bytes,
                                           strict=strict_mode,
                                           retry_policy=retry_policy))
        arc_fits = [fit for fit in arc_fits if fit is not None]
        delay_residual_rows = [row for row in delay_residual_rows
                               if row is not None]
        slew_residual_rows = [row for row in slew_residual_rows
                              if row is not None]
    else:
        arc_fits = []
        delay_residual_rows = []
        slew_residual_rows = []
        sin = physical[:, 0]
        cload = physical[:, 1]
        vdd = physical[:, 2]
        for cell, arc in arcs:

            def attempt(cell=cell, arc=arc):
                with run_ledger.stage("priors:simulate"):
                    measurements = sweep_conditions(
                        cell, technology, conditions, arc=arc,
                        counter=local_counter,
                        counter_label=(
                            f"historical:{technology.name}:{cell.name}"),
                        engine=engine,
                    )
                with run_ledger.stage("priors:fit"):
                    inverter = reduce_cell_cached(cell, technology, arc=arc)
                    ieff = np.asarray(inverter.effective_current(vdd),
                                      dtype=float).reshape(-1)
                    delays = np.array([m.nominal_delay()
                                       for m in measurements])
                    slews = np.array([m.nominal_slew() for m in measurements])

                    delay_fit = fit_least_squares(sin, cload, vdd, ieff,
                                                  delays)
                    slew_fit = fit_least_squares(sin, cload, vdd, ieff, slews)
                return delay_fit, slew_fit

            unit = f"{technology.name}:{cell.name}:{arc.name}"
            try:
                delay_fit, slew_fit = run_with_retry(
                    attempt, retry_policy, site=f"historical:{unit}",
                    ledger=run_ledger)
            except Exception as error:
                if strict_mode:
                    raise
                failures.append(FailureReport.from_exception(
                    unit, "characterize", error))
                continue
            arc_fits.append(ArcFit(cell_name=cell.name, arc_name=arc.name,
                                   delay_fit=delay_fit, slew_fit=slew_fit))
            delay_residual_rows.append(delay_fit.residuals)
            slew_residual_rows.append(slew_fit.residuals)

    for report in failures:
        run_ledger.add_failure(report)
    if not arc_fits:
        raise RuntimeError(
            "no arcs survived historical characterization; failures: "
            + "; ".join(report.describe() for report in failures))

    delay_matrix = np.array(delay_residual_rows)
    slew_matrix = np.array(slew_residual_rows)
    if np.isnan(delay_matrix).any() or np.isnan(slew_matrix).any():
        # Degraded arcs contribute no residual at their quarantined
        # conditions; the cross-arc average skips them there.  A condition
        # that no arc survived at leaves the Eq. 9 precision estimate
        # undefined -- no graceful fallback exists for that.
        if (np.isnan(delay_matrix).all(axis=0).any()
                or np.isnan(slew_matrix).all(axis=0).any()):
            raise RuntimeError(
                "every surviving arc was quarantined at some reference "
                "condition; the Eq. 9 residual estimate is undefined")
        delay_residuals = np.nanmean(delay_matrix, axis=0)
        slew_residuals = np.nanmean(slew_matrix, axis=0)
    else:
        delay_residuals = np.mean(delay_matrix, axis=0)
        slew_residuals = np.mean(slew_matrix, axis=0)
    runs = local_counter.total - runs_before
    run_ledger.add_simulations(runs, label=f"priors:{technology.name}")

    return HistoricalLibraryData(
        technology_name=technology.name,
        unit_conditions=unit_conditions,
        arc_fits=tuple(arc_fits),
        delay_residuals=delay_residuals,
        slew_residuals=slew_residuals,
        simulation_runs=runs,
        failures=tuple(failures),
    )


def characterize_historical_libraries(
    technologies: Sequence[TechnologyNode],
    cells: Sequence[Cell],
    unit_conditions: Optional[np.ndarray] = None,
    transitions: Sequence[Transition] = (Transition.FALL, Transition.RISE),
    counter: Optional[SimulationCounter] = None,
    engine: str = "fused",
    ledger: Optional[RunLedger] = None,
    max_bytes: Optional[int] = None,
    strict: Optional[bool] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> List[HistoricalLibraryData]:
    """Characterize several historical nodes with shared reference conditions.

    The same normalized conditions, simulation counter and ledger are
    threaded through every node, so fleet-level accounting (per-node
    ``priors:<technology>`` simulation counts, dedup/cache metrics) lands in
    one place.
    """
    if unit_conditions is None:
        unit_conditions = shared_reference_conditions()
    return [characterize_historical_library(
                technology, cells, unit_conditions=unit_conditions,
                transitions=transitions, counter=counter, engine=engine,
                ledger=ledger, max_bytes=max_bytes, strict=strict,
                retry_policy=retry_policy)
            for technology in technologies]


def _star_inputs(
    named_matrices: Sequence[Tuple[str, np.ndarray]],
    shrinkage: float,
) -> Tuple[Dict[str, GaussianDensity], np.ndarray]:
    """Leaf evidence and drift covariance of one technology-star graph.

    ``named_matrices`` pairs each technology name with its ``(n_arcs, 4)``
    parameter matrix; the order is the evidence-registration order, exactly
    as :func:`learn_prior` builds its scalar star.
    """
    per_tech_means = np.array([matrix.mean(axis=0)
                               for _name, matrix in named_matrices])
    # Technology-drift covariance: spread of per-technology means, with
    # shrinkage and a floor so the star links never collapse.
    drift = np.cov(per_tech_means, rowvar=False, ddof=1)
    drift = np.atleast_2d(drift)
    drift = (1.0 - shrinkage) * drift + shrinkage * np.diag(np.diag(drift))
    drift = drift + 1e-8 * np.eye(N_PARAMETERS)

    leaves: Dict[str, GaussianDensity] = {}
    for name, matrix in named_matrices:
        within = GaussianDensity.from_samples(matrix, shrinkage=shrinkage,
                                              jitter=1e-8)
        # Evidence of the technology mean: sample mean with standard
        # error of the mean as covariance.
        sem_cov = within.covariance / max(matrix.shape[0], 1)
        leaves[name] = GaussianDensity(within.mean,
                                       sem_cov + 1e-10 * np.eye(N_PARAMETERS))
    return leaves, drift


def _finish_prior(
    historical: Sequence[HistoricalLibraryData],
    response: str,
    density: GaussianDensity,
    method: str,
    prior_widening: float,
) -> TimingPrior:
    """Widen, attach the Eq. 9 precision model and wrap as a prior."""
    if prior_widening != 1.0:
        density = density.scaled_covariance(prior_widening)
    residual_key = "delay_residuals" if response == "delay" else "slew_residuals"
    residual_matrix = np.array([getattr(data, residual_key)
                                for data in historical])
    precision_model = PrecisionModel.from_residuals(
        historical[0].unit_conditions, residual_matrix)
    return TimingPrior(
        response=response,
        density=density,
        precision_model=precision_model,
        technology_names=tuple(data.technology_name for data in historical),
        method=method,
    )


def learn_prior(
    historical: Sequence[HistoricalLibraryData],
    response: str = "delay",
    method: str = "bp",
    shrinkage: float = 0.1,
    prior_widening: float = 1.0,
) -> TimingPrior:
    """Fuse historical libraries into a :class:`TimingPrior`.

    Parameters
    ----------
    historical:
        Characterized historical libraries (at least one).
    response:
        ``"delay"`` or ``"slew"``.
    method:
        ``"bp"`` (Gaussian belief propagation over the technology star) or
        ``"empirical"`` (pooled sample mean / covariance).
    shrinkage:
        Covariance shrinkage toward the diagonal, useful because the number
        of historical technologies is small.
    prior_widening:
        Multiplier applied to the final prior covariance (ablation knob; 1.0
        reproduces the paper's flow).

    Raises
    ------
    ValueError
        If no historical data is given or the method is unknown.
    """
    _check_response(response)
    if not historical:
        raise ValueError("at least one historical library is required")
    if method not in ("bp", "empirical"):
        raise ValueError(f"method must be 'bp' or 'empirical', got {method!r}")
    if prior_widening <= 0.0:
        raise ValueError("prior_widening must be positive")

    if method == "empirical" or len(historical) == 1:
        pooled = np.vstack([data.parameter_matrix(response)
                            for data in historical])
        density = GaussianDensity.from_samples(pooled, shrinkage=shrinkage,
                                               jitter=1e-8)
        effective_method = "empirical"
    else:
        leaves, drift = _star_inputs(
            [(data.technology_name, data.parameter_matrix(response))
             for data in historical], shrinkage)
        graph = GaussianFactorGraph.star("global", leaves, drift)
        beliefs = graph.run_belief_propagation()
        global_belief = beliefs["global"]
        # Predictive distribution for a new technology node: global belief
        # widened by the technology-drift covariance.
        density = GaussianDensity(global_belief.mean,
                                  global_belief.covariance + drift)
        effective_method = "bp"

    return _finish_prior(historical, response, density, effective_method,
                         prior_widening)


def learn_priors(historical: Sequence[HistoricalLibraryData], method: str = "bp",
                 shrinkage: float = 0.1, engine: str = "batched",
                 ledger: Optional[RunLedger] = None) -> Dict[str, TimingPrior]:
    """Learn both the delay and the slew prior from the same historical data.

    With the default ``engine="batched"`` (and BP applicable), the delay and
    slew star graphs are stacked into one
    :class:`~repro.bayes.factor_graph.BatchedFactorGraph` and solved in a
    single batched belief-propagation call; ``engine="loop"`` runs the
    scalar graph per response (the equivalence reference).  The BP wall time
    lands on ``ledger`` under the ``priors:bp`` stage.
    """
    if engine not in PRIOR_ENGINES:
        raise ValueError(
            f"engine must be one of {PRIOR_ENGINES}, got {engine!r}")
    run_ledger = ledger if ledger is not None else RunLedger()
    if engine == "loop" or method != "bp" or len(historical) <= 1:
        with run_ledger.stage("priors:bp"):
            return {response: learn_prior(historical, response=response,
                                          method=method, shrinkage=shrinkage)
                    for response in RESPONSES}

    stars = [_star_inputs([(data.technology_name,
                            data.parameter_matrix(response))
                           for data in historical], shrinkage)
             for response in RESPONSES]
    leaf_names = list(stars[0][0])
    leaves = {name: [star_leaves[name] for star_leaves, _drift in stars]
              for name in leaf_names}
    drift_stack = np.stack([drift for _leaves, drift in stars])
    graph = BatchedFactorGraph.star("global", leaves, drift_stack)
    with run_ledger.stage("priors:bp"):
        beliefs = graph.run_belief_propagation()
    global_batch = beliefs["global"]
    priors: Dict[str, TimingPrior] = {}
    for index, response in enumerate(RESPONSES):
        drift = stars[index][1]
        density = GaussianDensity(global_batch.mean[index],
                                  global_batch.covariance[index] + drift)
        priors[response] = _finish_prior(historical, response, density,
                                         "bp", 1.0)
    return priors


def learn_class_priors(
    historical: Sequence[HistoricalLibraryData],
    method: str = "bp",
    shrinkage: float = 0.1,
    prior_widening: float = 1.0,
    engine: str = "batched",
    class_of: Optional[Callable[[ArcFit], str]] = None,
    ledger: Optional[RunLedger] = None,
) -> Dict[Tuple[str, str], TimingPrior]:
    """Learn one prior per (response, arc class) in one batched BP call.

    Arc classes default to the cell name (``class_of`` maps an
    :class:`ArcFit` to a class label, e.g. for grouping footprint families).
    Only classes present in *every* historical library are learned; each
    (response, class) pair gets its own technology-star graph built from the
    class's per-library parameter matrices, and all stars are solved
    together in one :class:`BatchedFactorGraph` run (``engine="loop"``
    keeps the per-graph scalar reference path).

    Returns a dict keyed by ``(response, class_name)``.
    """
    if not historical:
        raise ValueError("at least one historical library is required")
    if method not in ("bp", "empirical"):
        raise ValueError(f"method must be 'bp' or 'empirical', got {method!r}")
    if prior_widening <= 0.0:
        raise ValueError("prior_widening must be positive")
    if engine not in PRIOR_ENGINES:
        raise ValueError(
            f"engine must be one of {PRIOR_ENGINES}, got {engine!r}")

    key_of = class_of if class_of is not None else (lambda fit: fit.cell_name)
    per_library: List[Dict[str, List[ArcFit]]] = []
    for data in historical:
        classes: Dict[str, List[ArcFit]] = {}
        for fit in data.arc_fits:
            classes.setdefault(key_of(fit), []).append(fit)
        per_library.append(classes)
    shared = set(per_library[0])
    for classes in per_library[1:]:
        shared &= set(classes)
    class_names = sorted(shared)
    if not class_names:
        raise ValueError("historical libraries share no arc classes")

    def class_matrix(classes: Dict[str, List[ArcFit]], name: str,
                     response: str) -> np.ndarray:
        return np.array([
            (fit.delay_fit if response == "delay" else fit.slew_fit)
            .params.as_array()
            for fit in classes[name]])

    pairs = [(response, name) for response in RESPONSES
             for name in class_names]
    run_ledger = ledger if ledger is not None else RunLedger()
    priors: Dict[Tuple[str, str], TimingPrior] = {}

    if method == "empirical" or len(historical) == 1:
        for response, name in pairs:
            pooled = np.vstack([class_matrix(classes, name, response)
                                for classes in per_library])
            density = GaussianDensity.from_samples(pooled, shrinkage=shrinkage,
                                                   jitter=1e-8)
            priors[(response, name)] = _finish_prior(
                historical, response, density, "empirical", prior_widening)
        return priors

    stars = [_star_inputs(
                 [(data.technology_name, class_matrix(classes, name, response))
                  for data, classes in zip(historical, per_library)],
                 shrinkage)
             for response, name in pairs]
    leaf_names = list(stars[0][0])
    leaves = {leaf: [star_leaves[leaf] for star_leaves, _drift in stars]
              for leaf in leaf_names}
    drift_stack = np.stack([drift for _leaves, drift in stars])
    graph = BatchedFactorGraph.star("global", leaves, drift_stack)
    with run_ledger.stage("priors:bp"):
        beliefs = graph.run_belief_propagation(engine=engine)
    global_batch = beliefs["global"]
    for index, (response, name) in enumerate(pairs):
        density = GaussianDensity(global_batch.mean[index],
                                  global_batch.covariance[index]
                                  + stars[index][1])
        priors[(response, name)] = _finish_prior(historical, response, density,
                                                 "bp", prior_widening)
    return priors
