"""Nominal characterization with the proposed model + Bayesian inference.

:class:`BayesianCharacterizer` implements the target-technology half of the
paper's Fig. 4 flow for nominal (process-typical) characterization: pick a
tiny set of fitting input conditions, simulate them, extract the compact
timing-model parameters by MAP estimation against the historical prior, and
from then on answer delay/slew queries anywhere in the input space
analytically -- no further simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.cells.equivalent_inverter import EquivalentInverter, reduce_cell_cached
from repro.cells.library import Cell, TimingArc
from repro.characterization.input_space import (
    InputCondition,
    InputSpace,
    conditions_to_arrays,
)
from repro.core.map_estimation import MapObservations, map_estimate
from repro.core.prior_learning import TimingPrior
from repro.core.timing_model import CompactTimingModel, FitResult
from repro.spice.sweep import sweep_conditions
from repro.spice.testbench import SimulationCounter
from repro.technology.node import TechnologyNode
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class NominalCharacterization:
    """Result of a nominal proposed-flow characterization of one arc."""

    cell_name: str
    arc_name: str
    delay_fit: FitResult
    slew_fit: FitResult
    fitting_conditions: Sequence[InputCondition]
    simulation_runs: int

    @property
    def k(self) -> int:
        """Number of fitting input conditions used."""
        return len(self.fitting_conditions)


class BayesianCharacterizer:
    """Proposed-flow nominal characterizer for one cell timing arc."""

    def __init__(
        self,
        technology: TechnologyNode,
        cell: Cell,
        delay_prior: TimingPrior,
        slew_prior: TimingPrior,
        arc: Optional[TimingArc] = None,
        counter: Optional[SimulationCounter] = None,
    ):
        self._technology = technology
        self._cell = cell
        self._arc = arc if arc is not None else cell.timing_arcs()[1]
        self._delay_prior = delay_prior
        self._slew_prior = slew_prior
        self._counter = counter
        self._space = InputSpace(technology)
        self._inverter: EquivalentInverter = reduce_cell_cached(cell, technology,
                                                                arc=self._arc)
        self._model = CompactTimingModel()
        self._result: Optional[NominalCharacterization] = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def technology(self) -> TechnologyNode:
        """The target technology node."""
        return self._technology

    @property
    def cell(self) -> Cell:
        """The cell being characterized."""
        return self._cell

    @property
    def arc(self) -> TimingArc:
        """The timing arc being characterized."""
        return self._arc

    @property
    def input_capacitance(self) -> float:
        """Capacitance presented by the arc's input pin, in farads."""
        return float(np.mean(np.asarray(self._inverter.input_cap)))

    @property
    def result(self) -> NominalCharacterization:
        """The most recent characterization result.

        Raises
        ------
        RuntimeError
            If :meth:`fit` has not been called yet.
        """
        if self._result is None:
            raise RuntimeError("call fit() before using the characterizer")
        return self._result

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def choose_fitting_conditions(self, k: int, rng: RandomState = None
                                  ) -> List[InputCondition]:
        """Pick ``k`` space-filling fitting conditions in the input space."""
        if k < 1:
            raise ValueError("k must be at least 1")
        return self._space.sample_lhs(k, ensure_rng(rng))

    def fit(self, conditions: Union[int, Sequence[InputCondition]],
            rng: RandomState = None) -> NominalCharacterization:
        """Simulate the fitting conditions and extract parameters by MAP.

        Parameters
        ----------
        conditions:
            Either the number ``k`` of fitting conditions to draw
            automatically (Latin hypercube) or an explicit list of
            :class:`InputCondition`.
        rng:
            Random source for automatic condition selection.
        """
        if isinstance(conditions, int):
            conditions = self.choose_fitting_conditions(conditions, rng)
        conditions = list(conditions)
        if not conditions:
            raise ValueError("at least one fitting condition is required")

        runs_before = self._counter.total if self._counter is not None else 0
        measurements = sweep_conditions(
            self._cell, self._technology,
            [c.as_tuple() for c in conditions], arc=self._arc,
            counter=self._counter, counter_label=f"proposed_fit:{self._cell.name}",
        )
        runs = ((self._counter.total - runs_before) if self._counter is not None
                else len(conditions))

        sin, cload, vdd = conditions_to_arrays(conditions)
        ieff = self._effective_currents(vdd)
        delays = np.array([m.nominal_delay() for m in measurements])
        slews = np.array([m.nominal_slew() for m in measurements])
        unit = self._space.normalize(conditions)

        delay_obs = MapObservations(
            sin=sin, cload=cload, vdd=vdd, ieff=ieff, response=delays,
            beta=self._delay_prior.precision_model.beta(unit))
        slew_obs = MapObservations(
            sin=sin, cload=cload, vdd=vdd, ieff=ieff, response=slews,
            beta=self._slew_prior.precision_model.beta(unit))

        delay_fit = map_estimate(self._delay_prior, delay_obs, model=self._model)
        slew_fit = map_estimate(self._slew_prior, slew_obs, model=self._model)

        self._result = NominalCharacterization(
            cell_name=self._cell.name,
            arc_name=self._arc.name,
            delay_fit=delay_fit,
            slew_fit=slew_fit,
            fitting_conditions=tuple(conditions),
            simulation_runs=runs,
        )
        return self._result

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _effective_currents(self, vdd: np.ndarray) -> np.ndarray:
        # One vectorized evaluation over all supplies (nominal inverter, so
        # the device parameters are scalars and broadcast cleanly).
        vdd = np.asarray(vdd, dtype=float).reshape(-1)
        return np.asarray(self._inverter.effective_current(vdd),
                          dtype=float).reshape(-1)

    def predict_delay(self, conditions: Sequence[InputCondition]) -> np.ndarray:
        """Model-predicted delay (seconds) at arbitrary operating points."""
        return self._predict(conditions, self.result.delay_fit)

    def predict_slew(self, conditions: Sequence[InputCondition]) -> np.ndarray:
        """Model-predicted output slew (seconds) at arbitrary operating points."""
        return self._predict(conditions, self.result.slew_fit)

    def _predict(self, conditions: Sequence[InputCondition], fit: FitResult
                 ) -> np.ndarray:
        sin, cload, vdd = conditions_to_arrays(list(conditions))
        ieff = self._effective_currents(vdd)
        return self._model.evaluate(fit.params, sin, cload, vdd, ieff)
