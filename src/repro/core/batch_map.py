"""Batched seed-parallel MAP extraction (Eq. 15, vectorized over seeds).

The statistical flow extracts one compact-model parameter vector *per Monte
Carlo seed* (and per response), so a 200-seed arc costs 400 independent
four-parameter bounded least-squares problems.  Solving them one at a time
through :func:`scipy.optimize.least_squares` pays the full Python/trust-region
overhead 400 times over -- after the batched transient engine
(:mod:`repro.spice.batch`) removed the simulation bottleneck, that extraction
loop dominated the wall clock of
:meth:`repro.core.statistical_flow.StatisticalCharacterizer.characterize`.

This module applies the same treatment the transient engine received:

* **Analytic Jacobians.**  :meth:`CompactTimingModel.evaluate_and_jacobian`
  returns exact derivatives for a whole ``(n_seeds, 4)`` parameter matrix in
  one broadcast, so no finite differencing (scipy's 2-point scheme costs four
  extra model evaluations per seed per iteration).
* **Stacked whitened prior residuals.**  The Gaussian prior term of Eq. 15
  enters as four extra residual rows ``L @ (theta - mu0)`` per seed, with the
  shared whitener ``L`` from
  :meth:`repro.bayes.gaussian.GaussianDensity.whitening_matrix` -- the same
  formulation the scalar estimator uses, so the two paths optimize literally
  the same objective.
* **Per-seed Levenberg-Marquardt damping.**  Every seed carries its own
  damping factor, updated from its own step acceptance, and all ``(4, 4)``
  normal-equation systems of an iteration are factorized in a single batched
  ``np.linalg.solve``.
* **Projected bounds.**  Candidate steps are clipped to the model's parameter
  box; first-order optimality is checked on the *projected* gradient so seeds
  resting on a bound still retire.
* **Active-set retirement.**  Converged seeds leave the working set
  (mirroring the batched transient engine's condition retirement), so a few
  slow seeds do not keep the whole ensemble iterating.

The result is ~10 vectorized LM iterations for a full seed batch instead of
hundreds of scipy solves; the parity suite pins the extracted parameters to
the scipy path at tight tolerance, and ``benchmarks/test_perf_map.py`` tracks
the speedup in ``BENCH_map.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.bayes.gaussian import GaussianDensity
from repro.core.prior_learning import TimingPrior
from repro.core.timing_model import (
    CompactTimingModel,
    FitResult,
    N_PARAMETERS,
    TimingModelParameters,
)
from repro.runtime import resolve_max_bytes
from repro.runtime.chunking import plan_chunks

#: Default iteration cap; well above what quadratic LM convergence needs.
DEFAULT_MAX_ITERATIONS = 60

#: Damping growth / shrink factors (classic Marquardt schedule).
_LAMBDA_UP = 4.0
_LAMBDA_DOWN = 0.25
_LAMBDA_INIT = 1e-3
_LAMBDA_MIN = 1e-14
_LAMBDA_MAX = 1e12


@dataclass(frozen=True)
class BatchMapObservations:
    """Seed-batched target-technology observations feeding the MAP extraction.

    The ``k`` fitting conditions are shared by every seed; the measured
    responses (and, for seed-vectorized equivalent inverters, the effective
    currents) differ per seed.

    Attributes
    ----------
    sin, cload, vdd:
        Operating points, shape ``(k,)``, SI units.
    ieff:
        Effective current of the driving device, shape ``(n_seeds, k)`` or
        ``(k,)`` (shared across seeds), in amperes.
    response:
        Observed delay or output slew per seed, shape ``(n_seeds, k)``, in
        seconds.
    beta:
        Model precision per condition (shared across seeds, like the learned
        precision model that produces it); ``None`` means unit precision.
    """

    sin: np.ndarray
    cload: np.ndarray
    vdd: np.ndarray
    ieff: np.ndarray
    response: np.ndarray
    beta: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        sin = np.asarray(self.sin, dtype=float).reshape(-1)
        cload = np.asarray(self.cload, dtype=float).reshape(-1)
        vdd = np.asarray(self.vdd, dtype=float).reshape(-1)
        response = np.atleast_2d(np.asarray(self.response, dtype=float))
        k = sin.size
        if k == 0:
            raise ValueError("at least one observation is required")
        for name, array in (("cload", cload), ("vdd", vdd)):
            if array.size != k:
                raise ValueError(f"{name} has {array.size} entries, expected {k}")
        if response.ndim != 2 or response.shape[1] != k:
            raise ValueError(
                f"response must have shape (n_seeds, {k}), got {response.shape}"
            )
        if np.any(response <= 0.0):
            raise ValueError("responses must be strictly positive")
        ieff = np.asarray(self.ieff, dtype=float)
        if ieff.ndim == 1:
            if ieff.size != k:
                raise ValueError(f"ieff has {ieff.size} entries, expected {k}")
        elif ieff.shape != response.shape:
            raise ValueError(
                f"ieff must have shape {response.shape} or ({k},), got {ieff.shape}"
            )
        if np.any(ieff <= 0.0):
            raise ValueError("effective currents must be strictly positive")
        object.__setattr__(self, "sin", sin)
        object.__setattr__(self, "cload", cload)
        object.__setattr__(self, "vdd", vdd)
        object.__setattr__(self, "ieff", ieff)
        object.__setattr__(self, "response", response)
        if self.beta is not None:
            beta = np.asarray(self.beta, dtype=float).reshape(-1)
            if beta.size != k:
                raise ValueError("beta must have one entry per observation")
            if np.any(beta <= 0.0):
                raise ValueError("beta values must be strictly positive")
            object.__setattr__(self, "beta", beta)

    @property
    def k(self) -> int:
        """Number of fitting observations per seed."""
        return int(self.sin.size)

    @property
    def n_seeds(self) -> int:
        """Number of Monte Carlo seeds."""
        return int(self.response.shape[0])


@dataclass(frozen=True)
class BatchMapResult:
    """Outcome of a seed-batched MAP extraction.

    Attributes
    ----------
    parameters:
        Extracted parameter matrix, shape ``(n_seeds, 4)``, natural units.
    converged:
        Per-seed first-order convergence flags.  A ``False`` entry means the
        seed exhausted ``max_iterations`` without meeting the gradient/step
        tolerances; its row of ``parameters`` is the best iterate found.
    n_iterations:
        LM iterations each seed was active for.
    cost:
        Final objective value (sum of squared stacked residuals) per seed.
    residuals:
        Relative data residuals ``(model - observed) / observed`` at the
        solution, shape ``(n_seeds, k)``.
    n_observations:
        Number of fitting conditions ``k``.
    """

    parameters: np.ndarray
    converged: np.ndarray
    n_iterations: np.ndarray
    cost: np.ndarray
    residuals: np.ndarray
    n_observations: int

    @property
    def n_seeds(self) -> int:
        """Number of seeds in the batch."""
        return int(self.parameters.shape[0])

    @property
    def n_converged(self) -> int:
        """Number of seeds meeting the convergence tolerances."""
        return int(np.count_nonzero(self.converged))

    def unconverged_seeds(self) -> np.ndarray:
        """Indices of seeds that failed to converge (empty when all did)."""
        return np.nonzero(~self.converged)[0]

    def mean_abs_relative_error(self) -> np.ndarray:
        """Per-seed mean absolute relative training error."""
        return np.mean(np.abs(self.residuals), axis=1)

    def fit_result(self, seed: int) -> FitResult:
        """One seed's extraction as a scalar-API :class:`FitResult`."""
        residuals = self.residuals[seed]
        return FitResult(
            params=TimingModelParameters.from_array(self.parameters[seed]),
            mean_abs_relative_error=float(np.mean(np.abs(residuals))),
            max_abs_relative_error=float(np.max(np.abs(residuals))),
            residuals=residuals.copy(),
            n_observations=self.n_observations,
            converged=bool(self.converged[seed]),
        )


def map_estimate_batch(
    prior: "TimingPrior | GaussianDensity",
    observations: BatchMapObservations,
    model: Optional[CompactTimingModel] = None,
    prior_weight: float = 1.0,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    gtol: float = 1e-10,
    xtol: float = 1e-12,
    max_bytes: Optional[int] = None,
) -> BatchMapResult:
    """Seed-batched MAP extraction of the compact-model parameters.

    Minimizes the Eq. 15 objective independently for every seed, all seeds
    advancing together through vectorized Levenberg-Marquardt iterations
    (see the module docstring for the design).  The scalar counterpart is
    :func:`repro.core.map_estimation.map_estimate`; the two agree to solver
    tolerance because they share the residual formulation, the prior
    whitener, the parameter bounds and the starting point.

    Parameters
    ----------
    prior:
        Full :class:`~repro.core.prior_learning.TimingPrior` or the bare
        Gaussian parameter prior, shared by all seeds.
    observations:
        The seed batch (see :class:`BatchMapObservations`).
    model:
        Optional :class:`CompactTimingModel` supplying parameter bounds.
    prior_weight:
        Scale factor on the prior term (must be positive; 1.0 = Eq. 15).
    max_iterations:
        LM iteration cap per seed.
    gtol:
        Infinity-norm tolerance on the projected gradient.
    xtol:
        Relative step-size tolerance.
    max_bytes:
        Memory budget for the solver's working set; the seed axis is split
        into deterministic chunks that are solved sequentially (seeds are
        independent problems, so results are identical to the unchunked
        solve).  ``None`` defers to ``repro.runtime.configure(max_bytes=...)``.

    Returns
    -------
    BatchMapResult
        Parameters plus per-seed convergence reporting.
    """
    if prior_weight <= 0.0:
        raise ValueError("prior_weight must be positive; use fit_least_squares "
                         "for a prior-free extraction")
    if max_iterations < 1:
        raise ValueError("max_iterations must be at least 1")
    density = prior.density if isinstance(prior, TimingPrior) else prior
    if density.dim != N_PARAMETERS:
        raise ValueError(f"prior has dimension {density.dim}, expected {N_PARAMETERS}")
    model = model or CompactTimingModel()

    # Per-seed working set: residual and cost rows of length k, the (k, 4)
    # Jacobian plus its weighted copy, and the damped (4, 4) normal systems
    # with their solve scratch -- roughly 8 * (6k + 80) bytes.
    k = observations.k
    chunks = plan_chunks(observations.n_seeds, 8 * (6 * k + 80),
                         resolve_max_bytes(max_bytes))
    if len(chunks) > 1:
        parts = [
            _solve_seed_block(density, _slice_observations(observations, rows),
                              model, prior_weight, max_iterations, gtol, xtol)
            for rows in chunks
        ]
        return BatchMapResult(
            parameters=np.concatenate([p.parameters for p in parts], axis=0),
            converged=np.concatenate([p.converged for p in parts]),
            n_iterations=np.concatenate([p.n_iterations for p in parts]),
            cost=np.concatenate([p.cost for p in parts]),
            residuals=np.concatenate([p.residuals for p in parts], axis=0),
            n_observations=k,
        )
    return _solve_seed_block(density, observations, model, prior_weight,
                             max_iterations, gtol, xtol)


def _slice_observations(observations: BatchMapObservations,
                        rows: slice) -> BatchMapObservations:
    """One contiguous seed block of a batch (conditions stay shared)."""
    ieff = observations.ieff
    return BatchMapObservations(
        sin=observations.sin,
        cload=observations.cload,
        vdd=observations.vdd,
        ieff=ieff if ieff.ndim == 1 else ieff[rows],
        response=observations.response[rows],
        beta=observations.beta,
    )


def _solve_seed_block(
    density: GaussianDensity,
    observations: BatchMapObservations,
    model: CompactTimingModel,
    prior_weight: float,
    max_iterations: int,
    gtol: float,
    xtol: float,
) -> BatchMapResult:
    """The vectorized LM solve of one (possibly chunked) seed block."""
    mu0 = density.mean
    whitener = density.scaled_covariance(1.0 / prior_weight).whitening_matrix(
        jitter=1e-12)
    lower, upper = model.bounds
    bound_atol = 1e-10 * (upper - lower)

    sin, cload, vdd = observations.sin, observations.cload, observations.vdd
    ieff = observations.ieff
    response = observations.response
    n_seeds, k = response.shape
    beta = (observations.beta if observations.beta is not None else np.ones(k))
    # Residual weights: sqrt(beta) / response gives the relative, precision-
    # weighted data residual of Eq. 15 when multiplied by (model - response).
    weight = np.sqrt(beta)[np.newaxis, :] / response

    def data_residual_jacobian(theta: np.ndarray, rows: np.ndarray
                               ) -> "tuple[np.ndarray, np.ndarray]":
        row_ieff = ieff if ieff.ndim == 1 else ieff[rows]
        prediction, jacobian = CompactTimingModel.evaluate_and_jacobian(
            theta, sin, cload, vdd, row_ieff)
        w = weight[rows]
        return (prediction - response[rows]) * w, jacobian * w[..., np.newaxis]

    def cost_of(theta: np.ndarray, rows: np.ndarray) -> np.ndarray:
        row_ieff = ieff if ieff.ndim == 1 else ieff[rows]
        prediction = CompactTimingModel.evaluate_array(
            theta[:, np.newaxis, :], sin, cload, vdd, row_ieff)
        data = (prediction - response[rows]) * weight[rows]
        prior_res = (theta - mu0) @ whitener.T
        return np.einsum("ij,ij->i", data, data) + np.einsum(
            "ij,ij->i", prior_res, prior_res)

    # Same starting point as the scalar path: the prior mean, nudged inside
    # the bounds.
    start = np.clip(mu0, lower + 1e-9, upper - 1e-9)
    theta = np.broadcast_to(start, (n_seeds, N_PARAMETERS)).copy()
    cost = cost_of(theta, np.arange(n_seeds))
    damping = np.full(n_seeds, _LAMBDA_INIT)
    converged = np.zeros(n_seeds, dtype=bool)
    iterations = np.zeros(n_seeds, dtype=int)

    active = np.arange(n_seeds)
    eye = np.eye(N_PARAMETERS)
    for _ in range(max_iterations):
        if active.size == 0:
            break
        iterations[active] += 1
        theta_a = theta[active]
        r_data, j_data = data_residual_jacobian(theta_a, active)
        r_prior = (theta_a - mu0) @ whitener.T
        # Gradient and Gauss-Newton normal matrix of the stacked problem;
        # the prior block contributes whitener^T whitener, which keeps every
        # normal matrix positive definite regardless of the data.
        gradient = (np.einsum("mki,mk->mi", j_data, r_data)
                    + r_prior @ whitener)
        normal = (np.einsum("mki,mkj->mij", j_data, j_data)
                  + whitener.T @ whitener)

        # Active-set classification: a coordinate resting on a bound whose
        # gradient pushes further outward is frozen for this iteration (it
        # cannot produce feasible descent); the projected gradient over the
        # remaining free coordinates is the first-order optimality measure.
        at_lower = theta_a <= lower + bound_atol
        at_upper = theta_a >= upper - bound_atol
        free = ~((at_lower & (gradient > 0.0)) | (at_upper & (gradient < 0.0)))
        projected = np.where(free, gradient, 0.0)
        done = np.max(np.abs(projected), axis=1) < gtol * np.maximum(cost[active], 1.0)

        # Marquardt step on the *reduced* system: frozen coordinates get a
        # unit diagonal row/column and a zero gradient entry, so their step
        # component is exactly zero while the free block keeps its damped
        # Gauss-Newton curvature.  One batched factorization solves every
        # active seed's 4x4 system.
        scale = np.clip(np.einsum("mii->mi", normal), 1e-30, None)
        damped = normal + (damping[active][:, np.newaxis] * scale)[:, :, np.newaxis] * eye
        free_f = free.astype(float)
        damped = damped * free_f[:, :, np.newaxis] * free_f[:, np.newaxis, :]
        diag_idx = np.arange(N_PARAMETERS)
        damped[:, diag_idx, diag_idx] += 1.0 - free_f
        step = np.linalg.solve(damped, -projected[..., np.newaxis])[..., 0]
        candidate = np.clip(theta_a + step, lower, upper)
        moved = candidate - theta_a
        new_cost = cost_of(candidate, active)

        accept = new_cost <= cost[active]
        # Tiny accepted moves mean the iterate is numerically stationary
        # (possibly pressed against a bound).  A tiny move that is *rejected*
        # under already-saturated damping is stationary too: the heaviest
        # representable damping cannot produce a descent step, which happens
        # when large beta scales the cost so far above 1 that float rounding
        # swamps the remaining descent (the gradient test above, scaled by
        # the cost, covers the same regime from the other side).
        saturated = damping[active] >= _LAMBDA_MAX
        step_small = (np.max(np.abs(moved), axis=1)
                      < xtol * (np.max(np.abs(theta_a), axis=1) + xtol))
        done |= step_small & (accept | saturated)

        rows = active[accept]
        theta[rows] = candidate[accept]
        cost[rows] = new_cost[accept]
        damping[rows] = np.maximum(damping[rows] * _LAMBDA_DOWN, _LAMBDA_MIN)
        rejected = active[~accept]
        damping[rejected] = np.minimum(damping[rejected] * _LAMBDA_UP, _LAMBDA_MAX)

        converged[active[done]] = True
        # A saturated seed still proposing non-tiny steps that all fail is
        # genuinely stuck: retire it so it stops burning iterations, but
        # report it unconverged.
        stalled = ~done & saturated & ~step_small
        active = active[~(done | stalled)]

    prediction = CompactTimingModel.evaluate_array(
        theta[:, np.newaxis, :], sin, cload, vdd, ieff)
    residuals = (prediction - response) / response
    return BatchMapResult(
        parameters=theta,
        converged=converged,
        n_iterations=iterations,
        cost=cost,
        residuals=residuals,
        n_observations=k,
    )
