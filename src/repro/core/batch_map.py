"""Batched seed-parallel MAP extraction (Eq. 15, vectorized over seeds).

The statistical flow extracts one compact-model parameter vector *per Monte
Carlo seed* (and per response), so a 200-seed arc costs 400 independent
four-parameter bounded least-squares problems.  Solving them one at a time
through :func:`scipy.optimize.least_squares` pays the full Python/trust-region
overhead 400 times over -- after the batched transient engine
(:mod:`repro.spice.batch`) removed the simulation bottleneck, that extraction
loop dominated the wall clock of
:meth:`repro.core.statistical_flow.StatisticalCharacterizer.characterize`.

This module applies the same treatment the transient engine received:

* **Analytic Jacobians.**  :meth:`CompactTimingModel.evaluate_and_jacobian`
  returns exact derivatives for a whole ``(n_seeds, 4)`` parameter matrix in
  one broadcast, so no finite differencing (scipy's 2-point scheme costs four
  extra model evaluations per seed per iteration).
* **Stacked whitened prior residuals.**  The Gaussian prior term of Eq. 15
  enters as four extra residual rows ``L @ (theta - mu0)`` per seed, with the
  shared whitener ``L`` from
  :meth:`repro.bayes.gaussian.GaussianDensity.whitening_matrix` -- the same
  formulation the scalar estimator uses, so the two paths optimize literally
  the same objective.
* **Per-seed Levenberg-Marquardt damping.**  Every seed carries its own
  damping factor, updated from its own step acceptance, and all ``(4, 4)``
  normal-equation systems of an iteration are factorized in a single batched
  ``np.linalg.solve``.
* **Projected bounds.**  Candidate steps are clipped to the model's parameter
  box; first-order optimality is checked on the *projected* gradient so seeds
  resting on a bound still retire.
* **Active-set retirement.**  Converged seeds leave the working set
  (mirroring the batched transient engine's condition retirement), so a few
  slow seeds do not keep the whole ensemble iterating.

The result is ~10 vectorized LM iterations for a full seed batch instead of
hundreds of scipy solves; the parity suite pins the extracted parameters to
the scipy path at tight tolerance, and ``benchmarks/test_perf_map.py`` tracks
the speedup in ``BENCH_map.json``.

Beyond the single-arc batch, :func:`map_estimate_stacked` stacks *many* arcs'
seed batches into one solve: every ``(arc, seed)`` pair becomes a row of one
``(sum of n_seeds, 4)`` problem, block-diagonal by arc -- each row carries its
own arc's fitting conditions, precision weights and (optionally) its own
prior.  Rows never interact (the per-row damping, retirement and 4x4 normal
solves are exactly the single-arc ones), so the stacked solve reproduces the
per-arc solves bit-for-bit while paying the interpreted per-iteration
overhead once for the whole library instead of once per arc.  This is the
extraction half of the fused library pipeline
(:func:`repro.core.library_flow.characterize_library`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.bayes.gaussian import GaussianDensity
from repro.core.prior_learning import TimingPrior
from repro.core.timing_model import (
    CompactTimingModel,
    DEFAULT_INITIAL_GUESS,
    FitResult,
    N_PARAMETERS,
    TimingModelParameters,
)
from repro.runtime import faultinject, resolve_max_bytes
from repro.runtime.chunking import plan_chunks

SITE_RESULT = faultinject.register_fault_site(
    "batch_map.result",
    "solved parameter matrix of one batched MAP/LSQ call (NaN row faults)")

#: Default iteration cap; well above what quadratic LM convergence needs.
DEFAULT_MAX_ITERATIONS = 60

#: Damping growth / shrink factors (classic Marquardt schedule).
_LAMBDA_UP = 4.0
_LAMBDA_DOWN = 0.25
_LAMBDA_INIT = 1e-3
_LAMBDA_MIN = 1e-14
_LAMBDA_MAX = 1e12


@dataclass(frozen=True)
class BatchMapObservations:
    """Seed-batched target-technology observations feeding the MAP extraction.

    The ``k`` fitting conditions are shared by every seed; the measured
    responses (and, for seed-vectorized equivalent inverters, the effective
    currents) differ per seed.

    Attributes
    ----------
    sin, cload, vdd:
        Operating points, shape ``(k,)`` (shared by every seed, the
        single-arc case) or ``(n_seeds, k)`` (one condition set per row --
        the stacked multi-arc solve, where each row belongs to an arc with
        its own fitting conditions), SI units.
    ieff:
        Effective current of the driving device, shape ``(n_seeds, k)`` or
        ``(k,)`` (shared across seeds), in amperes.
    response:
        Observed delay or output slew per seed, shape ``(n_seeds, k)``, in
        seconds.
    beta:
        Model precision per condition, shape ``(k,)`` (shared across seeds,
        like the learned precision model that produces it) or
        ``(n_seeds, k)`` (per-row, stacked solves); ``None`` means unit
        precision.
    """

    sin: np.ndarray
    cload: np.ndarray
    vdd: np.ndarray
    ieff: np.ndarray
    response: np.ndarray
    beta: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        response = np.atleast_2d(np.asarray(self.response, dtype=float))
        if response.ndim != 2:
            raise ValueError(
                f"response must have shape (n_seeds, k), got {response.shape}")
        k = response.shape[1]
        if k == 0:
            raise ValueError("at least one observation is required")
        bad_rows, bad_cols = np.nonzero(~np.isfinite(response))
        if bad_rows.size:
            raise ValueError(
                f"response contains a non-finite value at seed "
                f"{int(bad_rows[0])}, observation {int(bad_cols[0])} "
                f"({bad_rows.size} non-finite in total)")
        if np.any(response <= 0.0):
            raise ValueError("responses must be strictly positive")

        def conditions(name: str, value) -> np.ndarray:
            array = np.asarray(value, dtype=float)
            if array.ndim <= 1:
                array = array.reshape(-1)
                if array.size != k:
                    raise ValueError(
                        f"{name} has {array.size} entries, expected {k}")
            elif array.shape != response.shape:
                raise ValueError(
                    f"{name} must have shape ({k},) or {response.shape}, "
                    f"got {array.shape}")
            return array

        sin = conditions("sin", self.sin)
        cload = conditions("cload", self.cload)
        vdd = conditions("vdd", self.vdd)
        ieff = conditions("ieff", self.ieff)
        if np.any(ieff <= 0.0):
            raise ValueError("effective currents must be strictly positive")
        object.__setattr__(self, "sin", sin)
        object.__setattr__(self, "cload", cload)
        object.__setattr__(self, "vdd", vdd)
        object.__setattr__(self, "ieff", ieff)
        object.__setattr__(self, "response", response)
        if self.beta is not None:
            beta = conditions("beta", self.beta)
            if np.any(beta <= 0.0):
                raise ValueError("beta values must be strictly positive")
            object.__setattr__(self, "beta", beta)

    @property
    def k(self) -> int:
        """Number of fitting observations per seed."""
        return int(self.response.shape[1])

    @property
    def n_seeds(self) -> int:
        """Number of Monte Carlo seeds."""
        return int(self.response.shape[0])


@dataclass(frozen=True)
class BatchMapResult:
    """Outcome of a seed-batched MAP extraction.

    Attributes
    ----------
    parameters:
        Extracted parameter matrix, shape ``(n_seeds, 4)``, natural units.
    converged:
        Per-seed first-order convergence flags.  A ``False`` entry means the
        seed exhausted ``max_iterations`` without meeting the gradient/step
        tolerances; its row of ``parameters`` is the best iterate found.
    n_iterations:
        LM iterations each seed was active for.
    cost:
        Final objective value (sum of squared stacked residuals) per seed.
    residuals:
        Relative data residuals ``(model - observed) / observed`` at the
        solution, shape ``(n_seeds, k)``.
    n_observations:
        Number of fitting conditions ``k``.
    """

    parameters: np.ndarray
    converged: np.ndarray
    n_iterations: np.ndarray
    cost: np.ndarray
    residuals: np.ndarray
    n_observations: int

    @property
    def n_seeds(self) -> int:
        """Number of seeds in the batch."""
        return int(self.parameters.shape[0])

    @property
    def n_converged(self) -> int:
        """Number of seeds meeting the convergence tolerances."""
        return int(np.count_nonzero(self.converged))

    def unconverged_seeds(self) -> np.ndarray:
        """Indices of seeds that failed to converge (empty when all did)."""
        return np.nonzero(~self.converged)[0]

    def mean_abs_relative_error(self) -> np.ndarray:
        """Per-seed mean absolute relative training error."""
        return np.mean(np.abs(self.residuals), axis=1)

    def fit_result(self, seed: int) -> FitResult:
        """One seed's extraction as a scalar-API :class:`FitResult`."""
        residuals = self.residuals[seed]
        return FitResult(
            params=TimingModelParameters.from_array(self.parameters[seed]),
            mean_abs_relative_error=float(np.mean(np.abs(residuals))),
            max_abs_relative_error=float(np.max(np.abs(residuals))),
            residuals=residuals.copy(),
            n_observations=self.n_observations,
            converged=bool(self.converged[seed]),
        )


def map_estimate_batch(
    prior: "TimingPrior | GaussianDensity",
    observations: BatchMapObservations,
    model: Optional[CompactTimingModel] = None,
    prior_weight: float = 1.0,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    gtol: float = 1e-10,
    xtol: float = 1e-12,
    max_bytes: Optional[int] = None,
) -> BatchMapResult:
    """Seed-batched MAP extraction of the compact-model parameters.

    Minimizes the Eq. 15 objective independently for every seed, all seeds
    advancing together through vectorized Levenberg-Marquardt iterations
    (see the module docstring for the design).  The scalar counterpart is
    :func:`repro.core.map_estimation.map_estimate`; the two agree to solver
    tolerance because they share the residual formulation, the prior
    whitener, the parameter bounds and the starting point.

    Parameters
    ----------
    prior:
        Full :class:`~repro.core.prior_learning.TimingPrior` or the bare
        Gaussian parameter prior, shared by all seeds.
    observations:
        The seed batch (see :class:`BatchMapObservations`).
    model:
        Optional :class:`CompactTimingModel` supplying parameter bounds.
    prior_weight:
        Scale factor on the prior term (must be positive; 1.0 = Eq. 15).
    max_iterations:
        LM iteration cap per seed.
    gtol:
        Infinity-norm tolerance on the projected gradient.
    xtol:
        Relative step-size tolerance.
    max_bytes:
        Memory budget for the solver's working set; the seed axis is split
        into deterministic chunks that are solved sequentially (seeds are
        independent problems, so results are identical to the unchunked
        solve).  ``None`` defers to ``repro.runtime.configure(max_bytes=...)``.

    Returns
    -------
    BatchMapResult
        Parameters plus per-seed convergence reporting.
    """
    if prior_weight <= 0.0:
        raise ValueError("prior_weight must be positive; use fit_least_squares "
                         "for a prior-free extraction")
    if max_iterations < 1:
        raise ValueError("max_iterations must be at least 1")
    density = prior.density if isinstance(prior, TimingPrior) else prior
    if density.dim != N_PARAMETERS:
        raise ValueError(f"prior has dimension {density.dim}, expected {N_PARAMETERS}")
    term = _PriorTerm.from_density(density, prior_weight)
    return _chunked_solve(term, observations, model or CompactTimingModel(),
                          max_iterations, gtol, xtol, max_bytes)


def map_estimate_stacked(
    priors: Union["TimingPrior | GaussianDensity",
                  Sequence["TimingPrior | GaussianDensity"]],
    observations: Sequence[BatchMapObservations],
    model: Optional[CompactTimingModel] = None,
    prior_weight: float = 1.0,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    gtol: float = 1e-10,
    xtol: float = 1e-12,
    max_bytes: Optional[int] = None,
) -> List[BatchMapResult]:
    """One block-diagonal MAP solve for many arcs' seed batches at once.

    Every block (one arc's :class:`BatchMapObservations`) contributes its
    ``n_seeds`` rows to a single stacked problem; rows carry their own
    block's fitting conditions, precision weights and prior, so the blocks
    remain fully independent -- the stacked solve returns exactly the
    per-block :func:`map_estimate_batch` results, computed in one run of
    vectorized LM iterations instead of one run per arc.  This is the
    library-wide extraction of the fused characterization pipeline.

    Parameters
    ----------
    priors:
        One prior shared by every block, or a sequence with one prior per
        block.  When every block resolves to the same Gaussian density the
        solver keeps the shared-whitener fast path of the single-arc solve
        (and reproduces it bit-for-bit); heterogeneous priors switch the
        prior term to per-row matrices.
    observations:
        One :class:`BatchMapObservations` per block.  All blocks must share
        the observation count ``k`` (they stack on a common condition axis);
        their condition values may differ freely.
    model, prior_weight, max_iterations, gtol, xtol, max_bytes:
        As in :func:`map_estimate_batch`; ``max_bytes`` chunks the stacked
        row axis (chunks may span block boundaries -- rows are independent).

    Returns
    -------
    list of BatchMapResult
        One result per block, in input order.
    """
    blocks = list(observations)
    if not blocks:
        raise ValueError("at least one observation block is required")
    if isinstance(priors, (TimingPrior, GaussianDensity)):
        priors = [priors] * len(blocks)
    else:
        priors = list(priors)
        if len(priors) != len(blocks):
            raise ValueError(
                f"got {len(priors)} priors for {len(blocks)} observation blocks")
    if prior_weight <= 0.0:
        raise ValueError("prior_weight must be positive")
    if max_iterations < 1:
        raise ValueError("max_iterations must be at least 1")
    k = blocks[0].k
    for index, block in enumerate(blocks):
        if block.k != k:
            raise ValueError(
                f"observation block {index} has k={block.k}, expected {k} "
                "(stacked solves need a uniform condition count)")
    densities = []
    for prior in priors:
        density = prior.density if isinstance(prior, TimingPrior) else prior
        if density.dim != N_PARAMETERS:
            raise ValueError(
                f"prior has dimension {density.dim}, expected {N_PARAMETERS}")
        densities.append(density)

    stacked, block_sizes = _stack_blocks(blocks)
    term = _PriorTerm.from_densities(densities, block_sizes, prior_weight)
    result = _chunked_solve(term, stacked, model or CompactTimingModel(),
                            max_iterations, gtol, xtol, max_bytes)
    return _split_stacked(result, block_sizes, k)


def fit_least_squares_stacked(
    observations: Sequence[BatchMapObservations],
    model: Optional[CompactTimingModel] = None,
    initial_guess: Optional[np.ndarray] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    gtol: float = 1e-10,
    xtol: float = 1e-12,
    max_bytes: Optional[int] = None,
) -> List[BatchMapResult]:
    """Prior-free stacked least squares: the batched twin of
    :func:`repro.core.timing_model.fit_least_squares`.

    Every block's rows join one block-diagonal Levenberg-Marquardt solve of
    the plain relative-residual objective (no prior term, no precision
    weights unless a block carries ``beta``), starting from the same clipped
    initial guess as the scipy path.  This is the extraction half of fused
    historical-library characterization
    (:func:`repro.core.prior_learning.characterize_historical_library`):
    one solve fits every (arc, response) of a historical node instead of one
    scipy trust-region loop per fit.  The two solvers optimize the same
    objective from the same start, so the fitted parameters agree to solver
    tolerance (~1e-6 relative; both well inside the fit's own residual
    scale).

    Parameters
    ----------
    observations:
        One :class:`BatchMapObservations` per (arc, response) block; all
        blocks must share the observation count ``k``.
    model:
        Optional :class:`CompactTimingModel` supplying parameter bounds.
    initial_guess:
        Starting parameter vector shared by every row; defaults to
        :data:`repro.core.timing_model.DEFAULT_INITIAL_GUESS`.
    max_iterations, gtol, xtol, max_bytes:
        As in :func:`map_estimate_batch`.

    Returns
    -------
    list of BatchMapResult
        One result per block, in input order.
    """
    blocks = list(observations)
    if not blocks:
        raise ValueError("at least one observation block is required")
    if max_iterations < 1:
        raise ValueError("max_iterations must be at least 1")
    k = blocks[0].k
    for index, block in enumerate(blocks):
        if block.k != k:
            raise ValueError(
                f"observation block {index} has k={block.k}, expected {k} "
                "(stacked solves need a uniform condition count)")
    if initial_guess is None:
        start = DEFAULT_INITIAL_GUESS.copy()
    else:
        start = np.asarray(initial_guess, dtype=float).reshape(-1).copy()
        if start.size != N_PARAMETERS:
            raise ValueError(f"initial_guess must have {N_PARAMETERS} entries")

    stacked, block_sizes = _stack_blocks(blocks)
    term = _PriorTerm.free(start)
    result = _chunked_solve(term, stacked, model or CompactTimingModel(),
                            max_iterations, gtol, xtol, max_bytes)
    return _split_stacked(result, block_sizes, k)


def _stack_blocks(blocks: Sequence[BatchMapObservations]
                  ) -> "tuple[BatchMapObservations, List[int]]":
    """Concatenate blocks on the row axis (shared condition grids stay 1-D)."""
    k = blocks[0].k

    def stack(field: str) -> np.ndarray:
        values = [getattr(block, field) for block in blocks]
        # Shared-grid fast path: when every block carries the same 1-D
        # condition vector (the NLDM convention -- one fitting grid for the
        # whole library), keep it 1-D instead of materializing a dense
        # (total_rows, k) copy.
        first = values[0]
        if all(value.ndim == 1 and (value is first
                                    or np.array_equal(value, first))
               for value in values):
            return first
        return np.concatenate(
            [np.broadcast_to(value, block.response.shape)
             if value.ndim == 1 else value
             for value, block in zip(values, blocks)], axis=0)

    betas = [block.beta for block in blocks]
    if all(beta is None for beta in betas):
        beta_rows = None
    else:
        first_beta = betas[0]
        if (first_beta is not None
                and all(beta is not None and beta.ndim == 1
                        and (beta is first_beta
                             or np.array_equal(beta, first_beta))
                        for beta in betas)):
            beta_rows = first_beta
        else:
            parts = []
            for block in blocks:
                beta = block.beta if block.beta is not None else np.ones(k)
                if beta.ndim == 1:
                    beta = np.broadcast_to(beta, block.response.shape)
                parts.append(beta)
            beta_rows = np.concatenate(parts, axis=0)

    stacked = BatchMapObservations(
        sin=stack("sin"), cload=stack("cload"), vdd=stack("vdd"),
        ieff=stack("ieff"), response=stack("response"), beta=beta_rows)
    return stacked, [block.n_seeds for block in blocks]


def _split_stacked(result: "BatchMapResult", block_sizes: Sequence[int],
                   k: int) -> List[BatchMapResult]:
    """Slice one stacked solve back into per-block results."""
    results: List[BatchMapResult] = []
    start = 0
    for size in block_sizes:
        rows = slice(start, start + size)
        results.append(BatchMapResult(
            parameters=result.parameters[rows],
            converged=result.converged[rows],
            n_iterations=result.n_iterations[rows],
            cost=result.cost[rows],
            residuals=result.residuals[rows],
            n_observations=k,
        ))
        start += size
    return results


class _PriorTerm:
    """The Gaussian prior contribution, shared across rows or per-row.

    The single-arc solve shares one ``(4,)`` mean and one ``(4, 4)``
    whitener across every seed; the stacked multi-arc solve may carry one
    prior per arc, expanded here to per-row matrices.  Every per-row
    expression uses ``einsum`` rather than ``@``: BLAS matmul picks a
    different kernel for one-row operands (gemv vs gemm), whose last-ulp
    rounding differs, so matmul results would depend on how many seeds are
    still active -- breaking the bit-identity of memory-budgeted chunked
    solves whenever an accept/converge test sits on a rounding knife-edge.
    ``einsum`` computes each output row identically for any batch size.
    """

    def __init__(self, mu0: np.ndarray, whitener: np.ndarray,
                 normal: Optional[np.ndarray] = None):
        self.mu0 = mu0
        self.whitener = whitener
        self.shared = mu0.ndim == 1
        # W^T W of the normal equations, precomputed once per solve (row
        # subsets slice it rather than recomputing the einsum).
        if normal is not None:
            self._normal = normal
        elif self.shared:
            self._normal = whitener.T @ whitener
        else:
            self._normal = np.einsum("mki,mkj->mij", whitener, whitener)

    @classmethod
    def from_density(cls, density: GaussianDensity,
                     prior_weight: float) -> "_PriorTerm":
        whitener = density.scaled_covariance(
            1.0 / prior_weight).whitening_matrix(jitter=1e-12)
        return cls(np.asarray(density.mean, dtype=float), whitener)

    @classmethod
    def free(cls, start: np.ndarray) -> "_PriorTerm":
        """A zero-information prior: plain least squares from ``start``.

        The whitener is all zeros, so the prior residual, gradient and
        normal-matrix contributions vanish and only the LM damping
        regularizes the normal equations -- exactly the objective of
        :func:`repro.core.timing_model.fit_least_squares`.  ``start`` only
        seeds the iteration (via :meth:`start`).
        """
        return cls(np.asarray(start, dtype=float),
                   np.zeros((N_PARAMETERS, N_PARAMETERS)))

    @classmethod
    def from_densities(cls, densities: Sequence[GaussianDensity],
                       block_sizes: Sequence[int],
                       prior_weight: float) -> "_PriorTerm":
        """Per-block priors expanded to rows (shared fast path when equal)."""
        first = densities[0]
        if all(density is first
               or (np.array_equal(density.mean, first.mean)
                   and np.array_equal(density.covariance, first.covariance))
               for density in densities):
            return cls.from_density(first, prior_weight)
        mu_rows = []
        whitener_rows = []
        for density, size in zip(densities, block_sizes):
            term = cls.from_density(density, prior_weight)
            mu_rows.append(np.broadcast_to(term.mu0, (size, N_PARAMETERS)))
            whitener_rows.append(np.broadcast_to(
                term.whitener, (size, N_PARAMETERS, N_PARAMETERS)))
        return cls(np.concatenate(mu_rows, axis=0),
                   np.concatenate(whitener_rows, axis=0))

    def take(self, rows) -> "_PriorTerm":
        """The term restricted to a row subset (no-op when shared)."""
        if self.shared:
            return self
        return _PriorTerm(self.mu0[rows], self.whitener[rows],
                          normal=self._normal[rows])

    def residual(self, theta: np.ndarray) -> np.ndarray:
        """Whitened prior residual ``W (theta - mu0)`` per row."""
        if self.shared:
            return np.einsum("ij,mj->mi", self.whitener, theta - self.mu0)
        return np.einsum("mij,mj->mi", self.whitener, theta - self.mu0)

    def gradient(self, r_prior: np.ndarray) -> np.ndarray:
        """Gradient contribution ``W^T r_prior`` per row."""
        if self.shared:
            return np.einsum("ji,mj->mi", self.whitener, r_prior)
        return np.einsum("mji,mj->mi", self.whitener, r_prior)

    def normal(self) -> np.ndarray:
        """Normal-matrix contribution ``W^T W`` (per row when not shared)."""
        return self._normal

    def start(self, lower: np.ndarray, upper: np.ndarray,
              n_rows: int) -> np.ndarray:
        """Per-row starting point: the prior mean, nudged inside the bounds."""
        start = np.clip(self.mu0, lower + 1e-9, upper - 1e-9)
        if self.shared:
            return np.broadcast_to(start, (n_rows, N_PARAMETERS)).copy()
        return start.copy()


def _chunked_solve(
    term: _PriorTerm,
    observations: BatchMapObservations,
    model: CompactTimingModel,
    max_iterations: int,
    gtol: float,
    xtol: float,
    max_bytes: Optional[int],
) -> BatchMapResult:
    """Split the row axis under the memory budget and solve sequentially."""
    # Per-seed working set: residual and cost rows of length k, the (k, 4)
    # Jacobian plus its weighted copy, and the damped (4, 4) normal systems
    # with their solve scratch -- roughly 8 * (6k + 80) bytes.  Rows that
    # carry their own condition vectors (stacked multi-arc solves) add the
    # stored (k,) arrays plus the per-iteration gathered copies; per-row
    # priors add their (4,) mean and two (4, 4) matrices.
    k = observations.k
    item_bytes = 8 * (6 * k + 80)
    for value in (observations.sin, observations.cload, observations.vdd,
                  observations.beta):
        if value is not None and value.ndim == 2:
            item_bytes += 8 * 2 * k
    if not term.shared:
        item_bytes += 8 * 2 * (N_PARAMETERS + 2 * N_PARAMETERS ** 2)
    chunks = plan_chunks(observations.n_seeds, item_bytes,
                         resolve_max_bytes(max_bytes))
    if len(chunks) > 1:
        parts = [
            _solve_seed_block(term.take(rows),
                              _slice_observations(observations, rows),
                              model, max_iterations, gtol, xtol)
            for rows in chunks
        ]
        result = BatchMapResult(
            parameters=np.concatenate([p.parameters for p in parts], axis=0),
            converged=np.concatenate([p.converged for p in parts]),
            n_iterations=np.concatenate([p.n_iterations for p in parts]),
            cost=np.concatenate([p.cost for p in parts]),
            residuals=np.concatenate([p.residuals for p in parts], axis=0),
            n_observations=k,
        )
    else:
        result = _solve_seed_block(term, observations, model, max_iterations,
                                   gtol, xtol)
    # Identity (same object, no copy) without an active fault injector;
    # under injection, poisoned rows model a silently corrupted solve and
    # are caught downstream by repair_batch_result / the library flows.
    poisoned = faultinject.corrupt_rows(SITE_RESULT, result.parameters)
    if poisoned is not result.parameters:
        result = replace(result, parameters=poisoned)
    return result


def _slice_observations(observations: BatchMapObservations,
                        rows: slice) -> BatchMapObservations:
    """One contiguous seed block of a batch (shared conditions stay shared)."""

    def take(value: Optional[np.ndarray]) -> Optional[np.ndarray]:
        if value is None or value.ndim == 1:
            return value
        return value[rows]

    return BatchMapObservations(
        sin=take(observations.sin),
        cload=take(observations.cload),
        vdd=take(observations.vdd),
        ieff=take(observations.ieff),
        response=observations.response[rows],
        beta=take(observations.beta),
    )


def _solve_seed_block(
    term: _PriorTerm,
    observations: BatchMapObservations,
    model: CompactTimingModel,
    max_iterations: int,
    gtol: float,
    xtol: float,
) -> BatchMapResult:
    """The vectorized LM solve of one (possibly chunked) row block."""
    lower, upper = model.bounds
    bound_atol = 1e-10 * (upper - lower)

    sin, cload, vdd = observations.sin, observations.cload, observations.vdd
    ieff = observations.ieff
    response = observations.response
    n_seeds, k = response.shape
    beta = (observations.beta if observations.beta is not None else np.ones(k))
    # Residual weights: sqrt(beta) / response gives the relative, precision-
    # weighted data residual of Eq. 15 when multiplied by (model - response).
    sqrt_beta = np.sqrt(beta)
    weight = (sqrt_beta[np.newaxis, :] if sqrt_beta.ndim == 1
              else sqrt_beta) / response

    def row_take(value: np.ndarray, rows: np.ndarray) -> np.ndarray:
        return value if value.ndim == 1 else value[rows]

    def data_residual_jacobian(theta: np.ndarray, rows: np.ndarray
                               ) -> "tuple[np.ndarray, np.ndarray]":
        prediction, jacobian = CompactTimingModel.evaluate_and_jacobian(
            theta, row_take(sin, rows), row_take(cload, rows),
            row_take(vdd, rows), row_take(ieff, rows))
        w = weight[rows]
        return (prediction - response[rows]) * w, jacobian * w[..., np.newaxis]

    def cost_of(theta: np.ndarray, rows: np.ndarray,
                row_term: _PriorTerm) -> np.ndarray:
        prediction = CompactTimingModel.evaluate_array(
            theta[:, np.newaxis, :], row_take(sin, rows),
            row_take(cload, rows), row_take(vdd, rows), row_take(ieff, rows))
        data = (prediction - response[rows]) * weight[rows]
        prior_res = row_term.residual(theta)
        return np.einsum("ij,ij->i", data, data) + np.einsum(
            "ij,ij->i", prior_res, prior_res)

    theta = term.start(lower, upper, n_seeds)
    cost = cost_of(theta, np.arange(n_seeds), term)
    damping = np.full(n_seeds, _LAMBDA_INIT)
    converged = np.zeros(n_seeds, dtype=bool)
    iterations = np.zeros(n_seeds, dtype=int)

    active = np.arange(n_seeds)
    eye = np.eye(N_PARAMETERS)
    for _ in range(max_iterations):
        if active.size == 0:
            break
        iterations[active] += 1
        theta_a = theta[active]
        active_term = term.take(active)
        r_data, j_data = data_residual_jacobian(theta_a, active)
        r_prior = active_term.residual(theta_a)
        # Gradient and Gauss-Newton normal matrix of the stacked problem;
        # the prior block contributes whitener^T whitener, which keeps every
        # normal matrix positive definite regardless of the data.
        gradient = (np.einsum("mki,mk->mi", j_data, r_data)
                    + active_term.gradient(r_prior))
        normal = (np.einsum("mki,mkj->mij", j_data, j_data)
                  + active_term.normal())

        # Active-set classification: a coordinate resting on a bound whose
        # gradient pushes further outward is frozen for this iteration (it
        # cannot produce feasible descent); the projected gradient over the
        # remaining free coordinates is the first-order optimality measure.
        at_lower = theta_a <= lower + bound_atol
        at_upper = theta_a >= upper - bound_atol
        free = ~((at_lower & (gradient > 0.0)) | (at_upper & (gradient < 0.0)))
        projected = np.where(free, gradient, 0.0)
        done = np.max(np.abs(projected), axis=1) < gtol * np.maximum(cost[active], 1.0)

        # Marquardt step on the *reduced* system: frozen coordinates get a
        # unit diagonal row/column and a zero gradient entry, so their step
        # component is exactly zero while the free block keeps its damped
        # Gauss-Newton curvature.  One batched factorization solves every
        # active seed's 4x4 system.
        scale = np.clip(np.einsum("mii->mi", normal), 1e-30, None)
        damped = normal + (damping[active][:, np.newaxis] * scale)[:, :, np.newaxis] * eye
        free_f = free.astype(float)
        damped = damped * free_f[:, :, np.newaxis] * free_f[:, np.newaxis, :]
        diag_idx = np.arange(N_PARAMETERS)
        damped[:, diag_idx, diag_idx] += 1.0 - free_f
        step = np.linalg.solve(damped, -projected[..., np.newaxis])[..., 0]
        candidate = np.clip(theta_a + step, lower, upper)
        moved = candidate - theta_a
        new_cost = cost_of(candidate, active, active_term)

        accept = new_cost <= cost[active]
        # Tiny accepted moves mean the iterate is numerically stationary
        # (possibly pressed against a bound).  A tiny move that is *rejected*
        # under already-saturated damping is stationary too: the heaviest
        # representable damping cannot produce a descent step, which happens
        # when large beta scales the cost so far above 1 that float rounding
        # swamps the remaining descent (the gradient test above, scaled by
        # the cost, covers the same regime from the other side).
        saturated = damping[active] >= _LAMBDA_MAX
        step_small = (np.max(np.abs(moved), axis=1)
                      < xtol * (np.max(np.abs(theta_a), axis=1) + xtol))
        done |= step_small & (accept | saturated)

        rows = active[accept]
        theta[rows] = candidate[accept]
        cost[rows] = new_cost[accept]
        damping[rows] = np.maximum(damping[rows] * _LAMBDA_DOWN, _LAMBDA_MIN)
        rejected = active[~accept]
        damping[rejected] = np.minimum(damping[rejected] * _LAMBDA_UP, _LAMBDA_MAX)

        converged[active[done]] = True
        # A saturated seed still proposing non-tiny steps that all fail is
        # genuinely stuck: retire it so it stops burning iterations, but
        # report it unconverged.
        stalled = ~done & saturated & ~step_small
        active = active[~(done | stalled)]

    prediction = CompactTimingModel.evaluate_array(
        theta[:, np.newaxis, :], sin, cload, vdd, ieff)
    residuals = (prediction - response) / response
    return BatchMapResult(
        parameters=theta,
        converged=converged,
        n_iterations=iterations,
        cost=cost,
        residuals=residuals,
        n_observations=k,
    )


def repair_batch_result(
    result: BatchMapResult,
    observations: BatchMapObservations,
    prior: "TimingPrior | GaussianDensity",
    model: Optional[CompactTimingModel] = None,
    prior_weight: float = 1.0,
    include_unconverged: bool = False,
    ledger=None,
) -> BatchMapResult:
    """Per-seed fallback chain ``batched -> scipy -> prior mean``.

    Seeds whose solved parameter row is non-finite (a diverged or corrupted
    batched solve) are re-solved one at a time through the scalar scipy
    path (:func:`repro.core.map_estimation.map_estimate`); a seed the scipy
    solver cannot rescue either falls back to the prior mean, clipped into
    the model's parameter box and flagged unconverged.  Healthy rows are
    returned untouched (same values, bit-identical), so a clean result
    passes through unchanged -- the chain only ever *adds* information to
    broken rows.

    Parameters
    ----------
    result, observations:
        One block's solve outcome and the observations that produced it.
    prior:
        The block's prior (supplies the scipy re-solve and the last-resort
        mean).
    model, prior_weight:
        As in :func:`map_estimate_batch`.
    include_unconverged:
        Also re-solve finite-but-unconverged seeds.  Off by default: clean
        runs legitimately carry a few unconverged seeds, and re-solving
        them would break the bit-identity of non-faulted results between
        strict and non-strict runs.
    ledger:
        Optional :class:`~repro.runtime.accounting.RunLedger`; repairs are
        counted under ``map_repaired_scipy`` / ``map_repaired_prior``
        (recorded only when nonzero).

    Returns
    -------
    BatchMapResult
        The result with broken rows repaired; the same object when nothing
        needed repair.
    """
    from repro.core.map_estimation import MapObservations, map_estimate

    bad = ~np.all(np.isfinite(result.parameters), axis=1)
    if include_unconverged:
        bad = bad | ~result.converged
    if not np.any(bad):
        return result

    model = model or CompactTimingModel()
    lower, upper = model.bounds
    density = prior.density if isinstance(prior, TimingPrior) else prior
    whitener = density.scaled_covariance(
        1.0 / prior_weight).whitening_matrix(jitter=1e-12)
    mu0 = np.asarray(density.mean, dtype=float)

    def row_of(value: Optional[np.ndarray], row: int) -> Optional[np.ndarray]:
        if value is None or value.ndim == 1:
            return value
        return value[row]

    parameters = result.parameters.copy()
    converged = result.converged.copy()
    residuals = result.residuals.copy()
    cost = result.cost.copy()
    via_scipy = 0
    via_prior = 0
    for row in np.nonzero(bad)[0]:
        response_row = observations.response[row]
        theta = None
        try:
            fit = map_estimate(
                prior,
                MapObservations(
                    sin=row_of(observations.sin, row),
                    cload=row_of(observations.cload, row),
                    vdd=row_of(observations.vdd, row),
                    ieff=row_of(observations.ieff, row),
                    response=response_row,
                    beta=row_of(observations.beta, row),
                ),
                model=model,
                prior_weight=prior_weight,
            )
            candidate = fit.params.as_array()
            if np.all(np.isfinite(candidate)):
                theta = candidate
                converged[row] = bool(fit.converged)
                via_scipy += 1
        except Exception:
            theta = None
        if theta is None:
            theta = np.clip(mu0, lower, upper)
            converged[row] = False
            via_prior += 1
        parameters[row] = theta
        prediction = CompactTimingModel.evaluate_array(
            theta[np.newaxis, np.newaxis, :],
            row_of(observations.sin, row), row_of(observations.cload, row),
            row_of(observations.vdd, row), row_of(observations.ieff, row))[0]
        residuals[row] = (prediction - response_row) / response_row
        beta_row = row_of(observations.beta, row)
        weight = (np.sqrt(beta_row) if beta_row is not None
                  else 1.0) / response_row
        data = (prediction - response_row) * weight
        prior_res = whitener @ (theta - mu0)
        cost[row] = float(data @ data + prior_res @ prior_res)

    if ledger is not None:
        if via_scipy:
            ledger.add_metric("map_repaired_scipy", via_scipy)
        if via_prior:
            ledger.add_metric("map_repaired_prior", via_prior)
    return replace(result, parameters=parameters, converged=converged,
                   residuals=residuals, cost=cost)
