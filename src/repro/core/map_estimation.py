"""Maximum-a-posteriori (MAP) parameter extraction (Eq. 15 of the paper).

Given the learned prior ``N(mu_t0, Sigma_t0)`` over timing-model parameters,
the per-condition model precision ``beta(xi)`` and a *very small* set of
target-technology observations, the MAP estimate minimizes

.. math::

    \\tfrac{1}{2} (\\theta - \\mu_{t0})^T \\Sigma_{t0}^{-1} (\\theta - \\mu_{t0})
    + \\tfrac{1}{2} \\sum_i \\beta(\\xi^{(i)})
        \\Big(\\tfrac{T^{(i)} - f(\\xi^{(i)}, \\theta)}{T^{(i)}}\\Big)^2

which is the paper's Eq. 15 with the residuals expressed in relative form --
consistent with the precision definition of Eq. 9, which is computed from
*relative* model errors (an absolute-residual formulation would require
precisions of order ``1e22`` for picosecond-scale delays).

The objective is a sum of a convex quadratic prior term and a (mildly)
nonlinear least-squares likelihood; it is solved with a bounded
Gauss-Newton/trust-region method by stacking the whitened prior residuals and
the precision-weighted data residuals into one least-squares problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import least_squares

from repro.bayes.gaussian import GaussianDensity
from repro.core.prior_learning import TimingPrior
from repro.core.timing_model import (
    CompactTimingModel,
    FitResult,
    N_PARAMETERS,
    TimingModelParameters,
)


@dataclass(frozen=True)
class MapObservations:
    """Target-technology observations feeding the MAP estimate.

    All arrays share the length ``k`` (the number of fitting input
    conditions, typically 1-10).

    Attributes
    ----------
    sin, cload, vdd:
        Operating points in SI units.
    ieff:
        Effective current of the arc's driving device at each operating
        point (per Eq. 4), in amperes.
    response:
        Observed delay or output slew, in seconds.
    beta:
        Model precision at each operating point (from the learned
        :class:`~repro.bayes.precision.PrecisionModel`); ``None`` means a
        unit precision for every observation.
    """

    sin: np.ndarray
    cload: np.ndarray
    vdd: np.ndarray
    ieff: np.ndarray
    response: np.ndarray
    beta: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        arrays = {
            "sin": np.asarray(self.sin, dtype=float).reshape(-1),
            "cload": np.asarray(self.cload, dtype=float).reshape(-1),
            "vdd": np.asarray(self.vdd, dtype=float).reshape(-1),
            "ieff": np.asarray(self.ieff, dtype=float).reshape(-1),
            "response": np.asarray(self.response, dtype=float).reshape(-1),
        }
        length = arrays["response"].size
        if length == 0:
            raise ValueError("at least one observation is required")
        for name, array in arrays.items():
            if array.size != length:
                raise ValueError(f"{name} has {array.size} entries, expected {length}")
            object.__setattr__(self, name, array)
        if np.any(arrays["response"] <= 0.0):
            raise ValueError("responses must be strictly positive")
        if self.beta is not None:
            beta = np.asarray(self.beta, dtype=float).reshape(-1)
            if beta.size != length:
                raise ValueError("beta must have one entry per observation")
            if np.any(beta <= 0.0):
                raise ValueError("beta values must be strictly positive")
            object.__setattr__(self, "beta", beta)

    @property
    def k(self) -> int:
        """Number of fitting observations."""
        return int(self.response.size)


def map_estimate(
    prior: "TimingPrior | GaussianDensity",
    observations: MapObservations,
    model: Optional[CompactTimingModel] = None,
    prior_weight: float = 1.0,
    ftol: float = 1e-8,
    xtol: float = 1e-8,
    gtol: float = 1e-8,
) -> FitResult:
    """MAP extraction of the compact-model parameters.

    Parameters
    ----------
    prior:
        Either a full :class:`~repro.core.prior_learning.TimingPrior` or the
        bare Gaussian parameter prior.
    observations:
        Target-technology observations (see :class:`MapObservations`).
    model:
        Optional :class:`CompactTimingModel` supplying parameter bounds.
    prior_weight:
        Scale factor on the prior term (1.0 = Eq. 15; 0 would degenerate to
        plain least squares and is disallowed -- use
        :func:`repro.core.timing_model.fit_least_squares` for that).
    ftol, xtol, gtol:
        Termination tolerances forwarded to
        :func:`scipy.optimize.least_squares` (scipy's defaults).  The parity
        suite tightens them so this reference path converges at least as far
        as the batched solver it is compared against.

    Returns
    -------
    FitResult
        Extracted parameters plus training-residual statistics.
    """
    if prior_weight <= 0.0:
        raise ValueError("prior_weight must be positive; use fit_least_squares for "
                         "a prior-free extraction")
    density = prior.density if isinstance(prior, TimingPrior) else prior
    if density.dim != N_PARAMETERS:
        raise ValueError(f"prior has dimension {density.dim}, expected {N_PARAMETERS}")
    model = model or CompactTimingModel()

    mu0 = density.mean
    # Whitening matrix L such that L.T @ L = precision; then the prior term
    # becomes ||L @ (theta - mu0)||^2 / 2 and stacks into least squares.
    # The batched estimator (repro.core.batch_map) builds the identical
    # whitener, so the two solvers minimize the same objective.
    whitener = density.scaled_covariance(1.0 / prior_weight).whitening_matrix(
        jitter=1e-12)

    beta = (observations.beta if observations.beta is not None
            else np.ones(observations.k))
    sqrt_beta = np.sqrt(beta)

    lower, upper = model.bounds

    def residuals(theta: np.ndarray) -> np.ndarray:
        prediction = CompactTimingModel.evaluate_array(
            theta, observations.sin, observations.cload, observations.vdd,
            observations.ieff)
        data_residual = sqrt_beta * (prediction - observations.response) / observations.response
        prior_residual = whitener @ (theta - mu0)
        return np.concatenate([data_residual, prior_residual])

    start = np.clip(mu0, lower + 1e-9, upper - 1e-9)
    solution = least_squares(residuals, start, bounds=(lower, upper), method="trf",
                             ftol=ftol, xtol=xtol, gtol=gtol)

    prediction = CompactTimingModel.evaluate_array(
        solution.x, observations.sin, observations.cload, observations.vdd,
        observations.ieff)
    relative = (prediction - observations.response) / observations.response
    return FitResult(
        params=TimingModelParameters.from_array(solution.x),
        mean_abs_relative_error=float(np.mean(np.abs(relative))),
        max_abs_relative_error=float(np.max(np.abs(relative))),
        residuals=relative,
        n_observations=observations.k,
        converged=bool(solution.success),
    )
