"""Unified run accounting: the :class:`RunLedger`.

PRs 1-3 each accounted differently -- the transient engine charges a
:class:`~repro.spice.testbench.SimulationCounter`, the MAP solver reports
per-seed iteration counts, the library orchestrator sums
``simulation_runs``, and wall time was measured ad hoc in the examples.
The :class:`RunLedger` merges all of it into one picklable record:

* **simulations** -- simulator invocations by label (the paper's cost
  metric), mirroring :class:`~repro.spice.testbench.SimulationCounter`;
* **stages** -- wall time and call count per named stage
  (``with ledger.stage("simulate"): ...``);
* **metrics** -- free-form integer counters (solver iterations, timing
  queries, chunk counts);
* **group sizes** -- named lists of work-group sizes (e.g. how many
  simulation rows each equivalent-inverter signature group of the fused
  library pipeline carried), so batching effectiveness is observable;
* **cache activity** -- hit/miss/eviction deltas of the registered runtime
  caches (``with ledger.caches(): ...`` snapshots around a block);
* **gauges** -- high-water marks (peak queue depth of the serving front
  door, peak batch size): ``set_gauge`` keeps the maximum seen, and merge
  takes the max across ledgers instead of summing;
* **failures** -- structured
  :class:`~repro.runtime.resilience.FailureReport` records of work that was
  quarantined or degraded rather than aborted (non-strict library flows),
  concatenated on merge like group sizes.

Ledgers merge associatively (``parent.merge(child)``), so per-arc ledgers
produced inside process-pool workers combine into one library-level record
regardless of execution mode, and :func:`repro.analysis.reporting.format_ledger`
renders the result for humans.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional


class RunLedger:
    """Mergeable record of what one run did and where the time went.

    Plain picklable state (dicts of numbers), so ledgers cross process
    boundaries with the jobs that fill them.  Not thread-safe -- the
    library's concurrency model is process fan-out with per-worker ledgers
    merged by the parent.
    """

    def __init__(self) -> None:
        self._simulations: Dict[str, int] = {}
        self._stages: Dict[str, list] = {}
        self._metrics: Dict[str, int] = {}
        self._groups: Dict[str, List[int]] = {}
        self._cache_activity: Dict[str, Dict[str, int]] = {}
        self._failures: List[dict] = []
        self._gauges: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add_simulations(self, runs: int, label: str = "unlabelled") -> None:
        """Charge ``runs`` simulator invocations under ``label``."""
        if runs < 0:
            raise ValueError("runs must be non-negative")
        self._simulations[label] = self._simulations.get(label, 0) + int(runs)

    def add_metric(self, name: str, value: int) -> None:
        """Accumulate a free-form integer counter (summed on merge)."""
        self._metrics[name] = self._metrics.get(name, 0) + int(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Record a high-water mark (keeps the maximum ever seen).

        Gauges answer "how bad did it get" questions -- peak queue depth,
        largest coalesced batch -- where summing across merges would be
        meaningless, so merge takes the max too.
        """
        value = float(value)
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    def add_group_sizes(self, name: str, sizes: Iterable[int]) -> None:
        """Record the sizes of a named batch of work groups.

        Sizes append in recording order and concatenate on merge, so a
        library run's per-signature simulation-group sizes survive process
        fan-out and show up in :func:`repro.analysis.reporting.format_ledger`.
        """
        validated = [int(size) for size in sizes]
        if any(size < 0 for size in validated):
            raise ValueError("group sizes must be non-negative")
        self._groups.setdefault(name, []).extend(validated)

    def add_stage_time(self, name: str, wall_s: float, calls: int = 1) -> None:
        """Record ``wall_s`` seconds (and ``calls`` entries) against a stage."""
        entry = self._stages.setdefault(name, [0.0, 0])
        entry[0] += float(wall_s)
        entry[1] += int(calls)

    def add_cache_activity(self, cache_name: str, hits: int = 0,
                           misses: int = 0, evictions: int = 0) -> None:
        """Record cache hit/miss/eviction deltas against one cache name."""
        entry = self._cache_activity.setdefault(
            cache_name, {"hits": 0, "misses": 0, "evictions": 0})
        entry["hits"] += int(hits)
        entry["misses"] += int(misses)
        entry["evictions"] += int(evictions)

    def add_failure(self, report) -> None:
        """Record a :class:`~repro.runtime.resilience.FailureReport`.

        Stored in dict form so the ledger stays plain picklable state;
        failures concatenate on merge in recording order.
        """
        record = report.as_dict() if hasattr(report, "as_dict") else dict(report)
        self._failures.append(record)

    @contextmanager
    def stage(self, name: str):
        """Time a block of work against the named stage."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add_stage_time(name, time.perf_counter() - start)

    @contextmanager
    def caches(self, names: Optional[Iterable[str]] = None):
        """Record registered-cache activity deltas across a block.

        ``names`` restricts the snapshot to specific caches; the default
        covers every cache registered when the block opens (caches
        registered *inside* the block are picked up on exit too).  A cache
        with a durable tier attached contributes a second activity row
        named ``"<name>:disk"`` carrying the disk store's hit/miss/eviction
        deltas, so warm-start behavior shows up in the same ledger table
        without disturbing the memory-tier counters.
        """
        from repro.runtime.cache import registered_caches

        def snapshot() -> Dict[str, tuple]:
            caches = registered_caches()
            if names is not None:
                wanted = set(names)
                caches = {n: c for n, c in caches.items() if n in wanted}
            out: Dict[str, tuple] = {}
            for n, c in caches.items():
                out[n] = (c.hits, c.misses, c.evictions)
                disk = getattr(c, "disk_store", None)
                if disk is not None:
                    s = disk.stats()
                    out[n + ":disk"] = (s.hits, s.misses, s.evictions)
            return out

        before = snapshot()
        try:
            yield self
        finally:
            for cache_name, (hits, misses, evictions) in snapshot().items():
                h0, m0, e0 = before.get(cache_name, (0, 0, 0))
                # clear() inside the block resets counters below the
                # baseline; clamp at zero rather than recording negatives.
                self.add_cache_activity(
                    cache_name,
                    hits=max(hits - h0, 0),
                    misses=max(misses - m0, 0),
                    evictions=max(evictions - e0, 0),
                )

    def merge(self, other: "RunLedger") -> "RunLedger":
        """Fold another ledger's records into this one (returns self)."""
        for label, runs in other._simulations.items():
            self.add_simulations(runs, label)
        for name, (wall_s, calls) in other._stages.items():
            self.add_stage_time(name, wall_s, calls)
        for name, value in other._metrics.items():
            self.add_metric(name, value)
        for name, sizes in other._groups.items():
            self.add_group_sizes(name, sizes)
        for cache_name, activity in other._cache_activity.items():
            self.add_cache_activity(cache_name, **activity)
        for record in other._failures:
            self._failures.append(dict(record))
        for name, value in other._gauges.items():
            self.set_gauge(name, value)
        return self

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def simulations_total(self) -> int:
        """Total simulator invocations across all labels."""
        return sum(self._simulations.values())

    def simulations_by_label(self) -> Dict[str, int]:
        """Simulator invocations per label."""
        return dict(self._simulations)

    def stages(self) -> Dict[str, Dict[str, float]]:
        """Wall seconds and call count per stage, in recording order."""
        return {name: {"wall_s": wall_s, "calls": calls}
                for name, (wall_s, calls) in self._stages.items()}

    def stage_seconds(self, name: str) -> float:
        """Accumulated wall seconds of one stage (0.0 when unrecorded)."""
        entry = self._stages.get(name)
        return float(entry[0]) if entry else 0.0

    def metrics(self) -> Dict[str, int]:
        """All free-form counters."""
        return dict(self._metrics)

    def group_sizes(self) -> Dict[str, List[int]]:
        """Recorded work-group sizes per name, in recording order."""
        return {name: list(sizes) for name, sizes in self._groups.items()}

    def gauges(self) -> Dict[str, float]:
        """All high-water marks recorded via :meth:`set_gauge`."""
        return dict(self._gauges)

    def cache_activity(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/eviction deltas per cache name."""
        return {name: dict(activity)
                for name, activity in self._cache_activity.items()}

    def failures(self) -> List:
        """Recorded failures as :class:`FailureReport` objects, in order."""
        from repro.runtime.resilience import FailureReport
        return [FailureReport.from_dict(record) for record in self._failures]

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form of the whole ledger."""
        return {
            "simulations": self.simulations_by_label(),
            "simulations_total": self.simulations_total,
            "stages": self.stages(),
            "metrics": self.metrics(),
            "gauges": self.gauges(),
            "groups": self.group_sizes(),
            "caches": self.cache_activity(),
            "failures": [dict(record) for record in self._failures],
        }
