"""Pluggable job execution with deterministic splitting and merged accounting.

Every fan-out in the library used to hand-roll its execution: the library
orchestrator had a private ``concurrency=`` if/else around a
``ProcessPoolExecutor``, the condition sweep ran its batches inline, and
nothing shared accounting.  This module is the one execution substrate they
now run on:

* ``serial`` -- in-process, one job at a time (the default, and the only
  mode that shares the process-wide runtime caches with the caller);
* ``chunked`` -- in-process, but jobs are walked in deterministic
  contiguous chunks (:func:`repro.runtime.chunking.plan_chunks`), giving
  sharding-shaped execution -- per-chunk accounting merges, bounded
  peak state -- without leaving the process;
* ``process`` -- fan-out over a ``ProcessPoolExecutor``; workers get
  pickled payloads, run the same batched engines, and return their results
  (and ledgers) for in-order merging.

Whatever the mode, ``map`` preserves payload order and
``map_accounted`` merges per-job :class:`~repro.runtime.accounting.RunLedger`
records into the caller's ledger **in payload order**, so accounting is
bit-identical across execution modes (the property the library-flow test
suite pins).

Fault tolerance (opt-in, default behavior unchanged): every executor can
carry a :class:`~repro.runtime.resilience.RetryPolicy` that re-attempts
failed jobs, and :class:`ProcessExecutor` survives worker crashes -- a
``BrokenProcessPool`` no longer loses the batch; payloads without results
are re-run through a serial fallback in the parent process.  Retries and
fallbacks are counted on the executor (``last_retries``/``last_fallbacks``)
and recorded as ``executor_retries``/``executor_fallbacks`` ledger metrics
by ``map_accounted`` -- only when nonzero, so clean-run accounting stays
bit-identical across modes.  Fault sites ``executor.job`` (per-payload) and
``executor.process.map`` (pool construction) let the fault-injection
harness exercise both paths deterministically.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple

from repro.runtime import faultinject
from repro.runtime.accounting import RunLedger
from repro.runtime.chunking import plan_chunks
from repro.runtime.resilience import RetryPolicy, run_with_retry

#: Execution modes selectable in :func:`get_executor`.
EXECUTOR_MODES = ("serial", "chunked", "process")

SITE_PROCESS_MAP = faultinject.register_fault_site(
    "executor.process.map",
    "ProcessExecutor.map pool dispatch (crash -> BrokenProcessPool path)")
SITE_JOB = faultinject.register_fault_site(
    "executor.job",
    "one executor payload about to run (any executor mode)")

#: Sentinel distinguishing "no result yet" from a legitimate ``None`` result.
_MISSING = object()


def _annotate_payload_index(error: BaseException, index: int) -> None:
    """Stamp the failing payload index into ``error``'s message in place.

    Mutating ``args`` (rather than wrapping) preserves the exception type,
    so callers' ``except SomeError`` clauses keep working.
    """
    note = f"(payload index {index})"
    if note in "".join(str(a) for a in error.args):
        return
    if error.args and isinstance(error.args[0], str):
        error.args = (f"{error.args[0]} {note}",) + error.args[1:]
    else:
        error.args = error.args + (note,)


class SerialExecutor:
    """In-process, in-order execution (the reference semantics)."""

    mode = "serial"

    def __init__(self, retry_policy: Optional[RetryPolicy] = None):
        self._retry_policy = retry_policy
        #: Job re-attempts during the most recent ``map`` call.
        self.last_retries = 0
        #: Payloads recovered through a serial fallback in the most recent
        #: ``map`` call (only the process executor can fall back).
        self.last_fallbacks = 0

    @property
    def retry_policy(self) -> Optional[RetryPolicy]:
        """Retry policy applied to each job (``None`` = fail fast)."""
        return self._retry_policy

    def _reset_counters(self) -> None:
        self.last_retries = 0
        self.last_fallbacks = 0

    def _count_retry(self, attempt: int, error: BaseException) -> None:
        self.last_retries += 1

    def _run_one(self, fn: Callable, payload, index: int):
        """Run one payload through the ``executor.job`` fault site and,
        when a retry policy is set, under :func:`run_with_retry`."""
        def attempt():
            faultinject.fire(SITE_JOB)
            return fn(payload)

        policy = self._retry_policy
        if policy is None or policy.is_noop:
            return attempt()
        return run_with_retry(attempt, policy, site=f"job[{index}]",
                              on_retry=self._count_retry)

    def map(self, fn: Callable, payloads: Sequence,
            on_result: Optional[Callable] = None) -> List:
        """Apply ``fn`` to every payload, returning results in order.

        ``on_result(index, result)``, when given, is invoked as each
        payload's result becomes available (in payload order for the
        in-process executors; in collection order for the process pool) --
        the hook the checkpoint layer uses to commit completed work units
        *during* a long map instead of after it.
        """
        self._reset_counters()
        results: List = []
        for index, payload in enumerate(payloads):
            result = self._run_one(fn, payload, index)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results

    def shard_hint(self, n_items: int) -> int:
        """How many shards ``n_items`` work items should split into.

        Serial execution gains nothing from splitting, so the hint is 1;
        the process executor overrides this with its worker count.  Callers
        that fan a flat work axis out through :meth:`map` (the fused
        library pipeline's simulation rows) combine this hint with their
        memory-budget chunk count -- splitting is always safe because chunk
        rows are computed independently in every batched engine.
        """
        return 1 if n_items > 0 else 0

    def map_accounted(self, fn: Callable, payloads: Sequence,
                      ledger: Optional[RunLedger] = None,
                      on_result: Optional[Callable] = None) -> List:
        """Run jobs that return ``(result, RunLedger)`` pairs.

        Per-job ledgers merge into ``ledger`` in payload order (independent
        of which worker or chunk ran the job); the bare results are
        returned, in order.  Retries and serial fallbacks from this map are
        recorded as ``executor_retries``/``executor_fallbacks`` metrics --
        only when nonzero, keeping clean-run accounting identical across
        execution modes.

        ``on_result(index, result)`` receives each *bare* result (ledger
        already stripped) as it becomes available; see :meth:`map`.
        """
        hook: Optional[Callable] = None
        if on_result is not None:
            def hook(index: int, outcome) -> None:
                on_result(index, outcome[0])
        outcomes: List[Tuple[object, RunLedger]] = self.map(
            fn, payloads, on_result=hook)
        results = []
        for result, job_ledger in outcomes:
            if ledger is not None and job_ledger is not None:
                ledger.merge(job_ledger)
            results.append(result)
        if ledger is not None:
            if self.last_retries:
                ledger.add_metric("executor_retries", self.last_retries)
            if self.last_fallbacks:
                ledger.add_metric("executor_fallbacks", self.last_fallbacks)
        return results


class ChunkedExecutor(SerialExecutor):
    """In-process execution over deterministic contiguous chunks.

    Semantically identical to :class:`SerialExecutor`; the explicit chunk
    walk exists so long job lists execute in bounded slices with a
    well-defined merge point after each chunk -- the same shape a future
    multi-node shard scheduler needs.
    """

    mode = "chunked"

    def __init__(self, chunk_size: int = 8,
                 retry_policy: Optional[RetryPolicy] = None):
        super().__init__(retry_policy=retry_policy)
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self._chunk_size = int(chunk_size)

    @property
    def chunk_size(self) -> int:
        """Maximum jobs per chunk."""
        return self._chunk_size

    def map(self, fn: Callable, payloads: Sequence,
            on_result: Optional[Callable] = None) -> List:
        payloads = list(payloads)
        self._reset_counters()
        n_chunks = -(-len(payloads) // self._chunk_size) if payloads else 0
        results: List = []
        for chunk in plan_chunks(len(payloads), n_chunks=n_chunks):
            for index in range(chunk.start, chunk.stop):
                result = self._run_one(fn, payloads[index], index)
                if on_result is not None:
                    on_result(index, result)
                results.append(result)
        return results


class ProcessExecutor(SerialExecutor):
    """Process-pool fan-out (results still returned in payload order).

    Workers are separate processes: they build their own runtime caches and
    fill their own ledgers, which :meth:`map_accounted` merges back in
    payload order.  Payloads and results must be picklable.

    Crash recovery: a worker dying (segfault, OOM kill, ``os._exit``)
    breaks the whole pool -- ``BrokenProcessPool`` -- and loses every
    not-yet-collected result.  Instead of propagating, the payloads without
    results are re-run through the serial path in the parent process
    (counted in ``last_fallbacks``).  Ordinary worker exceptions are
    retried serially when a retry policy is set; a final failure propagates
    with its original type, annotated with the failing payload index.
    """

    mode = "process"

    def __init__(self, max_workers: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None):
        super().__init__(retry_policy=retry_policy)
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, "
                             f"got {max_workers}")
        self._max_workers = max_workers

    @property
    def max_workers(self) -> Optional[int]:
        """Pool size cap (``None`` = executor default)."""
        return self._max_workers

    def shard_hint(self, n_items: int) -> int:
        """At least one shard per pool worker (capped at one item each)."""
        if n_items <= 0:
            return 0
        workers = self._max_workers or os.cpu_count() or 1
        return max(1, min(int(n_items), int(workers)))

    def _serial_fallback(self, fn: Callable, payload, index: int):
        """Recover one payload in the parent after a pool failure."""
        self.last_fallbacks += 1
        try:
            return self._run_one(fn, payload, index)
        except Exception as error:
            _annotate_payload_index(error, index)
            raise

    def map(self, fn: Callable, payloads: Sequence,
            on_result: Optional[Callable] = None) -> List:
        payloads = list(payloads)
        self._reset_counters()
        if not payloads:
            return []
        results: List = [_MISSING] * len(payloads)
        delivered = 0

        def deliver() -> None:
            # Results are handed to on_result in payload order, as soon as
            # a contiguous prefix has been collected.
            nonlocal delivered
            while delivered < len(results) and results[delivered] is not _MISSING:
                if on_result is not None:
                    on_result(delivered, results[delivered])
                delivered += 1

        try:
            faultinject.fire(SITE_PROCESS_MAP)
            with ProcessPoolExecutor(max_workers=self._max_workers) as pool:
                futures = [pool.submit(fn, payload) for payload in payloads]
                for index, future in enumerate(futures):
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception as error:
                        # An ordinary worker exception leaves the pool
                        # healthy; retry serially under the policy, else
                        # propagate with the payload index stamped in.
                        policy = self._retry_policy
                        if policy is not None and not policy.is_noop:
                            results[index] = self._serial_fallback(
                                fn, payloads[index], index)
                        else:
                            _annotate_payload_index(error, index)
                            raise
                    deliver()
        except BrokenProcessPool:
            # The pool is unusable; every payload without a collected
            # result re-runs serially in the parent.
            for index, result in enumerate(results):
                if result is _MISSING:
                    results[index] = self._serial_fallback(
                        fn, payloads[index], index)
                deliver()
        return results


def get_executor(mode: str, max_workers: Optional[int] = None,
                 chunk_size: int = 8,
                 retry_policy: Optional[RetryPolicy] = None) -> SerialExecutor:
    """Build an executor by mode name.

    Parameters
    ----------
    mode:
        One of :data:`EXECUTOR_MODES`.
    max_workers:
        Pool size for ``"process"`` (ignored otherwise).
    chunk_size:
        Jobs per chunk for ``"chunked"`` (ignored otherwise).
    retry_policy:
        Optional :class:`~repro.runtime.resilience.RetryPolicy` applied to
        each job in any mode (``None`` = historical fail-fast behavior).
    """
    if mode == "serial":
        return SerialExecutor(retry_policy=retry_policy)
    if mode == "chunked":
        return ChunkedExecutor(chunk_size=chunk_size,
                               retry_policy=retry_policy)
    if mode == "process":
        return ProcessExecutor(max_workers=max_workers,
                               retry_policy=retry_policy)
    raise ValueError(f"mode must be one of {EXECUTOR_MODES}, got {mode!r}")
