"""Pluggable job execution with deterministic splitting and merged accounting.

Every fan-out in the library used to hand-roll its execution: the library
orchestrator had a private ``concurrency=`` if/else around a
``ProcessPoolExecutor``, the condition sweep ran its batches inline, and
nothing shared accounting.  This module is the one execution substrate they
now run on:

* ``serial`` -- in-process, one job at a time (the default, and the only
  mode that shares the process-wide runtime caches with the caller);
* ``chunked`` -- in-process, but jobs are walked in deterministic
  contiguous chunks (:func:`repro.runtime.chunking.plan_chunks`), giving
  sharding-shaped execution -- per-chunk accounting merges, bounded
  peak state -- without leaving the process;
* ``process`` -- fan-out over a ``ProcessPoolExecutor``; workers get
  pickled payloads, run the same batched engines, and return their results
  (and ledgers) for in-order merging.

Whatever the mode, ``map`` preserves payload order and
``map_accounted`` merges per-job :class:`~repro.runtime.accounting.RunLedger`
records into the caller's ledger **in payload order**, so accounting is
bit-identical across execution modes (the property the library-flow test
suite pins).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from repro.runtime.accounting import RunLedger
from repro.runtime.chunking import plan_chunks

#: Execution modes selectable in :func:`get_executor`.
EXECUTOR_MODES = ("serial", "chunked", "process")


class SerialExecutor:
    """In-process, in-order execution (the reference semantics)."""

    mode = "serial"

    def map(self, fn: Callable, payloads: Sequence) -> List:
        """Apply ``fn`` to every payload, returning results in order."""
        return [fn(payload) for payload in payloads]

    def shard_hint(self, n_items: int) -> int:
        """How many shards ``n_items`` work items should split into.

        Serial execution gains nothing from splitting, so the hint is 1;
        the process executor overrides this with its worker count.  Callers
        that fan a flat work axis out through :meth:`map` (the fused
        library pipeline's simulation rows) combine this hint with their
        memory-budget chunk count -- splitting is always safe because chunk
        rows are computed independently in every batched engine.
        """
        return 1 if n_items > 0 else 0

    def map_accounted(self, fn: Callable, payloads: Sequence,
                      ledger: Optional[RunLedger] = None) -> List:
        """Run jobs that return ``(result, RunLedger)`` pairs.

        Per-job ledgers merge into ``ledger`` in payload order (independent
        of which worker or chunk ran the job); the bare results are
        returned, in order.
        """
        outcomes: List[Tuple[object, RunLedger]] = self.map(fn, payloads)
        results = []
        for result, job_ledger in outcomes:
            if ledger is not None and job_ledger is not None:
                ledger.merge(job_ledger)
            results.append(result)
        return results


class ChunkedExecutor(SerialExecutor):
    """In-process execution over deterministic contiguous chunks.

    Semantically identical to :class:`SerialExecutor`; the explicit chunk
    walk exists so long job lists execute in bounded slices with a
    well-defined merge point after each chunk -- the same shape a future
    multi-node shard scheduler needs.
    """

    mode = "chunked"

    def __init__(self, chunk_size: int = 8):
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self._chunk_size = int(chunk_size)

    @property
    def chunk_size(self) -> int:
        """Maximum jobs per chunk."""
        return self._chunk_size

    def map(self, fn: Callable, payloads: Sequence) -> List:
        payloads = list(payloads)
        n_chunks = -(-len(payloads) // self._chunk_size) if payloads else 0
        results: List = []
        for chunk in plan_chunks(len(payloads), n_chunks=n_chunks):
            results.extend(fn(payload) for payload in payloads[chunk])
        return results


class ProcessExecutor(SerialExecutor):
    """Process-pool fan-out (results still returned in payload order).

    Workers are separate processes: they build their own runtime caches and
    fill their own ledgers, which :meth:`map_accounted` merges back in
    payload order.  Payloads and results must be picklable.
    """

    mode = "process"

    def __init__(self, max_workers: Optional[int] = None):
        self._max_workers = max_workers

    @property
    def max_workers(self) -> Optional[int]:
        """Pool size cap (``None`` = executor default)."""
        return self._max_workers

    def shard_hint(self, n_items: int) -> int:
        """At least one shard per pool worker (capped at one item each)."""
        if n_items <= 0:
            return 0
        workers = self._max_workers or os.cpu_count() or 1
        return max(1, min(int(n_items), int(workers)))

    def map(self, fn: Callable, payloads: Sequence) -> List:
        payloads = list(payloads)
        if not payloads:
            return []
        with ProcessPoolExecutor(max_workers=self._max_workers) as pool:
            return list(pool.map(fn, payloads))


def get_executor(mode: str, max_workers: Optional[int] = None,
                 chunk_size: int = 8) -> SerialExecutor:
    """Build an executor by mode name.

    Parameters
    ----------
    mode:
        One of :data:`EXECUTOR_MODES`.
    max_workers:
        Pool size for ``"process"`` (ignored otherwise).
    chunk_size:
        Jobs per chunk for ``"chunked"`` (ignored otherwise).
    """
    if mode == "serial":
        return SerialExecutor()
    if mode == "chunked":
        return ChunkedExecutor(chunk_size=chunk_size)
    if mode == "process":
        return ProcessExecutor(max_workers=max_workers)
    raise ValueError(f"mode must be one of {EXECUTOR_MODES}, got {mode!r}")
