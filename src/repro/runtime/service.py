"""The characterization serving front door: coalescing, deadlines, shedding.

The ROADMAP's north star is characterization-as-a-service: many concurrent
callers asking for overlapping ``(cell, arc, condition)`` work against one
shared simulation substrate.  PRs 5-9 built that substrate -- the fused
:class:`~repro.core.simulation_plan.SimulationPlan`, the fault-tolerant
runtime, the durable cache tier, the adaptive integrator -- and this module
adds the layer that keeps it correct and responsive under concurrent load:
a long-lived :class:`CharacterizationService` whose scheduler thread drains
a bounded request queue into coalesced fused-pipeline batches.

Four disciplines, one per failure mode of a naive serving loop:

* **Single-flight coalescing.**  Every requested ``(cell, arc)`` at a fixed
  condition set is keyed by a content digest over everything that shapes
  its numbers (technology and variation fingerprints, both priors, the
  solver, the transient stepper signature, the conditions).  Within a
  batch, N requests for the same key become ONE fused-pipeline job whose
  solved model is delivered to all of them; across batches, solved models
  land in a service-level LRU so repeat requests never re-enter the
  pipeline.  Below the job level the fused plan dedups further: physically
  identical rows of *different* jobs (footprint twins on shared operating
  points) integrate exactly once (see
  :meth:`~repro.core.simulation_plan.SimulationPlan.shared_row_counts`).
* **Deadlines with cooperative cancellation.**  ``submit(...,
  deadline_s=...)`` bounds how long the caller is willing to wait, on
  ``time.monotonic()``.  Python cannot preempt a running batch, so
  expiry is enforced at the yield points: a request past its deadline is
  dropped when the next batch is built (and rechecked at delivery), and
  its ticket fails with :class:`~repro.runtime.resilience.DeadlineExceeded`
  -- but rows its batch already integrated still land in the simulation
  cache and solved-model LRU for the next caller.  An expired request
  never poisons the shared batch it rode in.
* **Admission control and load-shedding.**  The queue is bounded
  (``queue_depth``); beyond it the service sheds instead of building
  unbounded backlog.  Policy ``"reject"`` raises
  :class:`ServiceOverloaded` at ``submit``; policy ``"degrade"`` serves an
  immediate cache-only partial result (solved-model LRU hits only, missing
  arcs ``None``) -- the serving-layer analogue of the library flows'
  ``strict=False`` degradation.
* **Disk circuit breaker.**  The durable tier (PR 8) is wrapped in a
  :class:`~repro.runtime.resilience.CircuitBreaker`: a batch that observes
  new disk write errors or quarantined payloads records failures, and a
  tripped breaker detaches every registered cache's disk store so the
  service degrades to memory-only instead of paying (or failing on) a
  broken disk per request.  After the cooldown one batch re-attaches the
  stores as a half-open probe; a clean probe closes the breaker for good.

Fault sites (``service.*`` family; see :mod:`repro.runtime.faultinject`):

* ``service.slow_worker`` -- ``slow`` faults stall the scheduler for
  ``delay_s`` before a batch integrates (a slow or wedged worker);
* ``service.queue_full`` -- raising faults force the admission check to
  treat the queue as full (deterministic shedding without real backlog);
* ``service.stuck_request`` -- ``slow`` faults hold one request out of
  batches for ``delay_s`` after admission (a request stuck behind a lost
  callback); its peers batch normally around it.

Environment knobs (constructor arguments win; all ``REPRO_SERVICE_*``):

* ``REPRO_SERVICE_QUEUE_DEPTH`` -- admission bound (default 64);
* ``REPRO_SERVICE_BATCH_WINDOW_S`` -- how long the scheduler waits after
  waking before building a batch, letting concurrent submitters coalesce
  (default 0.05);
* ``REPRO_SERVICE_SHED_POLICY`` -- ``reject`` or ``degrade`` (default
  ``reject``);
* ``REPRO_SERVICE_BREAKER_THRESHOLD`` / ``REPRO_SERVICE_BREAKER_COOLDOWN_S``
  -- disk circuit-breaker tuning (defaults 3 and 5.0).

This module is deliberately NOT imported by :mod:`repro.runtime`'s package
``__init__`` -- the service drives :func:`repro.core.library_flow.
characterize_fused_jobs`, which itself imports the runtime package; import
the service directly::

    from repro.runtime.service import CharacterizationService
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime import faultinject
from repro.runtime.accounting import RunLedger
from repro.runtime.cache import LruCache, registered_caches
from repro.runtime.executor import get_executor
from repro.runtime.persist import stable_key_digest
from repro.runtime.resilience import (
    CircuitBreaker,
    DeadlineExceeded,
    FailureReport,
)

__all__ = [
    "CharacterizationService",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceResult",
    "ServiceStats",
    "ServiceTicket",
    "SHED_POLICIES",
]

SITE_SLOW_WORKER = faultinject.register_fault_site(
    "service.slow_worker",
    "scheduler-side stall before a service batch integrates (slow kind)")
SITE_QUEUE_FULL = faultinject.register_fault_site(
    "service.queue_full",
    "admission check of the service queue (raising kinds force shedding)")
SITE_STUCK_REQUEST = faultinject.register_fault_site(
    "service.stuck_request",
    "per-request hold-out after admission (slow kind sticks one request)")

SHED_POLICIES = ("reject", "degrade")

ENV_QUEUE_DEPTH = "REPRO_SERVICE_QUEUE_DEPTH"
ENV_BATCH_WINDOW = "REPRO_SERVICE_BATCH_WINDOW_S"
ENV_SHED_POLICY = "REPRO_SERVICE_SHED_POLICY"
ENV_BREAKER_THRESHOLD = "REPRO_SERVICE_BREAKER_THRESHOLD"
ENV_BREAKER_COOLDOWN = "REPRO_SERVICE_BREAKER_COOLDOWN_S"


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else default


class ServiceClosed(RuntimeError):
    """Submitted to a service that has been closed."""


class ServiceOverloaded(RuntimeError):
    """Admission rejected: the request queue is at ``queue_depth``.

    Raised by ``submit`` under the ``reject`` shedding policy; the caller
    should back off and retry.  Under ``degrade`` the service answers with
    a cache-only partial :class:`ServiceResult` instead.
    """


class ServiceTicket:
    """A claim on one submitted request's eventual result.

    The scheduler thread completes it; callers block in :meth:`result`.
    Deliberately minimal (no cancellation: the cooperative-cancellation
    path is the request's own ``deadline_s``).
    """

    def __init__(self) -> None:
        self._done = threading.Event()
        self._result: Optional["ServiceResult"] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        """Whether the request has completed (successfully or not)."""
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> "ServiceResult":
        """Block for the result; re-raises the request's failure if any."""
        if not self._done.wait(timeout):
            raise TimeoutError("ticket not completed within timeout")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        """Block for completion and return the failure (``None`` if ok)."""
        if not self._done.wait(timeout):
            raise TimeoutError("ticket not completed within timeout")
        return self._error

    def _complete(self, result: "ServiceResult") -> None:
        self._result = result
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()


@dataclass(frozen=True)
class ServiceResult:
    """What one request got back.

    Attributes
    ----------
    characterizations:
        Arc name -> :class:`~repro.core.statistical_flow.
        StatisticalCharacterization` (``None`` for an arc that failed or,
        under degraded shedding, missed the solved-model cache).
    coalesced:
        Whether any of the request's arcs was served by work it did not
        trigger itself -- a solved-cache hit or a job shared with another
        request in the same batch.
    degraded:
        Whether this is a cache-only partial result (load-shedding under
        the ``degrade`` policy) or carries per-arc failures.
    failures:
        Structured reports for arcs that degraded or failed.
    wall_s:
        Seconds from admission to delivery.
    """

    characterizations: Dict[str, Optional[object]]
    coalesced: bool = False
    degraded: bool = False
    failures: Tuple[FailureReport, ...] = ()
    wall_s: float = 0.0

    @property
    def complete(self) -> bool:
        """Whether every requested arc came back characterized."""
        return all(value is not None
                   for value in self.characterizations.values())


@dataclass(frozen=True)
class ServiceStats:
    """Monitoring snapshot of one service (see :meth:`
    CharacterizationService.stats`)."""

    submitted: int
    completed: int
    deadline_misses: int
    shed: int
    coalesced_arcs: int
    batches: int
    queue_depth: int
    queue_peak: int
    solved_hits: int
    solved_misses: int
    breaker_state: str
    breaker_trips: int


@dataclass
class _Request:
    """Internal queued unit: one submit() call."""

    cell: object
    arcs: Tuple[object, ...]
    conditions: Tuple[object, ...]
    ticket: ServiceTicket
    keys: Tuple[str, ...]
    enqueued_at: float
    deadline_at: Optional[float] = None
    #: Monotonic instant before which the stuck-request fault holds this
    #: request out of batches (0.0 = never stuck).
    not_before: float = 0.0
    served_by_peer: bool = field(default=False)


class CharacterizationService:
    """Long-lived serving front door over the fused characterization pipeline.

    One scheduler thread drains a bounded queue of ``submit`` requests into
    coalesced :func:`~repro.core.library_flow.characterize_fused_jobs`
    batches (see the module docstring for the serving disciplines).  All
    public methods are thread-safe; many submitter threads may share one
    service.

    Parameters
    ----------
    technology, delay_prior, slew_prior, variation:
        The shared characterization context every request is served
        against (one service = one context; the single-flight digests
        include its fingerprints, so distinct contexts never alias).
    solver:
        Extraction solver forwarded to the fused pipeline.
    executor:
        A runtime executor instance, or ``None`` for the serial executor
        (the scheduler thread is already the concurrency boundary).
    stepper:
        Optional :class:`~repro.spice.stepper.StepperSpec`; ``None`` keeps
        the fused pipeline's fixed-step default.
    queue_depth, batch_window_s, shed_policy:
        Admission bound, coalescing window, and shedding policy
        (``None`` defers to the ``REPRO_SERVICE_*`` environment knobs).
    breaker:
        Disk circuit breaker; ``None`` builds one from the env knobs.
    solved_cache_entries:
        Bound of the service-level solved-model LRU.
    max_bytes:
        Memory budget forwarded to the fused pipeline (``None`` = the
        configured runtime default).
    start:
        Start the scheduler thread immediately; pass ``False`` in tests
        that want to enqueue a controlled set of requests first and call
        :meth:`start` themselves.
    """

    def __init__(self, technology, delay_prior, slew_prior, variation,
                 solver: str = "batched", executor=None, stepper=None,
                 queue_depth: Optional[int] = None,
                 batch_window_s: Optional[float] = None,
                 shed_policy: Optional[str] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 solved_cache_entries: int = 4096,
                 max_bytes: Optional[int] = None,
                 start: bool = True) -> None:
        self.technology = technology
        self.delay_prior = delay_prior
        self.slew_prior = slew_prior
        self.variation = variation
        self.solver = solver
        self.stepper = stepper
        self.executor = executor if executor is not None else get_executor("serial")
        self.max_bytes = max_bytes
        self.queue_depth = (queue_depth if queue_depth is not None
                            else _env_int(ENV_QUEUE_DEPTH, 64))
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        self.batch_window_s = (batch_window_s if batch_window_s is not None
                               else _env_float(ENV_BATCH_WINDOW, 0.05))
        if self.batch_window_s < 0.0:
            raise ValueError("batch_window_s must be >= 0")
        self.shed_policy = (shed_policy if shed_policy is not None
                            else os.environ.get(ENV_SHED_POLICY, "reject")
                            .strip().lower() or "reject")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(f"shed_policy must be one of {SHED_POLICIES}, "
                             f"got {self.shed_policy!r}")
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=_env_int(ENV_BREAKER_THRESHOLD, 3),
            cooldown_s=_env_float(ENV_BREAKER_COOLDOWN, 5.0))
        #: Cross-batch single-flight memory: digest -> solved
        #: StatisticalCharacterization.  Values hold live inverter objects
        #: (process-local), so the cache is deliberately non-durable.
        self._solved = LruCache("service_solved",
                                max_entries=int(solved_cache_entries))
        self.ledger = RunLedger()
        self._context_fp = (technology.fingerprint(),
                            variation.fingerprint(),
                            delay_prior.fingerprint(),
                            slew_prior.fingerprint(),
                            solver,
                            stepper.signature() if stepper is not None
                            else "default")
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queue: List[_Request] = []
        self._closing = False
        self._submitted = 0
        self._completed = 0
        self._batches = 0
        self._queue_peak = 0
        #: Disk stores detached by a tripped breaker, kept for the
        #: half-open re-attach probe: list of (cache, store).
        self._tripped_stores: List[tuple] = []
        self._disk_baseline: Dict[str, Tuple[int, int, int]] = {}
        self._thread: Optional[threading.Thread] = None
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "CharacterizationService":
        """Start the scheduler thread (idempotent)."""
        with self._lock:
            if self._closing:
                raise ServiceClosed("service already closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="characterization-service",
                    daemon=True)
                self._thread.start()
        return self

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain the queue, then stop the scheduler.

        Requests already admitted are still served (their deadlines still
        apply).  ``wait=False`` returns immediately after signalling.
        """
        with self._lock:
            self._closing = True
            self._wake.notify_all()
            thread = self._thread
        if wait and thread is not None:
            thread.join()

    def __enter__(self) -> "CharacterizationService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def job_key(self, cell, arc, conditions) -> str:
        """The single-flight digest of one (cell, arc, conditions) job.

        Content-addressed over everything that shapes the solved numbers;
        two requests agree on the key iff their solved models are
        interchangeable.  Cell identity enters via ``cell.name`` -- names
        identify cells within one service's library universe.
        """
        return stable_key_digest((
            "service_job", self._context_fp, cell.name, arc.name,
            tuple(condition.as_tuple() for condition in conditions)))

    def submit(self, cell, arcs: Sequence, conditions: Sequence,
               deadline_s: Optional[float] = None) -> ServiceTicket:
        """Enqueue one characterization request; returns immediately.

        Parameters
        ----------
        cell:
            The cell to characterize.
        arcs:
            Its timing arcs to serve (one fused-pipeline job each, subject
            to coalescing).
        conditions:
            The fitting :class:`~repro.characterization.input_space.
            InputCondition` points, shared by every arc of the request.
        deadline_s:
            Seconds (on ``time.monotonic()``, from now) the caller is
            willing to wait; ``None`` waits indefinitely.  Expiry completes
            the ticket with :class:`DeadlineExceeded` at the next batch
            boundary -- see the module docstring's cancellation contract.

        Raises
        ------
        ServiceClosed
            After :meth:`close`.
        ServiceOverloaded
            Queue at ``queue_depth`` under the ``reject`` policy.
        """
        if deadline_s is not None and deadline_s <= 0.0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        arcs = tuple(arcs)
        conditions = tuple(conditions)
        if not arcs:
            raise ValueError("arcs must be non-empty")
        if not conditions:
            raise ValueError("conditions must be non-empty")
        now = time.monotonic()
        keys = tuple(self.job_key(cell, arc, conditions) for arc in arcs)
        ticket = ServiceTicket()
        request = _Request(
            cell=cell, arcs=arcs, conditions=conditions, ticket=ticket,
            keys=keys, enqueued_at=now,
            deadline_at=(now + deadline_s) if deadline_s is not None else None)
        # A stuck-request fault holds this submission out of batches.
        stuck_for = faultinject.induced_delay(SITE_STUCK_REQUEST)
        if stuck_for > 0.0:
            request.not_before = now + stuck_for
        with self._lock:
            if self._closing:
                raise ServiceClosed("service is closed")
            full = len(self._queue) >= self.queue_depth
            try:
                faultinject.fire(SITE_QUEUE_FULL)
            except Exception:
                full = True
            if full:
                return self._shed(request)
            self._submitted += 1
            self._queue.append(request)
            self._queue_peak = max(self._queue_peak, len(self._queue))
            self.ledger.set_gauge("service_queue_peak", self._queue_peak)
            self._wake.notify_all()
        return ticket

    def request(self, cell, arcs: Sequence, conditions: Sequence,
                deadline_s: Optional[float] = None) -> ServiceResult:
        """Blocking convenience: ``submit(...).result()``."""
        return self.submit(cell, arcs, conditions,
                           deadline_s=deadline_s).result()

    def _shed(self, request: _Request) -> ServiceTicket:
        """Apply the shedding policy to an inadmissible request.

        Caller holds the lock.  ``reject`` raises; ``degrade`` completes
        the ticket immediately with whatever the solved-model LRU already
        holds (missing arcs ``None``) -- bounded work, no queue growth.
        """
        self._submitted += 1
        self.ledger.add_metric("service_shed", 1)
        if self.shed_policy == "reject":
            raise ServiceOverloaded(
                f"queue at depth {self.queue_depth}; request rejected "
                f"(policy 'reject')")
        served: Dict[str, Optional[object]] = {}
        hits = 0
        for arc, key in zip(request.arcs, request.keys):
            solved = self._solved.get(key)
            served[arc.name] = solved
            hits += solved is not None
        failures = tuple(
            FailureReport(unit=f"{request.cell.name}:{arc.name}",
                          stage="admission",
                          error="load shed at full queue; cache-only result",
                          error_type="ServiceOverloaded")
            for arc in request.arcs if served[arc.name] is None)
        self._completed += 1
        request.ticket._complete(ServiceResult(
            characterizations=served, coalesced=hits > 0, degraded=True,
            failures=failures,
            wall_s=time.monotonic() - request.enqueued_at))
        return request.ticket

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Consistent monitoring snapshot (counters, queue, breaker)."""
        with self._lock:
            metrics = self.ledger.metrics()
            return ServiceStats(
                submitted=self._submitted,
                completed=self._completed,
                deadline_misses=metrics.get("service_deadline_misses", 0),
                shed=metrics.get("service_shed", 0),
                coalesced_arcs=metrics.get("service_arcs_coalesced", 0),
                batches=self._batches,
                queue_depth=len(self._queue),
                queue_peak=self._queue_peak,
                solved_hits=self._solved.hits,
                solved_misses=self._solved.misses,
                breaker_state=self.breaker.state,
                breaker_trips=self.breaker.trips,
            )

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closing:
                    self._wake.wait()
                if self._closing and not self._queue:
                    return
                draining = self._closing
            # Coalescing window: let concurrent submitters pile into the
            # same batch.  Skipped when draining -- latency no longer buys
            # coalescing once no new requests can arrive.
            if self.batch_window_s > 0.0 and not draining:
                time.sleep(self.batch_window_s)
            batch = self._drain_batch()
            if batch:
                self._serve_batch(batch)
                continue
            # Nothing serveable (only stuck requests remain): park until
            # the earliest hold-out expiry or deadline instead of spinning.
            with self._lock:
                if not self._queue:
                    continue
                now = time.monotonic()
                horizons = [request.not_before for request in self._queue
                            if request.not_before > now]
                horizons += [request.deadline_at for request in self._queue
                             if request.deadline_at is not None]
                timeout = (max(min(horizons) - now, 0.001) if horizons
                           else None)
                self._wake.wait(timeout)

    def _drain_batch(self) -> List[_Request]:
        """Pull every currently serveable request off the queue.

        Expired requests fail fast with :class:`DeadlineExceeded` here --
        the batch boundary of the cancellation contract.  Stuck requests
        (``not_before`` in the future) stay queued; their peers batch
        around them.
        """
        now = time.monotonic()
        batch: List[_Request] = []
        with self._lock:
            remaining: List[_Request] = []
            for request in self._queue:
                if (request.deadline_at is not None
                        and now >= request.deadline_at):
                    self.ledger.add_metric("service_deadline_misses", 1)
                    self._completed += 1
                    request.ticket._fail(DeadlineExceeded(
                        f"deadline passed after "
                        f"{now - request.enqueued_at:.3f}s in queue"))
                elif request.not_before > now:
                    remaining.append(request)
                else:
                    batch.append(request)
            self._queue = remaining
        return batch

    def _serve_batch(self, batch: List[_Request]) -> None:
        """One coalesced pass: single-flight keying -> fused pipeline ->
        per-request delivery with a delivery-time deadline recheck."""
        # Slow-worker fault: the scheduler stalls before integrating, so
        # deadlines expire exactly where the contract says they may.
        stall = faultinject.induced_delay(SITE_SLOW_WORKER)
        if stall > 0.0:
            time.sleep(stall)

        # Single-flight keying: one fused job per distinct digest; solved
        # LRU hits skip the pipeline entirely.
        jobs: List[tuple] = []
        job_conditions: List[list] = []
        job_of_key: Dict[str, int] = {}
        solved_of_key: Dict[str, object] = {}
        arcs_coalesced = 0
        for request in batch:
            for arc, key in zip(request.arcs, request.keys):
                if key in solved_of_key:
                    arcs_coalesced += 1
                    request.served_by_peer = True
                    continue
                solved = self._solved.get(key)
                if solved is not None:
                    solved_of_key[key] = solved
                    arcs_coalesced += 1
                    request.served_by_peer = True
                    continue
                if key in job_of_key:
                    arcs_coalesced += 1
                    request.served_by_peer = True
                    continue
                job_of_key[key] = len(jobs)
                jobs.append((request.cell, arc))
                job_conditions.append(list(request.conditions))

        failures: List[FailureReport] = []
        if jobs:
            ledger = RunLedger()
            results, failures = self._characterize(jobs, job_conditions,
                                                   ledger)
            for key, job in job_of_key.items():
                result = results[job]
                if result is not None:
                    solved_of_key[key] = result
                    self._solved.put(key, result)
            self._after_batch(ledger)
        else:
            ledger = None

        failures_by_unit: Dict[str, List[FailureReport]] = {}
        for report in failures:
            failures_by_unit.setdefault(report.unit, []).append(report)

        # Delivery, with the second deadline check of the contract: the
        # batch may have outlived a request's patience, but its solved
        # models are already cached for the next caller.
        now = time.monotonic()
        with self._lock:
            self._batches += 1
            self.ledger.add_metric("service_batches", 1)
            self.ledger.add_metric("service_requests", len(batch))
            self.ledger.add_metric("service_arcs_coalesced", arcs_coalesced)
            if ledger is not None:
                self.ledger.merge(ledger)
                self.ledger.add_metric(
                    "service_rows_shared",
                    ledger.metrics().get("fused_rows_cross_job_shared", 0))
            for request in batch:
                self._completed += 1
                if (request.deadline_at is not None
                        and now >= request.deadline_at):
                    self.ledger.add_metric("service_deadline_misses", 1)
                    request.ticket._fail(DeadlineExceeded(
                        f"deadline passed while the batch integrated "
                        f"({now - request.enqueued_at:.3f}s since submit)"))
                    continue
                served: Dict[str, Optional[object]] = {}
                request_failures: List[FailureReport] = []
                for arc, key in zip(request.arcs, request.keys):
                    served[arc.name] = solved_of_key.get(key)
                    if served[arc.name] is None:
                        unit = f"{request.cell.name}:{arc.name}"
                        request_failures.extend(failures_by_unit.get(unit, []))
                request.ticket._complete(ServiceResult(
                    characterizations=served,
                    coalesced=request.served_by_peer,
                    degraded=any(value is None for value in served.values()),
                    failures=tuple(request_failures),
                    wall_s=now - request.enqueued_at))

    def _characterize(self, jobs, job_conditions, ledger):
        """Run the coalesced fused pass (non-strict: degrade, don't abort)."""
        from repro.core.library_flow import characterize_fused_jobs
        return characterize_fused_jobs(
            self.technology, jobs, job_conditions, self.delay_prior,
            self.slew_prior, self.variation, self.solver, self.executor,
            ledger, self.max_bytes, strict=False, stepper=self.stepper)

    # ------------------------------------------------------------------
    # Disk circuit breaker
    # ------------------------------------------------------------------
    def _attached_stores(self) -> List[tuple]:
        return [(cache, cache.disk_store)
                for cache in registered_caches().values()
                if cache.disk_store is not None]

    def _after_batch(self, ledger: RunLedger) -> None:
        """Feed the disk breaker from this batch's store-counter deltas.

        A tripped breaker detaches every registered cache's disk tier
        (memory-only degradation); once the cooldown admits a half-open
        probe, the stores are re-attached so the *next* batch exercises
        them -- success closes the breaker, new errors re-trip it.  Trip
        detection is edge-based (the ``trips`` counter) rather than
        state-based, so a zero cooldown cannot race the open state past
        the detach.
        """
        trips_before = self.breaker.trips
        new_errors = 0
        wrote = False
        for cache, store in self._attached_stores():
            stats = store.stats()
            prev = self._disk_baseline.get(stats.name, (0, 0, 0))
            errors = stats.write_errors + stats.quarantined
            new_errors += max(errors - (prev[0] + prev[1]), 0)
            wrote = wrote or stats.writes > prev[2]
            self._disk_baseline[stats.name] = (
                stats.write_errors, stats.quarantined, stats.writes)
        if new_errors:
            self.breaker.record_failure(new_errors)
            with self._lock:
                self.ledger.add_metric("service_disk_errors", new_errors)
        elif wrote:
            self.breaker.record_success()
        if self.breaker.trips > trips_before:
            detached = 0
            for cache, store in self._attached_stores():
                cache.detach_disk_store()
                self._tripped_stores.append((cache, store))
                detached += 1
            if detached:
                with self._lock:
                    self.ledger.add_metric("service_breaker_detached",
                                           detached)
        elif self._tripped_stores and self.breaker.allow():
            for cache, store in self._tripped_stores:
                cache.attach_disk_store(store)
            with self._lock:
                self.ledger.add_metric("service_breaker_probes", 1)
            self._tripped_stores = []
