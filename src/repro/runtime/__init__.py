"""``repro.runtime`` -- the execution/caching/accounting substrate.

One package underneath all three batched engines (transient, MAP
extraction, timing graph):

* :mod:`repro.runtime.cache` -- a generic, capacity-bounded, stats-reporting
  LRU plus a process-wide registry (:func:`cache_stats`);
* :mod:`repro.runtime.chunking` -- deterministic, memory-budgeted chunk
  planning over the engines' work axes;
* :mod:`repro.runtime.executor` -- pluggable ``serial`` / ``chunked`` /
  ``process`` job execution with order-preserving results and merged
  accounting;
* :mod:`repro.runtime.accounting` -- the unified :class:`RunLedger`;
* :mod:`repro.runtime.resilience` -- retry policies, structured failure
  reports, and the ``strict=`` resolution of the library flows;
* :mod:`repro.runtime.faultinject` -- deterministic seeded fault injection
  at named sites (worker crashes, NaN payloads, exceptions, timeouts).

Process-wide knobs live in :func:`configure`::

    import repro.runtime as runtime

    runtime.configure(max_bytes=256 * 2**20)   # chunk every batched engine
    runtime.configure(cache_bytes=64 * 2**20)  # re-bound every cache
    runtime.cache_stats()                      # {'simulation': CacheStats(...)}

``configure`` applies to the current process only; process-pool workers
start from defaults, so flows that must honor a budget everywhere thread
``max_bytes`` explicitly (the library orchestrator does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.runtime.accounting import RunLedger
from repro.runtime.cache import (
    CacheStats,
    LruCache,
    cache_stats,
    clear_all_caches,
    default_sizeof,
    get_registered_cache,
    register_cache,
    registered_caches,
)
from repro.runtime.chunking import chunk_count, plan_chunks
from repro.runtime.executor import (
    EXECUTOR_MODES,
    ChunkedExecutor,
    ProcessExecutor,
    SerialExecutor,
    get_executor,
)
from repro.runtime.faultinject import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    InjectedTimeout,
    fault_sites,
    inject,
    register_fault_site,
)
from repro.runtime.resilience import (
    FailureReport,
    RetryError,
    RetryPolicy,
    resolve_strict,
    run_with_retry,
)

#: Sentinel distinguishing "keep current" from an explicit ``None``.
_KEEP = object()


@dataclass
class RuntimeConfig:
    """Process-wide runtime settings (mutate through :func:`configure`).

    Attributes
    ----------
    max_bytes:
        Default chunking budget (bytes) consulted by every batched engine
        whose ``max_bytes`` argument is left at ``None``.  ``None`` disables
        chunking by default.
    cache_bytes:
        Byte bound applied to every registered runtime cache (current and
        future).  ``None`` keeps each cache's own default bound.
    """

    max_bytes: Optional[int] = None
    cache_bytes: Optional[int] = None


_CONFIG = RuntimeConfig()


def runtime_config() -> RuntimeConfig:
    """The live process-wide :class:`RuntimeConfig`."""
    return _CONFIG


def configure(max_bytes=_KEEP, cache_bytes=_KEEP) -> RuntimeConfig:
    """Update process-wide runtime settings; returns the live config.

    Parameters
    ----------
    max_bytes:
        Default chunk budget in bytes for all batched engines; ``None``
        disables default chunking.  Omit to keep the current value.
    cache_bytes:
        Byte bound re-applied to **every** registered cache immediately (and
        to caches registered later); ``None`` restores each registered
        cache's original default bound.  Omit to keep the current value.
    """
    if max_bytes is not _KEEP:
        if max_bytes is not None and int(max_bytes) < 1:
            raise ValueError("max_bytes must be positive (or None)")
        _CONFIG.max_bytes = None if max_bytes is None else int(max_bytes)
    if cache_bytes is not _KEEP:
        if cache_bytes is not None and int(cache_bytes) < 1:
            raise ValueError("cache_bytes must be positive (or None)")
        _CONFIG.cache_bytes = None if cache_bytes is None else int(cache_bytes)
        for cache in registered_caches().values():
            bound = (_CONFIG.cache_bytes if _CONFIG.cache_bytes is not None
                     else _default_cache_bound(cache))
            cache.set_bounds(max_bytes=bound)
    return _CONFIG


_DEFAULT_CACHE_BOUNDS: dict = {}


def _default_cache_bound(cache: LruCache) -> Optional[int]:
    """The byte bound a cache was registered with (for configure(None))."""
    return _DEFAULT_CACHE_BOUNDS.get(cache.name)


def register_runtime_cache(cache: LruCache) -> LruCache:
    """Register a cache and apply the configured ``cache_bytes`` override.

    The cache's own ``max_bytes`` is remembered as its default, so a later
    ``configure(cache_bytes=None)`` restores it.
    """
    _DEFAULT_CACHE_BOUNDS[cache.name] = cache.max_bytes
    register_cache(cache)
    if _CONFIG.cache_bytes is not None:
        cache.set_bounds(max_bytes=_CONFIG.cache_bytes)
    return cache


def resolve_max_bytes(max_bytes: Optional[int]) -> Optional[int]:
    """An engine's effective chunk budget: explicit value or configured default."""
    return _CONFIG.max_bytes if max_bytes is None else int(max_bytes)


__all__ = [
    "CacheStats",
    "ChunkedExecutor",
    "EXECUTOR_MODES",
    "FailureReport",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "InjectedTimeout",
    "LruCache",
    "ProcessExecutor",
    "RetryError",
    "RetryPolicy",
    "RunLedger",
    "RuntimeConfig",
    "SerialExecutor",
    "cache_stats",
    "chunk_count",
    "clear_all_caches",
    "configure",
    "default_sizeof",
    "fault_sites",
    "get_executor",
    "get_registered_cache",
    "inject",
    "plan_chunks",
    "register_cache",
    "register_fault_site",
    "register_runtime_cache",
    "registered_caches",
    "resolve_max_bytes",
    "resolve_strict",
    "run_with_retry",
    "runtime_config",
]
