"""``repro.runtime`` -- the execution/caching/accounting substrate.

One package underneath all three batched engines (transient, MAP
extraction, timing graph):

* :mod:`repro.runtime.cache` -- a generic, capacity-bounded, stats-reporting
  LRU plus a process-wide registry (:func:`cache_stats`);
* :mod:`repro.runtime.chunking` -- deterministic, memory-budgeted chunk
  planning over the engines' work axes;
* :mod:`repro.runtime.executor` -- pluggable ``serial`` / ``chunked`` /
  ``process`` job execution with order-preserving results and merged
  accounting;
* :mod:`repro.runtime.accounting` -- the unified :class:`RunLedger`;
* :mod:`repro.runtime.resilience` -- retry policies, structured failure
  reports, and the ``strict=`` resolution of the library flows;
* :mod:`repro.runtime.faultinject` -- deterministic seeded fault injection
  at named sites (worker crashes, NaN payloads, exceptions, timeouts,
  torn writes, bit flips, full disks, stale locks);
* :mod:`repro.runtime.persist` -- the crash-safe on-disk
  :class:`~repro.runtime.persist.DiskStore` behind the durable caches;
* :mod:`repro.runtime.checkpoint` -- journaled checkpoint/resume of the
  fused library characterization.

Process-wide knobs live in :func:`configure`::

    import repro.runtime as runtime

    runtime.configure(max_bytes=256 * 2**20)   # chunk every batched engine
    runtime.configure(cache_bytes=64 * 2**20)  # re-bound every cache
    runtime.configure(disk_cache_dir="~/.cache/repro")  # durable tier
    runtime.cache_stats()                      # {'simulation': CacheStats(...)}

``configure`` applies to the current process only; process-pool workers
start from defaults, so flows that must honor a budget everywhere thread
``max_bytes`` explicitly (the library orchestrator does).  The durable
tier can also be enabled from the environment: ``REPRO_DISK_CACHE=<dir>``
attaches a :class:`~repro.runtime.persist.DiskStore` under ``<dir>`` to
every durable registered cache, and ``REPRO_DISK_CACHE_BYTES`` budgets it.
``REPRO_TRANSIENT_ENGINE=<batched|serial|adaptive>`` selects the default
transient integration engine (unknown values are ignored), and
``REPRO_TRANSIENT_RTOL`` / ``REPRO_TRANSIENT_ATOL`` override the adaptive
engine's default tolerances (relative, and absolute as a fraction of the
supply).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.runtime.accounting import RunLedger
from repro.runtime.cache import (
    CacheStats,
    LruCache,
    cache_stats,
    clear_all_caches,
    default_sizeof,
    get_registered_cache,
    register_cache,
    registered_caches,
)
from repro.runtime.chunking import chunk_count, plan_chunks
from repro.runtime.executor import (
    EXECUTOR_MODES,
    ChunkedExecutor,
    ProcessExecutor,
    SerialExecutor,
    get_executor,
)
from repro.runtime.faultinject import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    InjectedTimeout,
    fault_sites,
    inject,
    register_fault_site,
)
from repro.runtime.persist import DiskStore, DiskStoreStats, stable_key_digest
from repro.runtime.checkpoint import (
    CheckpointMismatch,
    Checkpointer,
    load_checkpoint,
)
from repro.runtime.resilience import (
    CircuitBreaker,
    DeadlineExceeded,
    FailureReport,
    RetryError,
    RetryPolicy,
    resolve_strict,
    run_with_retry,
)

#: Sentinel distinguishing "keep current" from an explicit ``None``.
_KEEP = object()

#: Transient integration engines selectable process-wide.  The names are
#: owned here (not in ``repro.spice``) so the runtime layer never imports
#: the engines it configures: ``batched`` is the fixed-step lockstep RK4
#: engine, ``serial`` its one-condition-at-a-time equivalence twin, and
#: ``adaptive`` the error-controlled Dormand-Prince RK45 engine.
TRANSIENT_ENGINES = ("batched", "serial", "adaptive")


@dataclass
class RuntimeConfig:
    """Process-wide runtime settings (mutate through :func:`configure`).

    Attributes
    ----------
    max_bytes:
        Default chunking budget (bytes) consulted by every batched engine
        whose ``max_bytes`` argument is left at ``None``.  ``None`` disables
        chunking by default.
    cache_bytes:
        Byte bound applied to every registered runtime cache (current and
        future).  ``None`` keeps each cache's own default bound.
    disk_cache_dir:
        Root directory of the durable on-disk tier.  When set, every
        *durable* registered cache (current and future) gets a
        :class:`~repro.runtime.persist.DiskStore` attached under
        ``<disk_cache_dir>/<cache name>``.  ``None`` disables the tier.
    disk_cache_bytes:
        Byte budget applied to each attached disk store (eviction is
        oldest-first).  ``None`` leaves the stores unbounded.
    transient_engine:
        Default transient integration engine consulted by
        :func:`resolve_transient_engine` wherever an ``engine`` argument is
        left at ``None`` (sweeps, characterizers, the fused library
        pipeline).  ``None`` means the historical default (``"batched"``).
    transient_rtol, transient_atol_frac:
        Default tolerances of the adaptive engine (relative tolerance and
        absolute tolerance as a fraction of the supply), consulted by
        :func:`repro.spice.stepper.resolve_stepper` wherever no explicit
        :class:`~repro.spice.stepper.StepperSpec` is given.  ``None`` keeps
        the engine's own defaults (1e-9 each).  Ignored by the fixed-step
        engines.
    """

    max_bytes: Optional[int] = None
    cache_bytes: Optional[int] = None
    disk_cache_dir: Optional[str] = None
    disk_cache_bytes: Optional[int] = None
    transient_engine: Optional[str] = None
    transient_rtol: Optional[float] = None
    transient_atol_frac: Optional[float] = None


_CONFIG = RuntimeConfig()


def runtime_config() -> RuntimeConfig:
    """The live process-wide :class:`RuntimeConfig`."""
    return _CONFIG


def configure(max_bytes=_KEEP, cache_bytes=_KEEP,
              disk_cache_dir=_KEEP, disk_cache_bytes=_KEEP,
              transient_engine=_KEEP, transient_rtol=_KEEP,
              transient_atol_frac=_KEEP) -> RuntimeConfig:
    """Update process-wide runtime settings; returns the live config.

    Parameters
    ----------
    max_bytes:
        Default chunk budget in bytes for all batched engines; ``None``
        disables default chunking.  Omit to keep the current value.
    cache_bytes:
        Byte bound re-applied to **every** registered cache immediately (and
        to caches registered later); ``None`` restores each registered
        cache's original default bound.  Omit to keep the current value.
    disk_cache_dir:
        Root directory for the durable tier: attaches a
        :class:`~repro.runtime.persist.DiskStore` under
        ``<dir>/<cache name>`` to every durable registered cache, current
        and future.  ``None`` detaches the tier (disk contents are kept).
        Omit to keep the current value.
    disk_cache_bytes:
        Byte budget for each attached disk store; ``None`` removes the
        budget.  Omit to keep the current value.
    transient_engine:
        Process-wide default transient integration engine (one of
        ``TRANSIENT_ENGINES``); ``None`` restores the historical default
        (``"batched"``).  Omit to keep the current value.
    transient_rtol, transient_atol_frac:
        Process-wide default tolerances of the adaptive engine; ``None``
        restores the engine defaults (1e-9).  Omit to keep the current
        values.
    """
    for name, value in (("transient_rtol", transient_rtol),
                        ("transient_atol_frac", transient_atol_frac)):
        if value is _KEEP:
            continue
        if value is not None and not float(value) > 0.0:
            raise ValueError(f"{name} must be positive (or None)")
        setattr(_CONFIG, name, None if value is None else float(value))
    if transient_engine is not _KEEP:
        if (transient_engine is not None
                and transient_engine not in TRANSIENT_ENGINES):
            raise ValueError(
                f"transient_engine must be one of {TRANSIENT_ENGINES} or "
                f"None, got {transient_engine!r}")
        _CONFIG.transient_engine = transient_engine
    if max_bytes is not _KEEP:
        if max_bytes is not None and int(max_bytes) < 1:
            raise ValueError("max_bytes must be positive (or None)")
        _CONFIG.max_bytes = None if max_bytes is None else int(max_bytes)
    if cache_bytes is not _KEEP:
        if cache_bytes is not None and int(cache_bytes) < 1:
            raise ValueError("cache_bytes must be positive (or None)")
        _CONFIG.cache_bytes = None if cache_bytes is None else int(cache_bytes)
        for cache in registered_caches().values():
            bound = (_CONFIG.cache_bytes if _CONFIG.cache_bytes is not None
                     else _default_cache_bound(cache))
            cache.set_bounds(max_bytes=bound)
    disk_changed = False
    if disk_cache_bytes is not _KEEP:
        if disk_cache_bytes is not None and int(disk_cache_bytes) < 1:
            raise ValueError("disk_cache_bytes must be positive (or None)")
        _CONFIG.disk_cache_bytes = (None if disk_cache_bytes is None
                                    else int(disk_cache_bytes))
        disk_changed = True
    if disk_cache_dir is not _KEEP:
        _CONFIG.disk_cache_dir = (None if disk_cache_dir is None
                                  else os.path.expanduser(str(disk_cache_dir)))
        disk_changed = True
    if disk_changed:
        for cache in registered_caches().values():
            _apply_disk_tier(cache)
    return _CONFIG


def _apply_disk_tier(cache: LruCache) -> None:
    """(Re)attach or detach a cache's disk store per the live config.

    Only durable caches participate; the rest (token reissuers, anything
    keyed by process-local identity) are left memory-only.  Attachment is
    idempotent: a store already rooted at the configured directory is kept,
    with only its byte budget refreshed.
    """
    if not getattr(cache, "durable", False):
        return
    root = _CONFIG.disk_cache_dir
    if root is None:
        cache.detach_disk_store()
        return
    target = os.path.join(root, cache.name)
    current = cache.disk_store
    if current is not None and str(current.root) == str(target):
        current.set_max_bytes(_CONFIG.disk_cache_bytes)
        return
    cache.attach_disk_store(DiskStore(target, name=cache.name,
                                      max_bytes=_CONFIG.disk_cache_bytes))


_DEFAULT_CACHE_BOUNDS: dict = {}


def _default_cache_bound(cache: LruCache) -> Optional[int]:
    """The byte bound a cache was registered with (for configure(None))."""
    return _DEFAULT_CACHE_BOUNDS.get(cache.name)


def register_runtime_cache(cache: LruCache) -> LruCache:
    """Register a cache and apply the configured ``cache_bytes`` override.

    The cache's own ``max_bytes`` is remembered as its default, so a later
    ``configure(cache_bytes=None)`` restores it.
    """
    _DEFAULT_CACHE_BOUNDS[cache.name] = cache.max_bytes
    register_cache(cache)
    if _CONFIG.cache_bytes is not None:
        cache.set_bounds(max_bytes=_CONFIG.cache_bytes)
    _apply_disk_tier(cache)
    return cache


def resolve_max_bytes(max_bytes: Optional[int]) -> Optional[int]:
    """An engine's effective chunk budget: explicit value or configured default."""
    return _CONFIG.max_bytes if max_bytes is None else int(max_bytes)


def resolve_transient_engine(engine: Optional[str]) -> str:
    """A flow's effective transient engine: explicit, configured, or batched."""
    if engine is not None:
        if engine not in TRANSIENT_ENGINES:
            raise ValueError(f"engine must be one of {TRANSIENT_ENGINES}, "
                             f"got {engine!r}")
        return engine
    if _CONFIG.transient_engine is not None:
        return _CONFIG.transient_engine
    return "batched"


def _bootstrap_from_env() -> None:
    """Pick up ``REPRO_DISK_CACHE`` / ``REPRO_DISK_CACHE_BYTES`` at import.

    Lets scripts and CI enable the durable tier without code changes.  A
    malformed byte budget is ignored rather than failing the import of the
    whole runtime package.
    """
    engine = os.environ.get("REPRO_TRANSIENT_ENGINE", "").strip()
    if engine in TRANSIENT_ENGINES:
        configure(transient_engine=engine)
    for env_name, knob in (("REPRO_TRANSIENT_RTOL", "transient_rtol"),
                           ("REPRO_TRANSIENT_ATOL", "transient_atol_frac")):
        raw = os.environ.get(env_name, "").strip()
        if raw:
            try:
                configure(**{knob: float(raw)})
            except ValueError:
                pass
    root = os.environ.get("REPRO_DISK_CACHE", "").strip()
    if not root:
        return
    budget = None
    raw = os.environ.get("REPRO_DISK_CACHE_BYTES", "").strip()
    if raw:
        try:
            budget = max(int(raw), 1)
        except ValueError:
            budget = None
    configure(disk_cache_dir=root, disk_cache_bytes=budget)


_bootstrap_from_env()


__all__ = [
    "CacheStats",
    "CheckpointMismatch",
    "Checkpointer",
    "ChunkedExecutor",
    "CircuitBreaker",
    "DeadlineExceeded",
    "DiskStore",
    "DiskStoreStats",
    "EXECUTOR_MODES",
    "FailureReport",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "InjectedTimeout",
    "LruCache",
    "ProcessExecutor",
    "RetryError",
    "RetryPolicy",
    "RunLedger",
    "RuntimeConfig",
    "SerialExecutor",
    "TRANSIENT_ENGINES",
    "cache_stats",
    "chunk_count",
    "clear_all_caches",
    "configure",
    "default_sizeof",
    "fault_sites",
    "get_executor",
    "get_registered_cache",
    "inject",
    "load_checkpoint",
    "plan_chunks",
    "register_cache",
    "register_fault_site",
    "register_runtime_cache",
    "registered_caches",
    "resolve_max_bytes",
    "resolve_strict",
    "resolve_transient_engine",
    "run_with_retry",
    "runtime_config",
    "stable_key_digest",
]
