"""One LRU cache implementation for every memoization in the library.

PRs 1-3 each grew a private cache -- the per-condition simulation cache, the
equivalent-inverter reduction cache, the per-supply effective-current rows
and the netlist compile cache -- with four different eviction policies and
no shared visibility.  This module replaces all of them with one generic,
capacity-bounded, stats-reporting LRU:

* **Dual capacity bounds.**  Every cache can be bounded by entry count
  (``max_entries``) and by payload size (``max_bytes``); either bound may be
  ``None`` (unbounded on that axis).  Entry sizes are measured by
  :func:`default_sizeof`, which understands NumPy arrays, containers and
  dataclasses, or supplied explicitly by the caller via ``put(nbytes=...)``.
* **Statistics.**  Hits, misses and evictions are counted per cache and
  exposed as :class:`CacheStats`; the process-wide registry aggregates them
  through :func:`cache_stats` (re-exported as ``repro.runtime.cache_stats``),
  so a flow can finally *see* whether its memoization is working.
* **Registry.**  Global caches register by name; ``configure(cache_bytes=N)``
  in :mod:`repro.runtime` re-bounds every registered cache at once.
* **Optional durable second tier.**  A cache constructed with
  ``durable=True`` can carry a :class:`~repro.runtime.persist.DiskStore`
  (attached by ``configure(disk_cache_dir=...)`` / ``REPRO_DISK_CACHE``):
  puts write through to disk, a memory miss falls back to the store (and
  promotes the hit), and :class:`CacheStats` grows disk-tier columns.  The
  tier is strictly write-through -- in-memory semantics, counters and
  eviction behavior are untouched when no store is attached.

The cache is thread-safe: every public operation (lookups, stores, bound
changes, stats snapshots) runs under an internal ``threading.RLock``, and
the process-wide registry is guarded the same way.  The library's original
concurrency story was process fan-out (see :mod:`repro.runtime.executor`),
where each worker owns a private registry and the lock is uncontended; the
characterization service (:mod:`repro.runtime.service`) added in-process
threads -- submitters probing the solved-model cache while the scheduler
fills it -- which is what made the lock load-bearing.  A cache with a disk
tier attached serializes its store access through the same lock, so the
(single-threaded) :class:`~repro.runtime.persist.DiskStore` never sees
concurrent calls from its owning cache.
"""

from __future__ import annotations

import dataclasses
import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

#: Sentinel distinguishing "absent" from a cached ``None``.
_MISSING = object()


def default_sizeof(value: Any, _seen: Optional[set] = None,
                   _depth: int = 0) -> int:
    """Approximate the memory footprint of a cached payload, in bytes.

    NumPy arrays report ``nbytes`` (views count their base buffer once per
    entry -- an over- rather than under-estimate); tuples, lists, dicts and
    dataclasses recurse over their elements; strings and bytes report their
    length.  Anything else falls back to ``sys.getsizeof``.  Recursion is
    cycle-safe and depth-capped, so arbitrary object graphs cannot hang the
    accounting.
    """
    if _depth > 8:
        return 0
    if _seen is None:
        _seen = set()
    marker = id(value)
    if marker in _seen:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, str)):
        return len(value)
    if isinstance(value, (int, float, complex, bool, type(None))):
        return 32
    if isinstance(value, (tuple, list, set, frozenset)):
        _seen.add(marker)
        return 64 + sum(default_sizeof(item, _seen, _depth + 1) for item in value)
    if isinstance(value, dict):
        _seen.add(marker)
        return 64 + sum(default_sizeof(k, _seen, _depth + 1)
                        + default_sizeof(v, _seen, _depth + 1)
                        for k, v in value.items())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        _seen.add(marker)
        return 64 + sum(
            default_sizeof(getattr(value, field.name, None), _seen, _depth + 1)
            for field in dataclasses.fields(value))
    try:
        return int(sys.getsizeof(value))
    except TypeError:
        return 64


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of one cache's counters and occupancy.

    Attributes
    ----------
    name:
        Registry name of the cache.
    hits, misses, evictions:
        Lifetime lookup and eviction counters (reset by ``clear()``).
    entries, current_bytes:
        Current occupancy.
    max_entries, max_bytes:
        Configured capacity bounds (``None`` = unbounded on that axis).
    durable:
        Whether the cache is eligible for a disk tier.
    disk_hits, disk_misses, disk_writes:
        Disk-tier lookup/write counters (all zero without an attached
        store).
    disk_entries, disk_bytes:
        Disk-tier occupancy.
    disk_quarantined:
        Corrupt disk entries moved aside instead of served.
    """

    name: str
    hits: int
    misses: int
    evictions: int
    entries: int
    current_bytes: int
    max_entries: Optional[int]
    max_bytes: Optional[int]
    durable: bool = False
    disk_attached: bool = False
    disk_hits: int = 0
    disk_misses: int = 0
    disk_writes: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0
    disk_quarantined: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class LruCache:
    """Generic capacity-bounded LRU cache with hit/miss/eviction statistics.

    Parameters
    ----------
    name:
        Identifying name (used by the registry and in reports).
    max_entries:
        Entry-count bound, or ``None`` for unbounded.
    max_bytes:
        Payload-size bound in bytes, or ``None`` for unbounded.  A single
        payload larger than the whole budget is rejected outright (counted
        as an eviction) rather than flushing everything else.
    sizeof:
        Size estimator for stored values; defaults to :func:`default_sizeof`.
    durable:
        Whether the cache's entries are meaningful beyond this process
        (content-addressed keys, picklable values) and may therefore carry
        a disk tier.  Caches keyed on process-local tokens must stay
        ``False``.
    """

    def __init__(self, name: str, max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None,
                 sizeof: Callable[[Any], int] = default_sizeof,
                 durable: bool = False):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None)")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1 (or None)")
        self._name = str(name)
        self._max_entries = max_entries if max_entries is None else int(max_entries)
        self._max_bytes = max_bytes if max_bytes is None else int(max_bytes)
        self._sizeof = sizeof
        self._durable = bool(durable)
        self._disk = None
        #: Reentrant so a sizeof callback or disk tier that re-enters the
        #: cache (promotion inside get()) cannot self-deadlock.
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Any, Tuple[Any, int]]" = OrderedDict()
        self._current_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._enabled = True

    # ------------------------------------------------------------------
    # Introspection / control
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Registry name of the cache."""
        return self._name

    @property
    def enabled(self) -> bool:
        """Whether lookups are currently served."""
        return self._enabled

    @property
    def hits(self) -> int:
        """Number of successful lookups so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups so far."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Number of entries dropped to respect the capacity bounds."""
        return self._evictions

    @property
    def current_bytes(self) -> int:
        """Estimated bytes currently held."""
        return self._current_bytes

    @property
    def max_entries(self) -> Optional[int]:
        """Entry-count bound (``None`` = unbounded)."""
        return self._max_entries

    @property
    def max_bytes(self) -> Optional[int]:
        """Byte bound (``None`` = unbounded)."""
        return self._max_bytes

    @property
    def durable(self) -> bool:
        """Whether this cache may carry a disk tier."""
        return self._durable

    @property
    def disk_store(self):
        """The attached :class:`~repro.runtime.persist.DiskStore` (or ``None``)."""
        return self._disk

    def attach_disk_store(self, store) -> None:
        """Attach a write-through disk tier (durable caches only)."""
        if not self._durable:
            raise ValueError(
                f"cache {self._name!r} is not durable; its keys or values "
                f"are process-local and must not be persisted")
        with self._lock:
            self._disk = store

    def detach_disk_store(self) -> None:
        """Drop the disk tier (entries on disk are kept, just not consulted)."""
        with self._lock:
            self._disk = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    def enable(self) -> None:
        """Serve lookups again after :meth:`disable`."""
        self._enabled = True

    def disable(self) -> None:
        """Make every lookup miss (stored entries are kept)."""
        self._enabled = False

    def clear(self) -> None:
        """Drop all in-memory entries and reset the in-memory statistics.

        The disk tier is deliberately untouched: clearing memory caches is
        how tests and benchmarks force a *cold process*, and the durable
        tier's entire purpose is to survive exactly that.  Use
        ``cache.disk_store.clear()`` to scrub the disk too.
        """
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> CacheStats:
        """Current counters and occupancy as a :class:`CacheStats`."""
        with self._lock:
            disk = self._disk.stats() if self._disk is not None else None
            return CacheStats(
                name=self._name,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                current_bytes=self._current_bytes,
                max_entries=self._max_entries,
                max_bytes=self._max_bytes,
                durable=self._durable,
                disk_attached=disk is not None,
                disk_hits=disk.hits if disk else 0,
                disk_misses=disk.misses if disk else 0,
                disk_writes=disk.writes if disk else 0,
                disk_entries=disk.entries if disk else 0,
                disk_bytes=disk.current_bytes if disk else 0,
                disk_quarantined=disk.quarantined if disk else 0,
            )

    def set_bounds(self, max_entries: Optional[int] = _MISSING,
                   max_bytes: Optional[int] = _MISSING) -> None:
        """Re-bound the cache; excess entries are evicted immediately.

        Arguments left at their default keep the current bound; pass ``None``
        explicitly to unbound an axis.
        """
        if max_entries is not _MISSING and max_entries is not None \
                and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None)")
        if max_bytes is not _MISSING and max_bytes is not None \
                and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1 (or None)")
        with self._lock:
            if max_entries is not _MISSING:
                self._max_entries = (max_entries if max_entries is None
                                     else int(max_entries))
            if max_bytes is not _MISSING:
                self._max_bytes = (max_bytes if max_bytes is None
                                   else int(max_bytes))
            self._evict()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Return the cached value for ``key`` (marking it most recent).

        Returns ``default`` -- and counts a miss -- when absent or
        disabled.  A memory miss with a disk tier attached falls back to
        the store; a disk hit is promoted into memory and returned (the
        memory miss stays counted -- memory and disk counters are
        independent tiers).
        """
        with self._lock:
            if not self._enabled:
                return default
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                if self._disk is not None:
                    payload = self._disk.get(key, _MISSING)
                    if payload is not _MISSING:
                        self._store(key, payload, int(self._sizeof(payload)))
                        return payload
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value[0]

    def put(self, key: Any, value: Any, nbytes: Optional[int] = None) -> None:
        """Store ``value`` under ``key`` (no-op while disabled).

        ``nbytes`` overrides the size estimator for this entry.  With a
        disk tier attached the value is also written through to the store
        (even when it is too large for the memory bound -- the disk budget
        is independent).
        """
        with self._lock:
            if not self._enabled:
                return
            size = int(self._sizeof(value)) if nbytes is None else int(nbytes)
            self._store(key, value, size)
            if self._disk is not None:
                self._disk.put(key, value)

    def _store(self, key: Any, value: Any, size: int) -> None:
        """Insert into the memory tier only (shared by put and promotion)."""
        if self._max_bytes is not None and size > self._max_bytes:
            # Storing would immediately flush the rest of the cache for one
            # oversized entry; refuse and record the rejection.
            self._evictions += 1
            self.discard(key)
            return
        old = self._entries.get(key)
        if old is not None:
            self._current_bytes -= old[1]
        self._entries[key] = (value, size)
        self._current_bytes += size
        self._entries.move_to_end(key)
        self._evict()

    def discard(self, key: Any) -> None:
        """Remove one entry if present (not counted as an eviction)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._current_bytes -= entry[1]

    def _evict(self) -> None:
        while ((self._max_entries is not None
                and len(self._entries) > self._max_entries)
               or (self._max_bytes is not None
                   and self._current_bytes > self._max_bytes
                   and self._entries)):
            _, (_, size) = self._entries.popitem(last=False)
            self._current_bytes -= size
            self._evictions += 1


# ----------------------------------------------------------------------
# Process-wide registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, LruCache] = {}
_REGISTRY_LOCK = threading.Lock()


def register_cache(cache: LruCache) -> LruCache:
    """Register a cache under its name (replacing any previous holder).

    Returns the cache for chaining, so module-level globals can read
    ``CACHE = register_cache(LruCache("name", ...))``.
    """
    with _REGISTRY_LOCK:
        _REGISTRY[cache.name] = cache
    return cache


def get_registered_cache(name: str) -> Optional[LruCache]:
    """Look up a registered cache by name (``None`` when absent)."""
    with _REGISTRY_LOCK:
        return _REGISTRY.get(name)


def registered_caches() -> Dict[str, LruCache]:
    """A snapshot of the registry (name to cache)."""
    with _REGISTRY_LOCK:
        return dict(_REGISTRY)


def cache_stats() -> Dict[str, CacheStats]:
    """Statistics of every registered cache, keyed by cache name."""
    return {name: cache.stats()
            for name, cache in sorted(registered_caches().items())}


def clear_all_caches() -> None:
    """Clear every registered cache (entries and statistics)."""
    for cache in registered_caches().values():
        cache.clear()
