"""Memory-budgeted chunk planning for the batched engines.

The batched engines vectorize over a work axis -- ``(conditions x seeds)``
in the transient engine, ``(seeds)`` in the MAP solver, ``(points x seeds)``
in the timing views -- and their peak memory grows linearly with that axis.
A 10k-seed workload that would be 50x faster batched can therefore also be
50x larger than RAM.  This module plans deterministic splits of the work
axis under a byte budget, so every batched engine can stream its work in
bounded memory while producing results identical to the unchunked pass
(chunk rows are computed independently in all three engines; the equivalence
suite pins this at ``rtol <= 1e-12``).

The planner is intentionally dumb: balanced contiguous slices, sizes
differing by at most one, derived only from ``(n_items, item_bytes,
max_bytes)``.  Determinism -- the same inputs always produce the same plan
-- is what lets chunked runs reproduce unchunked accounting exactly.
"""

from __future__ import annotations

import math
from typing import List, Optional


def chunk_count(n_items: int, item_bytes: int,
                max_bytes: Optional[int]) -> int:
    """Number of chunks needed to keep each chunk under ``max_bytes``.

    ``max_bytes=None`` (no budget) plans a single chunk.  A budget smaller
    than one item still yields one item per chunk -- a single work item is
    the smallest schedulable unit, so the budget is best-effort at that
    granularity.
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if item_bytes < 0:
        raise ValueError("item_bytes must be non-negative")
    if n_items == 0:
        return 0
    if max_bytes is None or max_bytes <= 0 or item_bytes == 0:
        return 1
    per_chunk = max(1, int(max_bytes // item_bytes))
    return math.ceil(n_items / per_chunk)


def plan_chunks(n_items: int, item_bytes: int = 0,
                max_bytes: Optional[int] = None,
                n_chunks: Optional[int] = None,
                min_chunks: int = 1) -> List[slice]:
    """Plan contiguous, balanced slices of ``range(n_items)``.

    Parameters
    ----------
    n_items:
        Length of the work axis being split.
    item_bytes:
        Estimated peak bytes per work item (see each engine's estimate).
    max_bytes:
        Byte budget per chunk; ``None`` plans one chunk covering everything.
    n_chunks:
        Explicit chunk count overriding the byte computation (used by tests
        and by callers that already know their split).
    min_chunks:
        Floor on the chunk count (still capped at one item per chunk).
        Used by fan-out callers that want at least one chunk per worker
        even when the byte budget alone would plan fewer (the fused
        library pipeline shards its flat simulation axis this way).  A
        floor of 0 is accepted so ``min_chunks=executor.shard_hint(n)``
        composes for empty work lists (the plan is ``[]`` either way).

    Returns
    -------
    list of slice
        Slices covering ``range(n_items)`` exactly, in order, with sizes
        differing by at most one.  Empty for ``n_items == 0``.
    """
    if min_chunks < 0:
        raise ValueError("min_chunks must be non-negative")
    if n_chunks is None:
        n_chunks = max(chunk_count(n_items, item_bytes, max_bytes),
                       int(min_chunks) if n_items else 0)
    if n_items == 0 or n_chunks <= 0:
        return []
    n_chunks = min(int(n_chunks), n_items)
    base, extra = divmod(n_items, n_chunks)
    slices: List[slice] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        slices.append(slice(start, start + size))
        start += size
    return slices
