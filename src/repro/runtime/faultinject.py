"""Deterministic seeded fault injection for the characterization runtime.

Every recovery path in the resilience layer (worker-crash fallback, per-row
quarantine, the LM repair chain, graceful library degradation) needs to be
exercised reproducibly in tests and CI -- waiting for real crashes does not
make a test suite.  This module plants named *fault sites* inside the
engines; each site is a no-op until a :class:`FaultInjector` is activated
via the :func:`inject` context manager, at which point the injector decides
-- deterministically, from its seed and per-site call counters -- whether a
given call fires a fault.

Two primitives cover every fault shape the engines need:

* :func:`fire` -- raise at a site (``exception`` -> :class:`InjectedFault`,
  ``timeout`` -> :class:`InjectedTimeout`, ``crash`` -> the same
  ``BrokenProcessPool`` a dead worker produces);
* :func:`corrupt_rows` -- poison selected rows of a payload array with NaN
  and hand it back (the ``nan`` kind), modeling silent data corruption.

PR 8 adds the filesystem fault shapes the durable store
(:mod:`repro.runtime.persist`) recovers from:

* the ``enospc`` kind makes :func:`fire` raise ``OSError(ENOSPC)`` -- a
  full disk at a write site;
* :func:`damage_file` -- truncate a just-committed file (``torn``, a torn
  write the next reader sees) or flip one of its payload bits
  (``bitflip``, silent on-disk corruption);
* :func:`plant_stale_lock` -- drop an abandoned lock file (dead pid, old
  timestamp) in front of a lock acquisition (``stale_lock``).

PR 10 adds the latency fault shape the serving front door
(:mod:`repro.runtime.service`) must stay responsive under:

* :func:`induced_delay` -- the ``slow`` kind returns ``FaultSpec.delay_s``
  seconds at a site (0.0 when nothing fires); the caller sleeps that long,
  modeling a slow worker or stuck request without the harness itself
  blocking.  Keeping the sleep on the caller's side preserves the
  determinism contract: the injector never consults a clock.

Determinism: a :class:`FaultSpec` either pins explicit call indices
(``at_calls``) or draws per call from :func:`deterministic_uniform` keyed by
``(seed, site, call_index)`` -- no global RNG, no wall clock, so the same
specs and seed always produce the same fault schedule (asserted by the
harness tests).  The injector is process-global and in-process only: it does
not cross a ``ProcessPoolExecutor`` boundary, which is why worker-crash
coverage injects ``BrokenProcessPool`` at the parent-side
``executor.process.map`` site.
"""

from __future__ import annotations

import errno
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.resilience import deterministic_uniform

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "InjectedTimeout",
    "corrupt_rows",
    "damage_file",
    "fault_sites",
    "fire",
    "induced_delay",
    "inject",
    "plant_stale_lock",
    "register_fault_site",
]

FAULT_KINDS = ("exception", "timeout", "crash", "nan",
               "torn", "bitflip", "enospc", "stale_lock", "slow")

#: Kinds handled by the raising hook (:func:`fire` / ``check``).
_RAISING_KINDS = ("exception", "timeout", "crash", "enospc")

#: Kinds handled by the file-corruption hook (:func:`damage_file`).
_FILE_KINDS = ("torn", "bitflip")


class InjectedFault(RuntimeError):
    """A transient exception raised by the harness (kind ``exception``)."""


class InjectedTimeout(TimeoutError):
    """A timeout raised by the harness (kind ``timeout``)."""


def _broken_pool_error():
    from concurrent.futures.process import BrokenProcessPool
    return BrokenProcessPool("injected worker crash")


# ---------------------------------------------------------------------------
# Fault-site registry

_SITES: Dict[str, str] = {}


def register_fault_site(name: str, description: str) -> str:
    """Declare a named fault site (idempotent; module import time).

    Registration gives the harness a closed universe to validate specs
    against -- a typo in a test's site name fails loudly instead of
    silently injecting nothing.
    """
    if not name:
        raise ValueError("fault site name must be non-empty")
    existing = _SITES.get(name)
    if existing is not None and existing != description:
        raise ValueError(f"fault site {name!r} already registered with a "
                         f"different description")
    _SITES[name] = description
    return name


def fault_sites() -> Dict[str, str]:
    """All registered fault sites (name -> description)."""
    return dict(_SITES)


# ---------------------------------------------------------------------------
# Specs, events, injector

@dataclass(frozen=True)
class FaultSpec:
    """Where, what kind, and how often to inject.

    Attributes
    ----------
    site:
        A registered fault-site name.
    kind:
        One of ``exception``, ``timeout``, ``crash``, ``nan``.
    at_calls:
        Explicit 0-based call indices at which to fire (exact schedule).
        ``None`` defers to ``rate``.
    rate:
        Probability per call of firing, drawn deterministically from the
        injector seed.  Ignored when ``at_calls`` is given.
    rows:
        For ``nan`` faults: which rows of the payload array to poison.
    delay_s:
        For ``slow`` faults: seconds of latency :func:`induced_delay`
        reports to the caller when the fault fires.
    """

    site: str
    kind: str
    at_calls: Optional[Tuple[int, ...]] = None
    rate: float = 0.0
    rows: Tuple[int, ...] = (0,)
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError("rate must be in [0, 1]")
        if self.delay_s < 0.0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.at_calls is not None:
            calls = tuple(int(c) for c in self.at_calls)
            if any(c < 0 for c in calls):
                raise ValueError("at_calls indices must be non-negative")
            object.__setattr__(self, "at_calls", calls)
        object.__setattr__(self, "rows", tuple(int(r) for r in self.rows))

    def active_at(self, seed: int, call: int) -> bool:
        """Whether this spec fires at per-site call index ``call``."""
        if self.at_calls is not None:
            return call in self.at_calls
        if self.rate <= 0.0:
            return False
        return deterministic_uniform(seed, self.site, call) < self.rate


@dataclass(frozen=True)
class FaultEvent:
    """One fault actually fired (the injector's replayable trace)."""

    site: str
    call: int
    kind: str


@dataclass
class FaultInjector:
    """Holds fault specs and the per-site call counters that schedule them.

    Thread-safe (the process executors' serial fallbacks run in the parent
    thread, but chunked maps may interleave); activate with :func:`inject`.
    """

    specs: Sequence[FaultSpec] = ()
    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        unknown = sorted({s.site for s in self.specs} - set(_SITES))
        if unknown:
            raise ValueError(f"unknown fault site(s) {unknown}; "
                             f"registered: {sorted(_SITES)}")
        self._calls: Dict[str, int] = {}
        self._lock = threading.Lock()

    def _next_call(self, site: str) -> int:
        with self._lock:
            call = self._calls.get(site, 0)
            self._calls[site] = call + 1
            return call

    def _matches(self, site: str, call: int,
                 kinds: Tuple[str, ...]) -> Optional[FaultSpec]:
        for spec in self.specs:
            if (spec.site == site and spec.kind in kinds
                    and spec.active_at(self.seed, call)):
                return spec
        return None

    def check(self, site: str) -> None:
        """Raise if a raising fault (exception/timeout/crash/enospc) fires here."""
        call = self._next_call(site)
        spec = self._matches(site, call, _RAISING_KINDS)
        if spec is None:
            return
        with self._lock:
            self.events.append(FaultEvent(site, call, spec.kind))
        if spec.kind == "timeout":
            raise InjectedTimeout(f"injected timeout at {site} (call {call})")
        if spec.kind == "crash":
            raise _broken_pool_error()
        if spec.kind == "enospc":
            raise OSError(errno.ENOSPC,
                          f"injected: no space left on device at {site} "
                          f"(call {call})")
        raise InjectedFault(f"injected fault at {site} (call {call})")

    def corrupt(self, site: str, array: np.ndarray) -> np.ndarray:
        """Poison rows of ``array`` with NaN if a ``nan`` fault fires here.

        Returns the input array unchanged (same object) when no fault
        fires, so clean runs stay bit-identical with the sites in place.
        """
        call = self._next_call(site)
        spec = self._matches(site, call, ("nan",))
        if spec is None:
            return array
        with self._lock:
            self.events.append(FaultEvent(site, call, "nan"))
        poisoned = np.array(array, dtype=float, copy=True)
        rows = [r for r in spec.rows if -poisoned.shape[0] <= r < poisoned.shape[0]]
        if rows:
            poisoned[np.asarray(rows, dtype=int)] = np.nan
        return poisoned

    def damage(self, site: str, path) -> bool:
        """Corrupt the file at ``path`` if a ``torn``/``bitflip`` fault fires.

        ``torn`` truncates the file to half its length (the committed-then-
        torn sector shape); ``bitflip`` XORs one bit of the last payload
        byte (silent bit-rot).  Returns whether the file was damaged; a
        clean run's files are never touched.
        """
        call = self._next_call(site)
        spec = self._matches(site, call, _FILE_KINDS)
        if spec is None:
            return False
        with self._lock:
            self.events.append(FaultEvent(site, call, spec.kind))
        try:
            size = os.path.getsize(path)
            if spec.kind == "torn":
                with open(path, "r+b") as handle:
                    handle.truncate(size // 2)
            else:
                with open(path, "r+b") as handle:
                    handle.seek(max(size - 1, 0))
                    last = handle.read(1)
                    handle.seek(max(size - 1, 0))
                    handle.write(bytes([(last[0] if last else 0) ^ 0x01]))
        except OSError:
            return False
        return True

    def delay(self, site: str) -> float:
        """Seconds of injected latency if a ``slow`` fault fires here.

        Returns 0.0 when nothing fires.  The *caller* sleeps -- the
        injector stays clock-free so fault schedules remain replayable.
        """
        call = self._next_call(site)
        spec = self._matches(site, call, ("slow",))
        if spec is None:
            return 0.0
        with self._lock:
            self.events.append(FaultEvent(site, call, "slow"))
        return float(spec.delay_s)

    def plant_lock(self, site: str, path) -> bool:
        """Drop an abandoned lock file at ``path`` if ``stale_lock`` fires.

        The planted lock names a pid that cannot be alive and a timestamp
        far in the past, so a correct store breaks it instead of deadlocking
        (or skipping its maintenance forever).
        """
        call = self._next_call(site)
        spec = self._matches(site, call, ("stale_lock",))
        if spec is None:
            return False
        with self._lock:
            self.events.append(FaultEvent(site, call, "stale_lock"))
        try:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("999999999:0.0")
        except OSError:
            return False
        return True


# ---------------------------------------------------------------------------
# Process-global activation

_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    """The currently activated injector, or ``None``."""
    return _ACTIVE


def fire(site: str) -> None:
    """Fault-site hook for raising faults; no-op without an active injector.

    Engines call this at their named sites; the site must be registered.
    """
    if site not in _SITES:
        raise ValueError(f"unregistered fault site {site!r}")
    injector = _ACTIVE
    if injector is not None:
        injector.check(site)


def corrupt_rows(site: str, array: np.ndarray) -> np.ndarray:
    """Fault-site hook for NaN payload corruption; identity without injector."""
    if site not in _SITES:
        raise ValueError(f"unregistered fault site {site!r}")
    injector = _ACTIVE
    if injector is None:
        return array
    return injector.corrupt(site, array)


def damage_file(site: str, path) -> bool:
    """Fault-site hook for on-disk corruption; no-op without an injector."""
    if site not in _SITES:
        raise ValueError(f"unregistered fault site {site!r}")
    injector = _ACTIVE
    if injector is None:
        return False
    return injector.damage(site, path)


def induced_delay(site: str) -> float:
    """Fault-site hook for injected latency; 0.0 without an active injector.

    The caller is responsible for sleeping the returned duration at its
    own yield point (typically via ``time.sleep``).
    """
    if site not in _SITES:
        raise ValueError(f"unregistered fault site {site!r}")
    injector = _ACTIVE
    if injector is None:
        return 0.0
    return injector.delay(site)


def plant_stale_lock(site: str, path) -> bool:
    """Fault-site hook planting a stale lock file; no-op without an injector."""
    if site not in _SITES:
        raise ValueError(f"unregistered fault site {site!r}")
    injector = _ACTIVE
    if injector is None:
        return False
    return injector.plant_lock(site, path)


@contextmanager
def inject(specs: Sequence[FaultSpec], seed: int = 0):
    """Activate a :class:`FaultInjector` for the duration of the block.

    Yields the injector (inspect ``.events`` afterwards for the fired
    schedule).  Nesting is rejected: two overlapping injectors would share
    call counters ambiguously and break replay.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("fault injection is already active; "
                           "nested inject() is not supported")
    injector = FaultInjector(specs=specs, seed=seed)
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None
