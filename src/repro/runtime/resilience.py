"""Fault-tolerance primitives: retry policies and structured failure reports.

The characterization-as-a-service north star means long-lived, heavy-traffic
runs, but until this module every layer of the stack was fail-fast: one
transient exception, crashed worker or non-finite row aborted a whole
library characterization.  The resilience layer splits fault handling into
three reusable pieces that the engines thread through their existing
execution substrate:

* :class:`RetryPolicy` / :func:`run_with_retry` -- bounded retries with
  exponential backoff and *deterministic seeded jitter* (same policy, same
  site, same delays -- reproducibility is a load-bearing property of this
  codebase, so even the backoff schedule is replayable);
* :class:`FailureReport` -- the structured record of one failed unit of
  work (which arc, which stage, what raised, how many attempts), recorded
  on the :class:`~repro.runtime.accounting.RunLedger` and rendered by
  :func:`repro.analysis.reporting.format_ledger`;
* :func:`resolve_strict` -- the ``strict=True|False`` switch of the library
  flows: strict preserves the historical fail-fast behavior, non-strict
  degrades per row/arc and returns partial results plus failure reports;
* :class:`CircuitBreaker` -- a three-state (closed / open / half-open)
  failure latch for flaky dependencies; the characterization service wraps
  the durable disk tier in one so a failing disk degrades the service to
  memory-only instead of failing requests.

**Cooperative-cancellation contract.**  Python cannot preempt running
code, so every deadline in this codebase is *cooperative*: work is never
killed mid-flight, it is abandoned at the next yield point.  The two
deadline holders follow the same rules:

* :attr:`RetryPolicy.deadline_s` bounds the retry loop *end to end* on
  ``time.monotonic()`` -- attempts, backoff sleeps and all.  An attempt
  that is still running when the deadline passes is allowed to finish
  (cooperative: it cannot be interrupted), but no further attempt starts,
  and a backoff sleep that would overrun the deadline is skipped in favor
  of failing immediately.  Wall-clock jumps (NTP steps, suspend/resume)
  cannot mis-time attempts because no wall clock is consulted anywhere in
  the loop.
* :class:`DeadlineExceeded` is how the characterization service reports a
  request whose deadline passed while it waited for (or cooperatively
  finished) a batch: the request is dropped from the *next* batch, never
  yanked out of a running one -- rows its batch already integrated still
  land in the caches for the next caller.

Process-wide defaults come from environment knobs so operators can harden a
deployment without touching call sites:

* ``REPRO_MAX_RETRIES`` -- extra attempts after the first failure
  (default 0, i.e. fail on the first error exactly as before);
* ``REPRO_RETRY_BACKOFF`` -- base backoff delay in seconds (default 0.0);
* ``REPRO_STRICT`` -- default strictness of the library flows
  (default 1 / strict).
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

__all__ = [
    "CircuitBreaker",
    "DeadlineExceeded",
    "FailureReport",
    "RetryError",
    "RetryPolicy",
    "deterministic_uniform",
    "resolve_strict",
    "run_with_retry",
]

#: Environment knob names (documented in the README's resilient-runtime section).
ENV_MAX_RETRIES = "REPRO_MAX_RETRIES"
ENV_RETRY_BACKOFF = "REPRO_RETRY_BACKOFF"
ENV_STRICT = "REPRO_STRICT"

_FALSE_STRINGS = ("0", "false", "no", "off", "")


def deterministic_uniform(seed: int, *parts) -> float:
    """A reproducible uniform draw in ``[0, 1)`` keyed by ``(seed, *parts)``.

    CRC32 of the rendered key -- platform-independent and stable across
    runs, unlike ``hash()`` (randomized per process) or a shared RNG stream
    (order-dependent).  Both the retry jitter and the fault-injection
    schedule derive from this, which is what makes fault runs replayable.
    """
    key = ":".join([str(int(seed))] + [str(part) for part in parts])
    return zlib.crc32(key.encode("utf-8")) / 2.0 ** 32


def resolve_strict(strict: Optional[bool]) -> bool:
    """Resolve a flow's ``strict`` switch (``None`` defers to ``REPRO_STRICT``)."""
    if strict is not None:
        return bool(strict)
    return os.environ.get(ENV_STRICT, "1").strip().lower() not in _FALSE_STRINGS


class DeadlineExceeded(TimeoutError):
    """A deadline passed before the work could be (or finish being) served.

    Raised to the *caller* of an expired request -- never into the work
    itself, which is cooperative and runs to its next yield point (see the
    module docstring's cooperative-cancellation contract).  The
    characterization service completes an expired request's future with
    this; results its batch already computed stay cached for the next
    caller.
    """


class RetryError(RuntimeError):
    """Raised when a retried task exhausts its attempts (or its deadline).

    Attributes
    ----------
    site:
        The caller-supplied task label.
    attempts:
        Attempts actually made; the last failure is chained as ``__cause__``.
    """

    def __init__(self, site: str, attempts: int, error: BaseException):
        super().__init__(
            f"{site} failed after {attempts} attempt{'s' if attempts != 1 else ''}: "
            f"{type(error).__name__}: {error}")
        self.site = site
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and with what spacing, a failed task is re-attempted.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first (1 = no retries, the default --
        a ``RetryPolicy()`` is behaviorally a no-op).
    backoff_s:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied to the delay after every retry (exponential
        backoff).
    jitter:
        Fractional jitter on each delay: delay ``i`` is scaled by
        ``1 + jitter * u_i`` with ``u_i`` a deterministic uniform in
        ``[0, 1)`` derived from ``seed`` -- spreading a fleet's retries
        without sacrificing replayability.
    seed:
        Seed of the jitter schedule.
    deadline_s:
        End-to-end deadline of the whole retry loop, in seconds, measured
        on ``time.monotonic()`` from the start of the first attempt --
        attempts *and* backoff sleeps count against it.  The deadline is
        cooperative (Python cannot preempt a running attempt): an attempt
        that fails after the deadline passed is not retried, and a backoff
        sleep that would overrun the deadline is skipped in favor of
        failing immediately.  ``None`` disables the check.  Because the
        loop never consults the wall clock, NTP steps or suspend/resume
        cannot mis-time attempts.
    """

    max_attempts: int = 1
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    jitter: float = 0.0
    seed: int = 0
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_s < 0.0:
            raise ValueError("backoff_s must be non-negative")
        if self.backoff_factor <= 0.0:
            raise ValueError("backoff_factor must be positive")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive (or None)")

    @classmethod
    def from_env(cls, seed: int = 0) -> "RetryPolicy":
        """Policy from ``REPRO_MAX_RETRIES`` / ``REPRO_RETRY_BACKOFF``.

        With neither variable set this is the no-op single-attempt policy,
        so default runs behave exactly as they did before the resilience
        layer existed.
        """
        retries = int(os.environ.get(ENV_MAX_RETRIES, "0"))
        if retries < 0:
            raise ValueError(f"{ENV_MAX_RETRIES} must be non-negative")
        backoff = float(os.environ.get(ENV_RETRY_BACKOFF, "0.0"))
        if backoff < 0.0:
            raise ValueError(f"{ENV_RETRY_BACKOFF} must be non-negative")
        return cls(max_attempts=retries + 1, backoff_s=backoff, seed=seed)

    @property
    def is_noop(self) -> bool:
        """Whether the policy never retries (single attempt)."""
        return self.max_attempts <= 1

    def delays(self) -> List[float]:
        """The deterministic backoff delay before each retry, in order.

        ``max_attempts - 1`` entries; entry ``i`` spaces attempt ``i + 1``
        from attempt ``i + 2``.  Identical for identical policies.
        """
        delays = []
        for index in range(self.max_attempts - 1):
            base = self.backoff_s * self.backoff_factor ** index
            scale = 1.0 + self.jitter * deterministic_uniform(self.seed, index)
            delays.append(base * scale)
        return delays


def run_with_retry(
    fn: Callable[[], object],
    policy: Optional[RetryPolicy] = None,
    *,
    site: str = "task",
    retry_on: Tuple[type, ...] = (Exception,),
    ledger=None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> object:
    """Run ``fn`` under a retry policy; the core helper of the resilience layer.

    Parameters
    ----------
    fn:
        Zero-argument callable (bind payloads with a closure or
        ``functools.partial``).
    policy:
        ``None`` or a no-op policy runs ``fn`` once with no wrapping at all
        -- the first failure propagates unchanged, preserving pre-resilience
        semantics exactly.
    site:
        Label used in error messages and ledger metrics.
    retry_on:
        Exception classes that are retried; anything else propagates
        immediately.
    ledger:
        Optional :class:`~repro.runtime.accounting.RunLedger`; every retry
        adds 1 to the ``retries`` metric (and ``retries:<site>``).
    on_retry:
        Optional callback ``(attempt_index, error)`` invoked before each
        retry (the executors count their retries through it).
    sleep, clock:
        Injectable for tests (deterministic fake time).

    Raises
    ------
    RetryError
        When every attempt failed (or the per-attempt deadline was
        exceeded); the last failure is chained as ``__cause__``.
    """
    if policy is None or policy.is_noop:
        return fn()
    delays = policy.delays()
    last_error: Optional[BaseException] = None
    # The deadline is end-to-end: one monotonic origin for the whole loop,
    # never re-based per attempt and never read from the wall clock (see
    # the module docstring's cooperative-cancellation contract).
    origin = clock()
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retry_on as error:
            last_error = error
            elapsed = clock() - origin
            delay = delays[attempt - 1] if attempt < policy.max_attempts else 0.0
            overdue = (policy.deadline_s is not None
                       and elapsed + delay > policy.deadline_s)
            if attempt == policy.max_attempts or overdue:
                raise RetryError(site, attempt, error) from error
            if ledger is not None:
                ledger.add_metric("retries", 1)
                ledger.add_metric(f"retries:{site}", 1)
            if on_retry is not None:
                on_retry(attempt, error)
            if delay > 0.0:
                sleep(delay)
    raise RetryError(site, policy.max_attempts, last_error)  # pragma: no cover


@dataclass(frozen=True)
class FailureReport:
    """One failed unit of work, in the shape the ledger and reports render.

    Attributes
    ----------
    unit:
        What failed -- the library flows use ``"<cell>:<arc name>"``.
    stage:
        Pipeline stage that failed (``"simulate"``, ``"extract"``, ...).
    error:
        Human-readable error message.
    error_type:
        Exception class name (or a symbolic tag such as
        ``"QuarantinedRows"`` for per-row quarantine).
    attempts:
        Attempts made before giving up.
    """

    unit: str
    stage: str
    error: str
    error_type: str = ""
    attempts: int = 1

    @classmethod
    def from_exception(cls, unit: str, stage: str, error: BaseException,
                       attempts: int = 1) -> "FailureReport":
        """Build a report from a caught exception.

        A :class:`RetryError` is unwrapped to its cause (the actual
        failure) and contributes its attempt count.
        """
        if isinstance(error, RetryError):
            attempts = max(attempts, error.attempts)
            cause = error.__cause__
            if cause is not None:
                error = cause
        return cls(unit=unit, stage=stage, error=str(error),
                   error_type=type(error).__name__, attempts=int(attempts))

    def as_dict(self) -> dict:
        """Picklable/JSON form (the shape stored on the ledger)."""
        return {"unit": self.unit, "stage": self.stage, "error": self.error,
                "error_type": self.error_type, "attempts": int(self.attempts)}

    @classmethod
    def from_dict(cls, record: dict) -> "FailureReport":
        """Inverse of :meth:`as_dict`."""
        return cls(unit=str(record["unit"]), stage=str(record["stage"]),
                   error=str(record["error"]),
                   error_type=str(record.get("error_type", "")),
                   attempts=int(record.get("attempts", 1)))

    def describe(self) -> str:
        """One-line rendering used by reports."""
        kind = f" [{self.error_type}]" if self.error_type else ""
        tries = (f" after {self.attempts} attempts" if self.attempts != 1
                 else "")
        return f"{self.unit} failed at {self.stage}{kind}{tries}: {self.error}"


class CircuitBreaker:
    """Three-state failure latch for a flaky dependency.

    Closed (normal) -> open after ``failure_threshold`` consecutive
    failures; open -> half-open once ``cooldown_s`` has elapsed on the
    monotonic clock; half-open admits a single probe -- success closes the
    breaker, failure re-opens it and restarts the cooldown.

    The characterization service wraps the durable disk tier in one of
    these: a disk throwing ``ENOSPC`` or quarantining corrupt payloads in a
    storm trips the breaker and the service degrades to memory-only caching
    instead of failing (or slowing) every request.  All methods are
    thread-safe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
    cooldown_s:
        Seconds the breaker stays open before admitting a half-open probe.
    clock:
        Injectable monotonic clock (tests substitute a fake).
    """

    def __init__(self, failure_threshold: int = 3, cooldown_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1, got "
                             f"{failure_threshold}")
        if cooldown_s < 0.0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self._failure_threshold = int(failure_threshold)
        self._cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (cooldown-aware)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def trips(self) -> int:
        """Times the breaker transitioned to open (monitoring counter)."""
        with self._lock:
            return self._trips

    def _maybe_half_open(self) -> None:
        if (self._state == "open"
                and self._clock() - self._opened_at >= self._cooldown_s):
            self._state = "half_open"

    def allow(self) -> bool:
        """Whether the protected dependency may be used right now.

        Closed and half-open admit the call (half-open as the single probe
        whose outcome decides the next state); open rejects it.
        """
        with self._lock:
            self._maybe_half_open()
            return self._state != "open"

    def record_success(self) -> None:
        """The dependency worked: close the breaker and reset the count."""
        with self._lock:
            self._state = "closed"
            self._failures = 0

    def record_failure(self, n: int = 1) -> None:
        """The dependency failed ``n`` times (a batch may observe several).

        A half-open probe failure re-opens immediately; closed failures
        accumulate until ``failure_threshold`` trips the breaker.
        """
        if n < 1:
            return
        with self._lock:
            self._maybe_half_open()
            self._failures += int(n)
            tripped = (self._state == "half_open"
                       or (self._state != "open"
                           and self._failures >= self._failure_threshold))
            if tripped:
                self._state = "open"
                self._opened_at = self._clock()
                self._trips += 1
                self._failures = 0
