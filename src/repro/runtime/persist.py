"""Crash-safe content-addressed on-disk store: the durable cache tier.

PR 7 made a *live* characterization run resilient (retries, quarantine,
graceful degradation); this module makes the *data* resilient.  Every
in-memory :class:`~repro.runtime.cache.LruCache` is process-local, so a
killed run loses all of its simulations and solved models.  The
:class:`DiskStore` is the second tier underneath the durable caches: a
content-addressed directory of checksummed entries that survives process
death, torn writes and bit-rot, so a rerun -- minutes or days later --
warm-starts from everything the previous run committed.

Durability contract (each property is exercised by the fault-injection
harness, see :mod:`repro.runtime.faultinject`):

* **Atomic commits.**  Entries are written to a temp file in the store's
  own ``tmp/`` directory, fsynced, and published with ``os.replace`` --
  readers never observe a half-written entry under its final name; a crash
  mid-write leaves only an orphaned temp file (reaped on the next open).
* **Self-verifying entries.**  Every entry carries a fixed header: magic,
  schema version, SHA-256 checksum of the payload and the payload length.
  Reads verify all four before unpickling.
* **Quarantine, never crash.**  An unreadable, truncated, version-skewed or
  checksum-failing entry is *quarantined*: moved into ``quarantine/``,
  counted in :class:`DiskStoreStats`, and reported as a miss.  Corruption
  costs a recompute, not a run.
* **Tolerant writes.**  ``ENOSPC`` and any other ``OSError`` during a write
  is counted (``write_errors``) and swallowed -- a full disk degrades the
  store to read-only instead of aborting the characterization.
* **Byte-budgeted eviction.**  When the store exceeds ``max_bytes``, the
  oldest entries (by modification time) are dropped under a best-effort
  lock file; a stale lock (dead pid or expired age) is broken rather than
  waited on.

Keys are arbitrary picklable tuples (the same tuples the in-memory caches
use); :func:`stable_key_digest` maps them to SHA-256 hex names through a
canonical byte encoding, so on-disk names are identical across processes,
platforms and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.runtime import faultinject

__all__ = [
    "DiskStore",
    "DiskStoreStats",
    "stable_key_digest",
]

#: Entry header: magic, schema version, payload SHA-256, payload length.
_MAGIC = b"RPDS"
_SCHEMA_VERSION = 1
_HEADER = struct.Struct(">4sB32sQ")

#: Sentinel distinguishing "absent" from a stored ``None``.
_MISSING = object()

SITE_STORE_WRITE = faultinject.register_fault_site(
    "persist.write",
    "one DiskStore entry write about to start (enospc/exception kinds)")
SITE_STORE_COMMIT = faultinject.register_fault_site(
    "persist.commit",
    "one committed DiskStore entry file (torn/bitflip corruption kinds)")
SITE_STORE_LOCK = faultinject.register_fault_site(
    "persist.lock",
    "DiskStore maintenance-lock acquisition (stale_lock kind)")


def _feed_canonical(digest, value: Any) -> None:
    """Feed one value into ``digest`` in a canonical, type-tagged encoding.

    Every scalar is tagged and length-prefixed so distinct structures can
    never collide byte-wise (``("ab", "c")`` vs ``("a", "bc")``), floats
    use ``float.hex()`` (exact, locale-independent), and containers recurse
    with explicit open/close markers.  No ``hash()``, ``repr`` of floats or
    pointer identity anywhere -- the digest is stable across processes,
    platforms and ``PYTHONHASHSEED`` values.
    """
    if value is None:
        digest.update(b"N;")
    elif isinstance(value, bool):  # before int: bool subclasses int
        digest.update(b"b1;" if value else b"b0;")
    elif isinstance(value, int):
        encoded = str(value).encode("ascii")
        digest.update(b"i%d:" % len(encoded) + encoded)
    elif isinstance(value, float):
        encoded = value.hex().encode("ascii")
        digest.update(b"f%d:" % len(encoded) + encoded)
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        digest.update(b"s%d:" % len(encoded) + encoded)
    elif isinstance(value, bytes):
        digest.update(b"y%d:" % len(value) + value)
    elif isinstance(value, (tuple, list)):
        digest.update(b"t(")
        for item in value:
            _feed_canonical(digest, item)
        digest.update(b")")
    elif isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        shape = str(contiguous.shape).encode("ascii")
        dtype = contiguous.dtype.str.encode("ascii")
        digest.update(b"a" + dtype + b"|" + shape + b"|")
        digest.update(contiguous.tobytes())
    else:
        raise TypeError(
            f"stable_key_digest cannot canonicalize {type(value).__name__!r}; "
            f"keys must be built from None/bool/int/float/str/bytes/tuple/"
            f"list/ndarray")


def stable_key_digest(key: Any) -> str:
    """SHA-256 hex digest of a cache key, stable across processes.

    The on-disk entry name of every key.  Unlike ``hash()`` (randomized per
    process by ``PYTHONHASHSEED``) or ``repr`` (float formatting drift),
    the canonical encoding guarantees the same key always lands in the same
    file -- the property that makes cross-process, cross-day warm starts
    possible.
    """
    digest = hashlib.sha256()
    _feed_canonical(digest, key)
    return digest.hexdigest()


@dataclass(frozen=True)
class DiskStoreStats:
    """Snapshot of one disk store's counters and occupancy.

    Attributes
    ----------
    name:
        Store name (usually the owning cache's registry name).
    root:
        Store directory.
    hits, misses:
        Lifetime lookup counters (a quarantined read counts as a miss).
    writes, write_errors:
        Committed entries and swallowed write failures (ENOSPC et al.).
    evictions:
        Entries dropped to respect the byte budget.
    quarantined:
        Corrupt entries moved aside instead of served.
    stale_locks_broken:
        Maintenance locks broken because their holder was dead or expired.
    entries, current_bytes:
        Current occupancy.
    max_bytes:
        Byte budget (``None`` = unbounded).
    """

    name: str
    root: str
    hits: int
    misses: int
    writes: int
    write_errors: int
    evictions: int
    quarantined: int
    stale_locks_broken: int
    entries: int
    current_bytes: int
    max_bytes: Optional[int]


class DiskStore:
    """Content-addressed, crash-safe on-disk key/value store.

    Parameters
    ----------
    root:
        Directory holding the store (created on demand, together with its
        ``entries/``, ``tmp/`` and ``quarantine/`` subdirectories).
    name:
        Identifying name used in stats (defaults to the directory name).
    max_bytes:
        Byte budget; the oldest entries are evicted once exceeded.
        ``None`` disables eviction.
    stale_lock_s:
        Age after which another process's maintenance lock is considered
        abandoned and broken.
    """

    def __init__(self, root, name: Optional[str] = None,
                 max_bytes: Optional[int] = None,
                 stale_lock_s: float = 60.0):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1 (or None)")
        self._root = Path(root)
        self._name = str(name) if name is not None else self._root.name
        self._max_bytes = None if max_bytes is None else int(max_bytes)
        self._stale_lock_s = float(stale_lock_s)
        self._entries_dir = self._root / "entries"
        self._tmp_dir = self._root / "tmp"
        self._quarantine_dir = self._root / "quarantine"
        self._lock_path = self._root / ".lock"
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._write_errors = 0
        self._evictions = 0
        self._quarantined = 0
        self._stale_locks_broken = 0
        #: digest -> size; rebuilt by scanning on construction so a store
        #: reopened over an existing directory accounts its inventory.
        self._index: Dict[str, int] = {}
        self._current_bytes = 0
        self._open()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Store name used in stats."""
        return self._name

    @property
    def root(self) -> Path:
        """Store directory."""
        return self._root

    @property
    def max_bytes(self) -> Optional[int]:
        """Byte budget (``None`` = unbounded)."""
        return self._max_bytes

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: Any) -> bool:
        return stable_key_digest(key) in self._index

    def stats(self) -> DiskStoreStats:
        """Current counters and occupancy as a :class:`DiskStoreStats`."""
        return DiskStoreStats(
            name=self._name,
            root=str(self._root),
            hits=self._hits,
            misses=self._misses,
            writes=self._writes,
            write_errors=self._write_errors,
            evictions=self._evictions,
            quarantined=self._quarantined,
            stale_locks_broken=self._stale_locks_broken,
            entries=len(self._index),
            current_bytes=self._current_bytes,
            max_bytes=self._max_bytes,
        )

    def set_max_bytes(self, max_bytes: Optional[int]) -> None:
        """Re-budget the store; excess entries are evicted immediately."""
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1 (or None)")
        self._max_bytes = None if max_bytes is None else int(max_bytes)
        self._evict()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _open(self) -> None:
        for directory in (self._entries_dir, self._tmp_dir,
                          self._quarantine_dir):
            directory.mkdir(parents=True, exist_ok=True)
        # Reap temp files orphaned by a previous crash: they were never
        # published, so deleting them can never lose a committed entry.
        for orphan in self._tmp_dir.iterdir():
            try:
                orphan.unlink()
            except OSError:
                pass
        for shard in self._entries_dir.iterdir():
            if not shard.is_dir():
                continue
            for entry in shard.glob("*.entry"):
                try:
                    size = entry.stat().st_size
                except OSError:
                    continue
                self._index[entry.stem] = size
                self._current_bytes += size

    def _entry_path(self, digest: str) -> Path:
        return self._entries_dir / digest[:2] / f"{digest}.entry"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Return the stored value for ``key``, or ``default`` on a miss.

        A corrupt entry (truncated, bit-flipped, wrong magic or schema
        version, unpicklable) is quarantined and reported as a miss --
        corruption is never allowed to propagate an exception into the
        characterization flow.
        """
        digest = stable_key_digest(key)
        path = self._entry_path(digest)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self._drop_from_index(digest)
            self._misses += 1
            return default
        except OSError:
            self._quarantine(digest, path)
            self._misses += 1
            return default
        value = self._decode(data)
        if value is _MISSING:
            self._quarantine(digest, path)
            self._misses += 1
            return default
        self._hits += 1
        return value

    def _decode(self, data: bytes) -> Any:
        if len(data) < _HEADER.size:
            return _MISSING
        magic, version, checksum, length = _HEADER.unpack_from(data)
        if magic != _MAGIC or version != _SCHEMA_VERSION:
            return _MISSING
        payload = data[_HEADER.size:]
        if len(payload) != length:
            return _MISSING
        if hashlib.sha256(payload).digest() != checksum:
            return _MISSING
        try:
            return pickle.loads(payload)
        except Exception:
            return _MISSING

    def put(self, key: Any, value: Any) -> bool:
        """Atomically store ``value`` under ``key``; returns whether written.

        Idempotent: a key that already has a committed entry is skipped
        (values in this codebase are deterministic functions of their
        keys).  Write failures -- a full disk, a read-only filesystem --
        are counted in ``write_errors`` and swallowed: persistence degrades,
        the run never aborts.
        """
        digest = stable_key_digest(key)
        if digest in self._index:
            return False
        path = self._entry_path(digest)
        try:
            faultinject.fire(SITE_STORE_WRITE)
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            header = _HEADER.pack(_MAGIC, _SCHEMA_VERSION,
                                  hashlib.sha256(payload).digest(),
                                  len(payload))
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=self._tmp_dir,
                                            suffix=".partial")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(header)
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            self._write_errors += 1
            return False
        # Post-commit corruption hook: the deterministic stand-in for torn
        # sectors and bit-rot between this run and the next reader.
        faultinject.damage_file(SITE_STORE_COMMIT, path)
        try:
            size = path.stat().st_size
        except OSError:
            size = _HEADER.size + len(payload)
        self._index[digest] = size
        self._current_bytes += size
        self._writes += 1
        self._evict()
        return True

    def discard(self, key: Any) -> None:
        """Remove one entry if present (not counted as an eviction)."""
        digest = stable_key_digest(key)
        path = self._entry_path(digest)
        try:
            path.unlink()
        except OSError:
            pass
        self._drop_from_index(digest)

    def clear(self) -> None:
        """Drop every entry and quarantined file; counters are kept."""
        for digest in list(self._index):
            try:
                self._entry_path(digest).unlink()
            except OSError:
                pass
        self._index.clear()
        self._current_bytes = 0
        for stale in self._quarantine_dir.glob("*.entry"):
            try:
                stale.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Quarantine and eviction
    # ------------------------------------------------------------------
    def _drop_from_index(self, digest: str) -> None:
        size = self._index.pop(digest, None)
        if size is not None:
            self._current_bytes -= size

    def _quarantine(self, digest: str, path: Path) -> None:
        """Move a corrupt entry aside so it is never served (or retried)."""
        self._quarantined += 1
        try:
            os.replace(path, self._quarantine_dir / f"{digest}.entry")
        except OSError:
            # Even the move failing must not surface: worst case the entry
            # stays, fails verification again, and re-quarantines.
            try:
                path.unlink()
            except OSError:
                pass
        self._drop_from_index(digest)

    def quarantined_entries(self) -> int:
        """Number of files currently sitting in ``quarantine/``."""
        return sum(1 for _ in self._quarantine_dir.glob("*.entry"))

    def _evict(self) -> None:
        if self._max_bytes is None or self._current_bytes <= self._max_bytes:
            return
        if not self._acquire_lock():
            return  # another process is maintaining the store; skip
        try:
            aged = []
            for digest in self._index:
                path = self._entry_path(digest)
                try:
                    aged.append((path.stat().st_mtime, digest))
                except OSError:
                    aged.append((0.0, digest))
            aged.sort()
            for _, digest in aged:
                if self._current_bytes <= self._max_bytes:
                    break
                try:
                    self._entry_path(digest).unlink()
                except OSError:
                    pass
                self._drop_from_index(digest)
                self._evictions += 1
        finally:
            self._release_lock()

    # ------------------------------------------------------------------
    # Best-effort maintenance lock (with stale-lock breaking)
    # ------------------------------------------------------------------
    def _acquire_lock(self) -> bool:
        faultinject.plant_stale_lock(SITE_STORE_LOCK, self._lock_path)
        for _ in range(2):
            try:
                fd = os.open(self._lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._lock_is_stale():
                    try:
                        self._lock_path.unlink()
                    except OSError:
                        return False
                    self._stale_locks_broken += 1
                    continue
                return False
            except OSError:
                return False
            with os.fdopen(fd, "w") as handle:
                handle.write(f"{os.getpid()}:{time.time()}")
            return True
        return False

    def _lock_is_stale(self) -> bool:
        """A lock is stale when its holder is dead or it outlived its age."""
        try:
            pid_text, _, stamp_text = (
                self._lock_path.read_text(encoding="utf-8").partition(":"))
            pid = int(pid_text)
            stamp = float(stamp_text)
        except (OSError, ValueError):
            return True  # unreadable lock: treat as abandoned
        if time.time() - stamp > self._stale_lock_s:
            return True
        if pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError:
            return False
        return False

    def _release_lock(self) -> None:
        try:
            self._lock_path.unlink()
        except OSError:
            pass
