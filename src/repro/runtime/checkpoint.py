"""Journaled checkpoint/resume for the fused library characterization.

The durable tier (:mod:`repro.runtime.persist`) makes individual cache
entries survive process death; this module makes a whole *run* resumable.
A checkpointed ``characterize_library`` call owns a checkpoint directory::

    <dir>/journal.jsonl            # append-only record of completed units
    <dir>/store/simulation/        # DiskStore of committed simulation rows
    <dir>/store/solved_models/     # DiskStore of per-arc solved models

During the run, every completed simulation chunk commits its rows to the
simulation store *as it finishes* (the crash window is one chunk, not the
whole simulate phase), and every solved arc lands in the solved-model store
together with a ``solve`` journal record.  Structured
:class:`~repro.runtime.resilience.FailureReport` records of degraded work
are persisted too, and surfaced on resume through :meth:`Checkpointer.failures`.

On ``characterize_library(resume=True)`` the journal is replayed: arcs with
a journaled solve load their models straight from the store, rows committed
by the killed run are disk hits during planning, and only the genuinely
missing (or quarantined-on-disk) rows are re-integrated.  The stacked MAP
solve is block-independent per arc, so the resumed run's entries are
bit-identical to an uninterrupted run's.

Integrity over trust: every journal line carries a SHA-256 of its record,
so a torn tail (the line being appended when the process died) is dropped
instead of parsed; a wrong run *signature* -- the
:func:`~repro.runtime.persist.stable_key_digest` of everything that shapes
the run (technology and variation fingerprints, the job list and its
conditions, the prior fingerprints, the solver) -- raises
:class:`CheckpointMismatch` rather than resuming into different inputs.
Journal and store writes degrade, never abort: an unwritable journal counts
``journal_errors`` and the run continues as a plain (non-durable) run.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runtime.persist import DiskStore
from repro.runtime.resilience import FailureReport

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointMismatch",
    "Checkpointer",
    "load_checkpoint",
]

#: Journal schema version; a mismatch invalidates the journal (the stores
#: are still readable -- their entries carry their own versioned headers).
CHECKPOINT_SCHEMA = 1

_JOURNAL_NAME = "journal.jsonl"


class CheckpointMismatch(ValueError):
    """A resume was attempted against a journal from different run inputs."""


def _record_sha(record: Dict[str, Any]) -> str:
    return hashlib.sha256(
        json.dumps(record, sort_keys=True).encode("utf-8")).hexdigest()


def _load_journal(path: Path) -> List[Dict[str, Any]]:
    """Replay a journal, dropping the torn tail.

    Journal lines are appended with flush+fsync, so at most the last line
    can be incomplete after a crash; any line that fails to parse or whose
    SHA-256 does not match its record ends the replay -- the units it (and
    anything after it) described are simply recomputed.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError:
        return []
    records: List[Dict[str, Any]] = []
    for line in lines:
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
            record = entry["record"]
            if entry.get("sha") != _record_sha(record):
                break
        except (ValueError, KeyError, TypeError):
            break
        records.append(record)
    return records


class Checkpointer:
    """One run's durable progress: journal plus simulation/solved stores.

    Parameters
    ----------
    directory:
        Checkpoint directory (created on demand).
    signature:
        The run signature -- a stable digest of every input that shapes the
        run's results.  A fresh checkpoint records it in the journal header;
        a resume verifies it.
    resume:
        ``False`` starts a fresh journal (an existing one, whatever its
        signature, is truncated; the content-addressed stores are kept --
        matching entries warm-start, stale ones are just unread).  ``True``
        replays an existing journal; a signature mismatch raises
        :class:`CheckpointMismatch`, a missing/empty journal degrades to a
        fresh start.
    """

    def __init__(self, directory, signature: str, resume: bool = False):
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._journal_path = self._dir / _JOURNAL_NAME
        self._signature = str(signature)
        self.sim_store = DiskStore(self._dir / "store" / "simulation",
                                   name="checkpoint:simulation")
        self.solved_store = DiskStore(self._dir / "store" / "solved_models",
                                      name="checkpoint:solved_models")
        #: Swallowed journal-append failures (full disk etc.); the run
        #: continues, it just checkpoints less.
        self.journal_errors = 0
        #: Simulation rows committed through :meth:`row_sink` this run.
        self.rows_committed = 0
        self._solved_units: Dict[int, str] = {}
        self._failure_indices: List[int] = []
        self._completed = False

        records = _load_journal(self._journal_path)
        header = records[0] if records else None
        header_valid = (isinstance(header, dict)
                        and header.get("kind") == "run"
                        and header.get("schema") == CHECKPOINT_SCHEMA)
        if resume and header_valid:
            if header.get("signature") != self._signature:
                raise CheckpointMismatch(
                    f"checkpoint at {self._dir} was written by a run with "
                    f"signature {header.get('signature')!r}; this run's "
                    f"signature is {self._signature!r} -- the inputs "
                    f"(technology, library, conditions, seeds, priors or "
                    f"solver) differ, so its units cannot be reused")
            for record in records[1:]:
                kind = record.get("kind")
                if kind == "solve":
                    self._solved_units[int(record["job"])] = str(
                        record.get("unit", ""))
                elif kind == "failure":
                    self._failure_indices.append(int(record["index"]))
                elif kind == "complete":
                    self._completed = True
        else:
            self._write_header()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        """The checkpoint directory."""
        return self._dir

    @property
    def signature(self) -> str:
        """The run signature this checkpoint belongs to."""
        return self._signature

    @property
    def completed(self) -> bool:
        """Whether the journal records a completed run."""
        return self._completed

    def solved_jobs(self) -> List[int]:
        """Job indices with a journaled solve, ascending."""
        return sorted(self._solved_units)

    def solved_units(self) -> Dict[int, str]:
        """Journaled job index -> ``cell:arc`` unit labels."""
        return dict(self._solved_units)

    def failures(self) -> List[FailureReport]:
        """Persisted :class:`FailureReport` records, in journal order.

        Reports whose store entry was lost or quarantined are skipped --
        the failure already cost its recompute; its description is not
        worth an exception.
        """
        reports: List[FailureReport] = []
        for index in self._failure_indices:
            payload = self.solved_store.get(
                (self._signature, "failure", int(index)))
            if payload is not None:
                reports.append(FailureReport.from_dict(payload))
        return reports

    # ------------------------------------------------------------------
    # Journaling (all writes degrade, never raise)
    # ------------------------------------------------------------------
    def _write_header(self) -> None:
        try:
            self._journal_path.unlink()
        except OSError:
            pass
        self._append({"kind": "run", "schema": CHECKPOINT_SCHEMA,
                      "signature": self._signature})

    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps({"record": record, "sha": _record_sha(record)},
                          sort_keys=True)
        try:
            with open(self._journal_path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            self.journal_errors += 1

    def row_sink(self, key, delay_row, slew_row) -> None:
        """Persist one completed simulation row (the ``commit_chunk`` sink)."""
        self.sim_store.put(key, (delay_row, slew_row))
        self.rows_committed += 1

    def journal_rows(self, written: int) -> None:
        """Record one committed chunk (row-group unit) in the journal."""
        self._append({"kind": "rows", "n": int(written)})

    def commit_solve(self, job: int, unit: str,
                     payload: Dict[str, Any]) -> None:
        """Persist one arc's solved model and journal the solve unit.

        The store entry is written (and fsynced) *before* the journal line:
        a crash between the two leaves an unreferenced entry, never a
        journal record pointing at nothing.
        """
        self.solved_store.put((self._signature, "solve", int(job)), payload)
        self._append({"kind": "solve", "job": int(job), "unit": str(unit)})
        self._solved_units[int(job)] = str(unit)

    def load_solved(self, job: int) -> Optional[Dict[str, Any]]:
        """A journaled job's solved-model payload, or ``None`` to recompute.

        ``None`` covers both "never solved" and "stored entry lost or
        quarantined" -- either way the caller re-characterizes the arc.
        """
        if int(job) not in self._solved_units:
            return None
        return self.solved_store.get((self._signature, "solve", int(job)))

    def record_failure(self, report: FailureReport) -> None:
        """Persist one :class:`FailureReport` into the store and journal."""
        index = (max(self._failure_indices) + 1) if self._failure_indices else 0
        self.solved_store.put((self._signature, "failure", index),
                              report.as_dict())
        self._append({"kind": "failure", "index": index})
        self._failure_indices.append(index)

    def mark_complete(self) -> None:
        """Journal that the run finished (resume becomes a pure replay)."""
        self._append({"kind": "complete"})
        self._completed = True


def load_checkpoint(directory) -> Checkpointer:
    """Open an existing checkpoint read-mostly, without knowing its signature.

    Replays the journal under whatever signature its header carries --
    the accessor for inspecting a dead run's progress and persisted
    failures (``load_checkpoint(dir).failures()``).
    """
    records = _load_journal(Path(directory) / _JOURNAL_NAME)
    header = records[0] if records else None
    if (not isinstance(header, dict) or header.get("kind") != "run"
            or "signature" not in header):
        raise FileNotFoundError(
            f"no checkpoint journal found under {directory}")
    return Checkpointer(directory, header["signature"], resume=True)
