"""Gaussian factor graph with sum-product belief propagation.

The cross-technology prior of the paper is obtained by propagating parameter
beliefs between technology nodes.  This module implements the generic
machinery: a factor graph whose variables are real vectors (here, the
four timing-model parameters of each technology plus a shared "global"
parameter mean), with

* **evidence factors** -- unary Gaussian potentials attached to a variable
  (e.g. the parameters extracted from one historical library, with a
  covariance describing within-library spread across cells), and
* **smoothness factors** -- pairwise potentials expressing that two variables
  agree up to Gaussian "technology drift" noise (e.g. consecutive technology
  nodes, or each node versus the global mean).

Messages are Gaussian and exchanged in information form; on tree-structured
graphs (the star and chain topologies used by
:mod:`repro.core.prior_learning`) the algorithm is exact, and on loopy graphs
it runs damped iterations until the beliefs stop changing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bayes.gaussian import GaussianDensity

#: Diagonal jitter used when inverting message precision matrices.
_JITTER = 1e-12


@dataclass
class _Message:
    """A Gaussian message in information form."""

    precision: np.ndarray
    shift: np.ndarray

    @classmethod
    def zero(cls, dim: int) -> "_Message":
        return cls(np.zeros((dim, dim)), np.zeros(dim))

    def copy(self) -> "_Message":
        return _Message(self.precision.copy(), self.shift.copy())


@dataclass(frozen=True)
class _Evidence:
    """Unary factor: a Gaussian potential on one variable."""

    variable: str
    precision: np.ndarray
    shift: np.ndarray


@dataclass(frozen=True)
class _Smoothness:
    """Pairwise factor: ``var_b = var_a + noise`` with the given noise precision."""

    name: str
    variable_a: str
    variable_b: str
    noise_precision: np.ndarray


class GaussianFactorGraph:
    """A factor graph over vector-valued Gaussian variables."""

    def __init__(self) -> None:
        self._dims: Dict[str, int] = {}
        self._evidence: List[_Evidence] = []
        self._smoothness: List[_Smoothness] = []

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def add_variable(self, name: str, dim: int) -> None:
        """Declare a variable node of the given dimensionality."""
        if dim < 1:
            raise ValueError("variable dimension must be at least 1")
        if name in self._dims:
            raise ValueError(f"variable {name!r} already exists")
        self._dims[name] = int(dim)

    def variables(self) -> List[str]:
        """Names of all declared variables."""
        return list(self._dims)

    def _require_variable(self, name: str) -> int:
        if name not in self._dims:
            raise KeyError(f"unknown variable {name!r}; declare it with add_variable")
        return self._dims[name]

    def add_evidence(self, variable: str, density: GaussianDensity) -> None:
        """Attach a Gaussian evidence (unary) factor to a variable."""
        dim = self._require_variable(variable)
        if density.dim != dim:
            raise ValueError(
                f"evidence for {variable!r} has dimension {density.dim}, expected {dim}"
            )
        precision, shift = density.to_information()
        self._evidence.append(_Evidence(variable, precision, shift))

    def add_smoothness(self, variable_a: str, variable_b: str,
                       noise_covariance: np.ndarray,
                       name: Optional[str] = None) -> None:
        """Link two variables with ``var_b = var_a + N(0, noise_covariance)``."""
        dim_a = self._require_variable(variable_a)
        dim_b = self._require_variable(variable_b)
        if dim_a != dim_b:
            raise ValueError("linked variables must share a dimension")
        noise_covariance = np.asarray(noise_covariance, dtype=float)
        if noise_covariance.ndim == 1:
            noise_covariance = np.diag(noise_covariance)
        if noise_covariance.shape != (dim_a, dim_a):
            raise ValueError("noise covariance has the wrong shape")
        noise_precision = np.linalg.inv(noise_covariance + _JITTER * np.eye(dim_a))
        label = name or f"{variable_a}~{variable_b}"
        self._smoothness.append(
            _Smoothness(label, variable_a, variable_b, noise_precision)
        )

    # ------------------------------------------------------------------
    # Belief propagation
    # ------------------------------------------------------------------
    def run_belief_propagation(self, max_iterations: int = 100, tolerance: float = 1e-10,
                               damping: float = 0.0) -> Dict[str, GaussianDensity]:
        """Run sum-product message passing and return per-variable beliefs.

        Parameters
        ----------
        max_iterations:
            Upper bound on message-update sweeps (trees converge in at most
            the graph diameter).
        tolerance:
            Convergence threshold on the maximum change of any message entry.
        damping:
            Damping factor in ``[0, 1)`` for loopy graphs (0 = undamped).

        Returns
        -------
        dict
            Mapping of variable name to its Gaussian belief.

        Raises
        ------
        RuntimeError
            If a variable ends up with no information at all (its belief
            would be improper), or if loopy propagation fails to converge.
        """
        if not (0.0 <= damping < 1.0):
            raise ValueError("damping must be in [0, 1)")

        # Unary information per variable (fixed during propagation).
        unary: Dict[str, _Message] = {
            name: _Message.zero(dim) for name, dim in self._dims.items()
        }
        for evidence in self._evidence:
            message = unary[evidence.variable]
            message.precision += evidence.precision
            message.shift += evidence.shift

        # Messages from each pairwise factor to each of its two endpoints.
        messages: Dict[Tuple[str, str], _Message] = {}
        for factor in self._smoothness:
            for target in (factor.variable_a, factor.variable_b):
                messages[(factor.name, target)] = _Message.zero(self._dims[target])

        converged = not self._smoothness
        for _ in range(max_iterations):
            max_change = 0.0
            for factor in self._smoothness:
                for source, target in ((factor.variable_a, factor.variable_b),
                                       (factor.variable_b, factor.variable_a)):
                    incoming = self._incoming(source, factor.name, unary, messages)
                    joint_precision = incoming.precision + factor.noise_precision
                    jitter = _JITTER * np.eye(joint_precision.shape[0])
                    solve = np.linalg.solve(joint_precision + jitter, np.column_stack(
                        [factor.noise_precision, incoming.shift[:, np.newaxis]]))
                    w_solve = solve[:, :-1]
                    h_solve = solve[:, -1]
                    new_precision = factor.noise_precision - factor.noise_precision @ w_solve
                    new_shift = factor.noise_precision @ h_solve
                    key = (factor.name, target)
                    old = messages[key]
                    if damping > 0.0:
                        new_precision = (1.0 - damping) * new_precision + damping * old.precision
                        new_shift = (1.0 - damping) * new_shift + damping * old.shift
                    max_change = max(
                        max_change,
                        float(np.max(np.abs(new_precision - old.precision), initial=0.0)),
                        float(np.max(np.abs(new_shift - old.shift), initial=0.0)),
                    )
                    messages[key] = _Message(new_precision, new_shift)
            if max_change < tolerance:
                converged = True
                break
        if not converged:
            raise RuntimeError(
                "belief propagation did not converge; increase max_iterations or damping"
            )

        beliefs: Dict[str, GaussianDensity] = {}
        for name, dim in self._dims.items():
            belief = self._incoming(name, exclude_factor=None, unary=unary,
                                    messages=messages)
            if np.all(np.abs(belief.precision) < 1e-300):
                raise RuntimeError(
                    f"variable {name!r} received no information; attach evidence or links"
                )
            beliefs[name] = GaussianDensity.from_information(
                belief.precision + _JITTER * np.eye(dim), belief.shift
            )
        return beliefs

    def _incoming(self, variable: str, exclude_factor: Optional[str],
                  unary: Dict[str, _Message],
                  messages: Dict[Tuple[str, str], _Message]) -> _Message:
        """Product of the unary factor and all messages into ``variable``."""
        total = unary[variable].copy()
        for factor in self._smoothness:
            if factor.name == exclude_factor:
                continue
            if variable not in (factor.variable_a, factor.variable_b):
                continue
            message = messages[(factor.name, variable)]
            total.precision = total.precision + message.precision
            total.shift = total.shift + message.shift
        return total

    # ------------------------------------------------------------------
    # Convenience topologies
    # ------------------------------------------------------------------
    @classmethod
    def star(cls, center: str, leaves: Dict[str, GaussianDensity],
             link_covariance: np.ndarray) -> "GaussianFactorGraph":
        """Build a star graph: every leaf observes the central variable.

        This is the topology used to fuse historical technologies into the
        global prior: each leaf carries that technology's extracted
        parameters as evidence, and the link covariance encodes how much
        parameters are allowed to drift between technologies.
        """
        if not leaves:
            raise ValueError("at least one leaf is required")
        dims = {density.dim for density in leaves.values()}
        if len(dims) != 1:
            raise ValueError("all leaves must share a dimension")
        dim = dims.pop()
        graph = cls()
        graph.add_variable(center, dim)
        for leaf_name, density in leaves.items():
            graph.add_variable(leaf_name, dim)
            graph.add_evidence(leaf_name, density)
            graph.add_smoothness(center, leaf_name, link_covariance,
                                 name=f"{center}~{leaf_name}")
        return graph

    @classmethod
    def chain(cls, names: List[str], evidence: Dict[str, GaussianDensity],
              link_covariance: np.ndarray) -> "GaussianFactorGraph":
        """Build a chain graph (e.g. technology nodes ordered by year)."""
        if len(names) < 2:
            raise ValueError("a chain needs at least two variables")
        dims = {density.dim for density in evidence.values()}
        if len(dims) != 1:
            raise ValueError("all evidence densities must share a dimension")
        dim = dims.pop()
        graph = cls()
        for name in names:
            graph.add_variable(name, dim)
            if name in evidence:
                graph.add_evidence(name, evidence[name])
        for left, right in zip(names[:-1], names[1:]):
            graph.add_smoothness(left, right, link_covariance, name=f"{left}~{right}")
        return graph
